"""Evaluating chains: cost of a given tree, and numeric execution.

Bridges the DP/enumeration layer to concrete arrays (used by
``pytsim.linalg.multi_dot``) and to the IR (used by the chain-reordering
pass, which builds nested ``matmul`` nodes following the optimal tree).
"""

from __future__ import annotations

import numpy as np

from ..errors import ChainError
from ..kernels import blas3
from .dp import chain_dims, optimal_parenthesization


def parse_tree_flops(tree: object, dims: tuple[int, ...]) -> int:
    """Total GEMM FLOPs of evaluating ``tree`` over ``dims``."""

    def walk(t: object) -> tuple[int, int, int]:
        if isinstance(t, int):
            if not 0 <= t < len(dims) - 1:
                raise ChainError(f"tree leaf {t} out of range")
            return dims[t], dims[t + 1], 0
        left, right = t
        lr, lc, lf = walk(left)
        rr, rc, rf = walk(right)
        if lc != rr:
            raise ChainError(f"tree splits chain inconsistently at {t!r}")
        return lr, rc, lf + rf + 2 * lr * lc * rc

    return walk(tree)[2]


def chain_cost(shapes: list[tuple[int, int]], tree: object | None = None) -> int:
    """FLOPs of evaluating the chain with ``tree`` (default: optimal)."""
    dims = chain_dims(shapes)
    if tree is None:
        return optimal_parenthesization(shapes).flops
    return parse_tree_flops(tree, dims)


def evaluate_chain(
    operands: list[np.ndarray],
    tree: object | None = None,
) -> np.ndarray:
    """Numerically evaluate the chain following ``tree`` (default: optimal).

    Every 2-D product goes through the BLAS substrate so timings are
    comparable with framework executions.
    """
    if not operands:
        raise ChainError("empty matrix chain")
    arrays = [np.asarray(a) for a in operands]
    for a in arrays:
        if a.ndim != 2:
            raise ChainError(f"chain operands must be matrices, got shape {a.shape}")
    if tree is None:
        tree = optimal_parenthesization([a.shape for a in arrays]).tree

    def walk(t: object) -> np.ndarray:
        if isinstance(t, int):
            return arrays[t]
        left, right = t
        return blas3.gemm(walk(left), walk(right))

    return walk(tree)
