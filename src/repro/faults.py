"""Deterministic fault injection: the chaos harness behind the recovery tests.

Every recovery path in this repo — hung-worker supervision in
:mod:`repro.runtime.shard`, deadline expiry and circuit breaking in
:mod:`repro.serve`, corrupt-artifact eviction in
:mod:`repro.runtime.store` — is CI-tested by *injecting* the fault it
recovers from, not by hoping production finds it first.  This module is
the single registry those tests (and the ``laab chaos`` CLI) talk to.

The model: code under test calls :func:`fire` at **named sites**; a
:class:`FaultPlan` maps sites to :class:`FaultSpec` actions with
deterministic trigger windows.  Sites currently wired in:

========================  ====================================================
site                      where it fires
========================  ====================================================
``worker.exec``           shard worker, before executing each ring entry
``pipe.send``             shard worker, before sending its wave reply
``pipe.recv``             pool parent, after receiving a wave reply
``store.load``            :meth:`PlanStore._load_artifact`, before reading
``serve.dispatch``        :meth:`Server._run_wave_sync`, before the batch run
``optimize.pass``         :meth:`PassPipeline.run`, before each pass — a
                          mid-compile crash (also hits autotune candidate
                          normalization, which must fall back to canonical)
========================  ====================================================

Actions
-------
``crash``    ``os._exit`` — a worker death the parent sees as a closed pipe
``hang``     ignore SIGTERM, then sleep ``seconds`` (default 3600) — a stuck
             worker that *also* swallows terminate, exercising the
             terminate→kill escalation
``delay``    sleep ``seconds`` (default 0.05), then continue
``error``    raise :class:`InjectedFault` (a :class:`ReproError`)
``corrupt``  return the spec to the call site, which applies a site-specific
             corruption (garbled pipe reply, truncated artifact, …)

Determinism
-----------
Each spec fires on hit numbers ``[after, after + count)`` of its site's
per-process counter (1-based), optionally restricted to one shard worker
(``wN``).  A spec may instead fire probabilistically (``@pP``) from a
``seed``-derived per-site RNG — still reproducible run-to-run.  Workers
count their own hits (the registry is per-process), so a respawned
worker starts from zero: chaos schedules pick trigger counts that the
replayed wave no longer reaches.

Activation: :func:`install` (tests, ``Options(faults=...)``), or the
``REPRO_FAULTS`` environment variable (read once, lazily), whose value
is the :meth:`FaultPlan.render` string grammar::

    site:action[(seconds)]@after[xcount][wN] [; ...]    e.g.
    worker.exec:crash@3w0 ; pipe.send:corrupt@2 ; store.load:delay(0.1)@1x5

Spawned shard workers cannot inherit an installed plan, so the pool
ships ``render()`` of the active plan as a worker argument and the
worker re-installs it — fork and spawn behave identically.
"""

from __future__ import annotations

import os
import random
import re
import signal
import threading
import time
import zlib
from dataclasses import dataclass, field

from .errors import ConfigError, ReproError

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "ACTIONS",
    "install",
    "clear",
    "active",
    "active_render",
    "fire",
]

#: Exit status used by the ``crash`` action — distinctive in ``exitcode``
#: assertions (and outside the signal range, so it reads as a clean
#: ``os._exit``, not a kill).
CRASH_EXIT = 70

ACTIONS = ("crash", "hang", "delay", "error", "corrupt")


class InjectedFault(ReproError, RuntimeError):
    """An ``error``-action fault fired — never raised outside tests/chaos."""


@dataclass(frozen=True)
class FaultSpec:
    """One site → action rule with a deterministic trigger window.

    Fires on site hits ``after .. after + count - 1`` (1-based,
    per-process), or — when ``chance`` is set instead of ``after`` — on
    each hit with seeded probability ``chance``.  ``worker`` restricts
    the spec to one shard worker index (``None`` matches anywhere,
    including parent-side sites).
    """

    site: str
    action: str
    after: int | None = 1
    count: int = 1
    seconds: float | None = None
    worker: int | None = None
    chance: float | None = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ConfigError(
                f"fault action must be one of {ACTIONS}, got {self.action!r}"
            )
        if (self.after is None) == (self.chance is None):
            raise ConfigError(
                "a fault spec needs exactly one trigger: after=N or chance=P"
            )
        if self.after is not None and (
            not isinstance(self.after, int) or self.after < 1
        ):
            raise ConfigError(f"after must be an int >= 1, got {self.after!r}")
        if not isinstance(self.count, int) or self.count < 1:
            raise ConfigError(f"count must be an int >= 1, got {self.count!r}")
        if self.chance is not None and not (0.0 < self.chance <= 1.0):
            raise ConfigError(f"chance must be in (0, 1], got {self.chance!r}")

    def matches(self, hit: int, worker: int | None, rng) -> bool:
        if self.worker is not None and self.worker != worker:
            return False
        if self.chance is not None:
            return rng.random() < self.chance
        return self.after <= hit < self.after + self.count

    def render(self) -> str:
        out = f"{self.site}:{self.action}"
        if self.seconds is not None:
            out += f"({self.seconds:g})"
        if self.chance is not None:
            out += f"@p{self.chance:g}"
        else:
            out += f"@{self.after}"
            if self.count != 1:
                out += f"x{self.count}"
        if self.worker is not None:
            out += f"w{self.worker}"
        return out


_SPEC_RE = re.compile(
    r"""^(?P<site>[A-Za-z0-9_.\-]+)
        :(?P<action>[a-z]+)
        (?:\((?P<seconds>[0-9]*\.?[0-9]+)\))?
        @(?:p(?P<chance>[0-9]*\.?[0-9]+)|(?P<after>[0-9]+))
        (?:x(?P<count>[0-9]+))?
        (?:w(?P<worker>[0-9]+))?$""",
    re.VERBOSE,
)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of :class:`FaultSpec` rules plus an RNG seed.

    Round-trips through :meth:`render`/:meth:`parse` so a plan can ship
    across process boundaries (spawned workers, the ``REPRO_FAULTS``
    env) as a plain string.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        specs = []
        seed = 0
        for part in text.split(";"):
            part = part.strip()
            if not part:
                continue
            if part.startswith("seed="):
                try:
                    seed = int(part[5:])
                except ValueError:
                    raise ConfigError(f"bad fault seed: {part!r}") from None
                continue
            m = _SPEC_RE.match(part)
            if m is None:
                raise ConfigError(
                    f"bad fault spec {part!r} — expected "
                    "site:action[(seconds)]@after[xcount][wN] or @pP"
                )
            g = m.groupdict()
            specs.append(FaultSpec(
                site=g["site"],
                action=g["action"],
                after=int(g["after"]) if g["after"] is not None else None,
                count=int(g["count"]) if g["count"] is not None else 1,
                seconds=float(g["seconds"]) if g["seconds"] else None,
                worker=int(g["worker"]) if g["worker"] is not None else None,
                chance=float(g["chance"]) if g["chance"] is not None else None,
            ))
        return cls(specs=tuple(specs), seed=seed)

    def render(self) -> str:
        parts = [spec.render() for spec in self.specs]
        if self.seed:
            parts.insert(0, f"seed={self.seed}")
        return ";".join(parts)


def _coerce(plan) -> FaultPlan:
    if isinstance(plan, FaultPlan):
        return plan
    if isinstance(plan, str):
        return FaultPlan.parse(plan)
    if isinstance(plan, FaultSpec):
        return FaultPlan(specs=(plan,))
    raise ConfigError(
        f"faults must be a FaultPlan, FaultSpec, or spec string, got "
        f"{type(plan).__name__}"
    )


class FaultInjector:
    """Per-process executor of a :class:`FaultPlan`.

    Tracks one hit counter per site (thread-safe — serve dispatch fires
    from executor threads) and a per-site seeded RNG for ``chance``
    specs.  :meth:`fire` either returns ``None`` (no fault), returns the
    matching ``corrupt`` spec for the call site to apply, sleeps
    (``delay``/``hang``), raises (``error``), or never returns
    (``crash``).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = _coerce(plan)
        self._by_site: dict[str, list[FaultSpec]] = {}
        for spec in self.plan.specs:
            self._by_site.setdefault(spec.site, []).append(spec)
        self._hits: dict[str, int] = {}
        self._rngs: dict[str, random.Random] = {}
        self._lock = threading.Lock()
        #: ``(site, action)`` → times fired, for test introspection.
        self.fired: dict[tuple[str, str], int] = {}

    def hits(self, site: str) -> int:
        with self._lock:
            return self._hits.get(site, 0)

    def _rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            rng = self._rngs[site] = random.Random(
                self.plan.seed ^ zlib.crc32(site.encode())
            )
        return rng

    def fire(self, site: str, *, worker: int | None = None):
        specs = self._by_site.get(site)
        if not specs:
            return None
        with self._lock:
            hit = self._hits[site] = self._hits.get(site, 0) + 1
            spec = next(
                (s for s in specs
                 if s.matches(hit, worker, self._rng(site))), None,
            )
            if spec is None:
                return None
            key = (site, spec.action)
            self.fired[key] = self.fired.get(key, 0) + 1
        return _act(spec)


def _act(spec: FaultSpec):
    if spec.action == "crash":
        os._exit(CRASH_EXIT)
    if spec.action == "hang":
        # Swallow SIGTERM where we can (main thread of a worker process)
        # so the supervisor's terminate() is ignored and the kill
        # escalation is what actually reaps us.
        try:
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
        except (ValueError, OSError):  # non-main thread / platform
            pass
        time.sleep(spec.seconds if spec.seconds is not None else 3600.0)
        return None
    if spec.action == "delay":
        time.sleep(spec.seconds if spec.seconds is not None else 0.05)
        return None
    if spec.action == "error":
        raise InjectedFault(
            f"injected fault at site {spec.site!r}"
        )
    return spec  # corrupt: the call site applies it


# -- process-global registry ---------------------------------------------------

_active: FaultInjector | None = None
_env_checked = False


def install(plan) -> FaultInjector:
    """Activate ``plan`` (a :class:`FaultPlan`, spec, or grammar string)
    process-wide; returns the live :class:`FaultInjector`."""
    global _active, _env_checked
    _env_checked = True  # an explicit install outranks the env
    _active = FaultInjector(_coerce(plan))
    return _active


def clear() -> None:
    """Deactivate fault injection (and forget the env, so tests that
    monkeypatch ``REPRO_FAULTS`` re-trigger the lazy read)."""
    global _active, _env_checked
    _active = None
    _env_checked = False


def active() -> FaultInjector | None:
    """The live injector, lazily picking up ``REPRO_FAULTS`` once."""
    global _active, _env_checked
    if _active is None and not _env_checked:
        _env_checked = True
        env = os.environ.get("REPRO_FAULTS")
        if env:
            _active = FaultInjector(FaultPlan.parse(env))
    return _active


def active_render() -> str | None:
    """``render()`` of the active plan (for shipping to spawned workers)."""
    inj = active()
    return None if inj is None else inj.plan.render()


def fire(site: str, *, worker: int | None = None):
    """Fire ``site`` against the active injector (no-op when inactive)."""
    inj = active()
    return None if inj is None else inj.fire(site, worker=worker)
