"""Optimal matrix-chain parenthesization as a graph pass (Experiment 2).

The paper shows neither framework reassociates matrix chains: an
unparenthesized ``H.T @ H @ x`` evaluates left-to-right at O(n³) even
though right-to-left is O(n²).  This opt-in pass is the fix: it flattens
maximal ``matmul`` trees into chains — distributing transposes over
absorbed products, ``(XY)ᵀ = YᵀXᵀ`` — runs the classical DP, and rebuilds
the tree in the optimal association whenever that strictly lowers FLOPs.

Sharing is respected: a product consumed by more than one node (or exported
as a graph output) is treated as a chain *leaf*, never re-associated away,
so CSE gains are preserved.
"""

from __future__ import annotations

from ..chain.dp import optimal_parenthesization
from ..ir import builder
from ..ir.graph import Graph
from ..ir.node import Node
from .base import GraphPass

#: (node, transposed?) — a chain leaf with its pending transpose flag.
Leaf = tuple[Node, bool]


def _leaf_shape(leaf: Leaf) -> tuple[int, int]:
    node, trans = leaf
    return (node.shape[1], node.shape[0]) if trans else node.shape


class ChainReordering(GraphPass):
    """Re-associate matmul chains to the DP-optimal parenthesization."""

    name = "chain_reorder"

    def apply(self, graph: Graph) -> Graph:
        graph = self.transform_loop_bodies(graph)
        consumers = graph.consumers()
        out_ids = {id(o) for o in graph.outputs}
        # A matmul is absorbable into its consumer's chain only if it has a
        # single consumer, is not a graph output, and carries no kernel hint.
        barriers = {
            nid
            for nid, cons in consumers.items()
            if len(cons) > 1
        } | out_ids

        memo: dict[int, Node] = {}

        def absorbable(node: Node, at_root: bool) -> bool:
            if node.op != "matmul" or node.attrs.get("kernel"):
                return False
            if at_root:
                return True
            return id(node) not in barriers

        def flatten(node: Node, trans: bool, at_root: bool) -> list[Leaf]:
            # Look through explicit transpose nodes (not yet fused into
            # flags): (XY)ᵀ flattens as the reversed, flag-flipped chain.
            if node.op == "transpose" and id(node) not in barriers:
                return flatten(node.inputs[0], not trans, False)
            if not absorbable(node, at_root):
                return [(node, trans)]
            a, b = node.inputs
            ta = bool(node.attrs.get("trans_a"))
            tb = bool(node.attrs.get("trans_b"))
            if not trans:
                return flatten(a, ta, False) + flatten(b, tb, False)
            # (A B)ᵀ = Bᵀ Aᵀ — reverse the chain, flip the flags.
            return flatten(b, not tb, False) + flatten(a, not ta, False)

        def current_flops(node: Node, at_root: bool) -> int:
            """FLOPs of the existing association of this chain tree."""
            if node.op == "transpose" and id(node) not in barriers:
                return current_flops(node.inputs[0], False)
            if not absorbable(node, at_root):
                return 0
            a, b = node.inputs
            sa = tuple(reversed(a.shape)) if node.attrs.get("trans_a") else a.shape
            sb = tuple(reversed(b.shape)) if node.attrs.get("trans_b") else b.shape
            own = 2 * sa[0] * sa[1] * sb[1]
            return own + current_flops(a, False) + current_flops(b, False)

        def transform(node: Node) -> Node:
            if id(node) in memo:
                return memo[id(node)]
            result = self._transform_node(node, transform, flatten, current_flops)
            memo[id(node)] = result
            return result

        new_outputs = [transform(o) for o in graph.outputs]
        # Input nodes are never rewritten by `transform`, so the original
        # positional input order carries over verbatim.
        return Graph(new_outputs, inputs=graph.inputs)

    def _transform_node(self, node, transform, flatten, current_flops) -> Node:
        is_chain_root = node.op == "matmul" and not node.attrs.get("kernel")
        if not is_chain_root:
            new_inputs = tuple(transform(i) for i in node.inputs)
            if all(a is b for a, b in zip(new_inputs, node.inputs)):
                return node
            return self.rebuild(node, new_inputs)

        leaves = flatten(node, False, True)
        if len(leaves) < 3:
            new_inputs = tuple(transform(i) for i in node.inputs)
            if all(a is b for a, b in zip(new_inputs, node.inputs)):
                return node
            return self.rebuild(node, new_inputs)

        shapes = [_leaf_shape(lf) for lf in leaves]
        solution = optimal_parenthesization(shapes)

        # Gram-chain recognition: a palindromic chain x₀…x_{m-1} with
        # x_i = x_{m-1-i}ᵀ is SᵀS for S = the right half — one shared
        # product instead of two (the CSE opportunity the paper's
        # Experiment 1 shows the frameworks missing for (AᵀB)ᵀAᵀB).
        gram = self._try_gram_chain(leaves, transform, solution.flops,
                                    current_flops(node, True))
        if gram is not None:
            return gram

        if solution.flops >= current_flops(node, True):
            new_inputs = tuple(transform(i) for i in node.inputs)
            if all(a is b for a, b in zip(new_inputs, node.inputs)):
                return node
            return self.rebuild(node, new_inputs)

        self._count()
        new_leaves: list[Leaf] = [(transform(lf[0]), lf[1]) for lf in leaves]

        def build(tree: object) -> Leaf:
            if isinstance(tree, int):
                return new_leaves[tree]
            (ln, lt) = build(tree[0])
            (rn, rt) = build(tree[1])
            return (builder.matmul(ln, rn, trans_a=lt, trans_b=rt), False)

        root, root_trans = build(solution.tree)
        if root_trans:  # pragma: no cover - roots are products, never leaves here
            root = builder.transpose(root)
        return root

    def _try_gram_chain(self, leaves, transform, dp_flops, cur_flops):
        """Rebuild a palindromic chain as SᵀS; None when not applicable."""
        m = len(leaves)
        if m % 2 != 0:
            return None
        for i in range(m // 2):
            node_l, trans_l = leaves[i]
            node_r, trans_r = leaves[m - 1 - i]
            if node_l is not node_r or trans_l == trans_r:
                return None
        half = leaves[m // 2 :]
        half_shapes = [_leaf_shape(lf) for lf in half]
        half_solution = optimal_parenthesization(half_shapes)
        p = half_shapes[0][0]  # S is p×q; SᵀS costs 2pq²
        q = half_shapes[-1][1]
        gram_flops = half_solution.flops + 2 * p * q * q
        if gram_flops >= min(dp_flops, cur_flops):
            return None
        self._count()
        new_half: list[Leaf] = [(transform(lf[0]), lf[1]) for lf in half]

        def build(tree: object) -> Leaf:
            if isinstance(tree, int):
                return new_half[tree]
            (ln, lt) = build(tree[0])
            (rn, rt) = build(tree[1])
            return (builder.matmul(ln, rn, trans_a=lt, trans_b=rt), False)

        s_node, s_trans = build(half_solution.tree)
        if s_trans:  # pragma: no cover - halves of length >= 1 end as products
            s_node = builder.transpose(s_node)
        # result = (half)ᵀ · half = SᵀS
        return builder.matmul(s_node, s_node, trans_a=True)
