"""Keyed single-flight: concurrent callers of one key build once.

The pattern behind both plan compilation (:meth:`PlanCache.get_with_info`)
and concrete tracing (:meth:`repro.api.Compiled._concrete_in`): under a
caller-supplied lock, a *probe* checks for an existing value; the first
thread to miss becomes the leader and runs the expensive *build* outside
the lock while later callers wait on a per-key event; the leader then
*publishes* under the lock and wakes the waiters, who re-probe.  A leader
that raises wakes the waiters too — they re-elect a new leader instead of
deadlocking.

Centralizing this here keeps exactly one audited implementation of the
subtle parts (identity-checked cleanup, failure wake-up, waiter
re-election) instead of hand-rolled copies drifting apart.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from typing import TypeVar

T = TypeVar("T")


class SingleFlight:
    """Leader/waiter election around an expensive keyed build.

    Shares the *caller's* lock so the ``probe``/``on_leader``/``publish``
    callbacks can touch caller state (LRU order, counters, tables) in the
    same critical section as the election — no lock-ordering hazards.
    """

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._inflight: dict[object, threading.Event] = {}

    def run(
        self,
        key: object,
        probe: Callable[[], T | None],
        build: Callable[[], T],
        publish: Callable[[T], None] | None = None,
        on_leader: Callable[[], None] | None = None,
    ) -> tuple[T, bool]:
        """``(value, built_here)`` — builds at most once per key at a time.

        ``probe`` (under the lock) returns the existing value or ``None``;
        ``on_leader`` (under the lock) runs once when this call wins the
        election; ``build`` runs *outside* the lock; ``publish`` (under
        the lock) stores the result.  Only the leader gets ``True``.
        """
        while True:
            with self._lock:
                found = probe()
                if found is not None:
                    return found, False
                done = self._inflight.get(key)
                if done is None:
                    done = self._inflight[key] = threading.Event()
                    if on_leader is not None:
                        on_leader()
                    break
            # Another thread is building this key; wait, then re-probe
            # (re-electing a leader if that thread failed).
            done.wait()
        try:
            result = build()
        except BaseException:
            with self._lock:
                # Identity check: abandon_all_locked() may have replaced
                # or removed the entry meanwhile.
                if self._inflight.get(key) is done:
                    del self._inflight[key]
            done.set()
            raise
        with self._lock:
            if publish is not None:
                publish(result)
            if self._inflight.get(key) is done:
                del self._inflight[key]
        done.set()
        return result, True

    def abandon_all_locked(self) -> None:
        """Wake every waiter and forget all in-flight builds.

        Must be called with the shared lock *held* (e.g. from a cache
        ``clear()``).  Waiters re-probe and re-elect; the abandoned
        leaders' identity-checked cleanup tolerates the removal.
        """
        for event in self._inflight.values():
            event.set()
        self._inflight.clear()
