"""The scripted recovery drill (:mod:`repro.chaos`) and its CLI.

One :func:`chaos_run` covers every recovery path end to end — worker
crash, SIGTERM-ignoring hang (kill escalation), garbled wave reply,
in-worker exception, serve-dispatch failure, torn store artifact,
mid-run inline fallback and a mid-compile fault during autotune
candidate generation — asserting bit-correct answers or typed errors,
exact health counters, and zero leaked processes or shared-memory
segments.

The CI matrix runs this file twice: natively (fork where available) and
with ``REPRO_CHAOS_START_METHOD=spawn``, because hang detection and
respawn cross the start-method boundary (spawned workers receive the
fault plan re-rendered as a string instead of inheriting it).
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro import faults
from repro.chaos import ChaosPhase, ChaosReport, chaos_run
from repro.experiments.cli import main as cli_main

#: The CI spawn leg exports REPRO_CHAOS_START_METHOD=spawn; unset, the
#: drill picks fork where available.
START_METHOD = os.environ.get("REPRO_CHAOS_START_METHOD") or None

if START_METHOD is not None and \
        START_METHOD not in multiprocessing.get_all_start_methods():
    pytest.skip(
        f"start method {START_METHOD!r} unavailable on this platform",
        allow_module_level=True,
    )


@pytest.fixture(autouse=True)
def clean_registry():
    faults.clear()
    yield
    faults.clear()


class TestChaosRun:
    def test_every_phase_passes(self):
        report = chaos_run(
            shards=2, feeds=4, wave_deadline=0.5, hang_seconds=10.0,
            start_method=START_METHOD,
        )
        assert report.ok, report.render()
        names = [p.name for p in report.phases]
        assert names == ["clean", "crash", "hang", "protocol",
                         "exec-error", "serve", "store", "fallback",
                         "autotune"]
        by_name = {p.name: p for p in report.phases}
        # Exact recovery accounting, not just "it passed".
        assert by_name["clean"].respawns == 0
        assert by_name["crash"].respawns == 1
        assert by_name["crash"].waves_replayed == 1
        assert by_name["hang"].hangs == 1
        assert by_name["hang"].respawns == 1
        assert by_name["protocol"].waves_replayed == 1
        # The fault registry never leaks past the drill.
        assert faults.active() is None

    def test_feeds_must_divide_over_shards(self):
        with pytest.raises(ValueError, match="divisible"):
            chaos_run(shards=2, feeds=5)

    def test_chunk_must_fit_one_ring_wave(self):
        with pytest.raises(ValueError, match="ring"):
            chaos_run(shards=1, feeds=8, ring_slots=4)

    def test_render_reports_failures(self):
        report = ChaosReport(
            phases=[
                ChaosPhase("clean", True, "fine", respawns=1),
                ChaosPhase("hang", False, "worker leaked"),
            ],
            shards=2, feeds=8, start_method="fork",
        )
        assert not report.ok
        text = report.render()
        assert "PASS  clean" in text
        assert "FAIL  hang" in text
        assert "worker leaked" in text
        assert "respawns=1" in text
        assert "1/2 phase(s) passed" in text
        assert "FAULTS SURVIVED" in text


class TestChaosCLI:
    def test_cli_exit_zero_on_all_pass(self, capsys):
        argv = ["chaos", "--shards", "2", "--feeds", "4",
                "--wave-deadline", "0.5"]
        if START_METHOD is not None:
            argv += ["--start-method", START_METHOD]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "chaos drill" in out
        assert "no lost or wrong answers" in out
