"""Tests for structured-matrix kernels and LAPACK wrappers."""

import numpy as np
import pytest

from repro.errors import KernelError, ShapeError
from repro.kernels import lapack, special


def _mat(rng, m, n, dtype=np.float32):
    return (rng.random((m, n)) - 0.5).astype(dtype)


class TestTridiagonal:
    def _tridiag(self, rng, n):
        dl = (rng.random(n - 1) - 0.5).astype(np.float32)
        d = (rng.random(n) - 0.5).astype(np.float32)
        du = (rng.random(n - 1) - 0.5).astype(np.float32)
        return dl, d, du

    def test_from_bands_roundtrip(self, rng):
        dl, d, du = self._tridiag(rng, 9)
        t = special.tridiag_from_bands(dl, d, du)
        dl2, d2, du2 = special.bands_from_tridiag(t)
        assert np.allclose(dl, dl2) and np.allclose(d, d2) and np.allclose(du, du2)

    def test_from_bands_structure(self, rng):
        dl, d, du = self._tridiag(rng, 7)
        t = special.tridiag_from_bands(dl, d, du)
        band = np.tril(np.triu(t, -1), 1)
        assert np.allclose(t, band)

    def test_matmul_dense_input(self, rng):
        dl, d, du = self._tridiag(rng, 12)
        t = special.tridiag_from_bands(dl, d, du)
        b = _mat(rng, 12, 8)
        assert np.allclose(special.tridiagonal_matmul(t, b), t @ b, atol=1e-5)

    def test_matmul_band_input(self, rng):
        dl, d, du = self._tridiag(rng, 12)
        t = special.tridiag_from_bands(dl, d, du)
        b = _mat(rng, 12, 8)
        out = special.tridiagonal_matmul((dl, d, du), b)
        assert np.allclose(out, t @ b, atol=1e-5)

    def test_scal_loop_matches_vectorized(self, rng):
        dl, d, du = self._tridiag(rng, 15)
        t = special.tridiag_from_bands(dl, d, du)
        b = _mat(rng, 15, 6)
        assert np.allclose(
            special.tridiagonal_matmul_scal_loop(t, b),
            special.tridiagonal_matmul(t, b),
            atol=1e-5,
        )

    def test_matmul_n2_case(self, rng):
        """n = 2 has empty-ish bands on one side after slicing."""
        dl, d, du = self._tridiag(rng, 2)
        t = special.tridiag_from_bands(dl, d, du)
        b = _mat(rng, 2, 3)
        assert np.allclose(special.tridiagonal_matmul(t, b), t @ b, atol=1e-6)

    def test_band_length_mismatch(self, rng):
        with pytest.raises(ShapeError):
            special.tridiag_from_bands(np.ones(3), np.ones(3), np.ones(2))

    def test_shape_mismatch(self, rng):
        t = special.tridiag_from_bands(np.ones(4), np.ones(5), np.ones(4))
        with pytest.raises(ShapeError):
            special.tridiagonal_matmul(t, _mat(rng, 6, 2))


class TestDiagonal:
    def test_matmul_vector_diag(self, rng):
        d = (rng.random(10) - 0.5).astype(np.float32)
        b = _mat(rng, 10, 7)
        assert np.allclose(special.diag_matmul(d, b), np.diag(d) @ b, atol=1e-6)

    def test_matmul_dense_diag(self, rng):
        d = np.diag((rng.random(10) - 0.5).astype(np.float32))
        b = _mat(rng, 10, 7)
        assert np.allclose(special.diag_matmul(d, b), d @ b, atol=1e-6)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            special.diag_matmul(np.ones(4, dtype=np.float32), _mat(rng, 5, 2))


class TestBlockDiag:
    def test_two_blocks(self, rng):
        a1, a2 = _mat(rng, 6, 6), _mat(rng, 6, 6)
        b = _mat(rng, 12, 5)
        big = np.zeros((12, 12), dtype=np.float32)
        big[:6, :6], big[6:, 6:] = a1, a2
        assert np.allclose(
            special.block_diag_matmul([a1, a2], b), big @ b, atol=1e-5
        )

    def test_unequal_blocks(self, rng):
        a1, a2, a3 = _mat(rng, 3, 3), _mat(rng, 5, 5), _mat(rng, 2, 2)
        b = _mat(rng, 10, 4)
        big = np.zeros((10, 10), dtype=np.float32)
        big[:3, :3], big[3:8, 3:8], big[8:, 8:] = a1, a2, a3
        assert np.allclose(
            special.block_diag_matmul([a1, a2, a3], b), big @ b, atol=1e-5
        )

    def test_empty_blocks_rejected(self, rng):
        with pytest.raises(ShapeError):
            special.block_diag_matmul([], _mat(rng, 4, 4))

    def test_row_count_mismatch(self, rng):
        with pytest.raises(ShapeError):
            special.block_diag_matmul([_mat(rng, 3, 3)], _mat(rng, 4, 4))

    def test_nonsquare_block_rejected(self, rng):
        with pytest.raises(ShapeError):
            special.block_diag_matmul([_mat(rng, 3, 4)], _mat(rng, 3, 4))


class TestLapack:
    def _spd(self, rng, n, dtype=np.float32):
        a = (rng.random((n, n)) - 0.5).astype(np.float64)
        return (a @ a.T + n * np.eye(n)).astype(dtype)

    def test_potrf_lower(self, rng):
        a = self._spd(rng, 8)
        c = lapack.potrf(a, lower=True)
        assert np.allclose(c @ c.T, a, rtol=1e-3, atol=1e-3)
        assert np.allclose(c, np.tril(c))

    def test_potrf_upper(self, rng):
        a = self._spd(rng, 8)
        c = lapack.potrf(a, lower=False)
        assert np.allclose(c.T @ c, a, rtol=1e-3, atol=1e-3)

    def test_potrf_rejects_indefinite(self, rng):
        a = np.eye(5, dtype=np.float32)
        a[3, 3] = -1.0
        with pytest.raises(KernelError):
            lapack.potrf(a)

    def test_cholesky_solve(self, rng):
        a = self._spd(rng, 12, np.float64)
        b = rng.random(12)
        x = lapack.cholesky_solve(a, b)
        assert np.allclose(a @ x, b, atol=1e-8)

    def test_cholesky_solve_multiple_rhs(self, rng):
        a = self._spd(rng, 10, np.float64)
        b = rng.random((10, 3))
        x = lapack.cholesky_solve(a, b)
        assert x.shape == (10, 3)
        assert np.allclose(a @ x, b, atol=1e-8)

    def test_lu_solve(self, rng):
        a = (rng.random((9, 9)) + 2 * np.eye(9)).astype(np.float64)
        b = rng.random(9)
        x = lapack.lu_solve(a, b)
        assert np.allclose(a @ x, b, atol=1e-8)

    def test_lu_solve_matches_numpy(self, rng):
        a = (rng.random((7, 7)) + 2 * np.eye(7)).astype(np.float64)
        b = rng.random(7)
        assert np.allclose(lapack.lu_solve(a, b), np.linalg.solve(a, b), atol=1e-8)

    def test_getrf_singular_detected(self):
        with pytest.raises(KernelError):
            lapack.getrf(np.zeros((4, 4), dtype=np.float64))

    def test_shape_mismatch(self, rng):
        a = self._spd(rng, 6, np.float64)
        with pytest.raises(ShapeError):
            lapack.cholesky_solve(a, rng.random(7))


class TestBandViews:
    """Zero-copy band extraction and the destination-aware specials."""

    def _t(self, rng, n=9):
        dl = (rng.random(n - 1) - 0.5).astype(np.float32)
        d = (rng.random(n) - 0.5).astype(np.float32)
        du = (rng.random(n - 1) - 0.5).astype(np.float32)
        return special.tridiag_from_bands(dl, d, du)

    @pytest.mark.parametrize("order", ["C", "F"])
    def test_views_match_diagonals_without_copying(self, rng, order):
        t = np.asarray(self._t(rng), order=order)
        dl, d, du = special.tridiag_band_views(t)
        assert np.array_equal(dl, np.diag(t, -1))
        assert np.array_equal(d, np.diag(t))
        assert np.array_equal(du, np.diag(t, 1))
        for band in (dl, d, du):
            assert np.shares_memory(band, t)

    def test_non_contiguous_returns_none_and_gather_works(self, rng):
        big = np.zeros((14, 14), dtype=np.float32)
        t = self._t(rng, 7)
        big[:7, :7] = t
        view = big[:7, :7]  # row-sliced: neither C- nor F-contiguous
        assert not view.flags.c_contiguous and not view.flags.f_contiguous
        assert special.tridiag_band_views(view) is None
        dl, d, du = special.bands_from_tridiag(view)
        assert np.array_equal(d, np.diag(t))
        assert np.array_equal(dl, np.diag(t, -1))

    def test_bands_from_tridiag_returns_owned_copies(self, rng):
        t = self._t(rng)
        dl, d, du = special.bands_from_tridiag(t)
        d[0] = 999.0
        assert t[0, 0] != 999.0

    def test_bands_from_tridiag_out(self, rng):
        t = self._t(rng)
        out = (np.empty(8, np.float32), np.empty(9, np.float32),
               np.empty(8, np.float32))
        assert special.bands_from_tridiag(t, out=out) is out
        assert np.array_equal(out[1], np.diag(t))
        with pytest.raises(ShapeError):
            special.bands_from_tridiag(
                t, out=(np.empty(3, np.float32),) * 3)

    def test_tridiagonal_matmul_out_bit_identical(self, rng):
        t = self._t(rng)
        b = _mat(rng, 9, 5)
        ref = special.tridiagonal_matmul(t, b)
        out = np.empty((9, 5), dtype=b.dtype, order="F")
        scratch = np.empty((9, 5), dtype=b.dtype, order="F")
        assert special.tridiagonal_matmul(t, b, out=out,
                                          scratch=scratch) is out
        assert out.tobytes() == ref.tobytes()
        # scratch is optional (allocated internally when omitted)
        out2 = np.empty((9, 5), dtype=b.dtype)
        special.tridiagonal_matmul(t, b, out=out2)
        assert out2.tobytes() == ref.tobytes()
        with pytest.raises(ShapeError):
            special.tridiagonal_matmul(t, b, out=np.empty((3, 3), b.dtype))

    def test_tridiagonal_matmul_out_one_by_one(self, rng):
        t = np.array([[3.0]], dtype=np.float32)
        b = np.array([[2.0, -1.0]], dtype=np.float32)
        out = np.empty((1, 2), dtype=np.float32)
        special.tridiagonal_matmul(t, b, out=out)
        assert np.array_equal(out, [[6.0, -3.0]])

    def test_diag_matmul_out_bit_identical(self, rng):
        d = np.diag((rng.random(8) - 0.5).astype(np.float32))
        b = _mat(rng, 8, 6)
        ref = special.diag_matmul(d, b)
        out = np.empty((8, 6), dtype=b.dtype, order="F")
        assert special.diag_matmul(d, b, out=out) is out
        assert out.tobytes() == ref.tobytes()
        with pytest.raises(ShapeError):
            special.diag_matmul(d, b, out=np.empty((2, 2), b.dtype))
