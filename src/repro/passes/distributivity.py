"""Cost-guided distributivity rewrites (the fix for Experiment 4).

Two directions, mirroring the paper's Eq. 9 and Eq. 10:

* **Factoring** — ``A@B + A@C → A@(B+C)`` (and the common-right-factor
  twin).  Removes a whole GEMM; essentially always profitable.
* **Expansion** — ``(X ± Y)@v → X@v ± Y@v``.  Profitable only in context:
  it pays off when it unlocks a cheaper chain association (Eq. 10's
  ``(A − HᵀH)x → Ax − Hᵀ(Hx)``), and *loses* when the operands are plain
  inputs.  The pass therefore evaluates both shapes of each candidate under
  the chain-reordering normalizer and keeps whichever has fewer FLOPs —
  precisely the derivation-graph reasoning (Linnea) the paper recommends,
  restricted to one rule application per node.
"""

from __future__ import annotations

from ..ir import builder
from ..ir.graph import Graph
from ..ir.node import Node
from .base import GraphPass
from .estimate import subtree_flops


def _normalized_cost(node: Node) -> int:
    """FLOPs of the sub-DAG after chain re-association (lazy import to
    avoid a module cycle with chain_reorder)."""
    from .chain_reorder import ChainReordering

    optimized = ChainReordering().apply(Graph([node]))
    return subtree_flops(optimized.outputs[0])


class DistributivityRewrite(GraphPass):
    """Apply distributive-law rewrites wherever they reduce modelled FLOPs."""

    name = "distributivity"

    def apply(self, graph: Graph) -> Graph:
        graph = self.transform_loop_bodies(graph)
        out_ids = {id(o) for o in graph.outputs}
        del out_ids  # sharing handled by cost model (subtree counted once)

        def try_factor(node: Node, new_inputs: tuple[Node, ...]) -> Node | None:
            """add/sub of two matmuls with a common factor."""
            lhs, rhs = new_inputs
            if lhs.op != "matmul" or rhs.op != "matmul":
                return None
            if lhs.attrs.get("kernel") or rhs.attrs.get("kernel"):
                return None
            a1, b1 = lhs.inputs
            a2, b2 = rhs.inputs
            ta1, tb1 = bool(lhs.attrs.get("trans_a")), bool(lhs.attrs.get("trans_b"))
            ta2, tb2 = bool(rhs.attrs.get("trans_a")), bool(rhs.attrs.get("trans_b"))
            combine = builder.add if node.op == "add" else builder.sub
            if a1 is a2 and ta1 == ta2 and tb1 == tb2:
                candidate = builder.matmul(
                    a1, combine(b1, b2), trans_a=ta1, trans_b=tb1
                )
            elif b1 is b2 and tb1 == tb2 and ta1 == ta2:
                candidate = builder.matmul(
                    combine(a1, a2), b1, trans_a=ta1, trans_b=tb1
                )
            else:
                return None
            current = self.rebuild(node, new_inputs)
            if _normalized_cost(candidate) < _normalized_cost(current):
                self._count()
                return candidate
            return None

        def try_expand(node: Node, new_inputs: tuple[Node, ...]) -> Node | None:
            """matmul over an add/sub operand."""
            a, b = new_inputs
            ta, tb = bool(node.attrs.get("trans_a")), bool(node.attrs.get("trans_b"))
            candidate = None
            if a.op in ("add", "sub"):
                x, y = a.inputs
                comb = builder.add if a.op == "add" else builder.sub
                candidate = comb(
                    builder.matmul(x, b, trans_a=ta, trans_b=tb),
                    builder.matmul(y, b, trans_a=ta, trans_b=tb),
                )
            elif b.op in ("add", "sub"):
                x, y = b.inputs
                comb = builder.add if b.op == "add" else builder.sub
                candidate = comb(
                    builder.matmul(a, x, trans_a=ta, trans_b=tb),
                    builder.matmul(a, y, trans_a=ta, trans_b=tb),
                )
            if candidate is None:
                return None
            current = self.rebuild(node, new_inputs)
            if _normalized_cost(candidate) < _normalized_cost(current):
                self._count()
                return candidate
            return None

        def fn(node: Node, new_inputs: tuple[Node, ...]) -> Node | None:
            if node.op in ("add", "sub"):
                return try_factor(node, new_inputs)
            if node.op == "matmul" and not node.attrs.get("kernel"):
                return try_expand(node, new_inputs)
            return None

        # Iterate to a fixpoint: an expansion can expose a factoring
        # opportunity one level up and vice versa.
        prev = -1
        while self.last_stats.rewrites != prev:
            prev = self.last_stats.rewrites
            graph = graph.rewrite(fn)
        return graph
