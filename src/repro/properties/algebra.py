"""Transfer functions: how matrix properties flow through operations.

Each function takes operand :class:`~repro.tensor.properties.Property` sets
(already closed under implication) and returns the closed property set of
the result.  The rules are deliberately *sound but incomplete* — they only
assert properties that always hold; anything uncertain degrades to
``GENERAL``.

These rules power both the eager :class:`~repro.tensor.tensor.Tensor`
bookkeeping and the IR dataflow in :mod:`repro.properties.inference`, which
in turn feeds the property-aware kernel dispatcher (the optimization the
paper finds missing from TF/PyT in Experiment 3) and algebraic
simplifications such as ``QᵀQ → I`` for orthogonal ``Q`` (Sec. III-C
discussion).
"""

from __future__ import annotations

from ..tensor.properties import Property, PropertySet, closure

_EMPTY: PropertySet = frozenset({Property.GENERAL})


def _base(*props: Property) -> PropertySet:
    return closure({Property.GENERAL, *props})


def transpose_props(p: PropertySet) -> PropertySet:
    """Properties of ``Aᵀ`` given properties of ``A``.

    Lower and upper triangular swap; symmetric/diagonal/tridiagonal/
    orthogonal/identity/zero are preserved.
    """
    out: set[Property] = {Property.GENERAL}
    swap = {
        Property.LOWER_TRIANGULAR: Property.UPPER_TRIANGULAR,
        Property.UPPER_TRIANGULAR: Property.LOWER_TRIANGULAR,
    }
    keep = {
        Property.SQUARE,
        Property.VECTOR,
        Property.SCALAR,
        Property.SYMMETRIC,
        Property.SPD,
        Property.DIAGONAL,
        Property.TRIDIAGONAL,
        Property.ORTHOGONAL,
        Property.IDENTITY,
        Property.ZERO,
        Property.BLOCK_DIAGONAL,
        Property.UNIT_DIAGONAL,
    }
    for prop in p:
        if prop in swap:
            out.add(swap[prop])
        elif prop in keep:
            out.add(prop)
    return closure(out)


def matmul_props(
    pa: PropertySet,
    pb: PropertySet,
    *,
    b_is_a_transposed: bool = False,
    square_result: bool = False,
) -> PropertySet:
    """Properties of ``A @ B``.

    Key rules (all standard):

    * ``zero @ X = zero`` and ``X @ zero = zero``;
    * ``identity @ X = X``'s properties (and symmetrically);
    * diagonal·diagonal = diagonal; lower·lower = lower; upper·upper = upper;
    * orthogonal·orthogonal = orthogonal;
    * ``A @ Aᵀ`` is symmetric (SPD if A is square nonsingular — we only
      claim symmetric, staying sound);
    * ``Qᵀ Q = identity`` for orthogonal ``Q`` — claimed only when the
      caller signals ``b_is_a_transposed`` (structural knowledge the graph
      has, the data alone does not).
    """
    out: set[Property] = {Property.GENERAL}
    if Property.ZERO in pa or Property.ZERO in pb:
        out.add(Property.ZERO)
        if square_result:
            out.add(Property.SQUARE)
        return closure(out)
    if Property.IDENTITY in pa:
        return closure(set(pb) | {Property.GENERAL})
    if Property.IDENTITY in pb:
        return closure(set(pa) | {Property.GENERAL})
    if b_is_a_transposed:
        # A @ Aᵀ (or Aᵀ @ A): always symmetric, in fact PSD; orthogonal A
        # makes it the identity.
        if Property.ORTHOGONAL in pa:
            out.add(Property.IDENTITY)
        out.add(Property.SYMMETRIC)
    if Property.DIAGONAL in pa and Property.DIAGONAL in pb:
        out.add(Property.DIAGONAL)
    if Property.LOWER_TRIANGULAR in pa and Property.LOWER_TRIANGULAR in pb:
        out.add(Property.LOWER_TRIANGULAR)
    if Property.UPPER_TRIANGULAR in pa and Property.UPPER_TRIANGULAR in pb:
        out.add(Property.UPPER_TRIANGULAR)
    if Property.ORTHOGONAL in pa and Property.ORTHOGONAL in pb:
        out.add(Property.ORTHOGONAL)
    if square_result:
        out.add(Property.SQUARE)
    return closure(out)


def add_props(pa: PropertySet, pb: PropertySet, *, negate_b: bool = False) -> PropertySet:
    """Properties of ``A + B`` (or ``A - B`` with ``negate_b``).

    Structural zero patterns are closed under addition: diagonal+diagonal,
    triangular+triangular (same side), tridiagonal+tridiagonal, symmetric+
    symmetric.  ``X + zero`` keeps X's structure.  SPD survives addition of
    SPD (and subtraction does not).
    """
    if Property.ZERO in pa and Property.ZERO in pb:
        return _base(Property.ZERO, Property.SQUARE) if Property.SQUARE in pa else _base(Property.ZERO)
    if Property.ZERO in pa:
        base = set(pb) - ({Property.SPD} if negate_b else set())
        return closure(base | {Property.GENERAL})
    if Property.ZERO in pb:
        return closure(set(pa) | {Property.GENERAL})
    out: set[Property] = {Property.GENERAL}
    closed_under_add = (
        Property.SQUARE,
        Property.VECTOR,
        Property.SCALAR,
        Property.DIAGONAL,
        Property.TRIDIAGONAL,
        Property.LOWER_TRIANGULAR,
        Property.UPPER_TRIANGULAR,
        Property.SYMMETRIC,
    )
    for prop in closed_under_add:
        if prop in pa and prop in pb:
            out.add(prop)
    if not negate_b and Property.SPD in pa and Property.SPD in pb:
        out.add(Property.SPD)
    return closure(out)


def scale_props(p: PropertySet, alpha: float) -> PropertySet:
    """Properties of ``alpha * A``.

    Zero scaling produces a zero matrix; otherwise structural zero patterns
    and symmetry survive, SPD survives positive scaling, identity and
    orthogonality generally do not (except the trivial alpha == 1).
    """
    if alpha == 0.0:
        keep_shape = {p_ for p_ in p if p_ in (Property.SQUARE, Property.VECTOR, Property.SCALAR)}
        return closure({Property.GENERAL, Property.ZERO, *keep_shape})
    if alpha == 1.0:
        return closure(set(p) | {Property.GENERAL})
    out: set[Property] = {Property.GENERAL}
    keep = (
        Property.SQUARE,
        Property.VECTOR,
        Property.SCALAR,
        Property.DIAGONAL,
        Property.TRIDIAGONAL,
        Property.LOWER_TRIANGULAR,
        Property.UPPER_TRIANGULAR,
        Property.SYMMETRIC,
        Property.ZERO,
        Property.BLOCK_DIAGONAL,
    )
    for prop in p:
        if prop in keep:
            out.add(prop)
    if alpha > 0 and Property.SPD in p:
        out.add(Property.SPD)
    return closure(out)


def negate_props(p: PropertySet) -> PropertySet:
    """Properties of ``-A`` — scaling by -1."""
    return scale_props(p, -1.0)


def slice_props(p: PropertySet, rows: int, cols: int) -> PropertySet:
    """Properties of a rectangular slice: only shape facts survive."""
    out: set[Property] = {Property.GENERAL}
    if rows == cols:
        out.add(Property.SQUARE)
    if rows == 1 or cols == 1:
        out.add(Property.VECTOR)
    if rows == 1 and cols == 1:
        out.add(Property.SCALAR)
    if Property.ZERO in p:
        out.add(Property.ZERO)
    return closure(out)
