"""Runtime benchmark: compiled plans vs the reference interpreter.

Demonstrates the tentpole claim — compile-once/execute-many beats
re-interpreting the graph per call — and records the numbers to
``BENCH_runtime.json`` at the repo root (plan-compile time, cached-exec
time, interpreter-exec time, batch throughput), which the CI benchmarks
job uploads as an artifact.

The workload is deliberately dispatch-bound (many small kernels on small
operands): that is the regime where per-call graph walking, liveness
rebuilding and kernel re-selection dominate, i.e. exactly the overhead a
plan removes.  Kernel-bound workloads converge to the same BLAS time in
both paths.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.bench.timing import measure
from repro.ir import Interpreter, trace
from repro.passes import default_pipeline
from repro.runtime import PlanCache, compile_plan, execute_batch
from repro.tensor import random_general

REPS = 50
ROOT = pathlib.Path(__file__).resolve().parent.parent


def _dispatch_bound_graph():
    """~50 tiny ops: a chain of products and sums on 16x16 operands."""

    def fn(a, b, c):
        acc = a
        for _ in range(12):
            acc = (acc @ b + c - a) @ a.T
        return acc + acc.T

    args = [random_general(16, seed=s) for s in (1, 2, 3)]
    graph = default_pipeline().run(trace(fn, args))
    return graph, [t.data for t in args]


@pytest.fixture(scope="module")
def workload():
    return _dispatch_bound_graph()


@pytest.fixture(scope="module")
def timings(workload):
    graph, feeds = workload
    interp = Interpreter(record=True)

    compile_time = measure(
        lambda: compile_plan(graph), label="plan-compile", repetitions=10
    )
    plan = compile_plan(graph)
    cache = PlanCache()
    cache.get(graph)  # warm
    cache_hit = measure(
        lambda: cache.get(graph), label="plan-cache-hit", repetitions=REPS
    )
    interp_exec = measure(
        lambda: interp.run(graph, feeds), label="interpreter-exec",
        repetitions=REPS,
    )
    plan_exec = measure(
        lambda: plan.execute(feeds), label="plan-exec", repetitions=REPS
    )
    serving_exec = measure(
        lambda: plan.execute(feeds, record=False), label="plan-exec-norecord",
        repetitions=REPS,
    )
    batch = measure(
        lambda: execute_batch(plan, [feeds] * 8, workers=4),
        label="batch-8x-4workers", repetitions=10,
    )
    return {
        "plan_compile_seconds": compile_time.best,
        "plan_cache_hit_seconds": cache_hit.best,
        "interpreter_exec_seconds": interp_exec.best,
        "plan_exec_seconds": plan_exec.best,
        "plan_exec_norecord_seconds": serving_exec.best,
        "batch_8_feeds_4_workers_seconds": batch.best,
    }


def test_cached_plan_beats_interpreter_and_records_json(timings, workload):
    graph, _ = workload
    speedup = (
        timings["interpreter_exec_seconds"] / timings["plan_exec_seconds"]
    )
    payload = {
        "workload": {
            "nodes": len(graph),
            "op_counts": graph.op_counts(),
            "operand_n": 16,
            "repetitions": REPS,
        },
        **timings,
        "plan_over_interpreter_speedup": speedup,
    }
    (ROOT / "BENCH_runtime.json").write_text(json.dumps(payload, indent=2))
    # The acceptance claim: repeated execution of a cached plan beats
    # re-running the reference interpreter on the same graph.
    assert timings["plan_exec_seconds"] < timings["interpreter_exec_seconds"]
    # A cache hit is far cheaper than recompiling.
    assert timings["plan_cache_hit_seconds"] < timings["plan_compile_seconds"]


@pytest.mark.benchmark(group="runtime-plans")
def test_interpreter_exec(benchmark, workload):
    graph, feeds = workload
    interp = Interpreter(record=True)
    benchmark(lambda: interp.run(graph, feeds))


@pytest.mark.benchmark(group="runtime-plans")
def test_plan_exec(benchmark, workload):
    graph, feeds = workload
    plan = compile_plan(graph)
    benchmark(lambda: plan.execute(feeds))


@pytest.mark.benchmark(group="runtime-plans")
def test_plan_exec_norecord(benchmark, workload):
    graph, feeds = workload
    plan = compile_plan(graph)
    benchmark(lambda: plan.execute(feeds, record=False))
