"""Shared measurement helpers for experiment modules.

Graph-mode timing runs through the :mod:`repro.api` layer: the function
under test is a :class:`~repro.api.Compiled` (``session.compile`` result
or a legacy decorator shim), and trace/optimize/plan-compile happens in
whatever session is ambient — the experiments CLI opens one per run so
cache stats are scoped and reportable.
"""

from __future__ import annotations

from collections.abc import Callable

from ..api import Compiled
from ..bench.timing import TimingSample, measure
from ..tensor.tensor import Tensor

#: Execution modes for graph-mode timing:
#: ``graph``       the decorator's call path (compiled plan + Tensor wrap),
#: ``runtime``     the bare cached plan over raw arrays, accounting off —
#:                 the leanest serving path,
#: ``interpreter`` the reference Interpreter (pre-runtime behaviour).
EXECUTION_MODES = ("graph", "runtime", "interpreter")


def time_compiled(
    fn: Compiled,
    args: list[Tensor],
    *,
    label: str,
    repetitions: int | None = None,
    mode: str = "graph",
) -> TimingSample:
    """Time a graph-mode function: trace/optimize/plan-compile first
    (untimed — the paper excludes decorator overheads), then measure
    steady-state calls in the chosen execution ``mode``.

    Raises :class:`ValueError` on an unknown ``mode``.
    """
    if mode not in EXECUTION_MODES:
        raise ValueError(
            f"unknown execution mode {mode!r}; expected one of {EXECUTION_MODES}"
        )
    concrete = fn.get_concrete(*args)
    if mode == "runtime":
        plan = concrete.plan
        feeds = [a.data for a in args]
        thunk = lambda: plan.execute(feeds, record=False)  # noqa: E731
    elif mode == "interpreter":
        thunk = lambda: fn.interpret(*args)  # noqa: E731
    else:
        thunk = lambda: fn(*args)  # noqa: E731
    return measure(thunk, label=label, repetitions=repetitions)


def time_eager(
    thunk: Callable[[], object],
    *,
    label: str,
    repetitions: int | None = None,
) -> TimingSample:
    """Time an eager expression (a closure over bound operands)."""
    return measure(thunk, label=label, repetitions=repetitions)
