"""Compiled execution runtime: plans, plan cache, batched execution.

The reference :class:`~repro.ir.interpreter.Interpreter` re-walks the
graph on *every* call — recomputing topological order and liveness and
re-selecting kernels per node.  That is exactly the per-dispatch overhead
the paper attributes to TF/PyTorch eager execution; graph mode only wins
when knowledge about the expression is compiled into the execution once.
This package is that compile-once / execute-many layer:

``signature``  Canonical structural key of a Graph (ops, shapes, dtypes,
               attrs, property annotations) — node-identity-free, so
               independently built but structurally identical graphs
               share one key.
``compiler``   ``compile_plan(graph)``: Graph → :class:`Plan` — a flat
               instruction list with the schedule, kernel selection,
               FLOP/report records and buffer liveness all resolved at
               compile time.
``plan``       The :class:`Plan` object and its executor.  Execution is
               output- and report-parity with the Interpreter (verified
               by ``tests/test_runtime_plans.py``).
``cache``      :class:`PlanCache` — signature-keyed LRU of compiled
               plans with hit/miss/eviction stats and single-flight
               concurrent compilation.  Caches are instance-scoped and
               owned by :class:`repro.api.Session`; the process-wide
               default instance survives as the default session's cache
               (reaching it via ``default_plan_cache`` is deprecated).
``batch``      One plan over many feed sets, sequentially or via a
               thread pool (BLAS kernels release the GIL).
"""

from .batch import BatchResult, execute_batch
from .cache import CacheStats, PlanCache, default_plan_cache
from .compiler import compile_plan
from .plan import Instruction, Plan
from .signature import graph_signature

__all__ = [
    "BatchResult",
    "CacheStats",
    "Instruction",
    "Plan",
    "PlanCache",
    "compile_plan",
    "default_plan_cache",
    "execute_batch",
    "graph_signature",
]
