"""Tests for the matrix-chain DP, enumeration, and evaluation."""

import numpy as np
import pytest

from repro.chain import (
    catalan,
    chain_cost,
    count_parenthesizations,
    enumerate_parenthesizations,
    evaluate_chain,
    optimal_parenthesization,
    parse_tree_flops,
)
from repro.chain.dp import chain_dims, left_to_right_tree, right_to_left_tree
from repro.errors import ChainError


class TestCatalan:
    def test_first_values(self):
        assert [catalan(i) for i in range(8)] == [1, 1, 2, 5, 14, 42, 132, 429]

    def test_count_matches_paper(self):
        # Paper Sec. III-B: length-m chain has C_{m-1} parenthesizations.
        assert count_parenthesizations(4) == 5  # Fig. 7
        assert count_parenthesizations(2) == 1
        assert count_parenthesizations(3) == 2

    def test_negative_rejected(self):
        with pytest.raises(ChainError):
            catalan(-1)


class TestChainDims:
    def test_valid(self):
        assert chain_dims([(3, 4), (4, 5), (5, 6)]) == (3, 4, 5, 6)

    def test_incompatible(self):
        with pytest.raises(ChainError):
            chain_dims([(3, 4), (5, 6)])

    def test_empty(self):
        with pytest.raises(ChainError):
            chain_dims([])


class TestDP:
    def test_textbook_example(self):
        """CLRS example: dims 30,35,15,5,10,20,25 -> 15125 scalar mults."""
        dims = [30, 35, 15, 5, 10, 20, 25]
        shapes = [(dims[i], dims[i + 1]) for i in range(6)]
        sol = optimal_parenthesization(shapes)
        assert sol.flops == 2 * 15125  # our model counts mul+add

    def test_single_matrix(self):
        sol = optimal_parenthesization([(3, 4)])
        assert sol.flops == 0
        assert sol.tree == 0

    def test_two_matrices(self):
        sol = optimal_parenthesization([(3, 4), (4, 5)])
        assert sol.flops == 2 * 3 * 4 * 5

    def test_right_to_left_case(self):
        """HᵀHx: DP must pick right-to-left (paper Eq. 5)."""
        n = 100
        sol = optimal_parenthesization([(n, n), (n, n), (n, 1)])
        assert sol.tree == (0, (1, 2))
        assert sol.flops == 4 * n * n

    def test_left_to_right_case(self):
        """yᵀHᵀH: DP must pick left-to-right (paper Eq. 6)."""
        n = 100
        sol = optimal_parenthesization([(1, n), (n, n), (n, n)])
        assert sol.tree == ((0, 1), 2)

    def test_mixed_case(self):
        """HᵀyxᵀH: DP must pick (Hᵀy)(xᵀH) (paper Eq. 7)."""
        n = 100
        sol = optimal_parenthesization([(n, n), (n, 1), (1, n), (n, n)])
        assert sol.tree == ((0, 1), (2, 3))

    def test_describe(self):
        sol = optimal_parenthesization([(10, 100), (100, 5), (5, 50)])
        assert sol.describe(["A", "B", "C"]) == "((A B) C)"

    def test_dp_matches_brute_force(self, rng):
        """Optimality oracle: DP result equals exhaustive minimum."""
        for _ in range(25):
            m = int(rng.integers(2, 7))
            dims = [int(d) for d in rng.integers(1, 60, size=m + 1)]
            shapes = [(dims[i], dims[i + 1]) for i in range(m)]
            sol = optimal_parenthesization(shapes)
            brute = enumerate_parenthesizations(shapes)
            assert sol.flops == brute[0].flops

    def test_helper_trees(self):
        assert left_to_right_tree(4) == (((0, 1), 2), 3)
        assert right_to_left_tree(4) == (0, (1, (2, 3)))
        with pytest.raises(ChainError):
            left_to_right_tree(0)


class TestEnumeration:
    def test_fig7_count_and_order(self):
        """Fig. 7: 5 variants for length 4, sorted cheapest first."""
        shapes = [(40, 40), (40, 2), (2, 40), (40, 40)]
        out = enumerate_parenthesizations(shapes, ["A", "B", "C", "D"])
        assert len(out) == 5
        assert out[0].expression == "((A B) (C D))"
        flops = [p.flops for p in out]
        assert flops == sorted(flops)

    def test_expressions_unique(self):
        shapes = [(8, 8)] * 5
        out = enumerate_parenthesizations(shapes)
        exprs = [p.expression for p in out]
        assert len(set(exprs)) == len(exprs) == 14

    def test_long_chain_refused(self):
        with pytest.raises(ChainError):
            enumerate_parenthesizations([(2, 2)] * 20)

    def test_name_count_checked(self):
        with pytest.raises(ChainError):
            enumerate_parenthesizations([(2, 2), (2, 2)], ["A"])


class TestEvaluation:
    def test_all_parenthesizations_agree(self, rng):
        shapes = [(6, 9), (9, 3), (3, 7), (7, 4)]
        mats = [(rng.random(s) - 0.5).astype(np.float64) for s in shapes]
        ref = mats[0] @ mats[1] @ mats[2] @ mats[3]
        for p in enumerate_parenthesizations(shapes):
            assert np.allclose(evaluate_chain(mats, p.tree), ref, atol=1e-10)

    def test_default_tree_is_optimal(self, rng):
        shapes = [(5, 50), (50, 2), (2, 40)]
        mats = [(rng.random(s) - 0.5).astype(np.float32) for s in shapes]
        ref = mats[0] @ (mats[1] @ mats[2])
        assert np.allclose(evaluate_chain(mats), ref, atol=1e-4)

    def test_parse_tree_flops_matches_enumeration(self):
        shapes = [(8, 3), (3, 9), (9, 2)]
        dims = chain_dims(shapes)
        for p in enumerate_parenthesizations(shapes):
            assert parse_tree_flops(p.tree, dims) == p.flops

    def test_chain_cost_default_optimal(self):
        shapes = [(100, 100), (100, 100), (100, 1)]
        assert chain_cost(shapes) == optimal_parenthesization(shapes).flops

    def test_chain_cost_explicit_tree(self):
        shapes = [(10, 10), (10, 10), (10, 1)]
        lr = chain_cost(shapes, ((0, 1), 2))
        rl = chain_cost(shapes, (0, (1, 2)))
        assert lr > rl

    def test_bad_tree_rejected(self):
        with pytest.raises(ChainError):
            parse_tree_flops((0, 0), (3, 4, 5))

    def test_empty_chain_rejected(self):
        with pytest.raises(ChainError):
            evaluate_chain([])

    def test_vector_operand_rejected(self, rng):
        with pytest.raises(ChainError):
            evaluate_chain([rng.random(5)])
