"""Fig. 6 — equal-FLOP instruction orders of (AB)(CD).

Expected shape: both variants perform 3 identical GEMMs; times are within
noise of each other (memory-order effects are second-order for dense
compute-bound kernels — the paper's justification for FLOP-based costing).
"""

import pytest

from repro.kernels import blas3


@pytest.fixture(scope="module")
def quad(w, n):
    return (
        w.fortran(w.general(0)),
        w.fortran(w.general(1)),
        w.fortran(w.general(2)),
        w.fortran(w.general_rect(n, n, 3)),
    )


@pytest.mark.benchmark(group="fig6-instruction-order")
class TestFig6:
    def test_variant1_u_first(self, benchmark, quad):
        a, b, c, d = quad

        def variant1():
            u = blas3.gemm(a, b)
            v = blas3.gemm(c, d)
            return blas3.gemm(u, v)

        benchmark(variant1)

    def test_variant2_v_first(self, benchmark, quad):
        a, b, c, d = quad

        def variant2():
            v = blas3.gemm(c, d)
            u = blas3.gemm(a, b)
            return blas3.gemm(u, v)

        benchmark(variant2)
