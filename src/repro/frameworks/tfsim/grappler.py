"""tfsim's graph optimizer — the Grappler analogue.

Thin façade over :mod:`repro.passes` that exposes the same pipelines
``@tfsim.function`` uses, for direct experimentation on graphs (e.g. to
regenerate Fig. 3's before/after comparison without running anything).
"""

from __future__ import annotations

from ...ir.graph import Graph
from ...passes import PassPipeline, aware_pipeline, default_pipeline


def pipeline(*, aware: bool = False) -> PassPipeline:
    """The optimization pipeline graph mode runs (optionally the aware one)."""
    return aware_pipeline() if aware else default_pipeline()


def optimize(graph: Graph, *, aware: bool = False) -> Graph:
    """Run the (default or aware) pipeline over ``graph``."""
    return pipeline(aware=aware).run(graph)


def optimization_report(graph: Graph, *, aware: bool = False) -> str:
    """Optimize and return the per-pass node-count log."""
    p = pipeline(aware=aware)
    p.run(graph)
    return p.describe()
