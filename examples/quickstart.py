"""Quickstart: eager vs graph mode, and what the optimizer does for you.

Run:  python examples/quickstart.py [n]

Walks through the paper's Table I expression (AᵀB)ᵀ(AᵀB) in both simulated
frameworks, showing that graph mode's CSE removes one of the three GEMMs
eager mode pays for — the paper's ~1.5× observation.
"""

import sys
import time

from repro import limit_threads

limit_threads(1)  # single-threaded, like the paper (set before BLAS use)

from repro import tensor as T  # noqa: E402
from repro.frameworks import pytsim, tfsim  # noqa: E402


def main(n: int = 800) -> None:
    print(f"== quickstart (n = {n}) ==\n")
    A = T.random_general(n, seed=1)
    B = T.random_general(n, seed=2)

    # ----- eager mode: every op runs immediately, nothing is shared --------
    t0 = time.perf_counter()
    eager = tfsim.transpose(tfsim.transpose(A) @ B) @ (tfsim.transpose(A) @ B)
    t_eager = time.perf_counter() - t0
    print(f"tfsim eager : {t_eager:.4f}s  (3 GEMMs: AᵀB computed twice)")

    # ----- graph mode: trace once, optimize, execute -------------------------
    @tfsim.function
    def f(a, b):
        return tfsim.transpose(tfsim.transpose(a) @ b) @ (tfsim.transpose(a) @ b)

    f(A, B)  # first call traces + optimizes (excluded, like the paper)
    t0 = time.perf_counter()
    graph = f(A, B)
    t_graph = time.perf_counter() - t0
    kernels = f.last_report.kernel_counts()
    print(f"tfsim graph : {t_graph:.4f}s  (kernels: {kernels})")
    print(f"eager / graph ratio: {t_eager / t_graph:.2f}x  (paper: ~1.5x)\n")

    assert graph.allclose(eager, rtol=1e-2), "modes disagree!"

    # ----- the same program, PyTorch-flavoured -------------------------------
    @pytsim.jit.script
    def g(a, b):
        return (a.T @ b).T @ (a.T @ b)

    g(A, B)
    print(f"pytsim graph kernels: {g.last_report.kernel_counts()}")

    # ----- inspect what the optimizer saw and produced ------------------------
    from repro.ir.pretty import render_graph

    print("\n" + render_graph(f.initial_graph(A, B), title="initial DAG (Fig. 3 left)"))
    print("\n" + render_graph(f.optimized_graph(A, B), title="optimized DAG (Fig. 3 right)"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 800)
