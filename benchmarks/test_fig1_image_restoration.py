"""Fig. 1 — image-restoration variants.

Expected shape: variant 1 ≫ variants 2, 3 (O(n³) vs O(n²)); variant 3 ≤
variant 2 (two matrix-vector products vs three).
"""

import pytest

from repro.frameworks import pytsim, tfsim


@pytest.fixture(scope="module")
def variants(chain_ops, n):
    h, x, y = chain_ops

    @tfsim.function
    def v1(hh, xx, yy):
        i = tfsim.eye(n)
        return tfsim.transpose(hh) @ yy + (i - tfsim.transpose(hh) @ hh) @ xx

    @tfsim.function
    def v2(hh, xx, yy):
        return tfsim.transpose(hh) @ yy + xx - tfsim.transpose(hh) @ (hh @ xx)

    @tfsim.function
    def v3(hh, xx, yy):
        return tfsim.transpose(hh) @ (yy - hh @ xx) + xx

    @pytsim.jit.script
    def v1_pyt(hh, xx, yy):
        i = pytsim.eye(n)
        return hh.T @ yy + (i - hh.T @ hh) @ xx

    @pytsim.jit.script
    def v3_pyt(hh, xx, yy):
        return hh.T @ (yy - hh @ xx) + xx

    for fn in (v1, v2, v3, v1_pyt, v3_pyt):
        fn.get_concrete(h, x, y)
    return v1, v2, v3, v1_pyt, v3_pyt


@pytest.mark.benchmark(group="fig1-image-restoration")
class TestFig1:
    def test_variant1_as_written(self, benchmark, chain_ops, variants):
        benchmark(lambda: variants[0](*chain_ops))

    def test_variant2_distributed(self, benchmark, chain_ops, variants):
        benchmark(lambda: variants[1](*chain_ops))

    def test_variant3_factored(self, benchmark, chain_ops, variants):
        benchmark(lambda: variants[2](*chain_ops))

    def test_variant1_pyt(self, benchmark, chain_ops, variants):
        benchmark(lambda: variants[3](*chain_ops))

    def test_variant3_pyt(self, benchmark, chain_ops, variants):
        benchmark(lambda: variants[4](*chain_ops))


@pytest.mark.benchmark(group="fig1-derivation-graph")
def test_derivation_graph_search_cost(benchmark, n):
    """Cost of the automatic variant discovery itself (the optimizer-time
    price a framework would pay to adopt derivation graphs)."""
    from repro.experiments.intro_fig1 import derivation_demo

    def search():
        _, result = derivation_demo(n)
        return result

    result = benchmark(search)
    assert result.speedup_flops > 10
