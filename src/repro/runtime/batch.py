"""Batched plan execution: one compiled plan over many feed sets.

This is the throughput-serving shape the ROADMAP's north star asks for:
compile once, then stream independent requests through the plan.  Two
strategies:

* sequential — lowest latency variance, no thread overhead;
* thread pool — the BLAS substrate releases the GIL inside kernels, so
  independent feeds genuinely overlap on multicore for kernel-bound
  workloads.

Every feed set gets its own slot table and its own
:class:`~repro.ir.interpreter.ExecutionReport`, so results and accounting
are identical to running the plan once per feed set (order included).

With ``arena="preallocated"`` the batch executes through
:class:`~repro.runtime.plan.PlanArena` buffers — **one arena per worker**
(one total when sequential), created lazily per thread and reused across
every feed that worker serves, instead of materializing a fresh
intermediate list per feed.  Outputs are copied out of the arena before
the next feed overwrites it, so per-feed results are exactly what the
per-call mode returns.  A feed that raises (bad shape, kernel error)
propagates to the caller; feeds already executed are unaffected, and the
worker arenas stay valid — every buffer is fully rewritten on the next
execution.
"""

from __future__ import annotations

import dataclasses
import threading
from collections.abc import Mapping, Sequence
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..errors import GraphError
from ..ir.interpreter import ExecutionReport
from .plan import Plan

FeedSet = Sequence[object] | Mapping[object, object]

#: Arena strategies ``execute_batch`` (and ``Options.arena``) accept.
ARENA_MODES = ("per-call", "preallocated")


@dataclasses.dataclass
class BatchResult:
    """Outputs and per-feed reports of one batched execution."""

    outputs: list[list[np.ndarray]]
    reports: list[ExecutionReport]

    def __len__(self) -> int:
        return len(self.outputs)

    @property
    def total_flops(self) -> int:
        return sum(r.total_flops for r in self.reports)

    def first_outputs(self) -> list[np.ndarray]:
        """Column of each feed set's first graph output."""
        return [outs[0] for outs in self.outputs]


def execute_batch(
    plan: Plan,
    feed_sets: Sequence[FeedSet],
    *,
    workers: int | None = None,
    record: bool = False,
    arena: str = "per-call",
    donate_feeds: "bool | str" = False,
    shards: int | None = None,
) -> BatchResult:
    """Run ``plan`` over every feed set in ``feed_sets``.

    ``workers=None``/``0``/``1`` runs sequentially; ``workers=k`` uses a
    thread pool of ``k`` threads.  ``record`` defaults to False — serving
    workloads usually don't want per-request kernel accounting; switch it
    on for parity checks and experiments.  ``arena="preallocated"``
    executes through one reused :class:`~repro.runtime.plan.PlanArena` per
    worker (outputs are copied out, so results match per-call mode
    bit-for-bit).  ``donate_feeds`` (arena mode only) aliases
    already-F-ordered feed arrays into the arena instead of staging them
    — ``True`` raises ``ValueError`` on a feed failing the layout check,
    ``"fallback"`` copies it; the feeds of a batch are typically caller-
    built once and streamed, exactly the buffers worth donating.

    ``shards=N`` leaves the thread pool behind entirely: the batch runs
    through a transient N-process :class:`~repro.runtime.shard.ShardPool`
    (shared-memory rings, donated feeds, ``record`` unsupported — the
    shard path is the serving path).  It is mutually exclusive with the
    in-process knobs — ``workers``, a non-default ``arena``,
    ``donate_feeds`` — rather than silently overriding them: the shard
    workers always execute arena'd with feeds aliased from shared
    memory.  A fresh pool per call pays worker startup every time; for
    repeated batches hold a ``ShardPool`` (or use
    ``Session.run_sharded``, which caches one per plan).
    """
    if workers is not None and workers < 0:
        raise GraphError(f"workers must be >= 0, got {workers}")
    if arena not in ARENA_MODES:
        raise GraphError(f"arena must be one of {ARENA_MODES}, got {arena!r}")
    if shards is not None:
        if record:
            raise GraphError(
                "shards= is the serving path and cannot record reports; "
                "use workers= for recorded batches"
            )
        if workers is not None or arena != "per-call" or donate_feeds:
            raise GraphError(
                "shards= is mutually exclusive with workers=/arena=/"
                "donate_feeds= — shard workers always execute arena'd "
                "with feeds donated from shared memory"
            )
        from .shard import ShardPool  # deferred: multiprocessing import

        feed_sets = list(feed_sets)
        first = feed_sets[0] if feed_sets else None
        dtype = None
        if first is not None and not isinstance(first, Mapping):
            probe = next(iter(first), None)
            if probe is not None:
                probe = getattr(probe, "data", probe)
                dtype = np.asarray(probe).dtype
        with ShardPool(plan, shards=shards, dtype=dtype) as pool:
            return pool.run(feed_sets)
    if donate_feeds and arena != "preallocated":
        raise GraphError(
            "donate_feeds requires arena='preallocated' — per-call "
            "execution never copies feeds"
        )
    feed_sets = list(feed_sets)

    if arena == "preallocated":
        worker_state = threading.local()

        def one(feeds: FeedSet) -> tuple[list[np.ndarray], ExecutionReport]:
            worker_arena = getattr(worker_state, "arena", None)
            if worker_arena is None:
                worker_arena = worker_state.arena = plan.new_arena()
            outs, rep = plan.execute(feeds, record=record, arena=worker_arena,
                                     donate=donate_feeds)
            # Detach from arena storage: the next feed through this worker
            # rewrites the buffers the outputs alias.
            return [out.copy() for out in outs], rep
    else:
        def one(feeds: FeedSet) -> tuple[list[np.ndarray], ExecutionReport]:
            return plan.execute(feeds, record=record)

    if workers in (None, 0, 1) or len(feed_sets) <= 1:
        results = [one(feeds) for feeds in feed_sets]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(one, feed_sets))
    return BatchResult(
        outputs=[outs for outs, _ in results],
        reports=[rep for _, rep in results],
    )
