"""Fig. 7 — all five parenthesizations of a length-4 chain.

Expected shape: measured time ranks consistently with the FLOP column;
``((AB)(CD))`` — the DP choice — is fastest.
"""

import pytest

from repro.chain import enumerate_parenthesizations, evaluate_chain
from repro.experiments.fig7_chain4 import chain_shapes
from repro.tensor import random_general


@pytest.fixture(scope="module")
def chain(n):
    shapes = chain_shapes(n)
    operands = [
        random_general(r, c, seed=1000 + i).numpy()
        for i, (r, c) in enumerate(shapes)
    ]
    variants = enumerate_parenthesizations(shapes, ["A", "B", "C", "D"])
    return operands, variants


@pytest.mark.benchmark(group="fig7-chain4")
@pytest.mark.parametrize("rank", range(5), ids=[
    "cheapest", "second", "third", "fourth", "most-expensive"
])
def test_parenthesization(benchmark, chain, rank):
    operands, variants = chain
    var = variants[rank]
    benchmark.extra_info["expression"] = var.expression
    benchmark.extra_info["model_flops"] = var.flops
    benchmark(lambda: evaluate_chain(operands, var.tree))
