"""Exhaustive enumeration of chain parenthesizations (Catalan numbers).

Regenerates the paper's Fig. 7: for a chain of length 4, all
C₃ = 5 parenthesizations with their FLOP formulas.  Also the brute-force
oracle the tests compare the DP against.
"""

from __future__ import annotations

import dataclasses
import functools
from collections.abc import Iterator

from ..errors import ChainError
from .dp import chain_dims


@functools.lru_cache(maxsize=None)
def catalan(k: int) -> int:
    """The k-th Catalan number C_k = (2k)! / ((k+1)! k!).

    >>> [catalan(i) for i in range(6)]
    [1, 1, 2, 5, 14, 42]
    """
    if k < 0:
        raise ChainError(f"Catalan index must be non-negative, got {k}")
    result = 1
    for i in range(k):
        result = result * 2 * (2 * i + 1) // (i + 2)
    return result


def count_parenthesizations(m: int) -> int:
    """Number of parenthesizations of a length-m chain: C_{m-1}."""
    if m < 1:
        raise ChainError("empty matrix chain")
    return catalan(m - 1)


@dataclasses.dataclass(frozen=True)
class Parenthesization:
    """One way to evaluate the chain: tree + total FLOPs + rendering."""

    tree: object
    flops: int
    expression: str


def _trees(i: int, j: int) -> Iterator[object]:
    """All parse trees over leaves i..j inclusive."""
    if i == j:
        yield i
        return
    for k in range(i, j):
        for left in _trees(i, k):
            for right in _trees(k + 1, j):
                yield (left, right)


def _tree_flops(tree: object, dims: tuple[int, ...]) -> tuple[int, int, int]:
    """Return (rows, cols, flops) of evaluating ``tree``."""
    if isinstance(tree, int):
        return dims[tree], dims[tree + 1], 0
    left, right = tree
    lr, lc, lf = _tree_flops(left, dims)
    rr, rc, rf = _tree_flops(right, dims)
    assert lc == rr, "enumeration produced incompatible split"
    return lr, rc, lf + rf + 2 * lr * lc * rc


def _render(tree: object, names: list[str]) -> str:
    if isinstance(tree, int):
        return names[tree]
    left, right = tree
    return f"({_render(left, names)} {_render(right, names)})"


def enumerate_parenthesizations(
    shapes: list[tuple[int, int]],
    names: list[str] | None = None,
) -> list[Parenthesization]:
    """All parenthesizations of the chain, sorted cheapest first.

    For Fig. 7's ABCD chain this returns the 5 variants with their FLOP
    counts; the cheapest entry matches the DP solution (tested).
    """
    dims = chain_dims(shapes)
    m = len(dims) - 1
    if m > 12:
        raise ChainError(
            f"refusing to enumerate C_{m-1} = {catalan(m - 1)} trees; "
            "use the DP for long chains"
        )
    names = names or [f"M{i}" for i in range(m)]
    if len(names) != m:
        raise ChainError(f"need {m} names, got {len(names)}")
    out = [
        Parenthesization(
            tree=t,
            flops=_tree_flops(t, dims)[2],
            expression=_render(t, names),
        )
        for t in _trees(0, m - 1)
    ]
    out.sort(key=lambda p: p.flops)
    return out
