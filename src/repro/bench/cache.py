"""Cache control for measurements.

The paper's Fig. 6 discussion (citing Peise & Bientinesi [34]) notes that
variants with identical FLOP counts can differ in execution time because of
memory/cache effects from instruction ordering.  Observing such effects
requires controlling the cache state between repetitions; this module
provides a simple flusher: streaming over a buffer larger than the
last-level cache evicts the working set.
"""

from __future__ import annotations

import numpy as np

#: Default flush size: comfortably larger than common LLC sizes.
DEFAULT_FLUSH_BYTES = 64 * 1024 * 1024


class CacheFlusher:
    """Evicts the CPU caches by streaming a large buffer.

    >>> flush = CacheFlusher()
    >>> flush()           # between timed repetitions
    """

    def __init__(self, nbytes: int = DEFAULT_FLUSH_BYTES) -> None:
        self._buffer = np.zeros(max(nbytes, 1) // 8, dtype=np.float64)
        self._toggle = 0.0

    @property
    def nbytes(self) -> int:
        return self._buffer.nbytes

    def __call__(self) -> float:
        """Touch every cache line of the buffer (read-modify-write)."""
        self._toggle += 1.0
        self._buffer += self._toggle
        # A reduction forces the writes to complete and returns a value the
        # optimizer cannot elide.
        return float(self._buffer[:: 4096].sum())
