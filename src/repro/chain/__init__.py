"""Matrix-chain machinery: DP optimizer and exhaustive enumeration.

Supports Experiment 2 (Table III), Fig. 7 (all parenthesizations of a
length-4 chain with FLOP counts), ``pytsim.linalg.multi_dot``, and the
opt-in chain-reordering pass.
"""

from .dp import ChainSolution, optimal_parenthesization
from .enumeration import (
    Parenthesization,
    catalan,
    count_parenthesizations,
    enumerate_parenthesizations,
)
from .solver import chain_cost, evaluate_chain, parse_tree_flops

__all__ = [
    "ChainSolution",
    "optimal_parenthesization",
    "Parenthesization",
    "catalan",
    "count_parenthesizations",
    "enumerate_parenthesizations",
    "chain_cost",
    "evaluate_chain",
    "parse_tree_flops",
]
