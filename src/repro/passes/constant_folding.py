"""Constant folding: evaluate const-only sub-DAGs at optimization time.

Grappler's constant folding is one of the optimizations the frameworks do
perform; it matters for the reproduction because the paper's Experiment 4
builds the blocked matrix ``A_B`` by explicit concatenation — the folding
pass must *not* hide that construction when the blocks are graph inputs
(they are), which is exactly why the frameworks cannot see through the
blocked structure.
"""

from __future__ import annotations

import numpy as np

from ..ir.graph import Graph
from ..ir.node import Node
from ..ir import builder
from ..ir.interpreter import Interpreter
from .base import GraphPass

#: Ops never folded even when inputs are constant (control flow, I/O).
_NO_FOLD = frozenset({"input", "const", "loop"})

#: Do not fold results bigger than this (bytes): embedding a huge dense
#: product as a literal trades compute for binary size, like real Grappler
#: limits.
_MAX_FOLD_BYTES = 64 * 1024 * 1024


class ConstantFolding(GraphPass):
    """Replace nodes whose inputs are all ``const`` with a ``const`` result."""

    name = "constant_folding"

    def apply(self, graph: Graph) -> Graph:
        graph = self.transform_loop_bodies(graph)
        interp = Interpreter(record=False)

        def fn(node: Node, new_inputs: tuple[Node, ...]) -> Node | None:
            if node.op in _NO_FOLD:
                return None
            if not new_inputs or not all(i.op == "const" for i in new_inputs):
                return None
            nbytes = node.shape[0] * node.shape[1] * node.dtype.itemsize
            if nbytes > _MAX_FOLD_BYTES:
                return None
            candidate = self.rebuild(node, new_inputs)
            sub = Graph([candidate])
            (value,), _ = interp.run(sub, [])
            self._count()
            return builder.const(np.ascontiguousarray(value), name=f"fold_{node.name}")

        return graph.rewrite(fn)
