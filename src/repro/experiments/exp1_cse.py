"""Experiment 1 (Table II) — Common Sub-expression Elimination.

Four expressions over dense A, B (graph mode):

1. ``AᵀB``            — baseline, 1 GEMM;
2. ``AᵀB + AᵀB``      — CSE + x+x→2x: still ≈ 1 GEMM;
3. ``(AᵀB)ᵀ(AᵀB)``    — CSE merges the duplicate: 2 GEMMs;
4. ``(AᵀB)ᵀAᵀB``      — no explicit parenthesization → left-to-right chain,
   no duplicate DAG nodes (Fig. 4), CSE finds nothing: 3 GEMMs.
"""

from __future__ import annotations

from ..bench.registry import register_experiment
from ..bench.reporting import ExperimentTable
from ..frameworks import pytsim, tfsim
from ._measure import time_compiled
from .sizes import experiment_size
from .workloads import Workloads


def _expressions():
    """(label, tf graph fn, pyt graph fn) triples for the four rows."""

    @tfsim.function
    def tf_s(a, b):
        return tfsim.transpose(a) @ b

    @pytsim.jit.script
    def pyt_s(a, b):
        return a.T @ b

    @tfsim.function
    def tf_sum(a, b):
        return tfsim.transpose(a) @ b + tfsim.transpose(a) @ b

    @pytsim.jit.script
    def pyt_sum(a, b):
        return a.T @ b + a.T @ b

    @tfsim.function
    def tf_paren(a, b):
        return tfsim.transpose(tfsim.transpose(a) @ b) @ (tfsim.transpose(a) @ b)

    @pytsim.jit.script
    def pyt_paren(a, b):
        return (a.T @ b).T @ (a.T @ b)

    @tfsim.function
    def tf_noparen(a, b):
        return tfsim.transpose(tfsim.transpose(a) @ b) @ tfsim.transpose(a) @ b

    @pytsim.jit.script
    def pyt_noparen(a, b):
        return (a.T @ b).T @ a.T @ b

    return [
        ("AᵀB", tf_s, pyt_s),
        ("AᵀB + AᵀB", tf_sum, pyt_sum),
        ("(AᵀB)ᵀ(AᵀB)", tf_paren, pyt_paren),
        ("(AᵀB)ᵀAᵀB", tf_noparen, pyt_noparen),
    ]


@register_experiment(
    "exp1",
    "Table II",
    "CSE: repeated sub-expressions in sums and products, graph mode",
)
def run(n: int | None = None, repetitions: int | None = None) -> ExperimentTable:
    n = experiment_size(n)
    w = Workloads(n)
    a, b = w.general(0), w.general(1)
    table = ExperimentTable(
        title=f"Table II: CSE, execution time (s), n = {n}",
        columns=["TF", "PyT", "TF GEMMs", "PyT GEMMs"],
    )
    for label, tf_fn, pyt_fn in _expressions():
        tf_t = time_compiled(tf_fn, [a, b], label="tf", repetitions=repetitions)
        pyt_t = time_compiled(pyt_fn, [a, b], label="pyt", repetitions=repetitions)
        tf_gemms = tf_fn.last_report.kernel_counts().get("gemm", 0)
        pyt_gemms = pyt_fn.last_report.kernel_counts().get("gemm", 0)
        table.add_row(
            label,
            TF=tf_t.best,
            PyT=pyt_t.best,
            TF_GEMMs=str(tf_gemms),
            PyT_GEMMs=str(pyt_gemms),
        )
    table.notes.append(
        "expected shape: rows 1-2 equal (≈1 GEMM), row 3 ≈ 2×, row 4 ≈ 3× "
        "(CSE fails without explicit parenthesization)"
    )
    return table
