"""Canonical structural signatures for graphs.

A signature is a hashable value with the property that two graphs compare
equal iff they describe the same computation: same ops, shapes, dtypes,
attrs (including property annotations and transpose flags), same wiring,
same input order and same outputs.  Node *identity* and node *names* are
deliberately excluded — names carry trace ids, so two traces of the same
Python function produce different names for structurally identical graphs,
and those must collide in the :class:`~repro.runtime.cache.PlanCache`.

The topological order of :meth:`Graph.topological` is deterministic given
structure (iterative DFS from the outputs in declaration order), so the
per-node index assignment is canonical and no graph isomorphism search is
needed.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

from ..ir.graph import Graph
from ..ir.node import Node


def _attr_value_key(value: Any) -> Any:
    """Hashable, structure-respecting encoding of one attr value."""
    if isinstance(value, np.ndarray):
        digest = hashlib.sha1(np.ascontiguousarray(value).tobytes()).hexdigest()
        return ("ndarray", value.shape, str(value.dtype), digest)
    if isinstance(value, Graph):
        # Loop bodies: recurse — repr() would collapse distinct bodies
        # with equal op histograms onto one key.
        return ("graph", graph_signature(value))
    if isinstance(value, (frozenset, tuple, str, int, float, bool, type(None))):
        return value
    return ("repr", repr(value))


def _node_key(node: Node, index_of: dict[int, int]) -> tuple:
    attrs = tuple(
        (k, _attr_value_key(node.attrs[k])) for k in sorted(node.attrs)
    )
    return (
        node.op,
        node.shape,
        str(node.dtype),
        attrs,
        tuple(index_of[id(i)] for i in node.inputs),
    )


def graph_signature(graph: Graph) -> tuple:
    """Canonical structural key of ``graph`` (see module docstring).

    Declared-but-unreachable inputs take part with index ``-1`` plus their
    shape/dtype: they still consume a positional feed slot, so plans for
    graphs that differ only in dead inputs must not be interchanged.
    """
    order = graph.topological()
    index_of = {id(n): i for i, n in enumerate(order)}
    nodes = tuple(_node_key(n, index_of) for n in order)
    inputs = tuple(
        (index_of.get(id(n), -1), n.shape, str(n.dtype)) for n in graph.inputs
    )
    outputs = tuple(index_of[id(o)] for o in graph.outputs)
    return (nodes, inputs, outputs)
