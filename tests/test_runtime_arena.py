"""Preallocated-arena execution (repro.runtime.plan.PlanArena).

The headline claim under test: after warmup, repeated execution of a
plan through an arena performs **zero ndarray allocations** — verified
two ways, with ``tracemalloc`` peaks (any intermediate would show up as a
matrix-sized transient) and with numpy's tracemalloc domain (no ndarray
*data* allocations survive).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.ir import Interpreter, trace
from repro.passes import default_pipeline
from repro.runtime import compile_plan
from repro.tensor import random_general

N = 64  # one float32 matrix = N*N*4 = 16 KiB; python-object noise ~1 KiB


def _workload():
    """Dispatch-bound mix covering the destination-aware kernels:
    elementwise chains, GEMM (plain + trans), transpose."""
    ops = [random_general(N, seed=s) for s in (1, 2, 3)]

    def fn(a, b, c):
        acc = a
        for _ in range(4):
            acc = (acc @ b + c - a) @ a.T
        return 2.0 * acc + b - (-c) * 0.5

    graph = default_pipeline().run(trace(fn, ops))
    return graph, [t.data for t in ops]


def _alloc_peak(fn, reps=30):
    """Peak traced bytes across ``reps`` calls (after one warm call)."""
    fn()
    tracemalloc.start()
    tracemalloc.reset_peak()
    for _ in range(reps):
        fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


@pytest.fixture(scope="module")
def workload():
    return _workload()


class TestAllocationFree:
    @pytest.mark.parametrize("fusion", [False, True], ids=["plain", "fused"])
    def test_zero_ndarray_allocations_after_warmup(self, workload, fusion):
        graph, feeds = workload
        plan = compile_plan(graph, fusion=fusion)
        arena = plan.new_arena()
        for _ in range(3):
            plan.execute(feeds, record=False, arena=arena)
        warm_allocs = arena.allocations
        peak = _alloc_peak(lambda: plan.execute(feeds, record=False,
                                                arena=arena))
        # Any materialized intermediate would add >= one matrix to the
        # peak; all that remains is python-object churn.
        matrix_bytes = feeds[0].nbytes
        assert peak < matrix_bytes, f"arena execution allocated: peak={peak}"
        assert arena.allocations == warm_allocs  # no buffer was replaced
        # And per-call mode *does* allocate on the same workload — the
        # measurement is sensitive, not vacuous.
        assert _alloc_peak(
            lambda: plan.execute(feeds, record=False)
        ) > matrix_bytes

    def test_no_live_ndarray_data_allocations(self, workload):
        graph, feeds = workload
        plan = compile_plan(graph, fusion=True)
        arena = plan.new_arena()
        plan.execute(feeds, record=False, arena=arena)
        tracemalloc.start()
        for _ in range(10):
            plan.execute(feeds, record=False, arena=arena)
        snap = tracemalloc.take_snapshot().filter_traces(
            [tracemalloc.DomainFilter(
                inclusive=True, domain=np.lib.tracemalloc_domain)]
        )
        tracemalloc.stop()
        assert sum(s.size for s in snap.statistics("lineno")) == 0


class TestArenaSemantics:
    def test_outputs_alias_arena_and_are_overwritten(self, workload):
        graph, feeds = workload
        plan = compile_plan(graph)
        arena = plan.new_arena()
        first, _ = plan.execute(feeds, record=False, arena=arena)
        kept = first[0].copy()
        # Executing with different feeds rewrites the aliased buffer...
        other = [np.full_like(feeds[0], 0.5), feeds[1], feeds[2]]
        second, _ = plan.execute(other, record=False, arena=arena)
        assert second[0] is first[0]
        assert first[0].tobytes() != kept.tobytes()
        # ...and re-running the original feeds restores the original bits.
        plan.execute(feeds, record=False, arena=arena)
        assert first[0].tobytes() == kept.tobytes()

    def test_arena_does_not_mutate_user_feeds(self, workload):
        graph, feeds = workload
        plan = compile_plan(graph, fusion=True)
        arena = plan.new_arena()
        before = [f.copy() for f in feeds]
        plan.execute(feeds, record=False, arena=arena)
        for f, b in zip(feeds, before):
            assert f.tobytes() == b.tobytes()

    def test_dtype_change_rewarms_without_breaking(self, workload):
        graph, feeds = workload
        plan = compile_plan(graph)
        arena = plan.new_arena()
        plan.execute(feeds, record=False, arena=arena)  # float32 warmup
        warm = arena.allocations
        feeds64 = [f.astype(np.float64) for f in feeds]
        outs64, _ = plan.execute(feeds64, record=False, arena=arena)
        assert outs64[0].dtype == np.float64
        assert arena.allocations > warm  # rewarmed for the new dtype
        ref64, _ = plan.execute(feeds64, record=False)
        assert outs64[0].tobytes() == ref64[0].tobytes()

    def test_two_arenas_are_independent(self, workload):
        graph, feeds = workload
        plan = compile_plan(graph)
        a1, a2 = plan.new_arena(), plan.new_arena()
        o1, _ = plan.execute(feeds, record=False, arena=a1)
        o2, _ = plan.execute(feeds, record=False, arena=a2)
        assert o1[0] is not o2[0]
        assert o1[0].tobytes() == o2[0].tobytes()

    def test_report_accounting_is_arena_independent(self, workload):
        """The modelled report (a memory *model*) must not change just
        because real buffers are reused."""
        graph, feeds = workload
        outs_i, rep_i = Interpreter(record=True).run(graph, feeds)
        plan = compile_plan(graph)
        arena = plan.new_arena()
        for _ in range(2):  # warm and repeat: stable accounting
            _, rep = plan.execute(feeds, arena=arena)
            assert rep.calls == rep_i.calls
            assert rep.peak_bytes == rep_i.peak_bytes
            assert rep.live_bytes == rep_i.live_bytes

    def test_structured_kernels_fall_back_to_copy(self):
        """Ops without an ``out=`` kernel (TRMM here) still execute
        correctly in arena mode via compute-then-copy."""
        from repro.tensor import random_lower_triangular
        from repro.passes import aware_pipeline

        l_mat = random_lower_triangular(16, seed=5)
        b = random_general(16, seed=2)
        graph = aware_pipeline().run(trace(lambda l, p: l @ p, [l_mat, b]))
        feeds = [l_mat.data, b.data]
        plan = compile_plan(graph)
        arena = plan.new_arena()
        ref, rep = plan.execute(feeds)
        assert "trmm" in {c.kernel for c in rep.calls}
        for _ in range(2):
            outs, _ = plan.execute(feeds, record=False, arena=arena)
            assert outs[0].tobytes() == ref[0].tobytes()

    def test_non_blas_dtype_feeds_match_per_call(self):
        """Integer feeds have no BLAS routine: the arena GEMM path must
        fall back to the coercing wrapper, matching per-call mode instead
        of crashing on the dtype-dispatch lookup."""
        ab = [random_general(8, seed=1), random_general(8, seed=2)]
        graph = trace(lambda a, b: a @ b + a, ab)
        plan = compile_plan(graph, fusion=True)
        feeds = [np.arange(64, dtype=np.int64).reshape(8, 8),
                 np.ones((8, 8), dtype=np.int64)]
        ref, _ = plan.execute(feeds, record=False)
        outs, _ = plan.execute(feeds, record=False, arena=plan.new_arena())
        assert outs[0].dtype == ref[0].dtype
        assert outs[0].tobytes() == ref[0].tobytes()

    def test_constants_are_staged_once(self):
        from repro.frameworks import tfsim

        a = random_general(8, seed=1)
        graph = trace(lambda p: p + tfsim.ones(8, 8), [a])
        plan = compile_plan(graph)
        arena = plan.new_arena()
        ref, _ = plan.execute([a.data], record=False)
        plan.execute([a.data], record=False, arena=arena)
        warm = arena.allocations
        outs, _ = plan.execute([a.data], record=False, arena=arena)
        assert arena.allocations == warm
        assert outs[0].tobytes() == ref[0].tobytes()
