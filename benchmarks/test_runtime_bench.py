"""Runtime benchmark: compiled plans vs the reference interpreter.

Demonstrates the tentpole claims — compile-once/execute-many beats
re-interpreting the graph per call, and the fused/arena engine beats the
plain plan executor — and records the numbers to ``BENCH_runtime.json``
at the repo root (plan-compile time, cached-exec time, interpreter-exec
time, per-mode exec times, allocation peaks via ``tracemalloc``, batch
throughput), which the CI benchmarks jobs upload as artifacts.

The workload is deliberately dispatch-bound (many small kernels on small
operands): that is the regime where per-call graph walking, liveness
rebuilding, kernel re-selection, per-node closure launches and
per-intermediate allocation dominate, i.e. exactly the overhead plans,
fusion and the preallocated arena remove.  Kernel-bound workloads
converge to the same BLAS time in every path.

Environment knobs (used by the CI smoke job to keep PR feedback fast):

``REPRO_BENCH_REPS``    timed repetitions per measurement (default 50)
``REPRO_BENCH_LOOPS``   chain length of the workload (default 12)
``REPRO_BENCH_SHARDS``  worker processes for the sharded batch workload
                        (default 2; ``0`` skips the shard benchmarks)
"""

from __future__ import annotations

import gc
import json
import os
import pathlib
import tracemalloc

import numpy as np
import pytest

from repro.bench.timing import measure
from repro.frameworks import tfsim
from repro.ir import Interpreter, trace
from repro.passes import aware_pipeline, default_pipeline
from repro.runtime import (
    PlanCache,
    PlanStore,
    ShardPool,
    compile_plan,
    execute_batch,
)
from repro.tensor import (
    random_general,
    random_lower_triangular,
    random_tridiagonal,
    random_vector,
)

REPS = int(os.environ.get("REPRO_BENCH_REPS", "50"))
LOOPS = int(os.environ.get("REPRO_BENCH_LOOPS", "12"))
SHARDS = int(os.environ.get("REPRO_BENCH_SHARDS", "2"))
ROOT = pathlib.Path(__file__).resolve().parent.parent


def _dispatch_bound_graph(optimized: bool = True):
    """~50 tiny ops: a chain of products and sums on 16x16 operands.

    ``optimized=False`` returns the raw trace — what a ``Session`` keys
    plan-store aliases by, and the starting point of both sides of the
    store's warm-vs-cold comparison.
    """

    def fn(a, b, c):
        acc = a
        for _ in range(LOOPS):
            acc = (acc @ b + c - a) @ a.T
        return acc + acc.T

    args = [random_general(16, seed=s) for s in (1, 2, 3)]
    graph = trace(fn, args)
    if optimized:
        graph = default_pipeline().run(graph)
    return graph, [t.data for t in args]


def _loop_graph():
    """Power iteration (normalization folded into a constant scale): a
    ``fori_loop`` whose body is a GEMV + scale — the workload whose
    per-iteration allocations the arena'd loop bodies eliminate."""
    a = random_general(64, seed=1)
    v = random_vector(64, seed=2)

    def body(i, x, aa):
        return 0.05 * (aa @ x)

    def fn(p, q):
        return tfsim.fori_loop(20, body, q, [p])

    graph = default_pipeline().run(trace(fn, [a, v]))
    return graph, [a.data, v.data]


def _structured_graph():
    """Structured-matrix chain (TRMM + tridiagonal special): exercises the
    destination-aware structured kernels instead of compute-then-copy."""
    l_mat = random_lower_triangular(48, seed=5)
    t = random_tridiagonal(48, seed=9)
    b = random_general(48, seed=2)
    graph = aware_pipeline().run(
        trace(lambda l, tt, p: l @ (tt @ p), [l_mat, t, b])
    )
    return graph, [l_mat.data, t.data, b.data]


def _sink_graph():
    """A GEMM whose beta-foldable ``add`` is *not* adjacent in the
    schedule (the dead addend's producer lands between them) — the shape
    the fold-aware scheduler exists for."""
    args = [random_general(24, seed=s) for s in (4, 5, 6)]

    def fn(a, b, c):
        return a @ b + (c - a)

    graph = default_pipeline().run(trace(fn, args))
    return graph, [t.data for t in args]


def _alloc_peak(fn, reps=20, collect=False):
    """Peak traced bytes across ``reps`` calls (one warm call first).

    ``collect=True`` runs ``gc.collect()`` between calls: f2py's per-call
    result wrappers land on numpy's object freelist, which tracemalloc
    keeps counting until a collection clears it — without collecting, a
    loop workload's *object-header* churn accumulates across reps and
    drowns the actual signal (ndarray data allocations, which the strict
    numpy-domain tests pin at zero).  The collected peak is the honest
    per-call transient high-water mark.
    """
    fn()
    if collect:
        gc.collect()
    tracemalloc.start()
    tracemalloc.reset_peak()
    for _ in range(reps):
        fn()
        if collect:
            gc.collect()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


@pytest.fixture(scope="module")
def workload():
    return _dispatch_bound_graph()


def _machine_ref_seconds():
    """Best-of-N direct BLAS call on the bench operand size — a
    machine-speed reference recorded next to the timings so the CI
    regression gate can normalize wall-clock numbers measured on
    different hardware (committed baseline vs CI runner)."""
    import time

    from scipy.linalg import blas as _blas

    a = np.asfortranarray(np.ones((16, 16), dtype=np.float32))
    b = np.asfortranarray(np.ones((16, 16), dtype=np.float32))
    c = np.empty((16, 16), dtype=np.float32, order="F")
    best = float("inf")
    for _ in range(2000):
        t0 = time.perf_counter()
        _blas.sgemm(1.0, a, b, beta=0.0, c=c, overwrite_c=1)
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def timings(workload):
    graph, feeds = workload
    interp = Interpreter(record=True)

    compile_time = measure(
        lambda: compile_plan(graph), label="plan-compile", repetitions=10
    )
    plan = compile_plan(graph)
    fused = compile_plan(graph, fusion=True)
    arena = plan.new_arena()
    fused_arena = fused.new_arena()
    plan.execute(feeds, arena=arena)        # warm the arenas before timing
    fused.execute(feeds, arena=fused_arena)
    cache = PlanCache()
    cache.get(graph)  # warm
    cache_hit = measure(
        lambda: cache.get(graph), label="plan-cache-hit", repetitions=REPS
    )
    interp_exec = measure(
        lambda: interp.run(graph, feeds), label="interpreter-exec",
        repetitions=REPS,
    )
    plan_exec = measure(
        lambda: plan.execute(feeds), label="plan-exec", repetitions=REPS
    )
    serving_exec = measure(
        lambda: plan.execute(feeds, record=False), label="plan-exec-norecord",
        repetitions=REPS,
    )
    fused_exec = measure(
        lambda: fused.execute(feeds, record=False),
        label="plan-exec-fused", repetitions=REPS,
    )
    arena_exec = measure(
        lambda: plan.execute(feeds, record=False, arena=arena),
        label="plan-exec-arena", repetitions=REPS,
    )
    fused_arena_exec = measure(
        lambda: fused.execute(feeds, record=False, arena=fused_arena),
        label="plan-exec-fused-arena", repetitions=REPS,
    )
    feeds_f = [np.asfortranarray(f) for f in feeds]
    donated_arena = fused.new_arena()
    fused.execute(feeds_f, record=False, arena=donated_arena, donate=True)
    # The donated-vs-pinned comparison separates numbers ~10% apart, so
    # both get a deeper sample than the headline metrics: best-of-N only
    # converges below scheduler noise with a few hundred reps.
    fine_reps = max(REPS, 200)
    donated_exec = measure(
        lambda: fused.execute(feeds_f, record=False, arena=donated_arena,
                              donate=True),
        label="plan-exec-donated", repetitions=fine_reps,
    )
    # Feed-staging traffic: bytes memcpy'd per call with and without
    # donation (the donated path must not copy at all).
    before = fused_arena.bytes_copied
    fused.execute(feeds, record=False, arena=fused_arena)
    bytes_copied = fused_arena.bytes_copied - before
    before = donated_arena.bytes_copied
    fused.execute(feeds_f, record=False, arena=donated_arena, donate=True)
    bytes_copied_donated = donated_arena.bytes_copied - before
    # Pinned binding: feeds bound once, steady-state calls skip feed
    # binding and layout checks entirely.
    pinned_binding = fused.bind_pinned(feeds_f, fused.new_arena())
    pinned_binding.execute()
    pinned_exec = measure(
        pinned_binding.execute, label="plan-exec-pinned",
        repetitions=fine_reps,
    )
    batch = measure(
        lambda: execute_batch(plan, [feeds] * 8, workers=4),
        label="batch-8x-4workers", repetitions=10,
    )
    arena_batch = measure(
        lambda: execute_batch(fused, [feeds] * 8, workers=4,
                              arena="preallocated"),
        label="batch-8x-4workers-fused-arena", repetitions=10,
    )
    # The shard comparison point: the same 64-feed batch through the
    # 4-worker *thread* pool (GIL-bound on this dispatch-heavy workload),
    # the fused+arena thread pool, and the shard pool.  The
    # threaded-vs-sharded pair is sampled *interleaved* — alternating
    # one run of each per round — so slow machine drift (thermal, noisy
    # neighbors) hits both sides equally instead of biasing whichever
    # was measured later.
    import time as _time

    def _best(fn, rounds):
        best = float("inf")
        for _ in range(rounds):
            t0 = _time.perf_counter()
            fn()
            best = min(best, _time.perf_counter() - t0)
        return best

    arena_batch64 = measure(
        lambda: execute_batch(fused, [feeds] * 64, workers=4,
                              arena="preallocated"),
        label="batch-64x-4workers-fused-arena", repetitions=10,
    )
    run_threaded64 = lambda: execute_batch(plan, [feeds] * 64, workers=4)
    shard_best = None
    shard_bytes = None
    if SHARDS > 0:
        with ShardPool(fused, shards=SHARDS, ring_slots=32,
                       dtype=np.asarray(feeds[0]).dtype) as pool:
            pool.run([feeds] * 64)  # warm every worker arena
            run_threaded64()
            threaded_best = float("inf")
            shard_best = float("inf")
            for _ in range(12):
                threaded_best = min(threaded_best, _best(run_threaded64, 1))
                shard_best = min(shard_best,
                                 _best(lambda: pool.run([feeds] * 64), 1))
            pool.run([feeds] * 64)
            # Worker-side staging bytes for a whole 64-feed batch: the
            # donated shared-memory path must not copy at all.
            shard_bytes = pool.bytes_copied_last_run
        batch64_best = threaded_best
    else:
        batch64_best = _best(run_threaded64, 10)
    # Supervised sharding (PR 9): the same 64-feed batch through a pool
    # with wave deadlines and respawn armed.  The clean path pays one
    # poll() per wave reply instead of a blocking recv — the gated
    # number proves supervision is (and stays) nearly free.
    supervised_best = None
    recovery_seconds = None
    recovery_hangs = None
    recovery_respawns = None
    if SHARDS > 0:
        from repro import faults as _faults

        with ShardPool(fused, shards=SHARDS, ring_slots=32,
                       dtype=np.asarray(feeds[0]).dtype,
                       respawn=True, wave_deadline=5.0) as pool:
            pool.run([feeds] * 64)  # warm every worker arena
            supervised_best = _best(lambda: pool.run([feeds] * 64), 12)
        # Hung-worker recovery: worker 0 ignores SIGTERM and sleeps on
        # the first entry of the *measured* run (its warm run consumed
        # hits 1..chunk), so the run pays the full cycle — deadline
        # detection, terminate grace, kill escalation, respawn, wave
        # replay (whose fresh worker stays under the trigger).
        chunk = -(-64 // SHARDS)  # worker 0's share of 64 feeds
        _faults.install(f"worker.exec:hang(30)@{chunk + 1}w0")
        try:
            with ShardPool(fused, shards=SHARDS, ring_slots=32,
                           dtype=np.asarray(feeds[0]).dtype,
                           respawn=True, wave_deadline=0.4) as pool:
                pool.run([feeds] * 64)
                recovery_seconds = _best(lambda: pool.run([feeds] * 64), 1)
                recovery_hangs = pool.hangs_detected
                recovery_respawns = pool.respawns
        finally:
            _faults.clear()
    # Loop-heavy workload: allocation-free iteration through the
    # ping-pong child arenas.
    loop_graph, loop_feeds = _loop_graph()
    loop_plan = compile_plan(loop_graph, fusion=True)
    loop_arena = loop_plan.new_arena()
    for _ in range(3):  # warm both child arenas
        loop_plan.execute(loop_feeds, record=False, arena=loop_arena)
    loop_exec = measure(
        lambda: loop_plan.execute(loop_feeds, record=False),
        label="loop-exec", repetitions=REPS,
    )
    loop_arena_exec = measure(
        lambda: loop_plan.execute(loop_feeds, record=False,
                                  arena=loop_arena),
        label="loop-exec-arena", repetitions=REPS,
    )
    # Structured-matrix workload: destination-aware TRMM + tridiagonal.
    s_graph, s_feeds = _structured_graph()
    s_plan = compile_plan(s_graph, fusion=True)
    s_arena = s_plan.new_arena()
    s_plan.execute(s_feeds, record=False, arena=s_arena)
    structured_exec = measure(
        lambda: s_plan.execute(s_feeds, record=False),
        label="structured-exec", repetitions=REPS,
    )
    structured_arena_exec = measure(
        lambda: s_plan.execute(s_feeds, record=False, arena=s_arena),
        label="structured-exec-arena", repetitions=REPS,
    )
    # Same workload, layout-matched donated feeds (the serving shape):
    # per-slot orders come from the plan, so the tridiagonal inputs ride
    # C-contiguous and the TRMM operand Fortran-contiguous.
    s_feeds_ordered = [
        np.asfortranarray(f) if s_plan.slot_orders[spec.slot] == "F"
        else np.ascontiguousarray(f)
        for spec, f in zip(s_plan.inputs, s_feeds)
    ]
    s_donate_arena = s_plan.new_arena()
    s_plan.execute(s_feeds_ordered, record=False, arena=s_donate_arena,
                   donate=True)
    structured_donated_exec = measure(
        lambda: s_plan.execute(s_feeds_ordered, record=False,
                               arena=s_donate_arena, donate=True),
        label="structured-exec-donated", repetitions=REPS,
    )
    # Fold-aware scheduling: a non-adjacent gemm→add pair that only beta-
    # folds because the scheduler sank the GEMM next to its consumer.
    sink_graph, _ = _sink_graph()
    sink_stats = compile_plan(sink_graph, fusion=True).fusion_stats
    # Persistent plan store (PR 8): both sides start from the raw trace.
    # Cold runs the optimization pipeline and lowers; warm jumps through
    # the trace alias to the stored optimized graph (mmap consts) and
    # lowers.  The delta is the build cost the store removes from every
    # session/worker cold start.
    import tempfile

    raw_graph, _ = _dispatch_bound_graph(optimized=False)
    with tempfile.TemporaryDirectory() as store_dir:
        store = PlanStore(store_dir)
        tkey = store.trace_key(
            raw_graph, backend="tfsim", pipeline="default",
            fold_constants=False, fusion=True,
        )
        store.put_alias(tkey, store.put_plan(fused))
        store_cold = measure(
            lambda: compile_plan(
                default_pipeline().run(raw_graph), fusion=True
            ),
            label="plan-store-cold-compile", repetitions=10,
        )
        store_warm = measure(
            lambda: compile_plan(store.load_graph(tkey), fusion=True),
            label="plan-store-warm-start", repetitions=10,
        )
    # Online autotuning (PR 10): the (A @ B) @ x chain on integer-valued
    # feeds — reassociation is bit-exact there, so the right-association
    # derivation passes the bit-identity gate and promotes.  Canonical
    # steady state is measured in a plain session, tuned steady state
    # after the race promoted; the overhead key is the wall clock the
    # race itself consumed (what a serving process pays once per hot
    # signature).
    from repro import api
    from repro.tensor.tensor import Tensor

    at_n = 128
    at_rng = np.random.default_rng(11)
    at_feeds = [
        Tensor(at_rng.integers(0, 4, (at_n, at_n)).astype(np.float32)),
        Tensor(at_rng.integers(0, 4, (at_n, at_n)).astype(np.float32)),
        Tensor(at_rng.integers(0, 4, (at_n, 1)).astype(np.float32)),
    ]

    def _at_chain(p, q, v):
        return (p @ q) @ v

    with api.Session() as plain_session:
        chain = plain_session.compile(_at_chain)
        chain(*at_feeds)
        at_canonical = measure(
            lambda: chain(*at_feeds), label="autotune-canonical-exec",
            repetitions=REPS,
        )
    with api.Session(autotune={"hot_threshold": 2,
                               "budget_seconds": 0.1}) as tuned_session:
        chain = tuned_session.compile(_at_chain)
        for _ in range(3):
            chain(*at_feeds)  # crosses the threshold; races inline
        at_stats = tuned_session.stats().autotune
        at_tuned = measure(
            lambda: chain(*at_feeds), label="autotune-tuned-exec",
            repetitions=REPS,
        )
    return {
        "plan_compile_seconds": compile_time.best,
        "plan_cache_hit_seconds": cache_hit.best,
        "interpreter_exec_seconds": interp_exec.best,
        "plan_exec_seconds": plan_exec.best,
        "plan_exec_norecord_seconds": serving_exec.best,
        "plan_exec_fused_seconds": fused_exec.best,
        "plan_exec_arena_seconds": arena_exec.best,
        "plan_exec_fused_arena_seconds": fused_arena_exec.best,
        "plan_exec_donated_seconds": donated_exec.best,
        "pinned_exec_seconds": pinned_exec.best,
        "bytes_copied_per_call": bytes_copied,
        "bytes_copied_per_call_donated": bytes_copied_donated,
        "loop_exec_seconds": loop_exec.best,
        "loop_exec_arena_seconds": loop_arena_exec.best,
        "loop_alloc_peak_bytes": _alloc_peak(
            lambda: loop_plan.execute(loop_feeds, record=False,
                                      arena=loop_arena),
            collect=True,
        ),
        "loop_alloc_peak_bytes_per_call": _alloc_peak(
            lambda: loop_plan.execute(loop_feeds, record=False),
            collect=True,
        ),
        "structured_exec_seconds": structured_exec.best,
        "structured_exec_arena_seconds": structured_arena_exec.best,
        "structured_exec_donated_seconds": structured_donated_exec.best,
        "gemm_beta_fold_sinks": sink_stats.fold_sinks,
        "gemm_beta_folds_sunk_workload": sink_stats.gemm_beta_folds,
        "batch_8_feeds_4_workers_seconds": batch.best,
        "batch_8_feeds_4_workers_fused_arena_seconds": arena_batch.best,
        "batch_64_feeds_4_workers_seconds": batch64_best,
        "batch_64_feeds_4_workers_fused_arena_seconds": arena_batch64.best,
        "batch_64_feeds_sharded_seconds": shard_best,
        "sharded_supervised_seconds": supervised_best,
        "hung_worker_recovery_seconds": recovery_seconds,
        "hung_worker_recovery_hangs": recovery_hangs,
        "hung_worker_recovery_respawns": recovery_respawns,
        "shard_workers": SHARDS,
        "shard_bytes_copied_per_batch": shard_bytes,
        "alloc_peak_bytes_per_call": _alloc_peak(
            lambda: plan.execute(feeds, record=False), collect=True
        ),
        "alloc_peak_bytes_fused_arena": _alloc_peak(
            lambda: fused.execute(feeds, record=False, arena=fused_arena),
            collect=True,
        ),
        "fused_sites": fused.fusion_stats.sites,
        "plan_store_cold_compile_seconds": store_cold.best,
        "plan_store_warm_start_seconds": store_warm.best,
        "autotune_canonical_exec_seconds": at_canonical.best,
        "autotuned_exec_seconds": at_tuned.best,
        "autotune_overhead_seconds": at_stats.tuning_seconds,
        "autotune_promotions": at_stats.promotions,
        "machine_ref_sgemm_out_seconds": _machine_ref_seconds(),
    }


def test_cached_plan_beats_interpreter_and_records_json(timings, workload):
    graph, feeds = workload
    speedup = (
        timings["interpreter_exec_seconds"] / timings["plan_exec_seconds"]
    )
    fused_arena_speedup = (
        timings["interpreter_exec_seconds"]
        / timings["plan_exec_fused_arena_seconds"]
    )
    payload = {
        "workload": {
            "nodes": len(graph),
            "op_counts": graph.op_counts(),
            "operand_n": 16,
            "repetitions": REPS,
        },
        **timings,
        "plan_over_interpreter_speedup": speedup,
        "fused_arena_over_interpreter_speedup": fused_arena_speedup,
    }
    (ROOT / "BENCH_runtime.json").write_text(json.dumps(payload, indent=2))
    # The acceptance claim: repeated execution of a cached plan beats
    # re-running the reference interpreter on the same graph.
    assert timings["plan_exec_seconds"] < timings["interpreter_exec_seconds"]
    # A cache hit is far cheaper than recompiling.
    assert timings["plan_cache_hit_seconds"] < timings["plan_compile_seconds"]


def test_fused_arena_at_or_below_plain_plan(timings):
    """The fused + preallocated engine must run at or below the PR-1
    ``plan_exec_norecord_seconds`` baseline on the dispatch-bound
    workload — fewer closure launches, zero intermediate allocations."""
    assert (
        timings["plan_exec_fused_arena_seconds"]
        <= timings["plan_exec_norecord_seconds"]
    )


def test_donated_feeds_skip_every_copy(timings):
    """Donation removes the last per-call memcpys: zero bytes staged.
    The timing comparison gets a noise margin — the two measurements run
    at different moments and the staging saved is a single-digit percent
    of the call, well inside shared-runner jitter; the hard zero-copy
    guarantee is the byte counter."""
    assert timings["bytes_copied_per_call_donated"] == 0
    assert timings["bytes_copied_per_call"] > 0
    assert (
        timings["plan_exec_donated_seconds"]
        <= timings["plan_exec_fused_arena_seconds"] * 1.15
    )


def test_arena_loop_bodies_beat_per_call_loops(timings):
    """The arena'd loop executes its body allocation-free and must not be
    slower than per-call sub-plan execution (small noise margin: the two
    timings run at different moments); the allocation peak contrast
    shows the per-iteration intermediates disappeared."""
    assert (
        timings["loop_exec_arena_seconds"]
        <= timings["loop_exec_seconds"] * 1.1
    )
    assert (
        timings["loop_alloc_peak_bytes"]
        < timings["loop_alloc_peak_bytes_per_call"] / 2
    )


def test_structured_arena_within_budget(timings):
    """The per-slot layout preferences (tridiagonal destinations and
    operands ride C-ordered, BLAS slots stay F) brought arena mode from
    ~1.55x the plain path down to near parity.  The *donated* arena path
    — the serving configuration — must be at or below plain (small noise
    margin); the staged path keeps paying two C<->F boundary copies per
    call (the TRMM operand staging and the F-ordered L feed), documented
    here and gated at a modest factor rather than hidden."""
    assert (
        timings["structured_exec_donated_seconds"]
        <= timings["structured_exec_seconds"] * 1.10
    )
    assert (
        timings["structured_exec_arena_seconds"]
        <= timings["structured_exec_seconds"] * 1.35
    )


def test_fold_aware_scheduling_enables_beta_fold(timings):
    """The sunk workload's gemm→add pair is non-adjacent in the raw
    schedule; the fold only exists because the scheduler hoisted the
    dead addend's producer above the GEMM."""
    assert timings["gemm_beta_fold_sinks"] >= 1
    assert timings["gemm_beta_folds_sunk_workload"] >= 1


def test_plan_store_warm_start_beats_cold_compile(timings):
    """The store's reason to exist: rebuilding a plan from a disk
    artifact (alias lookup + payload decode + lower) must cost less than
    re-deriving it (optimization pipeline + lower) — on this workload the
    pipeline is ~3/4 of the cold build, so the margin is structural, not
    noise."""
    assert (
        timings["plan_store_warm_start_seconds"]
        < timings["plan_store_cold_compile_seconds"]
    )


def test_autotuned_chain_beats_canonical(timings):
    """The PR-10 acceptance claim: on the structured (A @ B) @ x chain
    the promoted right-association derivation executes strictly faster
    than the canonical left-association — the win is structural
    (~2n^2 vs n^3 FLOPs at n=128), not measurement noise — and the race
    actually promoted (a silent no-promotion run would compare the
    canonical plan against itself and "pass")."""
    assert timings["autotune_promotions"] >= 1
    assert (
        timings["autotuned_exec_seconds"]
        < timings["autotune_canonical_exec_seconds"]
    )


def test_pinned_binding_beats_donated_dispatch(timings):
    """Pinned execution removes the last per-call binding work (slot
    table build, feed walk, donation layout checks), so it must run
    under the donated number on the dispatch-bound workload."""
    assert (
        timings["pinned_exec_seconds"] < timings["plan_exec_donated_seconds"]
    )


@pytest.mark.skipif(SHARDS < 2, reason="sharding disabled or single shard")
def test_sharded_batch_scales_over_thread_pool(timings):
    """The acceptance bar for the GIL-free dispatch path, at 64 feeds,
    with zero worker-side staging bytes (feeds alias shared memory,
    outputs land in shared memory).  Two comparisons, stated precisely:

    * >= 2.5x over ``batch_64_feeds_4_workers_seconds`` — the 4-worker
      thread pool in the PR-1 serving configuration (plain plan, no
      arena), i.e. the number the ISSUE's "only ~2x the serial cost"
      motivation refers to.  This measures the whole serving stack
      (sharding + each worker's fused/donated turbo arena), not
      process-parallelism alone.
    * strictly faster than
      ``batch_64_feeds_4_workers_fused_arena_seconds`` — the *best*
      in-process configuration (fused plan, per-thread arenas): on the
      same plan configuration, moving dispatch out of the GIL must win
      outright.

    The 2.5x bar needs a second CPU: with >= 2 cores, worker processes
    execute in true parallel while the thread pool stays GIL-bound.  On
    a single-core machine the processes time-slice one core, so the only
    available win is removing GIL thrash — measured ~2.4-2.8x there,
    straddling the bar with scheduler noise — hence the relaxed 2.0x
    floor when parallelism is physically impossible."""
    assert timings["batch_64_feeds_sharded_seconds"] is not None
    speedup = (
        timings["batch_64_feeds_4_workers_seconds"]
        / timings["batch_64_feeds_sharded_seconds"]
    )
    multicore = (os.cpu_count() or 1) >= 2
    floor = 2.5 if multicore else 2.0
    assert speedup >= floor, (
        f"sharded 64-feed batch only {speedup:.2f}x over the thread pool "
        f"(floor {floor}x on {os.cpu_count()} cpus)"
    )
    if multicore:
        assert (
            timings["batch_64_feeds_sharded_seconds"]
            < timings["batch_64_feeds_4_workers_fused_arena_seconds"]
        ), "sharding must beat the best threaded configuration outright"
    assert timings["shard_bytes_copied_per_batch"] == 0


@pytest.mark.skipif(SHARDS < 1, reason="sharding disabled")
def test_supervised_sharding_overhead_is_small(timings):
    """Wave deadlines replace blocking recv() with poll(timeout) — one
    extra syscall per wave reply.  The supervised clean path must stay
    within a modest factor of the unsupervised pool (the two best-of-12
    numbers are measured moments apart, so the margin is noise budget,
    not a real overhead allowance); the CI regression gate holds the
    absolute number to the committed baseline at 20%."""
    assert timings["sharded_supervised_seconds"] is not None
    assert (
        timings["sharded_supervised_seconds"]
        <= timings["batch_64_feeds_sharded_seconds"] * 1.25
    )


@pytest.mark.skipif(SHARDS < 1, reason="sharding disabled")
def test_hung_worker_recovery_is_bounded(timings):
    """The full hang-recovery cycle — deadline detection (0.4 s),
    terminate grace against a SIGTERM-ignoring worker (2 s), kill,
    respawn, wave replay — must complete well under the 10 s bound:
    a hung worker costs seconds, never a stuck batch."""
    assert timings["hung_worker_recovery_seconds"] is not None
    assert timings["hung_worker_recovery_seconds"] < 10.0
    assert timings["hung_worker_recovery_hangs"] == 1
    assert timings["hung_worker_recovery_respawns"] == 1


def test_arena_is_allocation_free_and_per_call_is_not(timings, workload):
    """Relative gate only: the 16x16 bench operands (1 KiB) sit too close
    to Python-object churn for a tight absolute bound to be stable across
    CPython/allocator versions.  The strict absolute zero-allocation
    proof lives in tests/test_runtime_arena.py at N=64 (16 KiB margin)."""
    assert (
        timings["alloc_peak_bytes_fused_arena"]
        < timings["alloc_peak_bytes_per_call"] / 2
    )


@pytest.mark.benchmark(group="runtime-plans")
def test_interpreter_exec(benchmark, workload):
    graph, feeds = workload
    interp = Interpreter(record=True)
    benchmark(lambda: interp.run(graph, feeds))


@pytest.mark.benchmark(group="runtime-plans")
def test_plan_exec(benchmark, workload):
    graph, feeds = workload
    plan = compile_plan(graph)
    benchmark(lambda: plan.execute(feeds))


@pytest.mark.benchmark(group="runtime-plans")
def test_plan_exec_norecord(benchmark, workload):
    graph, feeds = workload
    plan = compile_plan(graph)
    benchmark(lambda: plan.execute(feeds, record=False))


@pytest.mark.benchmark(group="runtime-plans")
def test_plan_exec_fused_arena(benchmark, workload):
    graph, feeds = workload
    plan = compile_plan(graph, fusion=True)
    arena = plan.new_arena()
    plan.execute(feeds, arena=arena)
    benchmark(lambda: plan.execute(feeds, record=False, arena=arena))
