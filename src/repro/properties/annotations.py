"""User-facing property annotation helpers.

The paper recommends letting users "explicitly annotate matrices with types
that encode the properties" (as Julia does).  These helpers are that API:
they attach properties to tensors, by assertion (trusted) or with numeric
verification.
"""

from __future__ import annotations

from ..errors import PropertyError
from ..tensor.properties import Property, verify_property
from ..tensor.tensor import Tensor


def annotate(tensor: Tensor, *props: Property, verify: bool = True) -> Tensor:
    """Return ``tensor`` with extra property annotations.

    With ``verify=True`` (default) each property is numerically checked —
    annotating a dense matrix as triangular raises
    :class:`~repro.errors.PropertyError` instead of silently producing a
    wrong TRMM dispatch later.
    """
    if verify:
        for prop in props:
            if not verify_property(tensor.data, prop):
                raise PropertyError(
                    f"matrix of shape {tensor.shape} does not satisfy {prop}"
                )
    return tensor.with_props(*props)


def as_lower_triangular(tensor: Tensor, *, verify: bool = True) -> Tensor:
    """Annotate LOWER_TRIANGULAR (the ``L`` of Table IV)."""
    return annotate(tensor, Property.LOWER_TRIANGULAR, verify=verify)


def as_upper_triangular(tensor: Tensor, *, verify: bool = True) -> Tensor:
    return annotate(tensor, Property.UPPER_TRIANGULAR, verify=verify)


def as_symmetric(tensor: Tensor, *, verify: bool = True) -> Tensor:
    return annotate(tensor, Property.SYMMETRIC, verify=verify)


def as_spd(tensor: Tensor, *, verify: bool = True) -> Tensor:
    """Annotate SPD (enables the Cholesky path in the solver extension)."""
    return annotate(tensor, Property.SPD, verify=verify)


def as_diagonal(tensor: Tensor, *, verify: bool = True) -> Tensor:
    """Annotate DIAGONAL (the ``D`` of Table IV)."""
    return annotate(tensor, Property.DIAGONAL, verify=verify)


def as_tridiagonal(tensor: Tensor, *, verify: bool = True) -> Tensor:
    """Annotate TRIDIAGONAL (the ``T`` of Table IV)."""
    return annotate(tensor, Property.TRIDIAGONAL, verify=verify)


def as_orthogonal(tensor: Tensor, *, verify: bool = True) -> Tensor:
    """Annotate ORTHOGONAL (enables ``QᵀQ → I``, Sec. III-C)."""
    return annotate(tensor, Property.ORTHOGONAL, verify=verify)
