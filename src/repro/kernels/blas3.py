"""Level-3 BLAS wrappers: matrix-matrix operations.

These are the kernels whose relative costs drive every experiment in the
paper: GEMM (the 2mnk baseline), TRMM and SYRK (the half-cost structured
kernels of Experiment 3), SYMM, and TRSM.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import blas as _blas

from ..errors import KernelError, ShapeError
from .validation import (
    as_ndarray,
    check_matmul_shapes,
    require_matrix,
    require_same_dtype,
    require_square,
)

_GEMM = {np.dtype(np.float32): _blas.sgemm, np.dtype(np.float64): _blas.dgemm}
_TRMM = {np.dtype(np.float32): _blas.strmm, np.dtype(np.float64): _blas.dtrmm}
_SYRK = {np.dtype(np.float32): _blas.ssyrk, np.dtype(np.float64): _blas.dsyrk}
_SYMM = {np.dtype(np.float32): _blas.ssymm, np.dtype(np.float64): _blas.dsymm}
_TRSM = {np.dtype(np.float32): _blas.strsm, np.dtype(np.float64): _blas.dtrsm}


def _routine(table: dict, dtype: np.dtype, name: str):
    try:
        return table[np.dtype(dtype)]
    except KeyError:  # pragma: no cover
        raise KernelError(f"no {name} kernel for dtype {dtype}") from None


def _check_out(
    out: np.ndarray, shape: tuple[int, int], dtype: np.dtype, name: str
) -> None:
    """Validate a caller-provided destination buffer.

    Every destination-aware kernel has the same contract: exact result
    shape, operand dtype, Fortran order (the layout BLAS writes — any
    other layout would force a hidden f2py copy, silently defeating the
    zero-allocation point).
    """
    if out.shape != shape:
        raise ShapeError(f"{name}: out has shape {out.shape}, result is {shape}")
    if out.dtype != dtype:
        raise KernelError(
            f"{name}: out dtype {out.dtype} does not match operands ({dtype})"
        )
    if not out.flags.f_contiguous:
        raise KernelError(
            f"{name}: out must be Fortran-contiguous (use np.empty(..., "
            "order='F')) — any other layout forces a hidden copy"
        )


def _mirror_triangle(c: np.ndarray, *, lower: bool) -> np.ndarray:
    """Fill the missing triangle of ``c`` with the computed one, in place.

    Row/column slice assignments only — no temporary matrices — so the
    arena path stays free of ndarray-data allocations.  The mirrored
    entries are bit-copies of the computed triangle, which is also what
    the historical ``c + np.tril(c, -1).T`` fill produced (adding a
    strictly-triangular transpose to exact zeros), minus its two
    full-matrix temporaries.
    """
    n = c.shape[0]
    if lower:
        for i in range(1, n):
            c[:i, i] = c[i, :i]
    else:
        for i in range(1, n):
            c[i, :i] = c[:i, i]
    return c


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    alpha: float = 1.0,
    beta: float = 0.0,
    out: np.ndarray | None = None,
    trans_a: bool = False,
    trans_b: bool = False,
) -> np.ndarray:
    """GEMM: return ``alpha * op(A) op(B) + beta * C`` (2mnk FLOPs).

    The transpose flags map to the BLAS ``TRANSA``/``TRANSB`` arguments, so
    ``AᵀB`` costs no explicit transpose — exactly how the paper's reference
    "MKL-C" implementation computes the Table I expressions.  The scaling
    ``alpha`` rides along for free, which is why the frameworks' CSE rewrite
    of ``AᵀB + AᵀB`` into ``2·(AᵀB)`` has negligible overhead (Experiment 1),
    and why the runtime's fusion pass can fold a trailing ``scale`` into the
    product at no cost.

    ``out`` is the destination-aware mode: the result is written into the
    caller's ``C`` buffer (BLAS's own ``C`` argument, ``overwrite_c=1``) and
    that same buffer is returned — no allocation.  The buffer must be
    Fortran-contiguous (the layout BLAS writes; anything else would force
    f2py to make a hidden copy, silently defeating the point), of the
    result's exact shape and dtype.  ``beta`` defaults to 0 so ``out`` acts
    as a pure destination; a nonzero ``beta`` accumulates into it and
    requires ``out``.
    """
    a = require_matrix(as_ndarray(a, "a"), "a")
    b = require_matrix(as_ndarray(b, "b"), "b")
    require_same_dtype((a, "a"), (b, "b"))
    op_a = a.T if trans_a else a
    op_b = b.T if trans_b else b
    check_matmul_shapes(op_a, op_b)
    fn = _routine(_GEMM, a.dtype, "gemm")
    if out is None:
        if beta != 0.0:
            raise KernelError("gemm: beta != 0 accumulates into C — pass out=")
        return fn(
            a.dtype.type(alpha),
            a,
            b,
            trans_a=1 if trans_a else 0,
            trans_b=1 if trans_b else 0,
        )
    expected = (op_a.shape[0], op_b.shape[1])
    if out.shape != expected:
        raise ShapeError(
            f"gemm: out has shape {out.shape}, result is {expected}"
        )
    if out.dtype != a.dtype:
        raise KernelError(
            f"gemm: out dtype {out.dtype} does not match operands ({a.dtype})"
        )
    if not out.flags.f_contiguous:
        raise KernelError(
            "gemm: out must be Fortran-contiguous (use np.empty(..., order='F')) "
            "— any other layout forces a hidden copy"
        )
    return fn(
        a.dtype.type(alpha),
        a,
        b,
        beta=a.dtype.type(beta),
        c=out,
        overwrite_c=1,
        trans_a=1 if trans_a else 0,
        trans_b=1 if trans_b else 0,
    )


def trmm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    alpha: float = 1.0,
    side_left: bool = True,
    lower: bool = True,
    trans_a: bool = False,
    unit_diag: bool = False,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """TRMM: triangular matrix product ``alpha * op(A) B`` (or ``B op(A)``).

    Cost: ~n²m FLOPs — half of the 2n²m a GEMM would spend, because the zero
    triangle is never touched.  This is the kernel the paper's SciPy
    reference uses for the ``LB`` row of Table IV.

    ``out`` is the destination-aware mode.  BLAS TRMM has no separate
    ``C`` argument — it overwrites ``B`` in place — so the out mode
    stages ``B`` into ``out`` (one memcpy, no allocation) and runs the
    routine there with ``overwrite_b=1``.  Same routine, same bits as the
    allocating path, which f2py realizes as exactly this copy-then-
    overwrite sequence on a hidden fresh buffer.
    """
    a = require_square(as_ndarray(a, "a"), "a")
    b = require_matrix(as_ndarray(b, "b"), "b")
    require_same_dtype((a, "a"), (b, "b"))
    n = a.shape[0]
    if side_left and b.shape[0] != n:
        raise ShapeError(f"trmm: A is {a.shape}, B is {b.shape} (left multiply)")
    if not side_left and b.shape[1] != n:
        raise ShapeError(f"trmm: A is {a.shape}, B is {b.shape} (right multiply)")
    fn = _routine(_TRMM, a.dtype, "trmm")
    kwargs = dict(
        side=0 if side_left else 1,
        lower=1 if lower else 0,
        trans_a=1 if trans_a else 0,
        diag=1 if unit_diag else 0,
    )
    if out is None:
        return fn(a.dtype.type(alpha), a, b, **kwargs)
    _check_out(out, b.shape, a.dtype, "trmm")
    np.copyto(out, b)
    result = fn(a.dtype.type(alpha), a, out, overwrite_b=1, **kwargs)
    if result is not out:  # pragma: no cover - overwrite honored for F out
        np.copyto(out, result)
    return out


def syrk(
    a: np.ndarray,
    *,
    alpha: float = 1.0,
    trans: bool = False,
    lower: bool = True,
    fill: bool = True,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """SYRK: symmetric rank-k update ``alpha * A Aᵀ`` (or ``Aᵀ A`` when ``trans``).

    Cost: ~n²k FLOPs — half a GEMM — because only one triangle of the
    symmetric result is computed.  By default the missing triangle is filled
    in afterwards (an O(n²) copy) so the return value is a full dense
    matrix, comparable with ``gemm(a, a.T)``; pass ``fill=False`` to get the
    raw one-triangle BLAS output.

    ``out`` is the destination-aware mode: BLAS writes the computed
    triangle straight into the caller's buffer (``c=out``, ``beta=0``,
    ``overwrite_c=1``) and the mirror fill runs in place — no allocation,
    and the untouched triangle of a dirty buffer is fully overwritten by
    the fill (``out`` therefore requires ``fill=True``).
    """
    a = require_matrix(as_ndarray(a, "a"), "a")
    fn = _routine(_SYRK, a.dtype, "syrk")
    if out is None:
        c = fn(
            a.dtype.type(alpha), a, trans=1 if trans else 0,
            lower=1 if lower else 0,
        )
        return _mirror_triangle(c, lower=lower) if fill else c
    if not fill:
        # BLAS leaves the unreferenced triangle of C untouched; without
        # the fill pass a reused destination would leak stale garbage.
        raise KernelError("syrk: out= requires fill=True")
    n = a.shape[1] if trans else a.shape[0]
    _check_out(out, (n, n), a.dtype, "syrk")
    c = fn(
        a.dtype.type(alpha), a, beta=a.dtype.type(0.0), c=out, overwrite_c=1,
        trans=1 if trans else 0, lower=1 if lower else 0,
    )
    if c is not out:  # pragma: no cover - overwrite honored for F out
        np.copyto(out, c)
        c = out
    return _mirror_triangle(c, lower=lower)


def symm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    alpha: float = 1.0,
    side_left: bool = True,
    lower: bool = True,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """SYMM: ``alpha * A B`` with symmetric ``A`` (2n²m FLOPs; same count as
    GEMM but only one triangle of ``A`` is read, halving its memory traffic).

    ``out`` is the destination-aware mode: the result is written into the
    caller's buffer (BLAS's own ``C`` argument with ``beta=0``,
    ``overwrite_c=1``) and that buffer is returned — no allocation, same
    bits as the allocating path.
    """
    a = require_square(as_ndarray(a, "a"), "a")
    b = require_matrix(as_ndarray(b, "b"), "b")
    require_same_dtype((a, "a"), (b, "b"))
    n = a.shape[0]
    if side_left and b.shape[0] != n:
        raise ShapeError(f"symm: A is {a.shape}, B is {b.shape} (left multiply)")
    if not side_left and b.shape[1] != n:
        raise ShapeError(f"symm: A is {a.shape}, B is {b.shape} (right multiply)")
    fn = _routine(_SYMM, a.dtype, "symm")
    kwargs = dict(side=0 if side_left else 1, lower=1 if lower else 0)
    if out is None:
        return fn(a.dtype.type(alpha), a, b, **kwargs)
    _check_out(out, b.shape if side_left else (b.shape[0], n), a.dtype, "symm")
    result = fn(
        a.dtype.type(alpha), a, b, beta=a.dtype.type(0.0), c=out,
        overwrite_c=1, **kwargs,
    )
    if result is not out:  # pragma: no cover - overwrite honored for F out
        np.copyto(out, result)
        return out
    return result


def trsm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    alpha: float = 1.0,
    side_left: bool = True,
    lower: bool = True,
    trans_a: bool = False,
    unit_diag: bool = False,
) -> np.ndarray:
    """TRSM: solve ``op(A) X = alpha B`` with triangular ``A`` (~n²m FLOPs)."""
    a = require_square(as_ndarray(a, "a"), "a")
    b = require_matrix(as_ndarray(b, "b"), "b")
    require_same_dtype((a, "a"), (b, "b"))
    n = a.shape[0]
    if side_left and b.shape[0] != n:
        raise ShapeError(f"trsm: A is {a.shape}, B is {b.shape} (left solve)")
    if not side_left and b.shape[1] != n:
        raise ShapeError(f"trsm: A is {a.shape}, B is {b.shape} (right solve)")
    fn = _routine(_TRSM, a.dtype, "trsm")
    return fn(
        a.dtype.type(alpha),
        a,
        b,
        side=0 if side_left else 1,
        lower=1 if lower else 0,
        trans_a=1 if trans_a else 0,
        diag=1 if unit_diag else 0,
    )
