"""Functional node constructors.

These are the only sanctioned way to build nodes outside of passes; they
normalize attributes (slice selectors, transpose flags) so that structurally
equal computations produce structurally equal nodes — a precondition for
CSE to work at all.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import GraphError
from ..tensor.properties import PropertySet
from .graph import Graph
from .node import Node


def input_node(
    shape: tuple[int, int],
    dtype: object = "float32",
    *,
    name: str | None = None,
    index: int | None = None,
    props: PropertySet | None = None,
) -> Node:
    """A graph input placeholder.

    ``props`` carries optional property annotations picked up by the
    property-inference pass; ``index`` records the positional argument the
    tracer bound this input to.
    """
    attrs: dict[str, Any] = {"shape": tuple(shape), "dtype": str(np.dtype(dtype))}
    if index is not None:
        attrs["index"] = index
    if props is not None:
        attrs["props"] = frozenset(props)
    return Node("input", (), attrs, name=name)


def const(value: np.ndarray, *, name: str | None = None) -> Node:
    """An embedded constant (normalized to 2-D)."""
    arr = np.asarray(value)
    if arr.ndim == 0:
        arr = arr.reshape(1, 1)
    elif arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    return Node("const", (), {"value": arr}, name=name)


def matmul(
    a: Node,
    b: Node,
    *,
    trans_a: bool = False,
    trans_b: bool = False,
    kernel: str | None = None,
) -> Node:
    """Matrix product node; transpose flags map onto BLAS TRANSA/TRANSB."""
    attrs: dict[str, Any] = {"trans_a": bool(trans_a), "trans_b": bool(trans_b)}
    if kernel is not None:
        attrs["kernel"] = kernel
    return Node("matmul", (a, b), attrs)


def transpose(a: Node) -> Node:
    return Node("transpose", (a,))


def add(a: Node, b: Node) -> Node:
    return Node("add", (a, b))


def sub(a: Node, b: Node) -> Node:
    return Node("sub", (a, b))


def neg(a: Node) -> Node:
    return Node("neg", (a,))


def scale(a: Node, alpha: float) -> Node:
    return Node("scale", (a,), {"alpha": float(alpha)})


def dot(a: Node, b: Node) -> Node:
    return Node("dot", (a, b))


def _normalize_selector(sel: Any) -> Any:
    """Normalize a python index/slice into the IR's selector encoding."""
    if sel is None:
        return None
    if isinstance(sel, (int, np.integer)):
        return int(sel)
    if isinstance(sel, slice):
        if sel.step not in (None, 1):
            raise GraphError("strided slices are not supported in the IR")
        if sel.start is None and sel.stop is None:
            return None
        return (sel.start, sel.stop)
    if isinstance(sel, tuple) and len(sel) == 2:
        return (sel[0], sel[1])
    raise GraphError(f"unsupported slice selector {sel!r}")


def slice_(a: Node, rows: Any = None, cols: Any = None) -> Node:
    """Rectangular sub-block; ``rows``/``cols`` are ints, (start, stop)
    pairs, python slices, or None (take all)."""
    return Node(
        "slice",
        (a,),
        {"rows": _normalize_selector(rows), "cols": _normalize_selector(cols)},
    )


def concat(nodes: list[Node] | tuple[Node, ...], *, axis: int = 0) -> Node:
    return Node("concat", tuple(nodes), {"axis": int(axis)})


def tridiagonal_matmul(t: Node, b: Node) -> Node:
    """TF's opt-in banded product (Sec. III-C)."""
    return Node("tridiagonal_matmul", (t, b))


def loop(
    body: Graph,
    init: Node,
    captured: list[Node] | tuple[Node, ...] = (),
    *,
    trip_count: int,
) -> Node:
    """A counted loop carrying one value.

    ``body`` must have inputs ``[idx, carried, *captured]`` (idx is a 1×1
    tensor holding the float iteration number) and exactly one output of the
    carried shape.
    """
    return Node(
        "loop",
        (init, *captured),
        {"body": body, "trip_count": int(trip_count)},
    )
