"""Table VI — code motion.

Expected shape: loop-invariant row naive ≈ reco (unroll + CSE hoists the
product in both frameworks); partial-access rows naive ≫ reco.
"""

import pytest

from repro.frameworks import pytsim, tfsim


@pytest.fixture(scope="module")
def loop_fns(w, dense):
    a, b, _ = dense
    v1, v2, v3 = w.vector(0), w.vector(1), w.vector(2)

    @tfsim.function
    def naive(p, q, u, v, z):
        outs = []
        for vec in (u, v, z):
            outs.append(p @ q + vec @ tfsim.transpose(vec))
        return outs

    @tfsim.function
    def reco(p, q, u, v, z):
        tmp = p @ q
        return [tmp + vec @ tfsim.transpose(vec) for vec in (u, v, z)]

    naive.get_concrete(a, b, v1, v2, v3)
    reco.get_concrete(a, b, v1, v2, v3)
    return (a, b, v1, v2, v3), naive, reco


@pytest.fixture(scope="module")
def partial_fns(dense):
    a, b, _ = dense

    @tfsim.function
    def sum_naive(p, q):
        return (p + q)[2, 2]

    @tfsim.function
    def sum_reco(p, q):
        return p[2, 2] + q[2, 2]

    @pytsim.jit.script
    def prod_naive(p, q):
        return (p @ q)[2, 2]

    @pytsim.jit.script
    def prod_reco(p, q):
        return p[2, :] @ q[:, 2]

    for fn in (sum_naive, sum_reco, prod_naive, prod_reco):
        fn.get_concrete(a, b)
    return sum_naive, sum_reco, prod_naive, prod_reco


@pytest.mark.benchmark(group="table6-loop-invariant")
class TestLoopInvariant:
    def test_naive_product_inside_loop(self, benchmark, loop_fns):
        args, naive, _ = loop_fns
        benchmark(lambda: naive(*args))

    def test_reco_product_hoisted(self, benchmark, loop_fns):
        args, _, reco = loop_fns
        benchmark(lambda: reco(*args))


@pytest.mark.benchmark(group="table6-partial-sum")
class TestPartialSum:
    def test_naive_full_sum_then_slice(self, benchmark, dense, partial_fns):
        a, b, _ = dense
        benchmark(lambda: partial_fns[0](a, b))

    def test_reco_element_sum(self, benchmark, dense, partial_fns):
        a, b, _ = dense
        benchmark(lambda: partial_fns[1](a, b))


@pytest.mark.benchmark(group="table6-partial-product")
class TestPartialProduct:
    def test_naive_full_product_then_slice(self, benchmark, dense, partial_fns):
        a, b, _ = dense
        benchmark(lambda: partial_fns[2](a, b))

    def test_reco_row_dot_col(self, benchmark, dense, partial_fns):
        a, b, _ = dense
        benchmark(lambda: partial_fns[3](a, b))
