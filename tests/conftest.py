"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import override
from repro.tensor import (
    random_diagonal,
    random_general,
    random_lower_triangular,
    random_orthogonal,
    random_spd,
    random_symmetric,
    random_tridiagonal,
    random_vector,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def n() -> int:
    """Default matrix size for functional tests (small, fast)."""
    return 24


@pytest.fixture
def operands(n):
    """A bundle of seeded operands at size ``n``."""
    return {
        "A": random_general(n, seed=1),
        "B": random_general(n, seed=2),
        "C": random_general(n, seed=3),
        "H": random_general(n, seed=4),
        "L": random_lower_triangular(n, seed=5),
        "S": random_symmetric(n, seed=6),
        "P": random_spd(n, seed=7),
        "Q": random_orthogonal(n, seed=8),
        "T": random_tridiagonal(n, seed=9),
        "D": random_diagonal(n, seed=10),
        "x": random_vector(n, seed=11),
        "y": random_vector(n, seed=12),
    }


@pytest.fixture
def tiny_bench_config():
    """Config override so timing-related code runs fast in tests."""
    with override(repetitions=3, warmup=1, bootstrap_samples=100):
        yield
