"""PlanCache and graph-signature correctness.

The satellite contract: two structurally identical graphs built
independently must collide in the cache; graphs differing only in a
property annotation or an attr (e.g. ``trans_a``) must not.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.frameworks import pytsim, tfsim
from repro.ir import Graph, builder, trace
from repro.runtime import PlanCache, default_plan_cache, graph_signature
from repro.tensor import random_general
from repro.tensor.properties import Property


def _inputs(n=8, dtype="float32"):
    a = builder.input_node((n, n), dtype, name="a")
    b = builder.input_node((n, n), dtype, name="b")
    return a, b


class TestGraphSignature:
    def test_independent_traces_collide(self, operands):
        """Same Python function, two traces → different node names/ids,
        same signature."""
        fn = lambda a, b: (a.T @ b).T @ (a.T @ b)  # noqa: E731
        g1 = trace(fn, [operands["A"], operands["B"]])
        g2 = trace(fn, [operands["A"], operands["B"]])
        assert g1 is not g2
        assert graph_signature(g1) == graph_signature(g2)

    def test_attr_difference_separates(self):
        a1, b1 = _inputs()
        a2, b2 = _inputs()
        g_plain = Graph([builder.matmul(a1, b1)], inputs=[a1, b1])
        g_trans = Graph(
            [builder.matmul(a2, b2, trans_a=True)], inputs=[a2, b2]
        )
        assert graph_signature(g_plain) != graph_signature(g_trans)

    def test_property_annotation_separates(self):
        n = 8
        plain = builder.input_node((n, n), "float32", name="p")
        annotated = builder.input_node(
            (n, n), "float32", name="p",
            props=frozenset({Property.SYMMETRIC}),
        )
        g1 = Graph([builder.matmul(plain, plain)], inputs=[plain])
        g2 = Graph([builder.matmul(annotated, annotated)], inputs=[annotated])
        assert graph_signature(g1) != graph_signature(g2)

    def test_shape_and_dtype_separate(self, operands):
        fn = lambda a: a @ a  # noqa: E731
        g1 = trace(fn, [operands["A"]])
        g2 = trace(fn, [random_general(8, seed=1)])
        assert graph_signature(g1) != graph_signature(g2)

    def test_const_payload_separates(self):
        a1, _ = _inputs()
        a2, _ = _inputs()
        c1 = builder.const(np.ones((8, 8), dtype=np.float32))
        c2 = builder.const(np.zeros((8, 8), dtype=np.float32))
        g1 = Graph([builder.add(a1, c1)], inputs=[a1])
        g2 = Graph([builder.add(a2, c2)], inputs=[a2])
        assert graph_signature(g1) != graph_signature(g2)

    def test_loop_bodies_compared_structurally(self, operands):
        """Bodies with equal op histograms but different wiring must not
        collide (a repr()-based key would)."""
        a, b = operands["A"], operands["B"]

        def make(body):
            def fn(p, q):
                return tfsim.fori_loop(2, body, tfsim.zeros(*p.shape), [p, q])

            return trace(fn, [a, b])

        g_ab = make(lambda i, acc, aa, bb: acc + aa @ bb)
        g_ba = make(lambda i, acc, aa, bb: acc + bb @ aa)
        g_ab2 = make(lambda i, acc, aa, bb: acc + aa @ bb)
        assert graph_signature(g_ab) != graph_signature(g_ba)
        assert graph_signature(g_ab) == graph_signature(g_ab2)

    def test_output_selection_separates(self):
        a, b = _inputs()
        prod = builder.matmul(a, b)
        total = builder.add(prod, prod)
        g_one = Graph([total], inputs=[a, b])
        g_two = Graph([prod, total], inputs=[a, b])
        assert graph_signature(g_one) != graph_signature(g_two)


class TestPlanCache:
    def test_structural_hit(self, operands):
        cache = PlanCache(maxsize=8)
        fn = lambda a, b: a.T @ b + a.T @ b  # noqa: E731
        g1 = trace(fn, [operands["A"], operands["B"]])
        g2 = trace(fn, [operands["A"], operands["B"]])
        p1 = cache.get(g1)
        p2 = cache.get(g2)
        assert p1 is p2
        assert len(cache) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_attr_and_props_miss(self, operands):
        cache = PlanCache(maxsize=8)
        a1, b1 = _inputs()
        a2, b2 = _inputs()
        cache.get(Graph([builder.matmul(a1, b1)], inputs=[a1, b1]))
        cache.get(Graph([builder.matmul(a2, b2, trans_a=True)],
                        inputs=[a2, b2]))
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        assert len(cache) == 2

    def test_lru_eviction(self, operands):
        cache = PlanCache(maxsize=2)
        graphs = [
            trace(lambda a: a @ a, [random_general(n, seed=n)])
            for n in (4, 5, 6)
        ]
        for g in graphs:
            cache.get(g)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert not cache.contains(graphs[0])  # oldest evicted
        assert cache.contains(graphs[1]) and cache.contains(graphs[2])

    def test_lru_order_refreshed_by_hits(self):
        cache = PlanCache(maxsize=2)
        g4 = trace(lambda a: a @ a, [random_general(4, seed=1)])
        g5 = trace(lambda a: a @ a, [random_general(5, seed=1)])
        g6 = trace(lambda a: a @ a, [random_general(6, seed=1)])
        cache.get(g4)
        cache.get(g5)
        cache.get(g4)  # refresh g4 → g5 becomes LRU
        cache.get(g6)
        assert cache.contains(g4) and cache.contains(g6)
        assert not cache.contains(g5)

    def test_fold_constants_keys_separately(self):
        a, b = _inputs()
        g = Graph([builder.matmul(a, b)], inputs=[a, b])
        cache = PlanCache(maxsize=8)
        p1 = cache.get(g)
        p2 = cache.get(g, fold_constants=True)
        assert p1 is not p2
        assert len(cache) == 2

    def test_clear_resets(self):
        cache = PlanCache(maxsize=8)
        cache.get(trace(lambda a: a @ a, [random_general(4, seed=1)]))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)


class TestFrameworkIntegration:
    def test_same_expression_shares_plan_across_frameworks(self, operands):
        """tfsim and pytsim traces of one expression land on one plan in
        the process-wide cache — the cross-trace dedup the tentpole asks
        for."""

        @tfsim.function
        def f(a, b):
            return (a.T @ b).T @ (a.T @ b)

        @pytsim.jit.script
        def g(a, b):
            return (a.T @ b).T @ (a.T @ b)

        a, b = operands["A"], operands["B"]
        plan_tf = f.get_concrete(a, b).plan
        plan_pyt = g.get_concrete(a, b).plan
        assert plan_tf is plan_pyt

    def test_default_cache_is_processwide(self):
        assert default_plan_cache() is default_plan_cache()

    def test_call_results_unchanged_by_cache_hits(self, operands):
        @tfsim.function
        def f(a, b):
            return a @ b

        a, b = operands["A"], operands["B"]
        first = f(a, b)
        second = f(a, b)
        assert first.numpy().tobytes() == second.numpy().tobytes()
        ref = a.numpy() @ b.numpy()
        np.testing.assert_allclose(first.numpy(), ref, rtol=1e-5)
