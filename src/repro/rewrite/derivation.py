"""Breadth-first derivation-graph search.

Nodes are canonical expressions, edges are rule applications; the search
explores until a node budget is exhausted and reports the cheapest variant
found, with the rule path from the root — the structure the paper describes
("the different paths from root to leaf nodes are the alternative programs
... the program with minimum cost can be found by searching ... the
derivation graph").
"""

from __future__ import annotations

import dataclasses
from collections import deque

import networkx as nx

from .cost import expr_flops
from .expr import Expr
from .rules import DEFAULT_RULES, Rule, apply_everywhere


@dataclasses.dataclass(frozen=True)
class DerivationResult:
    """Outcome of a derivation search."""

    best: Expr
    best_flops: int
    root_flops: int
    explored: int
    path: tuple[str, ...]  # rule names root -> best

    @property
    def speedup_flops(self) -> float:
        """Modelled FLOP ratio root/best (≥ 1 when the search helped)."""
        return self.root_flops / max(self.best_flops, 1)


class DerivationGraph:
    """Explore equivalent variants of an expression under rewrite rules."""

    def __init__(
        self,
        root: Expr,
        rules: tuple[Rule, ...] = DEFAULT_RULES,
        *,
        max_nodes: int = 2000,
        aware_cost: bool = False,
    ) -> None:
        self.root = root
        self.rules = rules
        self.max_nodes = max_nodes
        self.aware_cost = aware_cost
        self.graph = nx.DiGraph()

    def explore(self) -> "DerivationGraph":
        """BFS over rule applications up to ``max_nodes`` expressions."""
        root_key = self.root.key()
        self.graph.add_node(
            root_key,
            expr=self.root,
            flops=expr_flops(self.root, aware=self.aware_cost),
        )
        queue: deque[Expr] = deque([self.root])
        while queue and self.graph.number_of_nodes() < self.max_nodes:
            current = queue.popleft()
            ckey = current.key()
            for rule in self.rules:
                for app in apply_everywhere(rule, current):
                    nkey = app.result.key()
                    if nkey == ckey:
                        continue
                    if nkey not in self.graph:
                        self.graph.add_node(
                            nkey,
                            expr=app.result,
                            flops=expr_flops(app.result, aware=self.aware_cost),
                        )
                        queue.append(app.result)
                    if not self.graph.has_edge(ckey, nkey):
                        self.graph.add_edge(
                            ckey, nkey, rule=app.rule, description=app.description
                        )
        return self

    def variants(self) -> list[tuple[Expr, int]]:
        """All discovered variants, cheapest first."""
        if self.graph.number_of_nodes() == 0:
            self.explore()
        items = [
            (data["expr"], data["flops"]) for _, data in self.graph.nodes(data=True)
        ]
        items.sort(key=lambda pair: pair[1])
        return items

    def result(self) -> DerivationResult:
        """Cheapest variant plus the rule path that derives it."""
        if self.graph.number_of_nodes() == 0:
            self.explore()
        root_key = self.root.key()
        best_key, best_data = min(
            self.graph.nodes(data=True), key=lambda kv: kv[1]["flops"]
        )
        if best_key == root_key:
            path_rules: tuple[str, ...] = ()
        else:
            node_path = nx.shortest_path(self.graph, root_key, best_key)
            path_rules = tuple(
                self.graph.edges[u, v]["rule"]
                for u, v in zip(node_path, node_path[1:])
            )
        return DerivationResult(
            best=best_data["expr"],
            best_flops=best_data["flops"],
            root_flops=self.graph.nodes[root_key]["flops"],
            explored=self.graph.number_of_nodes(),
            path=path_rules,
        )
