"""``pytsim.linalg`` — carries ``multi_dot``, the chain solver.

``torch.linalg.multi_dot`` is the one place PyTorch *does* solve the
matrix-chain problem (the paper's Fig. 5 and Table III "multi dot"
column): the user supplies the whole chain at once, the DP picks the
minimum-FLOP association, and the products execute in that order.  Our
implementation uses the same :mod:`repro.chain` DP the aware pass uses —
so Table III's "multi_dot matches the best explicit parenthesization"
observation holds by construction.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ...chain.dp import optimal_parenthesization
from ...errors import ChainError
from ...ir import builder
from ...ir.node import Node
from ...ir.tracing import SymbolicTensor
from ...tensor.tensor import Tensor
from .tensor_api import matmul, t  # re-exported torch-style

__all__ = ["matmul", "multi_dot"]


def _multi_dot_symbolic(items: list[SymbolicTensor]) -> SymbolicTensor:
    shapes = [it.shape for it in items]
    solution = optimal_parenthesization(shapes)

    def build(tree: object) -> Node:
        if isinstance(tree, int):
            return items[tree].node
        return builder.matmul(build(tree[0]), build(tree[1]))

    return SymbolicTensor(build(solution.tree))


def multi_dot(tensors: Sequence["Tensor | SymbolicTensor"]) -> "Tensor | SymbolicTensor":
    """``torch.linalg.multi_dot``: evaluate a chain in the optimal order.

    Accepts two or more matrices (vectors as n×1 / 1×n).  Eagerly the
    products run immediately through the BLAS substrate following the DP
    tree; under tracing the optimal tree is emitted as nested ``matmul``
    nodes (the DP runs at trace time, using the placeholder shapes — just
    like the real op runs it per call on concrete shapes).
    """
    items = list(tensors)
    if len(items) < 2:
        raise ChainError(f"multi_dot needs at least 2 matrices, got {len(items)}")
    if any(isinstance(x, SymbolicTensor) for x in items):
        sym: list[SymbolicTensor] = []
        for x in items:
            if isinstance(x, SymbolicTensor):
                sym.append(x)
            elif isinstance(x, Tensor):
                sym.append(SymbolicTensor(builder.const(x.data), x.props))
            else:
                sym.append(SymbolicTensor(builder.const(np.asarray(x))))
        return _multi_dot_symbolic(sym)

    tensors_in = [x if isinstance(x, Tensor) else Tensor(x) for x in items]
    solution = optimal_parenthesization([x.shape for x in tensors_in])

    def evaluate(tree: object) -> Tensor:
        if isinstance(tree, int):
            return tensors_in[tree]
        return evaluate(tree[0]) @ evaluate(tree[1])

    return evaluate(solution.tree)
