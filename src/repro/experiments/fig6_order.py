"""Fig. 6 — equal-FLOP variants that differ only in instruction order.

The paper's Fig. 6: ``Y = (AB)(CD)`` computed as

* Variant 1: ``U = A@B; V = C@D; Y = U@V``
* Variant 2: ``V = C@D; U = A@B; Y = U@V``

Both perform exactly the same three GEMMs; any timing difference comes from
memory behaviour (which temporary is cache-hot when the final product runs
— Peise & Bientinesi [34]).  This experiment measures both orders with the
cache flushed between repetitions and applies the bootstrap test of [11]:
on typical hardware with these sizes the verdict is *indistinguishable* —
which is the paper's point that FLOPs, not instruction order, dominate for
compute-bound dense kernels.
"""

from __future__ import annotations

from ..bench.bootstrap import bootstrap_compare
from ..bench.cache import CacheFlusher
from ..bench.registry import register_experiment
from ..bench.reporting import Cell, ExperimentTable
from ..bench.timing import measure
from ..kernels import blas3
from .sizes import experiment_size
from .workloads import Workloads


@register_experiment(
    "fig6",
    "Fig. 6",
    "equal-FLOP instruction orders of (AB)(CD): memory effects + bootstrap verdict",
)
def run(n: int | None = None, repetitions: int | None = None) -> ExperimentTable:
    n = experiment_size(n)
    w = Workloads(n)
    a, b = w.fortran(w.general(0)), w.fortran(w.general(1))
    c, d = w.fortran(w.general(2)), w.fortran(w.general_rect(n, n, 3))
    flush = CacheFlusher()

    def variant1():
        u = blas3.gemm(a, b)
        v = blas3.gemm(c, d)
        return blas3.gemm(u, v)

    def variant2():
        v = blas3.gemm(c, d)
        u = blas3.gemm(a, b)
        return blas3.gemm(u, v)

    def flushed(fn):
        def run_once():
            flush()
            return fn()

        return run_once

    t1 = measure(flushed(variant1), label="variant1 (U first)",
                 repetitions=repetitions)
    t2 = measure(flushed(variant2), label="variant2 (V first)",
                 repetitions=repetitions)
    verdict = bootstrap_compare(t1, t2)

    table = ExperimentTable(
        title=f"Fig. 6: instruction-order variants of (AB)(CD), n = {n}",
        columns=["best (s)", "median (s)", "FLOPs"],
    )
    flops = f"{3 * 2 * n**3:,}"
    table.add_row("U=AB; V=CD; Y=UV",
                  best__s_=t1.best, median__s_=t1.median,
                  FLOPs=Cell(text=flops))
    table.add_row("V=CD; U=AB; Y=UV",
                  best__s_=t2.best, median__s_=t2.median,
                  FLOPs=Cell(text=flops))
    table.notes.append(f"bootstrap verdict [11]: {verdict.describe()}")
    table.notes.append(
        "expected shape: identical FLOPs; differences, if any, are memory "
        "effects — typically statistically indistinguishable for dense "
        "compute-bound GEMMs (the paper's premise for using FLOPs as cost)"
    )
    return table
