"""Compiled execution runtime: plans, plan cache, fusion, batched execution.

The reference :class:`~repro.ir.interpreter.Interpreter` re-walks the
graph on *every* call — recomputing topological order and liveness and
re-selecting kernels per node.  That is exactly the per-dispatch overhead
the paper attributes to TF/PyTorch eager execution; graph mode only wins
when knowledge about the expression is compiled into the execution once.
This package is that compile-once / execute-many layer:

``signature``  Canonical structural key of a Graph (ops, shapes, dtypes,
               attrs, property annotations) — node-identity-free, so
               independently built but structurally identical graphs
               share one key.
``compiler``   ``compile_plan(graph)``: Graph → :class:`Plan` — a flat
               instruction list with the schedule, kernel selection,
               FLOP/report records and buffer liveness all resolved at
               compile time.  Slot recycling is shape-aware, so every
               slot has one static shape.
``fusion``     Opt-in post-schedule rewrite (``compile_plan(...,
               fusion=True)``): adjacent elementwise chains collapse into
               single fused closures and trailing scales fold into GEMM's
               alpha — fewer kernel launches, no materialized
               intermediates, FLOP-total/peak-bytes-preserving reports.
``plan``       The :class:`Plan` object and its executor, plus
               :class:`PlanArena` — preallocated per-slot ndarray storage
               driven through the kernels' destination-aware (``out=``)
               variants, making repeated execution allocation-free after
               warmup.  Execution is output- and report-parity with the
               Interpreter in every fusion × arena combination (verified
               by ``tests/test_runtime_plans.py``).
``cache``      :class:`PlanCache` — signature-keyed LRU of compiled
               plans (the fold/fusion knobs key separately) with
               hit/miss/eviction stats and single-flight concurrent
               compilation.  Caches are instance-scoped and owned by
               :class:`repro.api.Session`; the process-wide default
               instance survives as the default session's cache (reaching
               it via ``default_plan_cache`` is deprecated).
``batch``      One plan over many feed sets, sequentially or via a
               thread pool (BLAS kernels release the GIL), optionally
               through one reused arena per worker.
"""

from .batch import ARENA_MODES, BatchResult, execute_batch
from .cache import CacheStats, PlanCache, default_plan_cache
from .compiler import compile_plan
from .fusion import FusionStats, fuse_instructions
from .plan import Instruction, Plan, PlanArena
from .signature import graph_signature

__all__ = [
    "ARENA_MODES",
    "BatchResult",
    "CacheStats",
    "FusionStats",
    "Instruction",
    "Plan",
    "PlanArena",
    "PlanCache",
    "compile_plan",
    "default_plan_cache",
    "execute_batch",
    "fuse_instructions",
    "graph_signature",
]
