"""Kernel registry: property-driven kernel selection.

This is the machinery the paper finds *missing* from TF/PyT: given the
properties of the operands of a matrix product, choose the cheapest
applicable kernel (Sec. III-C).  The default simulated-framework pipelines
never consult it; the opt-in ``property_dispatch`` pass does.

The registry maps a (op, operand-properties) query to a
:class:`KernelInfo` carrying the FLOP formula and an executor closure, so
the chain optimizer and derivation graph can cost structured products
correctly.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from ..errors import KernelError
from ..tensor.properties import Property, PropertySet
from . import blas3, special
from .flops import (
    flops_diag_matmul,
    flops_gemm,
    flops_symm,
    flops_tridiag_matmul,
    flops_trmm,
)


@dataclasses.dataclass(frozen=True)
class KernelInfo:
    """A dispatchable matrix-product kernel.

    Attributes
    ----------
    name:
        BLAS-style kernel name (``gemm``, ``trmm``, ...).
    description:
        Human-readable note shown in experiment reports.
    flops:
        ``flops(m, k, n) -> int`` for an (m×k)·(k×n) product.
    applicable:
        ``applicable(props_a, props_b) -> bool``.
    execute:
        ``execute(a, b, props_a, props_b) -> ndarray``.
    priority:
        Tie-break: lower runs first when FLOP counts tie (prefer the more
        specialized kernel).
    """

    name: str
    description: str
    flops: Callable[[int, int, int], int]
    applicable: Callable[[PropertySet, PropertySet], bool]
    execute: Callable[[np.ndarray, np.ndarray, PropertySet, PropertySet], np.ndarray]
    priority: int = 100


def _exec_gemm(a, b, pa, pb):
    return blas3.gemm(a, b)


def _exec_identity_left(a, b, pa, pb):
    return np.array(b, copy=True)


def _exec_zero(a, b, pa, pb):
    return np.zeros((a.shape[0], b.shape[1]), dtype=a.dtype)


def _exec_diag_left(a, b, pa, pb):
    return special.diag_matmul(a, b)


def _exec_tridiag_left(a, b, pa, pb):
    return special.tridiagonal_matmul(a, b)


def _exec_trmm_left(a, b, pa, pb):
    lower = Property.LOWER_TRIANGULAR in pa
    return blas3.trmm(a, b, lower=lower)


def _exec_trmm_right(a, b, pa, pb):
    lower = Property.LOWER_TRIANGULAR in pb
    return blas3.trmm(b, a, side_left=False, lower=lower)


def _exec_symm_left(a, b, pa, pb):
    return blas3.symm(a, b)


#: FLOP formulas below take (m, k, n) of the product (m×k)·(k×n).
_DEFAULT_KERNELS: tuple[KernelInfo, ...] = (
    KernelInfo(
        name="zero",
        description="either operand is a zero matrix: result is zero, 0 FLOPs",
        flops=lambda m, k, n: 0,
        applicable=lambda pa, pb: Property.ZERO in pa or Property.ZERO in pb,
        execute=_exec_zero,
        priority=0,
    ),
    KernelInfo(
        name="identity",
        description="left operand is the identity: result is B, 0 FLOPs",
        flops=lambda m, k, n: 0,
        applicable=lambda pa, pb: Property.IDENTITY in pa,
        execute=_exec_identity_left,
        priority=1,
    ),
    KernelInfo(
        name="identity_right",
        description="right operand is the identity: result is A, 0 FLOPs",
        flops=lambda m, k, n: 0,
        applicable=lambda pa, pb: Property.IDENTITY in pb,
        execute=lambda a, b, pa, pb: np.array(a, copy=True),
        priority=1,
    ),
    KernelInfo(
        name="diag_matmul",
        description="left operand diagonal: row scaling, nm FLOPs",
        flops=lambda m, k, n: flops_diag_matmul(k, n),
        applicable=lambda pa, pb: Property.DIAGONAL in pa,
        execute=_exec_diag_left,
        priority=10,
    ),
    KernelInfo(
        name="tridiagonal_matmul",
        description="left operand tridiagonal: banded scaling, 6nm FLOPs",
        flops=lambda m, k, n: flops_tridiag_matmul(k, n),
        applicable=lambda pa, pb: Property.TRIDIAGONAL in pa,
        execute=_exec_tridiag_left,
        priority=20,
    ),
    KernelInfo(
        name="trmm",
        description="left operand triangular: TRMM, n²m FLOPs (half of GEMM)",
        flops=lambda m, k, n: flops_trmm(m, n),
        applicable=lambda pa, pb: Property.LOWER_TRIANGULAR in pa
        or Property.UPPER_TRIANGULAR in pa,
        execute=_exec_trmm_left,
        priority=30,
    ),
    KernelInfo(
        name="trmm_right",
        description="right operand triangular: TRMM from the right, mn² FLOPs",
        flops=lambda m, k, n: flops_trmm(n, m),
        applicable=lambda pa, pb: Property.LOWER_TRIANGULAR in pb
        or Property.UPPER_TRIANGULAR in pb,
        execute=_exec_trmm_right,
        priority=31,
    ),
    KernelInfo(
        name="symm",
        description="left operand symmetric: SYMM, 2n²m FLOPs (half the "
        "memory traffic of GEMM)",
        flops=lambda m, k, n: flops_symm(m, n),
        applicable=lambda pa, pb: Property.SYMMETRIC in pa,
        execute=_exec_symm_left,
        priority=40,
    ),
    KernelInfo(
        name="gemm",
        description="general dense product: GEMM, 2mkn FLOPs",
        flops=flops_gemm,
        applicable=lambda pa, pb: True,
        execute=_exec_gemm,
        priority=1000,
    ),
)


class KernelRegistry:
    """Ordered collection of :class:`KernelInfo` with cheapest-first selection."""

    def __init__(self, kernels: tuple[KernelInfo, ...] = _DEFAULT_KERNELS) -> None:
        self._kernels = list(kernels)

    def register(self, kernel: KernelInfo) -> None:
        """Add a kernel (e.g. a framework-specific special op)."""
        self._kernels.append(kernel)

    def __iter__(self):
        return iter(self._kernels)

    def __len__(self) -> int:
        return len(self._kernels)

    def get(self, name: str) -> KernelInfo:
        """Look up a kernel by name."""
        for k in self._kernels:
            if k.name == name:
                return k
        raise KernelError(f"no kernel named {name!r} is registered")

    def candidates(
        self, props_a: PropertySet, props_b: PropertySet
    ) -> list[KernelInfo]:
        """All kernels applicable to the given operand properties."""
        return [k for k in self._kernels if k.applicable(props_a, props_b)]

    def select(
        self,
        props_a: PropertySet,
        props_b: PropertySet,
        m: int,
        k: int,
        n: int,
    ) -> KernelInfo:
        """The cheapest applicable kernel for an (m×k)·(k×n) product."""
        options = self.candidates(props_a, props_b)
        if not options:  # pragma: no cover - gemm is always applicable
            raise KernelError("no applicable kernel (registry is empty?)")
        return min(options, key=lambda ki: (ki.flops(m, k, n), ki.priority))


#: Process-wide default registry.
default_registry = KernelRegistry()


def select_matmul_kernel(
    props_a: PropertySet,
    props_b: PropertySet,
    m: int,
    k: int,
    n: int,
    *,
    registry: KernelRegistry | None = None,
) -> KernelInfo:
    """Convenience wrapper over :meth:`KernelRegistry.select`.

    >>> from repro.tensor.properties import Property, closure
    >>> ki = select_matmul_kernel(closure({Property.DIAGONAL}), frozenset(), 8, 8, 8)
    >>> ki.name
    'diag_matmul'
    """
    reg = registry if registry is not None else default_registry
    return reg.select(props_a, props_b, m, k, n)
