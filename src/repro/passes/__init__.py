"""Graph-optimizer passes — the simulated frameworks' Grappler/JIT analogue.

Two families:

**Default passes** (what TF/PyT actually do, per the paper):

* ``constant_folding`` — evaluate const-only sub-DAGs at optimize time.
* ``transpose_elim``  — cancel double transposes and fuse transposes into
  matmul TRANSA/TRANSB flags (how ``AᵀB`` reaches MKL as one GEMM).
* ``cse``             — duplicate-node elimination over the DAG (Fig. 3).
* ``arithmetic``      — local simplifications such as ``X + X → 2·X``
  (the rewrite the paper observes in Experiment 1).
* ``simplify``        — no-op elimination (scale×1, full slices, −(−X)).
* ``code_motion``     — loop-invariant code motion for explicit ``loop``
  nodes (Python loops just unroll at trace time, where CSE subsumes LICM —
  exactly the DAG story the paper tells).

**Aware passes** (the paper's recommendations; opt-in, off by default):

* ``chain_reorder``     — optimal matrix-chain parenthesization (Exp. 2).
* ``property_dispatch`` — property inference + structured-kernel hints
  (TRMM/SYRK/diag/tridiag; Exp. 3), plus ``QᵀQ → I`` style simplification.
* ``distributivity``    — cost-guided distributive rewrites (Exp. 4).
* ``partial_access``    — push slices through sums/products (Exp. 5).
"""

from .base import GraphPass, PassStats
from .pipeline import PassPipeline
from .cse import CommonSubexpressionElimination
from .constant_folding import ConstantFolding
from .transpose_elim import TransposeElimination
from .arithmetic import ArithmeticSimplification
from .dce import NoOpElimination
from .code_motion import LoopInvariantCodeMotion
from .chain_reorder import ChainReordering
from .property_dispatch import PropertyDispatch
from .distributivity import DistributivityRewrite
from .partial_access import PartialOperandAccess

__all__ = [
    "GraphPass",
    "PassStats",
    "PassPipeline",
    "CommonSubexpressionElimination",
    "ConstantFolding",
    "TransposeElimination",
    "ArithmeticSimplification",
    "NoOpElimination",
    "LoopInvariantCodeMotion",
    "ChainReordering",
    "PropertyDispatch",
    "DistributivityRewrite",
    "PartialOperandAccess",
    "default_pipeline",
    "aware_pipeline",
]


def default_pipeline() -> PassPipeline:
    """The pipeline both simulated frameworks run in graph mode.

    Mirrors the optimizations the paper *observes* in TF/PyT: constant
    folding, transpose fusion, CSE, ``X+X`` folding, no-op cleanup, and
    LICM for explicit loop constructs.  Deliberately absent: chain
    reordering, property dispatch, distributivity, partial-access — the
    paper's negative findings.
    """
    return PassPipeline(
        [
            ConstantFolding(),
            TransposeElimination(),
            CommonSubexpressionElimination(),
            ArithmeticSimplification(),
            NoOpElimination(),
            LoopInvariantCodeMotion(),
            CommonSubexpressionElimination(),
        ]
    )


def aware_pipeline() -> PassPipeline:
    """Default pipeline plus every "linear-algebra-aware" pass.

    This is the ablation configuration: what the frameworks *could* do if
    they adopted the paper's recommendations.
    """
    return PassPipeline(
        [
            ConstantFolding(),
            TransposeElimination(),
            CommonSubexpressionElimination(),
            ArithmeticSimplification(),
            NoOpElimination(),
            LoopInvariantCodeMotion(),
            CommonSubexpressionElimination(),
            DistributivityRewrite(),
            ChainReordering(),
            CommonSubexpressionElimination(),
            PartialOperandAccess(),
            PropertyDispatch(),
            NoOpElimination(),
        ]
    )
