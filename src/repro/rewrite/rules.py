"""Rewrite rules for the derivation graph.

Each rule yields mathematically equivalent neighbours of an expression.
Rules are applied *at every sub-expression position* by the generic
traversal in :func:`apply_everywhere`; the derivation graph takes it from
there.  Canonicalization (in :mod:`repro.rewrite.expr`) already handles the
cost-neutral identities (transpose pushing, zero/identity collapse, ``X+X →
2X``), so the rules here are exactly the cost-*changing* algebra of the
paper's Experiment 4: distributivity in both directions, plus
property-driven cancellation (``QᵀQ → I``).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterator

from .expr import Add, Expr, Identity, MatMul, Scale, Symbol, Transpose


@dataclasses.dataclass(frozen=True)
class RuleApplication:
    """One rewrite: the resulting whole expression and a description."""

    result: Expr
    rule: str
    description: str


@dataclasses.dataclass(frozen=True)
class Rule:
    """A named local rewrite: ``local(expr)`` yields replacement sub-exprs."""

    name: str
    local: Callable[[Expr], Iterator[tuple[Expr, str]]]


# -- local rewrites ----------------------------------------------------------------


def _expand(expr: Expr) -> Iterator[tuple[Expr, str]]:
    """Distribute a product over one of its Add factors.

    ``A (B + C) D → A B D + A C D`` — the left-to-right direction of the
    paper's Eq. 9/10 (may raise or lower FLOPs; the search decides).
    """
    if not isinstance(expr, MatMul):
        return
    for i, factor in enumerate(expr.factors):
        if isinstance(factor, Add):
            prefix = expr.factors[:i]
            suffix = expr.factors[i + 1 :]
            terms = [MatMul(*prefix, t, *suffix) if (prefix or suffix) else t
                     for t in factor.terms]
            yield Add(*terms), f"distribute over sum at factor {i}"


def _split_leading(term: Expr) -> tuple[Expr | None, Expr | None, float]:
    """Decompose a term into (first factor, rest, coefficient)."""
    alpha = 1.0
    if isinstance(term, Scale):
        alpha = term.alpha
        term = term.child
    if isinstance(term, MatMul):
        rest = (
            MatMul(*term.factors[1:])
            if len(term.factors) > 2
            else term.factors[1]
        )
        return term.factors[0], rest, alpha
    return None, None, alpha


def _split_trailing(term: Expr) -> tuple[Expr | None, Expr | None, float]:
    alpha = 1.0
    if isinstance(term, Scale):
        alpha = term.alpha
        term = term.child
    if isinstance(term, MatMul):
        rest = (
            MatMul(*term.factors[:-1])
            if len(term.factors) > 2
            else term.factors[0]
        )
        return term.factors[-1], rest, alpha
    return None, None, alpha


def _factor(expr: Expr) -> Iterator[tuple[Expr, str]]:
    """Collect a common leading/trailing factor out of a pair of terms.

    ``A B + A C → A (B + C)`` — the right-to-left direction of Eq. 9.
    Applied to every pair of terms of a sum.
    """
    if not isinstance(expr, Add):
        return
    terms = expr.terms
    for i in range(len(terms)):
        for j in range(i + 1, len(terms)):
            li, ri, ai = _split_leading(terms[i])
            lj, rj, aj = _split_leading(terms[j])
            if li is not None and lj is not None and li == lj:
                combined = MatMul(li, Add(Scale(ai, ri), Scale(aj, rj)))
                others = [t for k, t in enumerate(terms) if k not in (i, j)]
                yield (
                    Add(combined, *others) if others else combined,
                    f"factor out leading {li.pretty()}",
                )
            ti, hi, ai = _split_trailing(terms[i])
            tj, hj, aj = _split_trailing(terms[j])
            if ti is not None and tj is not None and ti == tj:
                combined = MatMul(Add(Scale(ai, hi), Scale(aj, hj)), ti)
                others = [t for k, t in enumerate(terms) if k not in (i, j)]
                yield (
                    Add(combined, *others) if others else combined,
                    f"factor out trailing {ti.pretty()}",
                )


def _orthogonal_cancel(expr: Expr) -> Iterator[tuple[Expr, str]]:
    """``… Qᵀ Q … → … I … → …`` for orthogonal ``Q`` (Sec. III-C)."""
    if not isinstance(expr, MatMul):
        return
    factors = expr.factors
    for i in range(len(factors) - 1):
        a, b = factors[i], factors[i + 1]
        qt_q = (
            isinstance(a, Transpose)
            and isinstance(a.child, Symbol)
            and a.child.is_orthogonal()
            and a.child == b
        )
        q_qt = (
            isinstance(b, Transpose)
            and isinstance(b.child, Symbol)
            and b.child.is_orthogonal()
            and b.child == a
        )
        if qt_q or q_qt:
            remaining = factors[:i] + factors[i + 2 :]
            q = a.child if qt_q else b.child  # type: ignore[union-attr]
            if remaining:
                yield MatMul(*remaining), f"cancel {q.name}ᵀ{q.name} (orthogonal)"
            else:
                yield Identity(expr.rows), f"cancel {q.name}ᵀ{q.name} (orthogonal)"


def _pull_scale_out_of_sum(expr: Expr) -> Iterator[tuple[Expr, str]]:
    """``aX + aY → a(X + Y)`` (one add instead of two scalings)."""
    if not isinstance(expr, Add):
        return
    scaled = [t for t in expr.terms if isinstance(t, Scale)]
    if len(scaled) < 2:
        return
    alphas = {t.alpha for t in scaled}
    for alpha in alphas:
        group = [t for t in scaled if isinstance(t, Scale) and t.alpha == alpha]
        if len(group) < 2:
            continue
        others = [t for t in expr.terms if t not in group]
        pulled = Scale(alpha, Add(*[t.child for t in group]))
        yield (
            Add(pulled, *others) if others else pulled,
            f"pull scale {alpha:g} out of sum",
        )


DEFAULT_RULES: tuple[Rule, ...] = (
    Rule("expand", _expand),
    Rule("factor", _factor),
    Rule("orthogonal_cancel", _orthogonal_cancel),
    Rule("pull_scale", _pull_scale_out_of_sum),
)


# -- generic application ----------------------------------------------------------------


def _replace_child(expr: Expr, index: int, new_child: Expr) -> Expr:
    """Rebuild ``expr`` with child ``index`` replaced (re-canonicalizes)."""
    if isinstance(expr, MatMul):
        factors = list(expr.factors)
        factors[index] = new_child
        return MatMul(*factors)
    if isinstance(expr, Add):
        terms = list(expr.terms)
        terms[index] = new_child
        return Add(*terms)
    if isinstance(expr, Scale):
        return Scale(expr.alpha, new_child)
    if isinstance(expr, Transpose):
        return Transpose(new_child)
    raise TypeError(f"{type(expr).__name__} has no children")  # pragma: no cover


def apply_everywhere(rule: Rule, expr: Expr) -> Iterator[RuleApplication]:
    """Yield every whole-expression rewrite from applying ``rule`` at any
    sub-expression position."""
    for local_result, desc in rule.local(expr):
        yield RuleApplication(local_result, rule.name, desc)
    for i, child in enumerate(expr.children()):
        for app in apply_everywhere(rule, child):
            rebuilt = _replace_child(expr, i, app.result)
            yield RuleApplication(rebuilt, app.rule, app.description)
