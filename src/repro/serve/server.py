"""The asyncio :class:`Server`: per-tenant sessions behind one submit().

This is the service layer the ROADMAP's "millions of users" north star
asks for: callers submit *single* requests; the server owns everything
between that call and the engine —

* **tenancy** — each tenant gets its own lazily created
  :class:`~repro.api.Session` (built from the server's
  :class:`~repro.api.Options` template), so plan caches, shard pools,
  pinned storage and stats isolate by construction (the PR-2 ownership
  model doing its job one level up);
* **admission** — an :class:`~repro.serve.admission.AdmissionController`
  bounds in-flight depth globally and per tenant, parking or rejecting
  (:class:`~repro.serve.admission.ServeOverloadError`) the excess;
* **coalescing** — a :class:`~repro.serve.coalesce.Coalescer` batches
  compatible in-flight requests (same tenant, same compiled function,
  same feed signature) into waves, dispatched through
  ``Session.run_batch`` — which routes to the multi-process
  ``run_sharded`` path under ``Options(shards=N)`` — in a worker
  thread, so the event loop never blocks on BLAS;
* **metrics** — a :class:`~repro.serve.metrics.ServeMetrics` bundle
  records end-to-end latency (p50/p99/p999), queue wait, wave occupancy
  and queue depth, rendered by :meth:`Server.render_stats` next to each
  tenant session's plan-cache stats.

Usage::

    from repro import api, serve, tensor as T

    async def main():
        async with serve.Server(api.Options(fusion=True,
                                            arena="preallocated",
                                            shards=2)) as server:
            y = await server.submit(fn, [A, B], tenant="alice")

The server is event-loop-confined: construct and use it from one
asyncio loop.  Wave execution happens in the server's thread pool; the
sessions' own locks make the underlying runtime calls safe there.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import dataclasses
from collections.abc import Callable, Sequence

from .. import faults
from ..api import Compiled, Options, Session, input_signature
from ..tensor.tensor import Tensor
from .admission import (
    AdmissionConfig,
    AdmissionController,
    ServeDeadlineError,
    ServeOverloadError,
)
from .breaker import BreakerConfig, CircuitBreaker
from .coalesce import CoalesceConfig, Coalescer
from .metrics import ServeMetrics

__all__ = ["Server", "ServerStats"]


def _failure_cause(exc: BaseException) -> str:
    """Classify a failed request for ``ServeMetrics.failure_causes``."""
    from ..runtime import ShardWorkerError

    if isinstance(exc, ServeDeadlineError):
        return "deadline"
    if isinstance(exc, ShardWorkerError):
        return f"shard_{exc.cause or 'error'}"
    return type(exc).__name__


@dataclasses.dataclass(frozen=True)
class ServerStats:
    """Point-in-time server snapshot: serving metrics + per-tenant
    session stats."""

    metrics: dict
    tenants: dict

    def render(self) -> str:
        lines = [self.metrics_render]
        if self.plan_store is not None:
            ps = self.plan_store
            lines.append(
                f"plan store (fleet): {ps['hits']} hits / "
                f"{ps['misses']} misses / {ps['writes']} writes / "
                f"{ps['corrupt_evicted']} corrupt evicted across "
                f"{ps['tenants']} tenant session(s) | "
                f"{ps['bytes_mapped'] / 1024:.1f} KiB mapped | "
                f"~{ps['seconds_saved']:.4f}s saved"
            )
        if self.autotune is not None:
            at = self.autotune
            line = (
                f"autotune (fleet): {at['candidates_raced']} candidate(s) "
                f"raced | {at['promotions']} promotion(s)"
            )
            if at["promotions"]:
                line += f" (last +{at['speedup_pct']:.1f}%)"
            line += f" | {at['tuning_seconds']:.4f}s tuning"
            if at["promotions_restored"]:
                line += f" | {at['promotions_restored']} restored from store"
            lines.append(line)
        if self.breakers:
            parts = []
            for key, b in self.breakers.items():
                part = f"{key}={b['state']}"
                if b["consecutive_failures"]:
                    part += f" ({b['consecutive_failures']} failure(s))"
                parts.append(part)
            lines.append("breakers: " + " | ".join(parts))
        for tenant, stats_render in self.tenants_render.items():
            lines.append(f"\n-- tenant {tenant!r} --")
            lines.append(stats_render)
        return "\n".join(lines)

    # Keep the raw render strings next to the structured snapshot so the
    # CLI needs no knowledge of SessionStats/ServeMetrics internals.
    metrics_render: str = ""
    tenants_render: dict = dataclasses.field(default_factory=dict)
    #: Fleet-wide persistent-plan-store counters aggregated over every
    #: tenant session (warm-start rates for operators); ``None`` when
    #: the server's Options template has no ``plan_store``.
    plan_store: dict | None = None
    #: Circuit-breaker state per ``"tenant/plan"`` pair: ``state``
    #: (closed/open/half-open) and ``consecutive_failures`` — the
    #: shedding surface operators watch in ``laab serve-bench``.
    breakers: dict = dataclasses.field(default_factory=dict)
    #: Fleet-wide autotune counters aggregated over every tenant session
    #: (each tenant tunes on its own budget); ``None`` when the server's
    #: Options template doesn't autotune.
    autotune: dict | None = None


class Server:
    """Async serving front-end over per-tenant compiled-runtime sessions.

    Parameters
    ----------
    options:
        The :class:`~repro.api.Options` template every tenant session is
        built from.  Defaults to the serving configuration the engine
        is fastest in: ``Options(fusion=True, arena="preallocated")``
        (add ``shards=N`` to dispatch waves through worker processes).
    admission:
        :class:`AdmissionConfig` depth limits / overload policy.
    coalesce:
        :class:`CoalesceConfig` wave-formation thresholds.
    dispatch_workers:
        Threads executing waves (waves of one plan serialize on the
        coalescer's per-key lock; the pool bounds cross-plan
        parallelism).
    breaker:
        :class:`~repro.serve.breaker.BreakerConfig` for the
        per-(tenant, plan) circuit breakers; defaults to tripping after
        5 consecutive wave failures with a 1 s half-open cooldown.
        ``BreakerConfig(failures_to_open=0)`` disables breaking.
    """

    def __init__(
        self,
        options: Options | None = None,
        *,
        admission: AdmissionConfig | None = None,
        coalesce: CoalesceConfig | None = None,
        metrics: ServeMetrics | None = None,
        dispatch_workers: int = 2,
        breaker: BreakerConfig | None = None,
    ) -> None:
        if options is None:
            options = Options(fusion=True, arena="preallocated")
        options.validate()
        if not isinstance(dispatch_workers, int) or dispatch_workers < 1:
            raise ValueError(
                f"dispatch_workers must be an int >= 1, got "
                f"{dispatch_workers!r}"
            )
        self.options = options
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.admission = AdmissionController(admission, self.metrics)
        self._coalescer = Coalescer(
            self._dispatch_wave, config=coalesce, metrics=self.metrics
        )
        self._breaker_config = (
            breaker if breaker is not None else BreakerConfig()
        )
        self._breaker_config.validate()
        #: (tenant, id(compiled)) → CircuitBreaker, created on first use.
        self._breakers: dict[tuple[str, int], CircuitBreaker] = {}
        self._dispatch_workers = dispatch_workers
        self._executor: concurrent.futures.ThreadPoolExecutor | None = None
        self._sessions: dict[str, Session] = {}
        #: (tenant, id(fn)) → Compiled; holds the fn alive, so ids stay
        #: unique for the server's lifetime.
        self._compiled: dict[tuple[str, int], Compiled] = {}
        self._started = False
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> "Server":
        if self._stopped:
            raise RuntimeError("server stopped; build a new Server")
        if not self._started:
            self._executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=self._dispatch_workers,
                thread_name_prefix="repro-serve",
            )
            self._started = True
        return self

    async def stop(self) -> None:
        """Drain in-flight waves, then tear down sessions and threads.

        Idempotent.  Queued-but-unflushed requests are dispatched (a
        drain, not an abort); new submits are refused from the moment
        stop() begins.
        """
        if self._stopped:
            return
        self._stopped = True
        if not self._started:
            return
        await self._coalescer.drain()
        self._executor.shutdown(wait=True)
        self._executor = None
        for session in self._sessions.values():
            session.close()

    async def __aenter__(self) -> "Server":
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # -- tenancy -----------------------------------------------------------------

    def session(self, tenant: str = "default") -> Session:
        """The tenant's session (created on first use)."""
        if not isinstance(tenant, str) or not tenant:
            raise ValueError(
                f"tenant must be a non-empty string, got {tenant!r}"
            )
        session = self._sessions.get(tenant)
        if session is None:
            session = self._sessions[tenant] = Session(self.options)
        return session

    @property
    def tenants(self) -> tuple[str, ...]:
        return tuple(self._sessions)

    def _compiled_for(self, tenant: str, fn: Callable) -> Compiled:
        if isinstance(fn, Compiled):
            raise TypeError(
                "submit takes the plain Python function; the server "
                "compiles it once per tenant session"
            )
        key = (tenant, id(fn))
        compiled = self._compiled.get(key)
        if compiled is None:
            compiled = self._compiled[key] = self.session(tenant).compile(fn)
        return compiled

    # -- the one serving entry point ---------------------------------------------

    def _breaker_for(self, tenant: str, compiled: Compiled) -> CircuitBreaker:
        key = (tenant, id(compiled))
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = self._breakers[key] = CircuitBreaker(
                self._breaker_config
            )
        return breaker

    async def submit(
        self,
        fn: Callable,
        feeds: Sequence[Tensor],
        *,
        tenant: str = "default",
        deadline: float | None = None,
    ):
        """Execute ``fn(*feeds)`` through the tenant's session; returns
        the same Tensor (or tuple) a direct compiled call would.

        The request passes admission control (may park under
        backpressure or raise
        :class:`~repro.serve.admission.ServeOverloadError`), coalesces
        with compatible in-flight requests into one wave, and resolves
        when its wave completes.  Raises whatever the plan execution
        raised — a failure inside a wave fails every request of that
        wave.

        ``deadline`` (seconds from now) bounds the whole journey: a
        request still parked in admission or queued in the coalescer
        when it expires resolves with
        :class:`~repro.serve.admission.ServeDeadlineError` instead —
        and its wave flushes no later than the deadline, so a short
        deadline also shortens the coalescing delay.  A request whose
        (tenant, plan) circuit breaker is open is shed immediately with
        :class:`~repro.serve.admission.ServeOverloadError`.
        """
        if not self._started or self._stopped:
            raise RuntimeError(
                "server is not running — use 'async with Server(...)' or "
                "await server.start()"
            )
        if deadline is not None and not deadline > 0:
            raise ValueError(
                f"deadline must be > 0 seconds or None, got {deadline!r}"
            )
        feeds = list(feeds)
        sig = input_signature(feeds)  # also validates feeds are Tensors
        loop = asyncio.get_running_loop()
        start = loop.time()
        expires_at = None if deadline is None else start + deadline
        self.metrics.submitted += 1
        compiled = self._compiled_for(tenant, fn)
        breaker = self._breaker_for(tenant, compiled)
        if not breaker.allow(loop.time()):
            self.metrics.rejected += 1
            self.metrics.breaker_shed += 1
            raise ServeOverloadError(
                f"request for tenant {tenant!r} shed: its plan's circuit "
                f"breaker is open after {breaker.consecutive_failures} "
                "consecutive wave failures"
            )
        try:
            await self.admission.acquire(tenant, deadline=expires_at)
        except ServeDeadlineError:
            self.metrics.count_failure("deadline")
            raise
        try:
            future = self._coalescer.submit(
                (tenant, id(compiled), sig), (compiled, feeds),
                expires_at=expires_at,
            )
            try:
                result = await future
            except asyncio.CancelledError:
                future.cancel()  # drop from any not-yet-dispatched wave
                raise
            except ServeDeadlineError:
                # Counted where it expired; failure-cause only here.
                self.metrics.count_failure("deadline")
                raise
            except Exception as exc:
                self.metrics.failed += 1
                self.metrics.count_failure(_failure_cause(exc))
                raise
        finally:
            self.admission.release(tenant)
        self.metrics.completed += 1
        self.metrics.latency.record(loop.time() - start)
        return result

    # -- wave execution ----------------------------------------------------------

    async def _dispatch_wave(self, key, items):
        tenant = key[0]
        compiled = items[0][0]
        feed_sets = [feeds for _, feeds in items]
        session = self.session(tenant)
        loop = asyncio.get_running_loop()
        breaker = self._breaker_for(tenant, compiled)
        try:
            results = await loop.run_in_executor(
                self._executor, self._run_wave_sync, session, compiled,
                feed_sets,
            )
        except asyncio.CancelledError:
            raise
        except Exception:
            if breaker.record_failure(loop.time()):
                self.metrics.breaker_trips += 1
            raise
        breaker.record_success()
        return results

    @staticmethod
    def _run_wave_sync(session: Session, compiled: Compiled, feed_sets):
        """One wave through the engine — runs in a dispatch thread.

        ``run_batch`` routes to the multi-process ``run_sharded`` path
        when the session was built with ``Options(shards=N)``; either
        way the GIL is released for the BLAS work and the event loop
        keeps admitting/coalescing meanwhile.
        """
        spec = faults.fire("serve.dispatch")
        result = session.run_batch(compiled, feed_sets)
        outputs = [Compiled._wrap(out) for out in result.outputs]
        if spec is not None and spec.action == "corrupt" and outputs:
            outputs = outputs[:-1]  # injected dispatch bug: short wave
        return outputs

    # -- stats -------------------------------------------------------------------

    def stats(self) -> ServerStats:
        """Serving metrics + per-tenant session stats, snapshot."""
        tenants = {t: s.stats() for t, s in self._sessions.items()}
        store_agg = None
        if self.options.plan_store is not None:
            store_agg = {
                "dir": self.options.plan_store,
                "tenants": len(tenants),
                "hits": sum(st.store_hits for st in tenants.values()),
                "misses": sum(st.store_misses for st in tenants.values()),
                "writes": sum(st.store_writes for st in tenants.values()),
                "corrupt_evicted": sum(
                    st.store_corrupt_evicted for st in tenants.values()
                ),
                "bytes_mapped": sum(
                    st.store_bytes_mapped for st in tenants.values()
                ),
                "seconds_saved": sum(
                    st.store_seconds_saved for st in tenants.values()
                ),
            }
        autotune_agg = None
        if self.options.autotune:
            rows = [
                st.autotune for st in tenants.values()
                if st.autotune is not None
            ]
            autotune_agg = {
                "tenants": len(rows),
                "signatures_tuned": sum(r.signatures_tuned for r in rows),
                "candidates_raced": sum(r.candidates_raced for r in rows),
                "candidates_rejected": sum(
                    r.candidates_rejected for r in rows
                ),
                "promotions": sum(r.promotions for r in rows),
                "promotions_restored": sum(
                    r.promotions_restored for r in rows
                ),
                "tuning_seconds": sum(r.tuning_seconds for r in rows),
                "speedup_pct": max(
                    (r.speedup_pct for r in rows), default=0.0
                ),
                "tuning_errors": sum(r.tuning_errors for r in rows),
            }
        names = {id(c): c.__name__ for c in self._compiled.values()}
        breakers = {
            f"{tenant}/{names.get(cid, hex(cid))}": {
                "state": br.state,
                "consecutive_failures": br.consecutive_failures,
            }
            for (tenant, cid), br in self._breakers.items()
        }
        return ServerStats(
            metrics=self.metrics.snapshot(),
            tenants={t: dataclasses.asdict(st) for t, st in tenants.items()},
            metrics_render=self.metrics.render(),
            tenants_render={t: st.render() for t, st in tenants.items()},
            plan_store=store_agg,
            breakers=breakers,
            autotune=autotune_agg,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "stopped" if self._stopped
            else "running" if self._started else "new"
        )
        return (
            f"<serve.Server {state}, {len(self._sessions)} tenant(s), "
            f"coalesce max_wave={self._coalescer.config.max_wave} "
            f"max_delay={self._coalescer.config.max_delay}>"
        )
