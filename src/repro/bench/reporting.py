"""Tabular reporting that mirrors the paper's tables.

An :class:`ExperimentTable` has named columns and labelled rows of
:class:`Cell` values (seconds, strings, or missing "–"), renders to console
text and markdown, and serializes to JSON for EXPERIMENTS.md regeneration.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any


def format_seconds(t: float | None) -> str:
    """Paper-style compact seconds: 0.40, 0.006, 6e-4."""
    if t is None:
        return "–"
    if t >= 0.1:
        return f"{t:.2f}"
    if t >= 0.001:
        return f"{t:.3f}"
    return f"{t:.1e}"


@dataclasses.dataclass
class Cell:
    """One table cell: a timing (seconds), free text, or absent."""

    seconds: float | None = None
    text: str | None = None
    note: str = ""

    def render(self) -> str:
        if self.text is not None:
            return self.text
        base = format_seconds(self.seconds)
        return f"{base}{self.note}"

    def to_json(self) -> Any:
        if self.text is not None:
            return self.text
        return self.seconds


@dataclasses.dataclass
class ExperimentTable:
    """A labelled grid of results for one paper table/figure."""

    title: str
    columns: list[str]
    rows: list[tuple[str, dict[str, Cell]]] = dataclasses.field(default_factory=list)
    notes: list[str] = dataclasses.field(default_factory=list)

    def add_row(self, label: str, **cells: Cell | float | str | None) -> None:
        """Add a row; bare floats become timing cells, strings text cells.

        Keyword names must match ``columns`` with non-alphanumeric
        characters replaced by underscores.
        """
        normalized: dict[str, Cell] = {}
        keymap = {self._keyify(c): c for c in self.columns}
        for key, value in cells.items():
            col = keymap.get(key)
            if col is None:
                raise KeyError(
                    f"{key!r} does not match any column of {self.columns}"
                )
            if isinstance(value, Cell):
                normalized[col] = value
            elif isinstance(value, str):
                normalized[col] = Cell(text=value)
            elif value is None:
                normalized[col] = Cell()
            else:
                normalized[col] = Cell(seconds=float(value))
        self.rows.append((label, normalized))

    @staticmethod
    def _keyify(column: str) -> str:
        return "".join(ch if ch.isalnum() else "_" for ch in column)

    def cell(self, row_label: str, column: str) -> Cell:
        """Look up a cell (raises KeyError when absent)."""
        for label, cells in self.rows:
            if label == row_label:
                return cells[column]
        raise KeyError(f"no row labelled {row_label!r}")

    def seconds(self, row_label: str, column: str) -> float:
        """Timing value of a cell (raises if it is text/missing)."""
        cell = self.cell(row_label, column)
        if cell.seconds is None:
            raise KeyError(f"cell ({row_label!r}, {column!r}) has no timing")
        return cell.seconds

    # -- rendering ----------------------------------------------------------

    def render(self) -> str:
        label_w = max([len(r[0]) for r in self.rows] + [len(self.title), 10])
        col_ws = [max(len(c), 10) for c in self.columns]
        lines = [self.title, "=" * len(self.title)]
        header = " " * label_w + " | " + " | ".join(
            c.rjust(w) for c, w in zip(self.columns, col_ws)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for label, cells in self.rows:
            rendered = [
                cells.get(c, Cell()).render().rjust(w)
                for c, w in zip(self.columns, col_ws)
            ]
            lines.append(label.ljust(label_w) + " | " + " | ".join(rendered))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| | " + " | ".join(self.columns) + " |")
        lines.append("|---" * (len(self.columns) + 1) + "|")
        for label, cells in self.rows:
            rendered = [cells.get(c, Cell()).render() for c in self.columns]
            lines.append(f"| {label} | " + " | ".join(rendered) + " |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "title": self.title,
            "columns": self.columns,
            "rows": [
                {
                    "label": label,
                    "cells": {c: cell.to_json() for c, cell in cells.items()},
                }
                for label, cells in self.rows
            ],
            "notes": self.notes,
        }
        return json.dumps(payload, indent=2)
