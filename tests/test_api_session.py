"""The `repro.api` Session layer: backends, scoped caches, one surface.

Pins the tentpole contracts of the API redesign:

* session *isolation* — two sessions compiling the same expression never
  share plans or stats;
* session *dedup* — one session compiling the same expression through
  tfsim and pytsim shares a single plan (cache hit on the second backend);
* ambient resolution — the legacy decorators compile into the innermost
  ``with Session():`` block;
* options validation, the backend registry, batching, and stats.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.errors import ConfigError, GraphError
from repro.frameworks import tfsim
from repro.tensor import random_general


def gram(a, b):
    return (a.T @ b).T @ (a.T @ b)


class TestBackendRegistry:
    def test_builtin_backends_resolve(self):
        assert api.backend("tfsim").name == "tfsim"
        assert api.backend("pytsim").name == "pytsim"

    def test_available_backends(self):
        names = api.available_backends()
        assert "tfsim" in names and "pytsim" in names

    def test_unknown_backend(self):
        with pytest.raises(ConfigError):
            api.backend("jaxsim")

    def test_reregistering_same_profile_is_idempotent(self):
        profile = api.backend("tfsim")
        assert api.register_backend(profile) is profile

    def test_conflicting_registration_rejected(self):
        profile = api.backend("tfsim")
        import dataclasses

        clone = dataclasses.replace(profile, paper_decorator_overhead_s=1.0)
        with pytest.raises(ConfigError):
            api.register_backend(clone)

    def test_profile_rejects_unknown_pipeline(self):
        with pytest.raises(ConfigError):
            api.backend("tfsim").pipeline("fastest")


class TestOptions:
    def test_defaults_valid(self):
        api.Options().validate()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"pipeline": "turbo"},
            {"cache_capacity": 0},
            {"batch_workers": -1},
            {"validation": "paranoid"},
            {"backend": ""},
        ],
    )
    def test_bad_values_rejected(self, overrides):
        with pytest.raises(ConfigError):
            api.Options(**overrides).validate()

    def test_replace_validates(self):
        with pytest.raises(ConfigError):
            api.Options().replace(cache_capacity=-3)
        with pytest.raises(ConfigError):
            api.Options().replace(no_such_field=1)

    def test_plan_cache_conflicting_capacity_rejected(self):
        from repro.runtime import PlanCache

        cache = PlanCache(maxsize=8)
        with pytest.raises(ConfigError, match="conflicts"):
            api.Session(plan_cache=cache, cache_capacity=4)
        # matching / unspecified capacity adopts the cache's
        s = api.Session(plan_cache=cache)
        assert s.options.cache_capacity == 8

    def test_run_memo_distinguishes_same_named_profiles(self, operands):
        """Ad-hoc profiles sharing a name must not reuse each other's
        compiled wrapper (the memo keys by profile, not name)."""
        from repro.passes import aware_pipeline, default_pipeline

        a, b = operands["H"], operands["x"]
        p_default = api.FrameworkProfile(
            name="adhoc", paper_decorator_overhead_s=0.0,
            pipeline_factory=default_pipeline,
            aware_pipeline_factory=aware_pipeline,
        )
        p_aware = api.FrameworkProfile(
            name="adhoc", paper_decorator_overhead_s=0.0,
            pipeline_factory=aware_pipeline,  # same name, different passes
            aware_pipeline_factory=aware_pipeline,
        )
        session = api.Session()
        fn = lambda p, q: p.T @ p @ q  # noqa: E731
        session.run(fn, a, b, backend=p_default)
        session.run(fn, a, b, backend=p_aware)
        labels = {ps.pipeline for ps in session.stats().plans}
        # two distinct plans were built — the aware profile reordered
        assert len(session.stats().plans) == 2, labels

    def test_session_kwarg_overrides(self):
        s = api.Session(cache_capacity=4, pipeline="aware")
        assert s.plan_cache.maxsize == 4
        assert s.options.pipeline == "aware"
        with pytest.raises(ConfigError):
            api.Session(validation="nope")


class TestSessionCompileRun:
    def test_compile_and_call(self, operands):
        a, b = operands["A"], operands["B"]
        session = api.Session()
        f = session.compile(gram, backend="tfsim")
        out = f(a, b)
        ref = (a.numpy().T @ b.numpy()).T @ (a.numpy().T @ b.numpy())
        np.testing.assert_allclose(out.numpy(), ref, rtol=1e-4)

    def test_run_accepts_plain_function(self, operands):
        a, b = operands["A"], operands["B"]
        session = api.Session()
        out = session.run(lambda x, y: x @ y, a, b, backend="pytsim")
        np.testing.assert_allclose(out.numpy(), a.numpy() @ b.numpy(),
                                   rtol=1e-5)

    def test_compile_rejects_compiled(self, operands):
        session = api.Session()
        f = session.compile(gram)
        with pytest.raises(TypeError):
            session.compile(f)

    def test_run_rejects_options_for_already_compiled(self, operands):
        """backend=/pipeline= must not be silently ignored when fn is
        already Compiled."""
        a, b = operands["A"], operands["B"]
        session = api.Session()
        f = session.compile(gram)
        with pytest.raises(ValueError, match="already compiled"):
            session.run(f, a, b, pipeline="aware")
        with pytest.raises(ValueError, match="already compiled"):
            session.run(f, a, b, backend="pytsim")

    def test_aware_reflects_session_default(self, operands):
        """`.aware` reports the *effective* pipeline, including one
        inherited from the session options."""
        session = api.Session(pipeline="aware")
        inherited = session.compile(gram)
        explicit = session.compile(gram, pipeline="default")
        assert inherited.aware is True
        assert explicit.aware is False

    def test_dead_sessions_are_not_pinned_by_decorated_functions(self, operands):
        """A long-lived decorated function must not retain every session
        it ever ran in (concrete tables hold sessions weakly)."""
        import gc
        import weakref

        a = operands["A"]

        @tfsim.function
        def f(p):
            return p @ p

        with api.Session() as s:
            f(a)
            ref = weakref.ref(s)
        del s
        gc.collect()
        assert ref() is None
        assert len(f._cache) == 0  # table entry went with the session

    def test_bound_compiled_rejected_by_other_session(self, operands):
        a, b = operands["A"], operands["B"]
        s1, s2 = api.Session(), api.Session()
        f = s1.compile(gram)
        with pytest.raises(ValueError):
            s2.run(f, a, b)

    def test_default_backend_from_options(self, operands):
        session = api.Session(backend="pytsim")
        f = session.compile(gram)
        assert f.profile.name == "pytsim"

    def test_pipeline_override_per_function(self, operands):
        h, x = operands["H"], operands["x"]
        session = api.Session()
        blind = session.compile(lambda p, q: p.T @ p @ q)
        aware = session.compile(lambda p, q: p.T @ p @ q, pipeline="aware")
        blind(h, x)
        assert blind.last_report.kernel_counts().get("gemm", 0) >= 1
        aware(h, x)
        assert aware.last_report.kernel_counts().get("gemm", 0) == 0
        with pytest.raises(ConfigError):
            session.compile(gram, pipeline="warp")

    def test_validation_levels_run(self, operands):
        a, b = operands["A"], operands["B"]
        for level in api.VALIDATION_LEVELS:
            session = api.Session(validation=level)
            out = session.run(gram, a, b)
            assert out.shape == (a.shape[1], b.shape[1])

    def test_cache_capacity_enforced(self):
        session = api.Session(cache_capacity=1)
        for n in (4, 5, 6):
            session.run(lambda x: x @ x, random_general(n, seed=n))
        assert len(session.plan_cache) == 1
        assert session.plan_cache.stats.evictions == 2


class TestSessionIsolation:
    def test_two_sessions_never_share_plans_or_stats(self, operands):
        """The acceptance criterion: isolation by construction."""
        a, b = operands["A"], operands["B"]
        s1, s2 = api.Session(), api.Session()
        f1 = s1.compile(gram, backend="tfsim")
        f2 = s2.compile(gram, backend="tfsim")
        p1 = f1.get_concrete(a, b).plan
        p2 = f2.get_concrete(a, b).plan
        assert p1 is not p2
        assert s1.plan_cache is not s2.plan_cache
        for s in (s1, s2):
            st = s.stats()
            assert (st.hits, st.misses, st.entries) == (0, 1, 1)
        s1.run(f1, a, b)
        assert s2.stats().plans[0].executions == 0  # untouched by s1's run

    def test_one_session_dedupes_across_backends(self, operands):
        """tfsim then pytsim trace of one expression: plan-cache hit."""
        a, b = operands["A"], operands["B"]
        session = api.Session()
        plan_tf = session.compile(gram, backend="tfsim").get_concrete(a, b).plan
        plan_pyt = session.compile(gram, backend="pytsim").get_concrete(a, b).plan
        assert plan_tf is plan_pyt
        st = session.stats()
        assert st.misses == 1 and st.hits == 1 and st.entries == 1
        # both traces accounted against the one shared plan, but the
        # compile time was paid (and recorded) exactly once
        assert st.plans[0].traces == 2
        assert st.plans[0].plan_compile_seconds == pytest.approx(
            plan_tf.compile_seconds
        )
        # the stats row attributes *both* contributing backends
        assert st.plans[0].backends == ("tfsim", "pytsim")
        assert st.plans[0].backend == "tfsim+pytsim"


class TestAmbientSession:
    def test_decorators_compile_into_entered_session(self, operands):
        a, b = operands["A"], operands["B"]

        @tfsim.function
        def f(p, q):
            return p @ q

        with api.Session() as scoped:
            out = f(a, b)
            assert len(scoped.plan_cache) == 1
            assert scoped.stats().plans[0].executions == 1
        np.testing.assert_allclose(out.numpy(), a.numpy() @ b.numpy(),
                                   rtol=1e-5)

    def test_nested_sessions_are_lifo(self, operands):
        a = operands["A"]

        @tfsim.function
        def f(p):
            return p @ p

        with api.Session() as outer:
            with api.Session() as inner:
                f(a)
                assert len(inner.plan_cache) == 1
                assert len(outer.plan_cache) == 0
            f(a)
            assert len(outer.plan_cache) == 1

    def test_current_session_defaults_to_process_default(self):
        assert api.current_session() is api.default_session()
        with api.Session() as s:
            assert api.current_session() is s
        assert api.current_session() is api.default_session()

    def test_ambient_session_is_context_local(self):
        """A `with Session():` in one thread must not redirect other
        threads' ambient resolution — new threads see the default."""
        import threading

        seen = {}

        def worker():
            seen["session"] = api.current_session()

        with api.Session() as s:
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            assert api.current_session() is s
        assert seen["session"] is api.default_session()

    def test_default_session_uses_global_cache(self):
        from repro.runtime import cache as cache_module

        assert api.default_session().plan_cache is cache_module._default_plan_cache()


class TestRunBatch:
    def test_matches_per_call_results(self, operands):
        a, b = operands["A"], operands["B"]
        session = api.Session()
        f = session.compile(gram, backend="tfsim")
        single = f(a, b)
        batch = session.run_batch(f, [[a, b]] * 3, record=True)
        assert len(batch) == 3
        for outs in batch.outputs:
            assert outs[0].tobytes() == single.numpy().tobytes()
        assert len(batch.reports) == 3

    def test_workers_from_options(self, operands):
        a, b = operands["A"], operands["B"]
        session = api.Session(batch_workers=2)
        f = session.compile(gram)
        batch = session.run_batch(f, [[a, b]] * 4)
        assert len(batch) == 4

    def test_empty_feed_sets(self, operands):
        session = api.Session()
        f = session.compile(gram)
        batch = session.run_batch(f, [])
        assert len(batch) == 0

    def test_requires_compiled(self, operands):
        session = api.Session()
        with pytest.raises(TypeError):
            session.run_batch(gram, [[operands["A"], operands["B"]]])

    def test_mismatched_feed_shape_rejected(self, operands):
        a, b = operands["A"], operands["B"]
        session = api.Session()
        f = session.compile(lambda x, y: x @ y)
        with pytest.raises(GraphError):
            session.run_batch(f, [[a, b], [a, random_general(4, seed=9)]])

    def test_batch_counts_in_stats(self, operands):
        a, b = operands["A"], operands["B"]
        session = api.Session()
        f = session.compile(gram)
        session.run_batch(f, [[a, b]] * 5)
        assert session.stats().plans[0].executions == 5


class TestSessionStats:
    def test_stats_shape(self, operands):
        a, b = operands["A"], operands["B"]
        session = api.Session()
        f = session.compile(gram, backend="tfsim")
        f(a, b)
        f(a, b)
        st = session.stats()
        assert st.misses == 1 and st.entries == 1
        assert st.capacity == session.options.cache_capacity
        (plan,) = st.plans
        assert plan.label == "gram"
        assert plan.backend == "tfsim"
        assert plan.pipeline == "default"
        assert plan.traces == 1
        assert plan.trace_seconds > 0
        assert plan.plan_compile_seconds > 0
        assert plan.executions == 2
        assert plan.exec_seconds > 0

    def test_stats_snapshot_is_immutable_copy(self, operands):
        a, b = operands["A"], operands["B"]
        session = api.Session()
        f = session.compile(gram)
        f(a, b)
        before = session.stats()
        f(a, b)
        assert before.plans[0].executions == 1  # snapshot, not a live view
        assert session.stats().plans[0].executions == 2

    def test_render_mentions_counters(self, operands):
        session = api.Session()
        session.run(gram, operands["A"], operands["B"])
        text = session.stats().render()
        assert "misses" in text and "gram" in text
        # trace time and real Graph→Plan compile time are separate columns
        assert "trace(s)" in text and "compile(s)" in text

    def test_run_plain_callable_traces_once(self, operands):
        """session.run on a raw function memoizes the wrapper: repeated
        calls are execute-many, not retrace-per-call."""
        a, b = operands["A"], operands["B"]
        session = api.Session()
        for _ in range(3):
            session.run(gram, a, b)
        (plan,) = session.stats().plans
        assert plan.traces == 1
        assert plan.executions == 3

    def test_run_memo_is_bounded(self, operands):
        """Fresh lambdas per call must not grow the session without
        bound — the run memo is LRU-capped like the plan cache."""
        a, b = operands["A"], operands["B"]
        session = api.Session(cache_capacity=2)
        for _ in range(5):
            session.run(lambda x, y: x @ y, a, b)
        assert len(session._run_memo) <= 2

    def test_concurrent_first_calls_trace_once(self, operands):
        """Two threads first-calling one compiled function on the same
        signature pay trace+optimize once, not twice."""
        import threading

        a, b = operands["A"], operands["B"]
        session = api.Session()
        f = session.compile(gram)
        barrier = threading.Barrier(2)

        def worker():
            barrier.wait()
            f(a, b)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert f.trace_count == 1
        st = session.stats()
        assert st.plans[0].traces == 1
        assert st.plans[0].executions == 2

    def test_concurrent_distinct_signatures_both_build(self):
        """The per-signature build guard must not serialize or confuse
        builds of different shapes of one function."""
        import threading

        session = api.Session()
        f = session.compile(lambda x: x @ x)
        sizes = (8, 9, 10, 11)
        outs = {}
        barrier = threading.Barrier(len(sizes))

        def worker(n):
            a = random_general(n, seed=n)
            barrier.wait()
            outs[n] = f(a)

        threads = [threading.Thread(target=worker, args=(n,)) for n in sizes]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert f.trace_count == len(sizes)
        for n in sizes:
            a = random_general(n, seed=n)
            np.testing.assert_allclose(outs[n].numpy(), a.numpy() @ a.numpy(),
                                       rtol=1e-4)

    def test_plan_stats_do_not_pin_evicted_plans(self):
        """Accounting rows hold plans weakly: an evicted plan nothing
        else references must be collectible, stats row included."""
        import gc

        session = api.Session(cache_capacity=1)
        for n in (4, 5, 6):
            f = session.compile(lambda x: x @ x)
            f(random_general(n, seed=n))
            del f
        gc.collect()
        assert len(session.plan_cache) == 1
        assert session.plan_cache.stats.evictions == 2
        assert len(session._plan_stats) == 1

    def test_hit_rate(self):
        st = api.SessionStats(hits=3, misses=1, evictions=0, entries=1,
                              capacity=8, plans=())
        assert st.lookups == 4
        assert st.hit_rate == 0.75


class TestFusionArenaOptions:
    """`Options(fusion=..., arena=...)` — the execution-engine knobs land
    at session level, touching no call site (the PR-2 design intent)."""

    def test_defaults_are_backward_compatible(self):
        opts = api.Options()
        assert opts.fusion is False
        assert opts.arena == "per-call"

    @pytest.mark.parametrize(
        "overrides",
        [{"fusion": "yes"}, {"arena": "heap"}, {"arena": ""}],
        ids=["fusion-nonbool", "arena-unknown", "arena-empty"],
    )
    def test_bad_mode_values_rejected(self, overrides):
        with pytest.raises(ConfigError):
            api.Options(**overrides).validate()

    def test_arena_modes_constant_exported(self):
        assert api.ARENA_MODES == ("per-call", "preallocated")

    @pytest.mark.parametrize("fusion", [False, True])
    @pytest.mark.parametrize("arena", ["per-call", "preallocated"])
    def test_all_mode_combinations_match_interpreter(self, operands, fusion,
                                                     arena):
        a, b = operands["A"], operands["B"]
        session = api.Session(fusion=fusion, arena=arena)
        f = session.compile(gram)
        out = f(a, b)
        report = f.last_report
        via_interp = f.interpret(a, b)
        interp_report = f.last_report
        assert out.numpy().tobytes() == via_interp.numpy().tobytes()
        assert report.total_flops == interp_report.total_flops
        assert report.peak_bytes == interp_report.peak_bytes
        if not fusion:
            assert report.calls == interp_report.calls

    def test_repeated_arena_calls_return_independent_results(self, operands):
        """Arena buffers are reused internally, but results handed to the
        user must not be overwritten by the next call."""
        a, b, c = operands["A"], operands["B"], operands["C"]
        session = api.Session(arena="preallocated", fusion=True)
        f = session.compile(lambda p, q: p @ q + p)
        first = f(a, b)
        kept = first.numpy().copy()
        second = f(a, c)  # same signature, same plan, same arena
        assert second.numpy().tobytes() != kept.tobytes()
        assert first.numpy().tobytes() == kept.tobytes()  # not clobbered

    def test_fusion_keys_plan_cache_separately(self, operands):
        a, b = operands["A"], operands["B"]
        cache = api.Session(fusion=False).plan_cache
        fused_session = api.Session(fusion=True)
        plain_session = api.Session(fusion=False)
        p1 = plain_session.compile(gram)
        p2 = fused_session.compile(gram)
        p1(a, b)
        p2(a, b)
        # separate sessions -> separate caches; within one session the
        # fused and unfused plan of one graph would key differently too:
        g = p1.optimized_graph(a, b)
        plain_plan = plain_session.plan_cache.get(g)
        fused_plan = plain_session.plan_cache.get(g, fusion=True)
        assert plain_plan is not fused_plan
        assert fused_plan.fusion_stats is not None

    def test_stats_surface_fusion_and_arena(self, operands):
        a, b, c = operands["A"], operands["B"], operands["C"]
        session = api.Session(fusion=True, arena="preallocated")
        f = session.compile(lambda p, q, r: 2.0 * p + q - r)
        f(a, b, c)
        stats = session.stats()
        assert stats.fusion is True
        assert stats.arena == "preallocated"
        assert stats.fused_sites >= 1
        text = stats.render()
        assert "fusion on" in text and "preallocated" in text

    def test_stats_render_defaults_mention_modes(self, operands):
        session = api.Session()
        session.run(gram, operands["A"], operands["B"])
        text = session.stats().render()
        assert "fusion off" in text and "per-call" in text

    def test_run_batch_through_arena_session(self, operands):
        a, b = operands["A"], operands["B"]
        per_call = api.Session()
        arena = api.Session(arena="preallocated", fusion=True)
        feed_sets = [
            [random_general(a.shape[0], seed=100 + i),
             random_general(a.shape[0], seed=200 + i)]
            for i in range(4)
        ]
        ref = per_call.run_batch(per_call.compile(gram), feed_sets)
        got = arena.run_batch(arena.compile(gram), feed_sets, workers=2)
        for r, g in zip(ref.outputs, got.outputs):
            assert r[0].tobytes() == g[0].tobytes()

    def test_ambient_decorators_inherit_session_modes(self, operands):
        a, b = operands["A"], operands["B"]

        @tfsim.function
        def f(p, q):
            return 2.0 * (p @ q)

        with api.Session(fusion=True) as session:
            f(a, b)
            stats = session.stats()
        assert stats.fusion is True
        assert stats.fused_sites == 1  # the gemm+scale alpha fold
