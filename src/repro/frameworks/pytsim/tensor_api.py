"""pytsim ops: PyTorch-flavoured names over the shared substrate."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ...errors import TracingError
from ...ir import builder
from ...ir.tracing import SymbolicTensor
from ...tensor import creation
from ...tensor.tensor import Tensor

TensorLike = "Tensor | SymbolicTensor"


def tensor(value: object, dtype: object | None = None) -> Tensor:
    """Create an eager tensor (``torch.tensor``)."""
    return Tensor(value, dtype=dtype)


def eye(n: int, dtype: object | None = None) -> Tensor:
    """Identity (``torch.eye``)."""
    return creation.eye(n, dtype=dtype)


def zeros(m: int, n: int | None = None, dtype: object | None = None) -> Tensor:
    """Zeros (``torch.zeros``)."""
    return creation.zeros(m, n, dtype=dtype)


def ones(m: int, n: int | None = None, dtype: object | None = None) -> Tensor:
    """Ones (``torch.ones``)."""
    return creation.ones(m, n, dtype=dtype)


def matmul(a: TensorLike, b: TensorLike) -> TensorLike:
    """Matrix product (``torch.matmul`` / ``@``)."""
    return a @ b


def t(a: TensorLike) -> TensorLike:
    """Transpose (``torch.t`` / ``.T``)."""
    return a.T


def add(a: TensorLike, b: TensorLike) -> TensorLike:
    """Element-wise sum (``torch.add``)."""
    return a + b


def sub(a: TensorLike, b: TensorLike) -> TensorLike:
    """Element-wise difference (``torch.sub``)."""
    return a - b


def mul(a: TensorLike, alpha: float) -> TensorLike:
    """Scalar scaling (``torch.mul`` with a Python scalar)."""
    return a * alpha


def neg(a: TensorLike) -> TensorLike:
    """Negation (``torch.neg``)."""
    return -a


def cat(values: Sequence[TensorLike], dim: int = 0) -> TensorLike:
    """Concatenation (``torch.cat``)."""
    values = list(values)
    if not values:
        raise TracingError("cat needs at least one value")
    if any(isinstance(v, SymbolicTensor) for v in values):
        nodes = []
        for v in values:
            if isinstance(v, SymbolicTensor):
                nodes.append(v.node)
            elif isinstance(v, Tensor):
                nodes.append(builder.const(v.data))
            else:
                nodes.append(builder.const(np.asarray(v)))
        return SymbolicTensor(builder.concat(nodes, axis=dim))
    return creation.concat(
        [v if isinstance(v, Tensor) else Tensor(v) for v in values], axis=dim
    )
