"""Stochastic Newton sketching step (paper Eq. 4 / Table I-II workload).

Run:  python examples/stochastic_newton.py [n] [sketches]

Chung et al.'s stochastic Newton method for large least squares repeatedly
forms sketched Gram matrices Y := (AᵀB)ᵀ(AᵀB) with fresh random sketches B.
This example shows what the paper's Experiments 1 and 2 mean for a real
workload:

* eager mode recomputes the shared AᵀB — 3 GEMMs per sketch;
* graph mode CSEs it when the user parenthesizes — 2 GEMMs;
* the same user writing the expression *without* parentheses silently pays
  3 GEMMs even in graph mode — the paper's central pitfall;
* ``multi_dot`` (PyTorch) and the aware pipeline both avoid the pitfall.
"""

import sys
import time

from repro import limit_threads

limit_threads(1)

from repro import api  # noqa: E402
from repro import tensor as T  # noqa: E402
from repro.frameworks import pytsim, tfsim  # noqa: E402


def gram_paren(a, b):
    return tfsim.transpose(tfsim.transpose(a) @ b) @ (tfsim.transpose(a) @ b)


def gram_noparen(a, b):
    return tfsim.transpose(tfsim.transpose(a) @ b) @ tfsim.transpose(a) @ b


def main(n: int = 800, sketches: int = 5) -> None:
    print(f"== stochastic Newton sketches (n = {n}, {sketches} sketches) ==\n")
    A = T.random_general(n, seed=0)

    session = api.Session(backend="tfsim")
    modes = {
        "graph, parenthesized": session.compile(gram_paren),
        "graph, NO parentheses": session.compile(gram_noparen),
        "graph, no parens + aware": session.compile(gram_noparen,
                                                    pipeline="aware"),
    }

    sketches_data = [T.random_general(n, seed=100 + i) for i in range(sketches)]
    for fn in modes.values():
        fn(A, sketches_data[0])  # trace/warm

    reference = None
    for name, fn in modes.items():
        t0 = time.perf_counter()
        outs = [fn(A, b) for b in sketches_data]
        elapsed = time.perf_counter() - t0
        gemms = fn.last_report.kernel_counts().get("gemm", 0)
        print(f"{name:<28} {elapsed:8.4f}s  ({gemms} GEMMs per sketch)")
        if reference is None:
            reference = outs
        else:
            for r, o in zip(reference, outs):
                assert r.allclose(o, rtol=2e-2, atol=1e-3), name

    # eager comparison (one sketch): 3 independent GEMMs
    b = sketches_data[0]
    t0 = time.perf_counter()
    t1 = tfsim.transpose(A) @ b
    t2 = tfsim.transpose(A) @ b
    _ = tfsim.transpose(t1) @ t2
    t_eager = time.perf_counter() - t0
    print(f"{'eager (per sketch)':<28} {t_eager:8.4f}s  (3 GEMMs)")

    # PyTorch's escape hatch: multi_dot solves the chain
    t0 = time.perf_counter()
    md = pytsim.linalg.multi_dot([b.T @ A, A.T @ b])  # user pre-computes S
    t_md = time.perf_counter() - t0
    print(f"{'pytsim multi_dot':<28} {t_md:8.4f}s  (chain solved by DP)")
    assert md.allclose(reference[0], rtol=2e-2, atol=1e-3)

    print("\ntakeaway: parenthesize shared sub-chains explicitly, or use an "
          "aware pipeline / multi_dot — graph mode alone won't save you.")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    main(n, k)
