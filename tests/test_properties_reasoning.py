"""Tests for property algebra (transfer functions), inference, annotations."""

import numpy as np
import pytest

from repro.errors import PropertyError
from repro.ir import trace
from repro.properties import algebra
from repro.properties import annotations as ann
from repro.properties import inference
from repro.tensor.properties import Property, closure


def C(*props):
    # transfer functions always include GENERAL; match that here so that
    # round-trip equality tests compare like with like
    return closure({Property.GENERAL, *props})


class TestTransposeProps:
    def test_triangular_swap(self):
        out = algebra.transpose_props(C(Property.LOWER_TRIANGULAR))
        assert Property.UPPER_TRIANGULAR in out
        assert Property.LOWER_TRIANGULAR not in out

    def test_symmetric_kept(self):
        assert Property.SYMMETRIC in algebra.transpose_props(C(Property.SYMMETRIC))

    def test_diagonal_kept(self):
        out = algebra.transpose_props(C(Property.DIAGONAL))
        assert Property.DIAGONAL in out
        # diagonal implies both triangulars; after swap both still present
        assert Property.LOWER_TRIANGULAR in out

    def test_involution(self):
        for props in (C(Property.LOWER_TRIANGULAR), C(Property.SPD),
                      C(Property.ORTHOGONAL), C(Property.ZERO)):
            assert algebra.transpose_props(algebra.transpose_props(props)) == props


class TestMatmulProps:
    def test_zero_absorbs(self):
        out = algebra.matmul_props(C(Property.ZERO), C(), square_result=True)
        assert Property.ZERO in out

    def test_identity_left_passes_right(self):
        out = algebra.matmul_props(C(Property.IDENTITY), C(Property.SPD))
        assert Property.SPD in out

    def test_identity_right_passes_left(self):
        out = algebra.matmul_props(C(Property.LOWER_TRIANGULAR),
                                   C(Property.IDENTITY))
        assert Property.LOWER_TRIANGULAR in out

    def test_lower_times_lower(self):
        out = algebra.matmul_props(C(Property.LOWER_TRIANGULAR),
                                   C(Property.LOWER_TRIANGULAR),
                                   square_result=True)
        assert Property.LOWER_TRIANGULAR in out

    def test_lower_times_upper_general(self):
        out = algebra.matmul_props(C(Property.LOWER_TRIANGULAR),
                                   C(Property.UPPER_TRIANGULAR),
                                   square_result=True)
        assert Property.LOWER_TRIANGULAR not in out
        assert Property.UPPER_TRIANGULAR not in out

    def test_gram_symmetric(self):
        out = algebra.matmul_props(C(), C(), b_is_a_transposed=True,
                                   square_result=True)
        assert Property.SYMMETRIC in out

    def test_orthogonal_gram_identity(self):
        out = algebra.matmul_props(C(Property.ORTHOGONAL), C(Property.ORTHOGONAL),
                                   b_is_a_transposed=True, square_result=True)
        assert Property.IDENTITY in out

    def test_orthogonal_product(self):
        out = algebra.matmul_props(C(Property.ORTHOGONAL), C(Property.ORTHOGONAL),
                                   square_result=True)
        assert Property.ORTHOGONAL in out


class TestAddScaleProps:
    def test_add_zero_identity(self):
        out = algebra.add_props(C(Property.ZERO), C(Property.SPD))
        assert Property.SPD in out

    def test_sub_zero_drops_spd(self):
        out = algebra.add_props(C(Property.ZERO), C(Property.SPD), negate_b=True)
        assert Property.SPD not in out
        assert Property.SYMMETRIC in out

    def test_scale_negative_drops_spd(self):
        out = algebra.scale_props(C(Property.SPD), -1.0)
        assert Property.SPD not in out
        assert Property.SYMMETRIC in out

    def test_scale_zero_gives_zero(self):
        assert Property.ZERO in algebra.scale_props(C(Property.SPD), 0.0)

    def test_scale_one_identity_map(self):
        p = C(Property.ORTHOGONAL)
        assert algebra.scale_props(p, 1.0) == p

    def test_scale_drops_orthogonal(self):
        out = algebra.scale_props(C(Property.ORTHOGONAL), 2.0)
        assert Property.ORTHOGONAL not in out

    def test_slice_props_scalar(self):
        out = algebra.slice_props(C(Property.SPD), 1, 1)
        assert Property.SCALAR in out
        assert Property.SPD not in out


class TestInference:
    def test_input_annotations_enter(self, operands):
        g = trace(lambda l: l @ l, [operands["L"]])
        env = inference.infer(g)
        inp = g.inputs[0]
        assert Property.LOWER_TRIANGULAR in env[id(inp)]

    def test_matmul_propagates(self, operands):
        g = trace(lambda l: l @ l, [operands["L"]])
        env = inference.infer(g)
        out = g.outputs[0]
        assert Property.LOWER_TRIANGULAR in env[id(out)]

    def test_transpose_flag_respected(self, operands):
        from repro.passes import PassPipeline, TransposeElimination

        g = PassPipeline([TransposeElimination()]).run(
            trace(lambda l, b: l.T @ b, [operands["L"], operands["B"]])
        )
        env = inference.infer(g)
        (mm,) = g.nodes_by_op("matmul")
        # effective left operand is upper triangular; result is general
        assert Property.LOWER_TRIANGULAR not in env[id(mm)]

    def test_const_detection(self, n):
        from repro.tensor import eye

        g = trace(lambda a: eye(n) @ a + a, [__import__("repro.tensor",
                  fromlist=["random_general"]).random_general(n, seed=3)])
        env = inference.infer(g)
        consts = g.nodes_by_op("const")
        assert consts and Property.IDENTITY in env[id(consts[0])]

    def test_gram_pattern_detection(self, operands):
        from repro.passes import PassPipeline, TransposeElimination

        g = PassPipeline([TransposeElimination()]).run(
            trace(lambda a: a.T @ a, [operands["A"]])
        )
        (mm,) = g.nodes_by_op("matmul")
        assert inference.is_gram_pattern(mm)
        env = inference.infer(g)
        assert Property.SYMMETRIC in env[id(mm)]

    def test_not_gram_for_distinct_inputs(self, operands):
        from repro.passes import PassPipeline, TransposeElimination

        g = PassPipeline([TransposeElimination()]).run(
            trace(lambda a, b: a.T @ b, [operands["A"], operands["B"]])
        )
        (mm,) = g.nodes_by_op("matmul")
        assert not inference.is_gram_pattern(mm)

    def test_soundness_on_random_graph(self, operands):
        """Every inferred property must hold for the executed value."""
        from repro.ir import run_graph
        from repro.tensor.properties import verify_property

        def fn(l, d, s):
            return (l @ d) + (d @ l), (d @ d) @ s, l.T

        g = trace(fn, [operands["L"], operands["D"], operands["S"]])
        env = inference.infer(g)
        outs, _ = run_graph(
            g, [operands["L"].data, operands["D"].data, operands["S"].data]
        )
        for node, value in zip(g.outputs, outs):
            for prop in env[id(node)]:
                if prop is Property.BLOCK_DIAGONAL:
                    continue
                assert verify_property(value, prop, atol=1e-3), (node, prop)


class TestAnnotations:
    def test_annotate_verified(self, operands):
        t = ann.as_lower_triangular(operands["L"])
        assert Property.LOWER_TRIANGULAR in t.props

    def test_annotate_rejects_wrong(self, operands):
        with pytest.raises(PropertyError):
            ann.as_diagonal(operands["A"])

    def test_annotate_unverified_trusts(self, operands):
        t = ann.as_diagonal(operands["A"], verify=False)
        assert Property.DIAGONAL in t.props

    def test_all_annotators(self, operands):
        checks = [
            (ann.as_lower_triangular, "L", Property.LOWER_TRIANGULAR),
            (ann.as_symmetric, "S", Property.SYMMETRIC),
            (ann.as_spd, "P", Property.SPD),
            (ann.as_orthogonal, "Q", Property.ORTHOGONAL),
            (ann.as_tridiagonal, "T", Property.TRIDIAGONAL),
            (ann.as_diagonal, "D", Property.DIAGONAL),
        ]
        for fn, key, prop in checks:
            assert prop in fn(operands[key]).props

    def test_upper_annotator(self, operands):
        t = ann.as_upper_triangular(operands["L"].T)
        assert Property.UPPER_TRIANGULAR in t.props
