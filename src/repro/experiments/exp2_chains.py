"""Experiment 2 (Table III) — Optimization of Matrix Chains.

Three chains whose optimal association differs (paper Eq. 5-7):

* ``HᵀHx``    — optimal right-to-left ``Hᵀ(Hx)``: O(n²);
* ``yᵀHᵀH``   — optimal left-to-right ``(yᵀHᵀ)H``: O(n²) (and the default!);
* ``HᵀyxᵀH``  — optimal mixed ``(Hᵀy)(xᵀH)``: O(n²).

For each: unparenthesized ``matmul`` in both frameworks (expected:
left-to-right regardless of cost), the explicitly parenthesized optimum,
and PyTorch's ``multi_dot`` (expected: matches the optimum).
"""

from __future__ import annotations

from ..bench.registry import register_experiment
from ..bench.reporting import Cell, ExperimentTable
from ..frameworks import pytsim, tfsim
from ._measure import time_compiled
from .sizes import experiment_size
from .workloads import Workloads


def _chain_functions():
    """Rows: (label, tf_fn, pyt_fn, multi_dot_args_builder | None)."""

    # -- right-to-left optimal: HᵀHx --------------------------------------------
    @tfsim.function
    def tf_rl(h, x):
        return tfsim.transpose(h) @ h @ x

    @pytsim.jit.script
    def pyt_rl(h, x):
        return h.T @ h @ x

    @tfsim.function
    def tf_rl_opt(h, x):
        return tfsim.transpose(h) @ (h @ x)

    @pytsim.jit.script
    def pyt_rl_opt(h, x):
        return h.T @ (h @ x)

    # -- left-to-right optimal: yᵀHᵀH ---------------------------------------------
    @tfsim.function
    def tf_lr(h, y):
        return tfsim.transpose(y) @ tfsim.transpose(h) @ h

    @pytsim.jit.script
    def pyt_lr(h, y):
        return y.T @ h.T @ h

    @tfsim.function
    def tf_lr_opt(h, y):
        return (tfsim.transpose(y) @ tfsim.transpose(h)) @ h

    @pytsim.jit.script
    def pyt_lr_opt(h, y):
        return (y.T @ h.T) @ h

    # -- mixed optimal: HᵀyxᵀH -----------------------------------------------------
    @tfsim.function
    def tf_mixed(h, x, y):
        return tfsim.transpose(h) @ y @ tfsim.transpose(x) @ h

    @pytsim.jit.script
    def pyt_mixed(h, x, y):
        return h.T @ y @ x.T @ h

    @tfsim.function
    def tf_mixed_opt(h, x, y):
        return (tfsim.transpose(h) @ y) @ (tfsim.transpose(x) @ h)

    @pytsim.jit.script
    def pyt_mixed_opt(h, x, y):
        return (h.T @ y) @ (x.T @ h)

    return [
        ("HᵀHx", tf_rl, pyt_rl, "rl"),
        ("Hᵀ(Hx)", tf_rl_opt, pyt_rl_opt, None),
        ("yᵀHᵀH", tf_lr, pyt_lr, "lr"),
        ("(yᵀHᵀ)H", tf_lr_opt, pyt_lr_opt, None),
        ("HᵀyxᵀH", tf_mixed, pyt_mixed, "mixed"),
        ("(Hᵀy)(xᵀH)", tf_mixed_opt, pyt_mixed_opt, None),
    ]


@register_experiment(
    "exp2",
    "Table III",
    "matrix-chain parenthesization: matmul default order vs optimum vs multi_dot",
)
def run(n: int | None = None, repetitions: int | None = None) -> ExperimentTable:
    n = experiment_size(n)
    w = Workloads(n)
    h = w.general(0)
    x = w.vector(0)
    y = w.vector(1)

    table = ExperimentTable(
        title=f"Table III: matrix chains, execution time (s), n = {n}",
        columns=["TF matmul", "PyT matmul", "PyT multi_dot"],
    )

    # multi_dot closures per chain kind (eager, like the paper's usage)
    def md_rl():
        return pytsim.linalg.multi_dot([h.T, h, x])

    def md_lr():
        return pytsim.linalg.multi_dot([y.T, h.T, h])

    def md_mixed():
        return pytsim.linalg.multi_dot([h.T, y, x.T, h])

    multi_dots = {"rl": md_rl, "lr": md_lr, "mixed": md_mixed}

    for label, tf_fn, pyt_fn, md_kind in _chain_functions():
        args = [h, x] if "y" not in label else ([h, y] if "x" not in label else [h, x, y])
        tf_t = time_compiled(tf_fn, args, label="tf", repetitions=repetitions)
        pyt_t = time_compiled(pyt_fn, args, label="pyt", repetitions=repetitions)
        if md_kind is not None:
            from ..bench.timing import measure

            md_t = measure(multi_dots[md_kind], label="multi_dot",
                           repetitions=repetitions)
            md_cell: Cell | float = md_t.best
        else:
            md_cell = Cell(text="–")
        table.add_row(
            label,
            TF_matmul=tf_t.best,
            PyT_matmul=pyt_t.best,
            PyT_multi_dot=md_cell,
        )
    table.notes.append(
        "expected shape: HᵀHx and HᵀyxᵀH unparenthesized ≫ their optima "
        "(default is left-to-right); yᵀHᵀH unparenthesized ≈ optimum; "
        "multi_dot ≈ optimum everywhere"
    )
    return table
