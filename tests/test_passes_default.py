"""Tests for the default (TF/PyT-faithful) optimizer passes."""

import numpy as np
import pytest

from repro.ir import Graph, builder, run_graph, trace
from repro.ir.tracing import trace_loop
from repro.passes import (
    ArithmeticSimplification,
    CommonSubexpressionElimination,
    ConstantFolding,
    LoopInvariantCodeMotion,
    NoOpElimination,
    PassPipeline,
    TransposeElimination,
    default_pipeline,
)


def _check_semantics(fn, args, pipeline=None):
    """Trace fn, optimize, and assert optimized == unoptimized numerically."""
    g = trace(fn, args)
    feeds = [a.data for a in args]
    before, _ = run_graph(g, feeds)
    opt = (pipeline or default_pipeline()).run(g)
    after, report = run_graph(opt, feeds)
    for x, y in zip(before, after):
        assert np.allclose(x, y, rtol=1e-3, atol=1e-4)
    return opt, report


class TestCSE:
    def test_paper_e2_dedups(self, operands):
        """(AᵀB)ᵀ(AᵀB): 3 GEMMs -> 2 (paper Fig. 3 / Table I row 2)."""
        opt, report = _check_semantics(
            lambda a, b: (a.T @ b).T @ (a.T @ b), [operands["A"], operands["B"]]
        )
        assert report.kernel_counts()["gemm"] == 2

    def test_paper_e3_finds_nothing(self, operands):
        """(AᵀB)ᵀAᵀB: left-to-right chain, no duplicates (Fig. 4) -> 3 GEMMs."""
        opt, report = _check_semantics(
            lambda a, b: (a.T @ b).T @ a.T @ b, [operands["A"], operands["B"]]
        )
        assert report.kernel_counts()["gemm"] == 3

    def test_inputs_never_merged(self, n):
        a = builder.input_node((n, n), "float32", name="a")
        b = builder.input_node((n, n), "float32", name="b")
        g = Graph([builder.add(a, b)], inputs=[a, b])
        out = CommonSubexpressionElimination().run(g)
        assert len(out.inputs) == 2

    def test_attrs_distinguish(self, operands):
        """matmul(a,b) and matmul(a,b,trans_a) must NOT merge."""
        a = builder.input_node((8, 8), "float32")
        b = builder.input_node((8, 8), "float32")
        m1 = builder.matmul(a, b)
        m2 = builder.matmul(a, b, trans_a=True)
        g = Graph([builder.add(m1, m2)])
        out = CommonSubexpressionElimination().run(g)
        assert out.op_counts()["matmul"] == 2

    def test_identical_consts_merge(self):
        c1 = builder.const(np.ones((4, 4), dtype=np.float32))
        c2 = builder.const(np.ones((4, 4), dtype=np.float32))
        g = Graph([builder.add(c1, c2)])
        out = CommonSubexpressionElimination().run(g)
        assert out.op_counts()["const"] == 1

    def test_deep_structural_merge(self, operands):
        """Duplicates several levels deep collapse bottom-up."""
        opt, report = _check_semantics(
            lambda a, b: ((a @ b) @ (a @ b)) + ((a @ b) @ (a @ b)),
            [operands["A"], operands["B"]],
        )
        assert opt.op_counts()["matmul"] == 2  # a@b and (a@b)@(a@b)


class TestTransposeElimination:
    def test_double_transpose_cancels(self, operands):
        opt, _ = _check_semantics(
            lambda a: a.T.T, [operands["A"]],
            pipeline=PassPipeline([TransposeElimination()]),
        )
        assert opt.op_counts().get("transpose", 0) == 0

    def test_transpose_fuses_into_matmul(self, operands):
        opt, report = _check_semantics(
            lambda a, b: a.T @ b, [operands["A"], operands["B"]],
            pipeline=PassPipeline([TransposeElimination()]),
        )
        assert opt.op_counts().get("transpose", 0) == 0
        (mm,) = opt.nodes_by_op("matmul")
        assert mm.attrs["trans_a"] is True

    def test_transpose_of_transpose_in_matmul(self, operands):
        opt, _ = _check_semantics(
            lambda a, b: a.T.T @ b.T, [operands["A"], operands["B"]],
            pipeline=PassPipeline([TransposeElimination()]),
        )
        (mm,) = opt.nodes_by_op("matmul")
        assert mm.attrs["trans_a"] is False
        assert mm.attrs["trans_b"] is True

    def test_transpose_kept_for_add_consumer(self, operands):
        opt, _ = _check_semantics(
            lambda a: a.T + a, [operands["A"]],
            pipeline=PassPipeline([TransposeElimination()]),
        )
        assert opt.op_counts().get("transpose", 0) == 1


class TestArithmetic:
    def test_x_plus_x_becomes_scale(self, operands):
        """Paper Experiment 1: AᵀB + AᵀB -> 2·(AᵀB)."""
        opt, report = _check_semantics(
            lambda a, b: a.T @ b + a.T @ b, [operands["A"], operands["B"]]
        )
        counts = report.kernel_counts()
        assert counts["gemm"] == 1
        assert counts["scale"] == 1

    def test_neg_normalized(self, operands):
        opt, _ = _check_semantics(
            lambda a: -a, [operands["A"]],
            pipeline=PassPipeline([ArithmeticSimplification()]),
        )
        assert opt.op_counts().get("neg", 0) == 0
        assert opt.op_counts().get("scale", 0) == 1

    def test_scale_chain_collapses(self, operands):
        opt, _ = _check_semantics(
            lambda a: (a * 2.0) * 3.0, [operands["A"]],
            pipeline=PassPipeline([ArithmeticSimplification()]),
        )
        (s,) = opt.nodes_by_op("scale")
        assert s.attrs["alpha"] == pytest.approx(6.0)

    def test_ax_plus_bx_combines(self, operands):
        opt, _ = _check_semantics(
            lambda a: a * 2.0 + a * 3.0, [operands["A"]],
            pipeline=PassPipeline([ArithmeticSimplification()]),
        )
        assert opt.op_counts().get("add", 0) == 0
        (s,) = opt.nodes_by_op("scale")
        assert s.attrs["alpha"] == pytest.approx(5.0)

    def test_x_minus_x_is_zero_scale(self, operands):
        opt, _ = _check_semantics(
            lambda a: a - a, [operands["A"]],
            pipeline=PassPipeline([ArithmeticSimplification()]),
        )
        (s,) = opt.nodes_by_op("scale")
        assert s.attrs["alpha"] == 0.0

    def test_sub_after_cse(self, operands):
        """CSE must run first for a.T@b - a.T@b to be seen as x - x."""
        opt, report = _check_semantics(
            lambda a, b: a.T @ b - a.T @ b, [operands["A"], operands["B"]]
        )
        assert report.kernel_counts().get("gemm", 0) <= 1


class TestConstantFolding:
    def test_const_subtree_folds(self, operands):
        c = np.full((operands["A"].shape), 2.0, dtype=np.float32)
        from repro.tensor import Tensor

        ct = Tensor(c)
        opt, _ = _check_semantics(
            lambda a: (ct + ct) + a, [operands["A"]],
            pipeline=PassPipeline([ConstantFolding()]),
        )
        # the ct+ct add folded away; only the input add remains
        assert opt.op_counts()["add"] == 1

    def test_input_dependent_not_folded(self, operands):
        opt, _ = _check_semantics(
            lambda a, b: a + b, [operands["A"], operands["B"]],
            pipeline=PassPipeline([ConstantFolding()]),
        )
        assert opt.op_counts()["add"] == 1


class TestNoOpElimination:
    def test_scale_one_dropped(self, operands):
        g = trace(lambda a: a * 1.0, [operands["A"]])
        out = NoOpElimination().run(g)
        assert out.op_counts().get("scale", 0) == 0

    def test_full_slice_dropped(self, operands):
        g = trace(lambda a: a[:, :], [operands["A"]])
        out = NoOpElimination().run(g)
        assert out.op_counts().get("slice", 0) == 0

    def test_partial_slice_kept(self, operands):
        g = trace(lambda a: a[1:3, :], [operands["A"]])
        out = NoOpElimination().run(g)
        assert out.op_counts().get("slice", 0) == 1


class TestLICM:
    def _loop_graph(self, a, b, trips=3):
        def fn(p, q):
            def body(i, acc, pp, qq):
                return acc + pp @ qq

            init = (p @ q) * 0.0
            return trace_loop(body, init, [p, q], trip_count=trips)

        return trace(fn, [a, b])

    def test_invariant_product_hoisted(self, operands):
        a, b = operands["A"], operands["B"]
        g = self._loop_graph(a, b)
        before, _ = run_graph(g, [a.data, b.data])
        opt = default_pipeline().run(g)
        after, report = run_graph(opt, [a.data, b.data])
        assert np.allclose(before[0], after[0], atol=1e-3)
        # one gemm total (hoisted + shared with init after CSE)
        assert report.kernel_counts()["gemm"] == 1

    def test_variant_body_not_hoisted(self, operands):
        """acc @ b depends on the carried value -> must stay in the loop."""
        a, b = operands["A"], operands["B"]

        def fn(p, q):
            def body(i, acc, qq):
                return acc @ qq

            return trace_loop(body, p, [q], trip_count=3)

        g = trace(fn, [a, b])
        before, _ = run_graph(g, [a.data, b.data])
        opt = PassPipeline([LoopInvariantCodeMotion()]).run(g)
        after, report = run_graph(opt, [a.data, b.data])
        assert np.allclose(before[0], after[0], rtol=1e-3, atol=1e-4)
        assert report.kernel_counts()["gemm"] == 3

    def test_index_dependent_not_hoisted(self):
        idx = builder.input_node((1, 1), "float32", name="i")
        carried = builder.input_node((1, 1), "float32", name="c")
        # body: c + (i * 2): depends on idx -> not hoistable
        body = Graph(
            [builder.add(carried, builder.scale(idx, 2.0))],
            inputs=[idx, carried],
        )
        init = builder.const(np.zeros((1, 1), dtype=np.float32))
        node = builder.loop(body, init, [], trip_count=3)
        g = Graph([node])
        out = LoopInvariantCodeMotion().run(g)
        outs, _ = run_graph(out, [])
        assert outs[0][0, 0] == pytest.approx(2.0 * (0 + 1 + 2))


class TestPipeline:
    def test_validates_between_passes(self, operands):
        g = trace(lambda a, b: a @ b, [operands["A"], operands["B"]])
        p = default_pipeline()
        p.run(g)
        assert len(p.history) == len(p.passes)

    def test_describe_after_run(self, operands):
        g = trace(lambda a, b: a @ b + a @ b, [operands["A"], operands["B"]])
        p = default_pipeline()
        p.run(g)
        text = p.describe()
        assert "cse" in text

    def test_default_pipeline_is_idempotent(self, operands):
        g = trace(lambda a, b: (a.T @ b).T @ (a.T @ b),
                  [operands["A"], operands["B"]])
        p = default_pipeline()
        once = p.run(g)
        twice = default_pipeline().run(once)
        assert once.op_counts() == twice.op_counts()


class TestPipelineExtendAndDescribe:
    def test_extend_appends_and_keeps_validate(self, operands):
        p = PassPipeline([TransposeElimination()], validate=False)
        q = p.extend([CommonSubexpressionElimination()])
        assert [x.name for x in q.passes] == [x.name for x in p.passes] + ["cse"]
        assert q.validate is p.validate
        assert p.passes == q.passes[:-1]  # original untouched

    def test_extend_starts_with_fresh_history(self, operands):
        p = default_pipeline()
        p.run(trace(lambda a: a @ a, [operands["A"]]))
        q = p.extend([NoOpElimination()])
        assert q.history == []
        assert len(p.history) == len(p.passes)  # original history intact

    def test_running_extension_leaves_original_history(self, operands):
        p = default_pipeline()
        p.run(trace(lambda a: a @ a, [operands["A"]]))
        before = list(p.history)
        q = p.extend([NoOpElimination()])
        q.run(trace(lambda a: a @ a + a, [operands["A"]]))
        assert p.history == before
        assert len(q.history) == len(q.passes)

    def test_describe_before_run_lists_names(self):
        p = PassPipeline([TransposeElimination(), NoOpElimination()])
        assert p.describe() == "transpose_elim -> noop_elim"

    def test_describe_partial_history_marks_not_run(self, operands):
        """After a run that failed partway, describe() must still render
        every pass instead of dropping the ones without stats."""
        from repro.errors import GraphError

        class Boom(TransposeElimination):
            name = "boom"

            def apply(self, graph):
                raise GraphError("synthetic failure")

        p = PassPipeline(
            [CommonSubexpressionElimination(), Boom(), NoOpElimination()]
        )
        g = trace(lambda a: a @ a + a @ a, [operands["A"]])
        with pytest.raises(GraphError):
            p.run(g)
        text = p.describe()
        assert len(p.history) == 1  # only cse completed
        assert "cse" in text
        assert "boom" in text and "noop_elim" in text
        assert text.count("(not run)") == 2
