"""Structural well-formedness checks for graphs.

Run after every optimizer pass in debug mode: a pass that corrupts shapes,
introduces unknown ops, or breaks loop-body signatures fails loudly here
rather than producing silently wrong arithmetic downstream.
"""

from __future__ import annotations

from ..errors import GraphError
from .graph import Graph
from .node import Node
from .ops import OP_REGISTRY


def validate_graph(graph: Graph, *, _depth: int = 0) -> None:
    """Raise :class:`GraphError` if the graph is malformed.

    Checks, per node:

    * the op is registered and the arity matches;
    * the recorded shape/dtype equal what inference derives from the
      (current) inputs — catching passes that rewired inputs without
      re-deriving metadata;
    * loop bodies are themselves valid graphs with consistent signatures.

    Also verifies global acyclicity (implied by a successful topological
    walk over immutable nodes, but re-checked defensively) and that every
    declared graph input is an ``input`` node.
    """
    if _depth > 16:
        raise GraphError("loop nesting deeper than 16 — runaway graph?")
    seen: set[int] = set()
    for node in graph.topological():
        if id(node) in seen:
            raise GraphError(f"node {node.name} appears twice in topological order")
        seen.add(id(node))
        _validate_node(node, _depth)
    for inp in graph.inputs:
        if inp.op != "input":
            raise GraphError(f"declared input {inp.name} has op {inp.op!r}")
    for node in graph.topological():
        for i in node.inputs:
            if id(i) not in seen:
                raise GraphError(
                    f"node {node.name} references {i.name} outside the graph"
                )


def _validate_node(node: Node, depth: int) -> None:
    spec = OP_REGISTRY.get(node.op)
    if spec is None:
        raise GraphError(f"unregistered op {node.op!r} on node {node.name}")
    if spec.arity is not None and len(node.inputs) != spec.arity:
        raise GraphError(
            f"{node.name}: op {node.op} expects {spec.arity} inputs, "
            f"has {len(node.inputs)}"
        )
    spec.validate(node.inputs, node.attrs)
    shape, dtype = spec.infer(node.inputs, node.attrs)
    if tuple(shape) != tuple(node.shape):
        raise GraphError(
            f"{node.name}: recorded shape {node.shape} != inferred {shape}"
        )
    if dtype != node.dtype:
        raise GraphError(
            f"{node.name}: recorded dtype {node.dtype} != inferred {dtype}"
        )
    if node.op == "loop":
        validate_graph(node.attrs["body"], _depth=depth + 1)
