"""Per-(tenant, plan) circuit breaking: stop feeding a failing wave path.

When a plan's waves start failing *consistently* — a workload that
deterministically breaks shard workers, a plan whose kernels raise on
every feed — retrying each new request through the full
admission/coalesce/dispatch stack just burns wave slots and worker
respawns on work that cannot succeed.  A :class:`CircuitBreaker` per
(tenant, compiled-plan) pair watches wave outcomes and, after
``failures_to_open`` *consecutive* failures, trips **open**: requests
for that pair are shed immediately with
:class:`~repro.serve.admission.ServeOverloadError` (cheap, before
admission) instead of queued.  After ``reset_timeout`` seconds the
breaker goes **half-open** and admits exactly one probe request; a
successful wave closes the breaker, a failed probe re-opens it for
another cooldown.

The breaker is event-loop-confined like the admission controller —
``allow``/``record_*`` are plain calls made from ``Server.submit`` and
the wave dispatch path, never from executor threads.
"""

from __future__ import annotations

import dataclasses

__all__ = ["BreakerConfig", "CircuitBreaker"]


@dataclasses.dataclass(frozen=True)
class BreakerConfig:
    """Trip threshold and cooldown of the per-(tenant, plan) breakers.

    Attributes
    ----------
    failures_to_open:
        Consecutive wave failures that trip the breaker open.  ``0``
        disables circuit breaking entirely (every request passes).
    reset_timeout:
        Seconds an open breaker sheds before allowing one half-open
        probe through.
    """

    failures_to_open: int = 5
    reset_timeout: float = 1.0

    def validate(self) -> None:
        if not isinstance(self.failures_to_open, int) \
                or self.failures_to_open < 0:
            raise ValueError(
                f"failures_to_open must be an int >= 0, got "
                f"{self.failures_to_open!r}"
            )
        if not (self.reset_timeout > 0):
            raise ValueError(
                f"reset_timeout must be > 0, got {self.reset_timeout!r}"
            )


class CircuitBreaker:
    """closed → open → half-open state machine over wave outcomes."""

    def __init__(self, config: BreakerConfig | None = None) -> None:
        self.config = config if config is not None else BreakerConfig()
        self.config.validate()
        self.state = "closed"
        self.consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def enabled(self) -> bool:
        return self.config.failures_to_open > 0

    def allow(self, now: float) -> bool:
        """May a new request for this (tenant, plan) proceed right now?"""
        if not self.enabled or self.state == "closed":
            return True
        if self.state == "open":
            if now - self._opened_at < self.config.reset_timeout:
                return False
            self.state = "half-open"
            self._probing = False
        # half-open: exactly one probe request at a time.
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        """A wave for this pair completed: close and reset."""
        self.state = "closed"
        self.consecutive_failures = 0
        self._probing = False

    def record_failure(self, now: float) -> bool:
        """A wave for this pair failed; returns True when this failure
        *trips* the breaker (closed/half-open → open)."""
        if not self.enabled:
            return False
        self.consecutive_failures += 1
        if self.state == "half-open":
            # The probe failed: straight back to shedding.
            self.state = "open"
            self._opened_at = now
            self._probing = False
            return True
        if self.state == "closed" and \
                self.consecutive_failures >= self.config.failures_to_open:
            self.state = "open"
            self._opened_at = now
            return True
        return False
