"""Level-3 BLAS wrappers: matrix-matrix operations.

These are the kernels whose relative costs drive every experiment in the
paper: GEMM (the 2mnk baseline), TRMM and SYRK (the half-cost structured
kernels of Experiment 3), SYMM, and TRSM.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import blas as _blas

from ..errors import KernelError, ShapeError
from .validation import (
    as_ndarray,
    check_matmul_shapes,
    require_matrix,
    require_same_dtype,
    require_square,
)

_GEMM = {np.dtype(np.float32): _blas.sgemm, np.dtype(np.float64): _blas.dgemm}
_TRMM = {np.dtype(np.float32): _blas.strmm, np.dtype(np.float64): _blas.dtrmm}
_SYRK = {np.dtype(np.float32): _blas.ssyrk, np.dtype(np.float64): _blas.dsyrk}
_SYMM = {np.dtype(np.float32): _blas.ssymm, np.dtype(np.float64): _blas.dsymm}
_TRSM = {np.dtype(np.float32): _blas.strsm, np.dtype(np.float64): _blas.dtrsm}


def _routine(table: dict, dtype: np.dtype, name: str):
    try:
        return table[np.dtype(dtype)]
    except KeyError:  # pragma: no cover
        raise KernelError(f"no {name} kernel for dtype {dtype}") from None


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    alpha: float = 1.0,
    beta: float = 0.0,
    out: np.ndarray | None = None,
    trans_a: bool = False,
    trans_b: bool = False,
) -> np.ndarray:
    """GEMM: return ``alpha * op(A) op(B) + beta * C`` (2mnk FLOPs).

    The transpose flags map to the BLAS ``TRANSA``/``TRANSB`` arguments, so
    ``AᵀB`` costs no explicit transpose — exactly how the paper's reference
    "MKL-C" implementation computes the Table I expressions.  The scaling
    ``alpha`` rides along for free, which is why the frameworks' CSE rewrite
    of ``AᵀB + AᵀB`` into ``2·(AᵀB)`` has negligible overhead (Experiment 1),
    and why the runtime's fusion pass can fold a trailing ``scale`` into the
    product at no cost.

    ``out`` is the destination-aware mode: the result is written into the
    caller's ``C`` buffer (BLAS's own ``C`` argument, ``overwrite_c=1``) and
    that same buffer is returned — no allocation.  The buffer must be
    Fortran-contiguous (the layout BLAS writes; anything else would force
    f2py to make a hidden copy, silently defeating the point), of the
    result's exact shape and dtype.  ``beta`` defaults to 0 so ``out`` acts
    as a pure destination; a nonzero ``beta`` accumulates into it and
    requires ``out``.
    """
    a = require_matrix(as_ndarray(a, "a"), "a")
    b = require_matrix(as_ndarray(b, "b"), "b")
    require_same_dtype((a, "a"), (b, "b"))
    op_a = a.T if trans_a else a
    op_b = b.T if trans_b else b
    check_matmul_shapes(op_a, op_b)
    fn = _routine(_GEMM, a.dtype, "gemm")
    if out is None:
        if beta != 0.0:
            raise KernelError("gemm: beta != 0 accumulates into C — pass out=")
        return fn(
            a.dtype.type(alpha),
            a,
            b,
            trans_a=1 if trans_a else 0,
            trans_b=1 if trans_b else 0,
        )
    expected = (op_a.shape[0], op_b.shape[1])
    if out.shape != expected:
        raise ShapeError(
            f"gemm: out has shape {out.shape}, result is {expected}"
        )
    if out.dtype != a.dtype:
        raise KernelError(
            f"gemm: out dtype {out.dtype} does not match operands ({a.dtype})"
        )
    if not out.flags.f_contiguous:
        raise KernelError(
            "gemm: out must be Fortran-contiguous (use np.empty(..., order='F')) "
            "— any other layout forces a hidden copy"
        )
    return fn(
        a.dtype.type(alpha),
        a,
        b,
        beta=a.dtype.type(beta),
        c=out,
        overwrite_c=1,
        trans_a=1 if trans_a else 0,
        trans_b=1 if trans_b else 0,
    )


def trmm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    alpha: float = 1.0,
    side_left: bool = True,
    lower: bool = True,
    trans_a: bool = False,
    unit_diag: bool = False,
) -> np.ndarray:
    """TRMM: triangular matrix product ``alpha * op(A) B`` (or ``B op(A)``).

    Cost: ~n²m FLOPs — half of the 2n²m a GEMM would spend, because the zero
    triangle is never touched.  This is the kernel the paper's SciPy
    reference uses for the ``LB`` row of Table IV.
    """
    a = require_square(as_ndarray(a, "a"), "a")
    b = require_matrix(as_ndarray(b, "b"), "b")
    require_same_dtype((a, "a"), (b, "b"))
    n = a.shape[0]
    if side_left and b.shape[0] != n:
        raise ShapeError(f"trmm: A is {a.shape}, B is {b.shape} (left multiply)")
    if not side_left and b.shape[1] != n:
        raise ShapeError(f"trmm: A is {a.shape}, B is {b.shape} (right multiply)")
    fn = _routine(_TRMM, a.dtype, "trmm")
    return fn(
        a.dtype.type(alpha),
        a,
        b,
        side=0 if side_left else 1,
        lower=1 if lower else 0,
        trans_a=1 if trans_a else 0,
        diag=1 if unit_diag else 0,
    )


def syrk(
    a: np.ndarray,
    *,
    alpha: float = 1.0,
    trans: bool = False,
    lower: bool = True,
    fill: bool = True,
) -> np.ndarray:
    """SYRK: symmetric rank-k update ``alpha * A Aᵀ`` (or ``Aᵀ A`` when ``trans``).

    Cost: ~n²k FLOPs — half a GEMM — because only one triangle of the
    symmetric result is computed.  By default the missing triangle is filled
    in afterwards (an O(n²) copy) so the return value is a full dense
    matrix, comparable with ``gemm(a, a.T)``; pass ``fill=False`` to get the
    raw one-triangle BLAS output.
    """
    a = require_matrix(as_ndarray(a, "a"), "a")
    fn = _routine(_SYRK, a.dtype, "syrk")
    c = fn(a.dtype.type(alpha), a, trans=1 if trans else 0, lower=1 if lower else 0)
    if fill:
        # Mirror the computed triangle into the other half.
        if lower:
            c = c + np.tril(c, -1).T
        else:
            c = c + np.triu(c, 1).T
    return c


def symm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    alpha: float = 1.0,
    side_left: bool = True,
    lower: bool = True,
) -> np.ndarray:
    """SYMM: ``alpha * A B`` with symmetric ``A`` (2n²m FLOPs; same count as
    GEMM but only one triangle of ``A`` is read, halving its memory traffic)."""
    a = require_square(as_ndarray(a, "a"), "a")
    b = require_matrix(as_ndarray(b, "b"), "b")
    require_same_dtype((a, "a"), (b, "b"))
    n = a.shape[0]
    if side_left and b.shape[0] != n:
        raise ShapeError(f"symm: A is {a.shape}, B is {b.shape} (left multiply)")
    if not side_left and b.shape[1] != n:
        raise ShapeError(f"symm: A is {a.shape}, B is {b.shape} (right multiply)")
    fn = _routine(_SYMM, a.dtype, "symm")
    return fn(
        a.dtype.type(alpha),
        a,
        b,
        side=0 if side_left else 1,
        lower=1 if lower else 0,
    )


def trsm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    alpha: float = 1.0,
    side_left: bool = True,
    lower: bool = True,
    trans_a: bool = False,
    unit_diag: bool = False,
) -> np.ndarray:
    """TRSM: solve ``op(A) X = alpha B`` with triangular ``A`` (~n²m FLOPs)."""
    a = require_square(as_ndarray(a, "a"), "a")
    b = require_matrix(as_ndarray(b, "b"), "b")
    require_same_dtype((a, "a"), (b, "b"))
    n = a.shape[0]
    if side_left and b.shape[0] != n:
        raise ShapeError(f"trsm: A is {a.shape}, B is {b.shape} (left solve)")
    if not side_left and b.shape[1] != n:
        raise ShapeError(f"trsm: A is {a.shape}, B is {b.shape} (right solve)")
    fn = _routine(_TRSM, a.dtype, "trsm")
    return fn(
        a.dtype.type(alpha),
        a,
        b,
        side=0 if side_left else 1,
        lower=1 if lower else 0,
        trans_a=1 if trans_a else 0,
        diag=1 if unit_diag else 0,
    )
