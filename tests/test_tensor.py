"""Tests for the Tensor wrapper: construction, operators, property carrying."""

import numpy as np
import pytest

from repro.errors import DTypeError, PropertyError, ShapeError
from repro.tensor import Tensor, eye, zeros
from repro.tensor.properties import Property


class TestConstruction:
    def test_scalar_becomes_1x1(self):
        t = Tensor(3.5)
        assert t.shape == (1, 1)
        assert t.item() == pytest.approx(3.5)

    def test_1d_becomes_column(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3, 1)

    def test_2d_kept(self):
        t = Tensor(np.zeros((4, 5)))
        assert t.shape == (4, 5)

    def test_3d_rejected(self):
        with pytest.raises(ShapeError):
            Tensor(np.zeros((2, 2, 2)))

    def test_default_dtype_float32(self):
        assert Tensor([[1, 2]]).dtype == np.float32

    def test_float64_preserved(self):
        assert Tensor(np.zeros((2, 2), dtype=np.float64)).dtype == np.float64

    def test_explicit_dtype(self):
        assert Tensor([[1.0]], dtype="float64").dtype == np.float64

    def test_bad_dtype_rejected(self):
        with pytest.raises(DTypeError):
            Tensor([[1.0]], dtype="int32")

    def test_wrapping_tensor_merges_props(self, operands):
        l = operands["L"]
        t = Tensor(l, {Property.UNIT_DIAGONAL})
        assert Property.LOWER_TRIANGULAR in t.props
        assert Property.UNIT_DIAGONAL in t.props

    def test_verify_rejects_false_annotation(self, operands):
        with pytest.raises(PropertyError):
            Tensor(operands["A"].data, {Property.DIAGONAL}, verify=True)

    def test_verify_accepts_true_annotation(self, operands):
        Tensor(operands["L"].data, {Property.LOWER_TRIANGULAR}, verify=True)

    def test_detect_finds_structure(self, operands):
        t = Tensor(operands["D"].data, detect=True)
        assert Property.DIAGONAL in t.props

    def test_shape_props_automatic(self, n):
        t = Tensor(np.zeros((n, n)))
        assert Property.SQUARE in t.props
        v = Tensor(np.zeros((n, 1)))
        assert Property.VECTOR in v.props


class TestOperators:
    def test_matmul_matrix(self, operands):
        a, b = operands["A"], operands["B"]
        assert (a @ b).allclose(a.numpy() @ b.numpy())

    def test_matmul_matrix_vector(self, operands):
        a, x = operands["A"], operands["x"]
        out = a @ x
        assert out.shape == (a.shape[0], 1)
        assert out.allclose(a.numpy() @ x.numpy())

    def test_matmul_vector_matrix(self, operands):
        a, x = operands["A"], operands["x"]
        out = x.T @ a
        assert out.shape == (1, a.shape[1])
        assert out.allclose(x.numpy().T @ a.numpy())

    def test_matmul_inner_product(self, operands):
        x, y = operands["x"], operands["y"]
        out = x.T @ y
        assert out.shape == (1, 1)
        assert out.item() == pytest.approx(
            float((x.numpy().T @ y.numpy())[0, 0]), rel=1e-4
        )

    def test_matmul_outer_product(self, operands):
        x, y = operands["x"], operands["y"]
        out = x @ y.T
        assert out.shape == (x.shape[0], y.shape[0])
        assert out.allclose(np.outer(x.numpy(), y.numpy()))

    def test_matmul_shape_error(self, operands):
        with pytest.raises(ShapeError):
            operands["A"] @ operands["x"].T

    def test_add_sub_neg(self, operands):
        a, b = operands["A"], operands["B"]
        assert (a + b).allclose(a.numpy() + b.numpy())
        assert (a - b).allclose(a.numpy() - b.numpy())
        assert (-a).allclose(-a.numpy())

    def test_add_shape_error(self, operands):
        with pytest.raises(ShapeError):
            operands["A"] + operands["x"]

    def test_scalar_multiply(self, operands):
        a = operands["A"]
        assert (a * 2.5).allclose(2.5 * a.numpy())
        assert (2.5 * a).allclose(2.5 * a.numpy())

    def test_matrix_multiply_with_star_rejected(self, operands):
        with pytest.raises(TypeError):
            operands["A"] * operands["B"]

    def test_hadamard(self, operands):
        a, b = operands["A"], operands["B"]
        assert a.hadamard(b).allclose(a.numpy() * b.numpy())

    def test_transpose_is_view(self, operands):
        a = operands["A"]
        assert np.shares_memory(a.T.numpy(), a.numpy())

    def test_transpose_value(self, operands):
        a = operands["A"]
        assert a.T.allclose(a.numpy().T)

    def test_getitem_element(self, operands):
        a = operands["A"]
        got = a[2, 3]
        assert got.shape == (1, 1)
        assert got.item() == pytest.approx(float(a.numpy()[2, 3]), rel=1e-6)

    def test_getitem_row(self, operands):
        a = operands["A"]
        row = a[2, :]
        assert row.shape[0] * row.shape[1] == a.shape[1]

    def test_item_requires_scalar(self, operands):
        with pytest.raises(ShapeError):
            operands["A"].item()

    def test_mixed_dtype_matmul_rejected(self, operands):
        a64 = operands["A"].astype("float64")
        with pytest.raises(DTypeError):
            a64 @ operands["B"]


class TestPropertyPropagation:
    def test_transpose_swaps_triangular(self, operands):
        assert Property.UPPER_TRIANGULAR in operands["L"].T.props

    def test_symmetric_transpose_keeps(self, operands):
        assert Property.SYMMETRIC in operands["S"].T.props

    def test_diag_times_diag(self, operands):
        d = operands["D"]
        assert Property.DIAGONAL in (d @ d).props

    def test_lower_times_lower(self, operands):
        l = operands["L"]
        assert Property.LOWER_TRIANGULAR in (l @ l).props

    def test_identity_absorbs(self, operands, n):
        i = eye(n)
        out = i @ operands["L"]
        assert Property.LOWER_TRIANGULAR in out.props

    def test_zero_absorbs(self, operands, n):
        z = zeros(n)
        assert Property.ZERO in (z @ operands["A"]).props
        assert Property.ZERO in (operands["A"] @ z).props

    def test_add_preserves_common_structure(self, operands):
        l = operands["L"]
        assert Property.LOWER_TRIANGULAR in (l + l).props

    def test_add_of_different_structures_general(self, operands):
        out = operands["L"] + operands["S"]
        assert Property.LOWER_TRIANGULAR not in out.props
        assert Property.SYMMETRIC not in out.props

    def test_scale_keeps_structure(self, operands):
        assert Property.LOWER_TRIANGULAR in (operands["L"] * 3.0).props

    def test_scale_zero_gives_zero(self, operands):
        assert Property.ZERO in (operands["A"] * 0.0).props

    def test_spd_plus_spd(self, operands):
        p = operands["P"]
        assert Property.SPD in (p + p).props

    def test_spd_minus_spd_not_spd(self, operands):
        p = operands["P"]
        assert Property.SPD not in (p - p).props

    def test_propagated_props_numerically_sound(self, operands):
        """Every propagated property must actually hold for the data."""
        from repro.tensor.properties import verify_property

        results = [
            operands["L"] @ operands["L"],
            operands["D"] @ operands["T"],
            operands["L"].T,
            operands["S"] + operands["S"],
            operands["P"] * 2.0,
        ]
        for t in results:
            for prop in t.props:
                if prop is Property.BLOCK_DIAGONAL:
                    continue  # carries structure info not checkable alone
                assert verify_property(t.data, prop, atol=1e-3), (t, prop)

    def test_with_props(self, operands):
        t = operands["A"].with_props(Property.SQUARE)
        assert Property.SQUARE in t.props
        assert t.numpy() is operands["A"].numpy()
