"""Integration tests pinning the paper's findings, machine-independently.

Each test encodes one claim from the paper as a *structural* fact about the
simulated frameworks (kernel counts, graph shapes, FLOP totals) rather than
a wall-clock ratio — the timing counterparts live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.frameworks import pytsim, tfsim
from repro.tensor import random_general, random_vector

N = 48


@pytest.fixture(scope="module")
def ops():
    return {
        "A": random_general(N, seed=1),
        "B": random_general(N, seed=2),
        "H": random_general(N, seed=3),
        "x": random_vector(N, seed=4),
        "y": random_vector(N, seed=5),
    }


def _gemm_flops(n=N):
    return 2 * n**3


class TestTableI:
    def test_frameworks_link_to_same_kernels(self, ops):
        """Row 1: AᵀB lowers to exactly one GEMM in both frameworks (the
        transpose fuses into the kernel call, like MKL's TRANSA)."""
        @tfsim.function
        def tf_fn(a, b):
            return tfsim.transpose(a) @ b

        @pytsim.jit.script
        def pyt_fn(a, b):
            return a.T @ b

        tf_fn(ops["A"], ops["B"])
        pyt_fn(ops["A"], ops["B"])
        assert tf_fn.last_report.kernel_counts() == {"gemm": 1}
        assert pyt_fn.last_report.kernel_counts() == {"gemm": 1}

    def test_eager_three_gemms_graph_two(self, ops):
        """Row 2: eager does 3 GEMMs' work, graph mode 2 (the 1.5× of
        Table I)."""
        a, b = ops["A"], ops["B"]

        @tfsim.function
        def graph_fn(p, q):
            return tfsim.transpose(tfsim.transpose(p) @ q) @ (tfsim.transpose(p) @ q)

        graph_fn(a, b)
        assert graph_fn.last_report.kernel_counts()["gemm"] == 2
        # eager recomputes the shared product: count by construction
        t1 = tfsim.transpose(a) @ b
        t2 = tfsim.transpose(a) @ b  # a second, independent GEMM
        out = tfsim.transpose(t1) @ t2
        assert out.allclose(graph_fn(a, b), rtol=1e-3)


class TestTableII:
    @pytest.mark.parametrize(
        "builder,expected_gemms",
        [
            (lambda: (lambda a, b: a.T @ b), 1),
            (lambda: (lambda a, b: a.T @ b + a.T @ b), 1),
            (lambda: (lambda a, b: (a.T @ b).T @ (a.T @ b)), 2),
            (lambda: (lambda a, b: (a.T @ b).T @ a.T @ b), 3),
        ],
        ids=["S", "S+S", "(S)T(S)", "no-paren"],
    )
    def test_gemm_counts(self, ops, builder, expected_gemms):
        fn = pytsim.jit.script(builder())
        fn(ops["A"], ops["B"])
        assert fn.last_report.kernel_counts()["gemm"] == expected_gemms


class TestTableIII:
    def test_default_order_is_left_to_right(self, ops):
        """Unparenthesized HᵀHx executes the O(n³) GEMM first."""
        @tfsim.function
        def fn(h, x):
            return tfsim.transpose(h) @ h @ x

        fn(ops["H"], ops["x"])
        counts = fn.last_report.kernel_counts()
        assert counts.get("gemm", 0) == 1  # the expensive product happened
        assert fn.last_report.total_flops >= _gemm_flops()

    def test_explicit_parens_respected(self, ops):
        @tfsim.function
        def fn(h, x):
            return tfsim.transpose(h) @ (h @ x)

        fn(ops["H"], ops["x"])
        assert fn.last_report.kernel_counts().get("gemm", 0) == 0
        assert fn.last_report.total_flops < _gemm_flops() // 10

    def test_left_to_right_chain_is_already_optimal(self, ops):
        @pytsim.jit.script
        def fn(h, y):
            return y.T @ h.T @ h

        fn(ops["H"], ops["y"])
        assert fn.last_report.total_flops < _gemm_flops() // 10

    def test_multi_dot_matches_optimum(self, ops):
        @pytsim.jit.script
        def md(h, x):
            return pytsim.linalg.multi_dot([h.T, h, x])

        @pytsim.jit.script
        def explicit(h, x):
            return h.T @ (h @ x)

        out_md = md(ops["H"], ops["x"])
        out_ex = explicit(ops["H"], ops["x"])
        assert out_md.allclose(out_ex, rtol=1e-3)
        assert md.last_report.total_flops == explicit.last_report.total_flops


class TestTableIV:
    def test_matmul_blind_to_structure(self, ops):
        """LB through plain matmul costs a full GEMM in both frameworks."""
        from repro.tensor import random_lower_triangular

        l = random_lower_triangular(N, seed=9)

        @tfsim.function
        def tf_fn(p, q):
            return p @ q

        tf_fn(l, ops["B"])
        assert tf_fn.last_report.kernel_counts() == {"gemm": 1}

    def test_tridiagonal_op_is_opt_in_and_cheap(self, ops):
        from repro.tensor import random_tridiagonal

        t = random_tridiagonal(N, seed=10)

        @tfsim.function
        def blind(p, q):
            return p @ q

        @tfsim.function
        def optim(p, q):
            return tfsim.linalg.tridiagonal_matmul(p, q)

        b1 = blind(t, ops["B"])
        b2 = optim(t, ops["B"])
        assert b1.allclose(b2, rtol=1e-3)
        assert blind.last_report.total_flops == _gemm_flops()
        assert optim.last_report.total_flops == 6 * N * N


class TestTableV:
    def test_no_distributivity_rewriting(self, ops):
        """LHS and RHS of Eq. 9 keep their as-written GEMM counts."""
        @tfsim.function
        def lhs(a, b, c):
            return a @ b + a @ c

        @tfsim.function
        def rhs(a, b, c):
            return a @ (b + c)

        lhs(ops["A"], ops["B"], ops["H"])
        rhs(ops["A"], ops["B"], ops["H"])
        assert lhs.last_report.kernel_counts()["gemm"] == 2
        assert rhs.last_report.kernel_counts()["gemm"] == 1

    def test_blocked_structure_not_exploited(self, ops):
        """The concatenated block-diagonal product runs one full GEMM."""
        half = N // 2
        a1 = random_general(half, seed=20)
        a2 = random_general(half, seed=21)
        b1 = random_general(half, N, seed=22)
        b2 = random_general(half, N, seed=23)

        @tfsim.function
        def lhs(p1, p2, q1, q2):
            z = tfsim.zeros(half, half)
            ab = tfsim.concat(
                [tfsim.concat([p1, z], axis=1), tfsim.concat([z, p2], axis=1)],
                axis=0,
            )
            return ab @ tfsim.concat([q1, q2], axis=0)

        @tfsim.function
        def rhs(p1, p2, q1, q2):
            return tfsim.concat([p1 @ q1, p2 @ q2], axis=0)

        out_l = lhs(a1, a2, b1, b2)
        out_r = rhs(a1, a2, b1, b2)
        assert out_l.allclose(out_r, rtol=1e-3)
        # LHS: one big 2n'×2n' GEMM; RHS: two small ones = half the FLOPs
        assert lhs.last_report.total_flops == 2 * rhs.last_report.total_flops


class TestTableVI:
    def test_loop_invariant_hoisted_by_unroll_cse(self, ops):
        v1, v2, v3 = (random_vector(N, seed=s) for s in (30, 31, 32))

        @pytsim.jit.script
        def naive(a, b, u, v, w):
            outs = []
            for vec in (u, v, w):
                outs.append(a @ b + vec @ vec.T)
            return outs

        @pytsim.jit.script
        def reco(a, b, u, v, w):
            tmp = a @ b
            return [tmp + vec @ vec.T for vec in (u, v, w)]

        o1 = naive(ops["A"], ops["B"], v1, v2, v3)
        c_naive = naive.last_report.kernel_counts()
        o2 = reco(ops["A"], ops["B"], v1, v2, v3)
        c_reco = reco.last_report.kernel_counts()
        assert c_naive == c_reco  # identical optimized DAGs
        # exactly one full n×n×n GEMM survives (the hoisted A@B); the other
        # gemm calls are the three rank-1 outer products (k = 1)
        big_gemms = [
            c for c in naive.last_report.calls
            if c.kernel == "gemm" and c.dims == (N, N, N)
        ]
        assert len(big_gemms) == 1
        for x, y in zip(o1, o2):
            assert x.allclose(y, rtol=1e-3)

    def test_partial_access_not_optimized(self, ops):
        @tfsim.function
        def naive(a, b):
            return (a @ b)[2, 2]

        @tfsim.function
        def reco(a, b):
            return a[2, :] @ b[:, 2]

        o1 = naive(ops["A"], ops["B"])
        flops_naive = naive.last_report.total_flops
        o2 = reco(ops["A"], ops["B"])
        flops_reco = reco.last_report.total_flops
        assert abs(o1.item() - o2.item()) < 1e-3
        assert flops_naive >= _gemm_flops()
        assert flops_reco <= 4 * N


class TestFig1:
    def test_variant_flops_ladder(self, ops):
        @tfsim.function
        def v1(h, x, y):
            i = tfsim.eye(N)
            return tfsim.transpose(h) @ y + (i - tfsim.transpose(h) @ h) @ x

        @tfsim.function
        def v2(h, x, y):
            return tfsim.transpose(h) @ y + x - tfsim.transpose(h) @ (h @ x)

        @tfsim.function
        def v3(h, x, y):
            return tfsim.transpose(h) @ (y - h @ x) + x

        args = (ops["H"], ops["x"], ops["y"])
        o1, o2, o3 = v1(*args), v2(*args), v3(*args)
        assert o1.allclose(o2, rtol=1e-2, atol=1e-3)
        assert o2.allclose(o3, rtol=1e-2, atol=1e-3)
        f1 = v1.last_report.total_flops
        f2 = v2.last_report.total_flops
        f3 = v3.last_report.total_flops
        assert f1 > 10 * f2  # O(n³) vs O(n²)
        assert f3 < f2  # two gemvs vs three
