"""Scripted recovery drills: the ``laab chaos`` harness.

:mod:`repro.faults` can make any wired site misbehave; this module turns
that into a *verdict*.  :func:`chaos_run` executes a fixed schedule of
fault scenarios — worker crash, SIGTERM-ignoring hang, garbled wave
reply, in-worker exception, serve-dispatch failure, torn store artifact,
mid-run pool loss with inline fallback, a mid-compile fault during
autotune candidate generation — against one known workload and
checks, for every phase, the only two outcomes robustness allows:

* **bit-correct answers** (``np.array_equal`` against the in-process
  reference — no silently wrong results after a recovery), or
* a **typed error** (:class:`~repro.runtime.ShardWorkerError`,
  :class:`~repro.faults.InjectedFault`, …) — never a hang, never a
  garbage value.

Each phase also audits for leaks: after its pool closes, every
shared-memory segment must be unlinked and every worker process dead.
Schedules are deterministic — trigger counts are chosen so a replayed
wave on a fresh worker (whose per-process hit counters restart at zero)
stays under the trigger, so each fault fires exactly once per run.

Entry points: :func:`chaos_run` (the test suite), ``laab chaos`` (CI
smoke, exit code ``0`` iff every phase passes).
"""

from __future__ import annotations

import dataclasses
import shutil
import tempfile
import time

import numpy as np

from . import faults
from .ir import trace
from .passes import default_pipeline
from .runtime import ShardPool, ShardWorkerError, compile_plan
from .runtime.store import PlanStore
from .tensor import random_general

__all__ = ["ChaosPhase", "ChaosReport", "chaos_run"]


@dataclasses.dataclass
class ChaosPhase:
    """Outcome of one scripted fault scenario."""

    name: str
    ok: bool
    detail: str
    seconds: float = 0.0
    hangs: int = 0
    respawns: int = 0
    waves_replayed: int = 0


@dataclasses.dataclass
class ChaosReport:
    """All phases of one :func:`chaos_run`, plus the run parameters."""

    phases: list
    shards: int
    feeds: int
    start_method: str

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.phases)

    def render(self) -> str:
        lines = [
            f"== chaos drill ({self.shards} shard(s), {self.feeds} feeds/"
            f"round, start_method={self.start_method}) ==",
        ]
        for p in self.phases:
            status = "PASS" if p.ok else "FAIL"
            counters = ""
            if p.hangs or p.respawns or p.waves_replayed:
                counters = (
                    f"  [hangs={p.hangs} respawns={p.respawns} "
                    f"replayed={p.waves_replayed}]"
                )
            lines.append(
                f"  {status}  {p.name:<14} {p.seconds:6.2f}s  "
                f"{p.detail}{counters}"
            )
        passed = sum(1 for p in self.phases if p.ok)
        lines.append(
            f"  {passed}/{len(self.phases)} phase(s) passed — "
            + ("no lost or wrong answers" if self.ok else "FAULTS SURVIVED")
        )
        return "\n".join(lines)


def _workload(n: int, loops: int):
    ops = [random_general(n, seed=s) for s in (11, 12, 13)]

    def fn(a, b, c):
        acc = a
        for _ in range(loops):
            acc = (acc @ b + c - a) @ a.T
        return acc + acc.T

    graph = default_pipeline().run(trace(fn, ops))
    return graph, [t.data for t in ops]


def _leaks(pool) -> list:
    """Post-close audit: every segment unlinked, every worker dead."""
    from multiprocessing import shared_memory

    problems = []
    for shm in pool._shms:
        try:
            leaked = shared_memory.SharedMemory(name=shm.name)
        except FileNotFoundError:
            continue
        leaked.close()
        problems.append(f"shm {shm.name} still linked")
    for w, proc in enumerate(pool._procs):
        if proc.is_alive():
            proc.kill()
            proc.join()
            problems.append(f"worker {w} still alive")
    return problems


def _verify(result, ref) -> "str | None":
    for i, outs in enumerate(result.outputs):
        for out, want in zip(outs, ref):
            if not np.array_equal(out, want):
                return f"output {i} diverged from the in-process reference"
    return None


def chaos_run(
    *,
    shards: int = 2,
    feeds: int = 8,
    loops: int = 4,
    n: int = 16,
    ring_slots: "int | None" = None,
    wave_deadline: float = 1.0,
    hang_seconds: float = 30.0,
    start_method: "str | None" = None,
) -> ChaosReport:
    """Run every scripted fault scenario once; see the module docstring.

    ``feeds`` must divide evenly over ``shards`` with the per-worker
    chunk fitting one ring wave — the schedules assume each worker
    serves exactly one wave of ``feeds // shards`` entries per round, so
    trigger counts are exact.
    """
    if feeds % shards != 0:
        raise ValueError(f"feeds ({feeds}) must be divisible by shards "
                         f"({shards})")
    per_worker = feeds // shards
    if ring_slots is None:
        ring_slots = per_worker
    if per_worker > ring_slots:
        raise ValueError(
            f"feeds/shards ({per_worker}) must fit one ring wave "
            f"({ring_slots} slots)"
        )
    if start_method is None:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else methods[0]

    graph, feed_list = _workload(n, loops)
    plan = compile_plan(graph, fusion=True)
    ref, _ = plan.execute(feed_list, record=False)
    feed_sets = [feed_list] * feeds

    phases = []

    def run_phase(name, fn):
        faults.clear()
        start = time.perf_counter()
        try:
            phase = fn()
        except Exception as exc:  # a drill must never take the suite down
            phase = ChaosPhase(
                name, False, f"unexpected {type(exc).__name__}: {exc}"
            )
        finally:
            faults.clear()
        phase.seconds = time.perf_counter() - start
        phases.append(phase)

    def pool_kwargs(**extra):
        kw = dict(shards=shards, ring_slots=ring_slots, dtype=np.float32,
                  start_method=start_method)
        kw.update(extra)
        return kw

    def finish(name, pool, detail, *, wrong=None, want=(0, 0, 0)):
        counters = (pool.hangs_detected, pool.respawns, pool.waves_replayed)
        pool.close()
        problems = _leaks(pool)
        if wrong:
            problems.insert(0, wrong)
        if want is not None and counters != want:
            problems.append(f"health counters {counters}, expected {want}")
        ok = not problems
        return ChaosPhase(
            name, ok, detail if ok else "; ".join(problems),
            hangs=counters[0], respawns=counters[1],
            waves_replayed=counters[2],
        )

    # -- phase 1: no faults — the drill's own plumbing is sound ----------------
    def phase_clean():
        pool = ShardPool(plan, **pool_kwargs())
        wrong = _verify(pool.run(feed_sets), ref) \
            or _verify(pool.run(feed_sets), ref)
        return finish("clean", pool, "2 rounds bit-correct, zero recoveries",
                      wrong=wrong)

    # -- phase 2: parent-side SIGKILL between rounds (crash recovery) ----------
    def phase_crash():
        pool = ShardPool(plan, **pool_kwargs(respawn=True))
        wrong = _verify(pool.run(feed_sets), ref)
        pool._procs[0].kill()
        pool._procs[0].join()
        wrong = wrong or _verify(pool.run(feed_sets), ref)
        return finish("crash", pool,
                      "killed worker respawned, wave replayed bit-correct",
                      wrong=wrong, want=(0, 1, 1))

    # -- phase 3: SIGTERM-ignoring hang → deadline, kill escalation, replay ----
    def phase_hang():
        # Worker 0's counter reaches per_worker in round 1; its first
        # entry of round 2 is hit per_worker+1 → hang.  The replayed
        # wave's fresh worker counts 1..per_worker and stays under it.
        faults.install(
            f"worker.exec:hang({hang_seconds:g})@{per_worker + 1}w0"
        )
        pool = ShardPool(plan, **pool_kwargs(
            respawn=True, wave_deadline=wave_deadline))
        wrong = _verify(pool.run(feed_sets), ref)
        hung = pool._procs[0]
        wrong = wrong or _verify(pool.run(feed_sets), ref)
        if not wrong and hung.is_alive():
            wrong = "hung worker still alive after recovery"
        return finish("hang", pool,
                      "hung worker killed after deadline, replay bit-correct",
                      wrong=wrong, want=(1, 1, 1))

    # -- phase 4: garbled wave reply (protocol) → reap, respawn, replay --------
    def phase_protocol():
        faults.install("pipe.send:corrupt@2w0")
        pool = ShardPool(plan, **pool_kwargs(respawn=True))
        wrong = _verify(pool.run(feed_sets), ref) \
            or _verify(pool.run(feed_sets), ref)
        return finish("protocol", pool,
                      "corrupt reply reaped + replayed bit-correct",
                      wrong=wrong, want=(0, 1, 1))

    # -- phase 5: in-worker exception → typed error, pool stays aligned --------
    def phase_exec_error():
        faults.install(f"worker.exec:error@{per_worker + 1}w0")
        pool = ShardPool(plan, **pool_kwargs())
        wrong = _verify(pool.run(feed_sets), ref)
        try:
            pool.run(feed_sets)
            wrong = wrong or "injected exec error was swallowed"
        except ShardWorkerError as exc:
            if exc.cause != "exec":
                wrong = wrong or f"cause {exc.cause!r}, expected 'exec'"
        # The worker survived and later hits fall outside the window.
        wrong = wrong or _verify(pool.run(feed_sets), ref)
        return finish("exec-error", pool,
                      "typed ShardWorkerError, pool aligned afterwards",
                      wrong=wrong)

    # -- phase 6: serve dispatch failure → typed error, next request serves ----
    def phase_serve():
        import asyncio

        from . import api, serve

        faults.install("serve.dispatch:error@1")

        async def drill():
            async with serve.Server(
                api.Options(fusion=True, arena="preallocated"),
                coalesce=serve.CoalesceConfig(max_wave=4, max_delay=0.001),
            ) as server:
                def model(a, b, c):
                    return (a @ b + c) @ a.T

                args = [random_general(n, seed=s) for s in (21, 22, 23)]
                want = ((args[0].data @ args[1].data + args[2].data)
                        @ args[0].data.T)
                try:
                    await server.submit(model, args)
                    return "injected dispatch fault was swallowed"
                except faults.InjectedFault:
                    pass
                out = await server.submit(model, args)
                if not np.allclose(out.data, want):
                    return "post-fault serve answer diverged"
                if server.metrics.failure_causes.get("InjectedFault", 0) != 1:
                    return "dispatch failure not counted in ServeMetrics"
                return None

        wrong = asyncio.run(drill())
        return ChaosPhase(
            "serve", wrong is None,
            wrong or "typed error surfaced, next request served correctly",
        )

    # -- phase 7: torn store artifact → accounted eviction, then clean load ----
    def phase_store():
        tmp = tempfile.mkdtemp(prefix="repro-chaos-store-")
        try:
            store = PlanStore(tmp)
            key = store.put_plan(plan)
            faults.install("store.load:corrupt@1")
            if store.load_plan(key) is not None:
                return ChaosPhase(
                    "store", False, "torn artifact load did not degrade"
                )
            if store.stats.corrupt_evicted != 1:
                return ChaosPhase(
                    "store", False,
                    f"corrupt_evicted={store.stats.corrupt_evicted}, "
                    "expected 1",
                )
            # The eviction removed the artifact; a re-put republishes it
            # and the next load (hit 2, outside the window) is clean.
            store.put_plan(plan)
            reloaded = store.load_plan(key)
            if reloaded is None:
                return ChaosPhase(
                    "store", False, "clean reload after eviction failed"
                )
            out, _ = reloaded.execute(feed_list, record=False)
            if not all(np.array_equal(o, w) for o, w in zip(out, ref)):
                return ChaosPhase(
                    "store", False, "reloaded plan produced wrong answers"
                )
            return ChaosPhase(
                "store", True,
                "torn artifact evicted + accounted, clean reload bit-correct",
            )
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    # -- phase 8: pool lost mid-run → inline fallback completes the batch ------
    def phase_fallback():
        from . import api

        with api.Session(
            fusion=True,
            shards=shards,
            shard_fallback="inline",
            faults=f"worker.exec:crash@{per_worker + 1}w0",
        ) as session:
            args = [random_general(n, seed=s) for s in (11, 12, 13)]

            def fn(a, b, c):
                acc = a
                for _ in range(loops):
                    acc = (acc @ b + c - a) @ a.T
                return acc + acc.T

            f = session.compile(fn)
            wrong = _verify(session.run_batch(f, [args] * feeds), ref)
            # Round 2: worker 0 crashes at hit per_worker+1, the pool
            # breaks (no respawn) and the batch completes in-process.
            wrong = wrong or _verify(session.run_batch(f, [args] * feeds),
                                     ref)
            stats = session.stats()
            if not wrong and stats.shard_fallback_runs != 1:
                wrong = (f"shard_fallback_runs="
                         f"{stats.shard_fallback_runs}, expected 1")
        return ChaosPhase(
            "fallback", wrong is None,
            wrong or "broken pool downgraded inline, batch bit-correct",
        )

    # -- phase 9: mid-compile fault during autotune candidate generation -------
    def phase_autotune():
        from . import api

        with api.Session(api.Options(autotune={
            "hot_threshold": 3, "max_candidates": 2,
            "budget_seconds": 0.05, "knob_variants": False,
        })) as session:
            args = [random_general(n, seed=s) for s in (31, 32, 33)]
            want = (args[0].data @ args[1].data) @ args[2].data

            f = session.compile(lambda x, y, z: (x @ y) @ z)
            out = f(*args)  # canonical build lands before the fault
            # Every pipeline run from here on dies mid-compile — which
            # is exactly where derivation candidates normalize.  The
            # drill passes iff the race degrades to canonical-only: no
            # promotion, no tuning error, answers still bit-correct.
            faults.install("optimize.pass:error@1x999")
            for _ in range(6):
                out = f(*args)
            at = session.stats().autotune
            wrong = None
            if not np.array_equal(out.data, want):
                wrong = "post-fault autotune answer diverged"
            if not wrong and at.signatures_tuned != 1:
                wrong = f"signatures_tuned={at.signatures_tuned}, expected 1"
            if not wrong and at.promotions != 0:
                wrong = f"promotions={at.promotions}, expected 0 (fallback)"
            if not wrong and at.tuning_errors != 0:
                wrong = f"tuning_errors={at.tuning_errors}, expected 0"
        return ChaosPhase(
            "autotune", wrong is None,
            wrong or "faulted candidate derivation dropped, canonical served",
        )

    run_phase("clean", phase_clean)
    run_phase("crash", phase_crash)
    run_phase("hang", phase_hang)
    run_phase("protocol", phase_protocol)
    run_phase("exec-error", phase_exec_error)
    run_phase("serve", phase_serve)
    run_phase("store", phase_store)
    run_phase("fallback", phase_fallback)
    run_phase("autotune", phase_autotune)

    return ChaosReport(
        phases=phases, shards=shards, feeds=feeds, start_method=start_method
    )
