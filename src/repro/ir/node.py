"""IR nodes.

A :class:`Node` is an immutable record ``(op, inputs, attrs)`` plus the
inferred ``shape`` and ``dtype``.  Identity is object identity — two nodes
with identical structure are *different* nodes until the CSE pass merges
them (that distinction is precisely what Fig. 3 of the paper illustrates:
the initial graph contains two structurally identical ``matmul`` nodes).

Attrs are stored as a plain dict but must contain only hashable values
(ndarray constants are keyed by content digest via :meth:`attrs_key`).
"""

from __future__ import annotations

import itertools
from typing import Any

import numpy as np

from ..errors import GraphError

_ids = itertools.count()


class Node:
    """One operation in the computational graph.

    Parameters
    ----------
    op:
        Op name; must be registered in :data:`repro.ir.ops.OP_REGISTRY`.
    inputs:
        Producer nodes, in positional order.
    attrs:
        Op-specific attributes (e.g. ``trans_a`` for matmul, ``alpha`` for
        scale, the ndarray ``value`` for const).
    shape / dtype:
        Normally inferred by the op registry; pass explicitly only from
        :mod:`repro.ir.ops` itself.
    """

    __slots__ = ("op", "inputs", "attrs", "shape", "dtype", "uid", "name")

    def __init__(
        self,
        op: str,
        inputs: tuple["Node", ...] = (),
        attrs: dict[str, Any] | None = None,
        *,
        shape: tuple[int, int] | None = None,
        dtype: np.dtype | None = None,
        name: str | None = None,
    ) -> None:
        from .ops import OP_REGISTRY  # local import to avoid cycle

        try:
            spec = OP_REGISTRY[op]
        except KeyError:
            raise GraphError(f"unknown op {op!r}") from None
        attrs = dict(attrs or {})
        inputs = tuple(inputs)
        for i, inp in enumerate(inputs):
            if not isinstance(inp, Node):
                raise GraphError(
                    f"{op}: input {i} is {type(inp).__name__}, expected Node"
                )
        spec.validate(inputs, attrs)
        if shape is None or dtype is None:
            inferred_shape, inferred_dtype = spec.infer(inputs, attrs)
            shape = inferred_shape if shape is None else shape
            dtype = inferred_dtype if dtype is None else dtype
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "inputs", inputs)
        object.__setattr__(self, "attrs", attrs)
        object.__setattr__(self, "shape", tuple(shape))
        object.__setattr__(self, "dtype", np.dtype(dtype))
        object.__setattr__(self, "uid", next(_ids))
        object.__setattr__(self, "name", name or f"{op}_{self.uid}")

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("Node is immutable; build a new node instead")

    # -- structural keys -----------------------------------------------------

    def attrs_key(self) -> tuple:
        """Canonical hashable form of the attrs (for CSE keys).

        ndarray values are replaced by ``(shape, dtype, sha1-of-bytes)``;
        frozensets and primitives pass through.
        """
        items = []
        for k in sorted(self.attrs):
            v = self.attrs[k]
            if isinstance(v, np.ndarray):
                import hashlib

                digest = hashlib.sha1(np.ascontiguousarray(v).tobytes()).hexdigest()
                items.append((k, ("ndarray", v.shape, str(v.dtype), digest)))
            elif isinstance(v, (frozenset, tuple, str, int, float, bool, type(None))):
                items.append((k, v))
            else:
                items.append((k, repr(v)))
        return tuple(items)

    def signature(self) -> tuple:
        """Shallow structural key: op + attrs + *identities* of inputs.

        Two nodes with equal signatures compute the same value provided
        their inputs are already deduplicated — exactly the invariant the
        bottom-up CSE pass maintains.
        """
        return (self.op, self.attrs_key(), tuple(id(i) for i in self.inputs))

    # -- conveniences --------------------------------------------------------

    @property
    def is_vector(self) -> bool:
        return 1 in self.shape

    @property
    def is_scalar(self) -> bool:
        return self.shape == (1, 1)

    @property
    def is_square(self) -> bool:
        return self.shape[0] == self.shape[1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ins = ", ".join(i.name for i in self.inputs)
        extra = {k: v for k, v in self.attrs.items() if not isinstance(v, np.ndarray)}
        attr_s = f" {extra}" if extra else ""
        return f"<{self.name}: {self.op}({ins}){attr_s} -> {self.shape} {self.dtype}>"
