"""Tests for the cache flusher and the Fig. 6 experiment."""

import numpy as np
import pytest

from repro.bench.cache import DEFAULT_FLUSH_BYTES, CacheFlusher


class TestCacheFlusher:
    def test_buffer_size(self):
        flush = CacheFlusher(nbytes=1024 * 1024)
        assert flush.nbytes == 1024 * 1024

    def test_default_size_exceeds_typical_llc(self):
        assert DEFAULT_FLUSH_BYTES >= 32 * 1024 * 1024

    def test_callable_returns_value(self):
        flush = CacheFlusher(nbytes=1 << 16)
        v1 = flush()
        v2 = flush()
        # each call mutates the buffer, so the reduction changes
        assert v1 != v2

    def test_touches_whole_buffer(self):
        flush = CacheFlusher(nbytes=1 << 12)
        flush()
        assert np.all(flush._buffer == 1.0)
        flush()
        assert np.all(flush._buffer == 3.0)  # += 2.0 on second call


class TestFig6Experiment:
    def test_runs_and_reports_verdict(self):
        import repro.experiments  # noqa: F401
        from repro.bench.registry import EXPERIMENTS
        from repro.config import override

        with override(repetitions=3, warmup=1):
            table = EXPERIMENTS["fig6"].fn(n=96, repetitions=3)
        assert len(table.rows) == 2
        # both rows report identical FLOP counts (the figure's premise)
        f1 = table.cell("U=AB; V=CD; Y=UV", "FLOPs").text
        f2 = table.cell("V=CD; U=AB; Y=UV", "FLOPs").text
        assert f1 == f2
        assert any("bootstrap verdict" in note for note in table.notes)
