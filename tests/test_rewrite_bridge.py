"""Graph <-> Expr bridge: the autotuner's lift/lower round trip.

Contracts under test (PR 10):

* **Lift** — :func:`graph_to_expr` handles exactly the GEMM-tier op
  subset (``BRIDGED_OPS``), bails with ``None`` on anything else
  (multi-output graphs, unbridged ops, structured-kernel pins), and
  names symbols *positionally* so two traces of the same function in
  different processes lift to byte-identical expression keys — the
  autotune determinism contract.
* **Lower** — :func:`expr_to_graph` rebuilds a graph over the original
  leaf nodes, binarizes n-ary products with the matrix-chain DP, shares
  common subexpressions, and keeps declared-but-unreached inputs legal
  (a rewrite may eliminate an argument without changing the call
  signature).
* **Value preservation** — every derivation-search variant, lowered and
  compiled, computes the same answer as the canonical plan; on
  integer-valued feeds the round trip is bit-exact, which is what lets
  the autotuner's bit-identity gate pass for real workloads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import builder, trace
from repro.ir.node import Node
from repro.passes import default_pipeline
from repro.rewrite import (
    Add,
    MatMul,
    Symbol,
    Transpose,
    graph_to_expr,
    expr_to_graph,
    variants,
)
from repro.runtime import compile_plan
from repro.tensor import random_general


def _chain(n: int = 16):
    """A 3-matrix product plus additive terms — lifts fully."""
    args = [random_general(n, seed=s) for s in (1, 2, 3)]
    graph = trace(lambda a, b, c: (a @ b) @ c + a - c, args)
    return default_pipeline().run(graph), [t.data for t in args]


def _run(graph, feeds):
    outs, _ = compile_plan(graph).execute(feeds, record=False)
    return outs[0]


class TestLift:
    def test_gemm_tier_graph_lifts(self):
        graph, _ = _chain()
        lifted = graph_to_expr(graph)
        assert lifted is not None
        expr, env = lifted
        # Every symbol resolves to a real leaf node of the source graph.
        leaves = {id(n) for n in graph.topological()
                  if n.op in ("input", "const")}
        for name, node in env.items():
            assert name.startswith(("%a", "%c"))
            assert id(node) in leaves

    def test_positional_names_are_cross_trace_deterministic(self):
        """Node names embed a process-global uid; expression keys must
        not.  Two independent traces of the same function lift to equal
        keys — what makes a race (and its persisted winner) reproducible
        across processes."""
        g1, _ = _chain()
        g2, _ = _chain()
        assert [n.name for n in g1.topological()] != \
            [n.name for n in g2.topological()]
        e1, _ = graph_to_expr(g1)
        e2, _ = graph_to_expr(g2)
        assert e1.key() == e2.key()
        assert e1.pretty() == e2.pretty()

    def test_multi_output_bails(self):
        a = builder.input_node((4, 4), index=0)
        graph_cls = type(trace(lambda x: x + x,
                                [random_general(4, seed=1)]))
        graph = graph_cls([builder.add(a, a), builder.neg(a)], inputs=(a,))
        assert graph_to_expr(graph) is None

    def test_unbridged_op_bails(self):
        args = [random_general(4, seed=s) for s in (1, 2)]
        graph = trace(lambda a, b: (a @ b)[0:2, 0:2], args)
        assert graph_to_expr(graph) is None

    def test_pinned_structured_kernel_bails(self):
        """A ``matmul`` carrying a ``kernel`` attr (the aware pipeline's
        structured-kernel pin) must not lift — re-deriving around the
        pin would silently drop it."""
        a = builder.input_node((4, 4), index=0)
        b = builder.input_node((4, 4), index=1)
        m = builder.matmul(a, b)
        pinned = Node("matmul", m.inputs, {**m.attrs, "kernel": "trmm"})
        graph_cls = type(trace(lambda x: x + x,
                                [random_general(4, seed=1)]))
        graph = graph_cls([pinned], inputs=(a, b))
        assert graph_to_expr(graph) is None


class TestLower:
    def test_round_trip_bit_exact_on_integer_feeds(self):
        graph, _ = _chain()
        expr, env = graph_to_expr(graph)
        rebuilt = default_pipeline().run(
            expr_to_graph(expr, env, inputs=graph.inputs,
                          dtype=graph.outputs[0].dtype)
        )
        rng = np.random.default_rng(3)
        feeds = [rng.integers(0, 4, (16, 16)).astype(np.float32)
                 for _ in range(3)]
        assert np.array_equal(_run(graph, feeds), _run(rebuilt, feeds))

    def test_nary_product_binarized_by_chain_dp(self):
        """A @ B @ x with x a vector: the DP must pick the right-to-left
        association, so the root matmul's left operand is the leaf A,
        not an intermediate product."""
        nodes = [
            builder.input_node((64, 64), index=0),
            builder.input_node((64, 64), index=1),
            builder.input_node((64, 1), index=2),
        ]
        syms = [Symbol("%a0", 64, 64), Symbol("%a1", 64, 64),
                Symbol("%a2", 64, 1)]
        env = dict(zip(("%a0", "%a1", "%a2"), nodes))
        graph = expr_to_graph(MatMul(*syms), env, inputs=tuple(nodes))
        root = graph.outputs[0]
        assert root.op == "matmul"
        assert root.inputs[0].op == "input"       # A stays a leaf
        assert root.inputs[1].op == "matmul"      # (B @ x) computed first

    def test_shared_subexpression_lowers_once(self):
        nodes = [builder.input_node((8, 8), index=i) for i in range(2)]
        a, b = Symbol("%a0", 8, 8), Symbol("%a1", 8, 8)
        env = {"%a0": nodes[0], "%a1": nodes[1]}
        graph = expr_to_graph(MatMul(Add(a, b), Add(a, b)), env,
                              inputs=tuple(nodes))
        adds = [n for n in graph.topological() if n.op == "add"]
        assert len(adds) == 1  # memoized by expression key, DAG preserved

    def test_eliminated_input_stays_declared(self):
        """(a @ b + c) - c cancels to a @ b in the algebra; the lowered
        graph still declares all three inputs so positional feeds bind
        unchanged."""
        args = [random_general(8, seed=s) for s in (1, 2, 3)]
        graph = trace(lambda a, b, c: (a @ b + c) - c, args)
        expr, env = graph_to_expr(graph)
        rebuilt = expr_to_graph(expr, env, inputs=graph.inputs)
        assert len(rebuilt.inputs) == 3
        feeds = [t.data for t in args]
        assert np.allclose(_run(rebuilt, feeds), feeds[0] @ feeds[1],
                           rtol=1e-5, atol=1e-5)


class TestVariantsThroughBridge:
    def test_every_variant_preserves_value(self):
        graph, feeds = _chain()
        want = _run(graph, feeds)
        expr, env = graph_to_expr(graph)
        ranked = variants(expr, max_nodes=200, limit=4)
        assert ranked
        for variant, _flops in ranked:
            rebuilt = default_pipeline().run(
                expr_to_graph(variant, env, inputs=graph.inputs)
            )
            assert np.allclose(_run(rebuilt, feeds), want,
                               rtol=1e-4, atol=1e-5)

    def test_transposes_lift_and_lower(self):
        args = [random_general(8, seed=s) for s in (4, 5)]
        graph = trace(lambda a, b: (a.T @ b).T, args)
        expr, env = graph_to_expr(graph)
        assert expr is not None
        rebuilt = expr_to_graph(expr, env, inputs=graph.inputs)
        feeds = [t.data for t in args]
        assert np.allclose(
            _run(rebuilt, feeds), (feeds[0].T @ feeds[1]).T,
            rtol=1e-5, atol=1e-5,
        )
