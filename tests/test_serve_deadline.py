"""Request deadlines and circuit breaking across the serve stack.

Contracts under test:

* Admission: a parked waiter whose ``deadline`` passes first raises
  :class:`ServeDeadlineError` (not the overload error), an
  already-expired deadline never parks, and the error choice between
  deadline and ``wait_timeout`` follows whichever bound is tighter.
* Coalescer: a member's ``expires_at`` pulls the flush timer forward
  (the wave dispatches no later than the earliest member deadline), an
  expired member resolves with :class:`ServeDeadlineError` *without
  poisoning the wave* — both at flush and after the per-key
  serialization wait.
* :class:`CircuitBreaker`: closed → open after ``failures_to_open``
  consecutive failures, sheds during the cooldown, half-open admits one
  probe, and the probe's outcome closes or re-opens it.
* End to end through :meth:`Server.submit`: deadline errors carry the
  ``"deadline"`` failure cause, breaker sheds raise
  :class:`ServeOverloadError` with ``breaker_shed``/``breaker_trips``
  accounting, and a recovered plan serves again after the cooldown.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import api, faults, serve
from repro.serve import (
    AdmissionConfig,
    AdmissionController,
    BreakerConfig,
    CircuitBreaker,
    CoalesceConfig,
    Coalescer,
    ServeDeadlineError,
    ServeMetrics,
    ServeOverloadError,
)
from repro.tensor import random_general


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(autouse=True)
def clean_faults():
    faults.clear()
    yield
    faults.clear()


def model(a, b, c):
    return (a @ b + c) @ a.T


@pytest.fixture()
def feeds():
    return [random_general(16, seed=s) for s in (1, 2, 3)]


# -- admission deadlines ------------------------------------------------------


class TestAdmissionDeadline:
    def test_already_expired_deadline_never_parks(self):
        async def main():
            metrics = ServeMetrics()
            ctl = AdmissionController(AdmissionConfig(max_inflight=4),
                                      metrics)
            loop = asyncio.get_running_loop()
            with pytest.raises(ServeDeadlineError, match="expired"):
                await ctl.acquire("a", deadline=loop.time() - 0.01)
            assert ctl.depth() == 0
            assert metrics.deadline_expired == 1

        run(main())

    def test_parked_waiter_expires_with_deadline_error(self):
        async def main():
            metrics = ServeMetrics()
            ctl = AdmissionController(AdmissionConfig(max_inflight=1),
                                      metrics)
            await ctl.acquire("a")
            loop = asyncio.get_running_loop()
            with pytest.raises(ServeDeadlineError):
                await ctl.acquire("b", deadline=loop.time() + 0.05)
            assert metrics.deadline_expired == 1
            # The expired waiter left no slot behind.
            ctl.release("a")
            await ctl.acquire("c")

        run(main())

    def test_tighter_bound_picks_the_error(self):
        async def main():
            ctl = AdmissionController(
                AdmissionConfig(max_inflight=1, wait_timeout=0.05)
            )
            await ctl.acquire("a")
            loop = asyncio.get_running_loop()
            # Deadline far beyond wait_timeout: the park ends on the
            # timeout, so overload — not deadline — is the right error.
            with pytest.raises(ServeOverloadError):
                await ctl.acquire("b", deadline=loop.time() + 30.0)
            # Deadline tighter than wait_timeout: deadline error.
            with pytest.raises(ServeDeadlineError):
                await ctl.acquire("b", deadline=loop.time() + 0.01)

        run(main())


# -- coalescer deadlines ------------------------------------------------------


def _echo_coalescer(config, metrics=None, *, delay=0.0, waves=None):
    async def dispatch(key, items):
        if delay:
            await asyncio.sleep(delay)
        if waves is not None:
            waves.append(list(items))
        return [("served", item) for item in items]

    return Coalescer(dispatch, config=config, metrics=metrics)


class TestCoalescerDeadline:
    def test_deadline_pulls_flush_forward(self):
        # max_delay alone would hold the wave for 30 s; the expiring
        # member forces the flush at its deadline, so the *other*
        # member is served almost immediately.
        async def main():
            metrics = ServeMetrics()
            co = _echo_coalescer(
                CoalesceConfig(max_wave=8, max_delay=30.0), metrics
            )
            loop = asyncio.get_running_loop()
            start = loop.time()
            fut_a = co.submit("k", "a")
            fut_b = co.submit("k", "b", expires_at=loop.time() + 0.05)
            assert await asyncio.wait_for(fut_a, 5.0) == ("served", "a")
            with pytest.raises(ServeDeadlineError):
                await fut_b
            assert loop.time() - start < 5.0
            assert metrics.deadline_expired == 1

        run(main())

    def test_met_deadline_is_served(self):
        # A deadline looser than the natural flush changes nothing.
        async def main():
            co = _echo_coalescer(CoalesceConfig(max_wave=8, max_delay=0.01))
            loop = asyncio.get_running_loop()
            fut = co.submit("k", "a", expires_at=loop.time() + 10.0)
            assert await asyncio.wait_for(fut, 5.0) == ("served", "a")

        run(main())

    def test_expired_member_does_not_poison_the_wave(self):
        async def main():
            waves = []
            co = _echo_coalescer(
                CoalesceConfig(max_wave=8, max_delay=0.01), waves=waves
            )
            loop = asyncio.get_running_loop()
            fut_a = co.submit("k", "a")
            fut_b = co.submit("k", "b", expires_at=loop.time() - 0.01)
            assert await asyncio.wait_for(fut_a, 5.0) == ("served", "a")
            with pytest.raises(ServeDeadlineError):
                await fut_b
            # The expired member never reached dispatch.
            assert waves == [["a"]]

        run(main())

    def test_expiry_after_serialization_wait(self):
        # Wave 1 holds the per-key lock long enough for wave 2's only
        # member to expire before dispatching — the post-lock re-filter
        # must resolve it with the deadline error, and no empty wave
        # may dispatch.
        async def main():
            waves = []
            co = _echo_coalescer(
                CoalesceConfig(max_wave=1, max_delay=10.0),
                ServeMetrics(), delay=0.2, waves=waves,
            )
            loop = asyncio.get_running_loop()
            fut_a = co.submit("k", "a")  # max_wave=1: flushes, takes lock
            fut_b = co.submit("k", "b", expires_at=loop.time() + 0.05)
            assert await asyncio.wait_for(fut_a, 5.0) == ("served", "a")
            with pytest.raises(ServeDeadlineError):
                await asyncio.wait_for(fut_b, 5.0)
            await co.drain()
            assert waves == [["a"]]

        run(main())


# -- the circuit breaker ------------------------------------------------------


class TestCircuitBreaker:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="failures_to_open"):
            BreakerConfig(failures_to_open=-1).validate()
        with pytest.raises(ValueError, match="reset_timeout"):
            BreakerConfig(reset_timeout=0.0).validate()

    def test_trips_after_consecutive_failures(self):
        br = CircuitBreaker(BreakerConfig(failures_to_open=3,
                                          reset_timeout=1.0))
        assert br.allow(0.0)
        assert not br.record_failure(0.1)
        assert not br.record_failure(0.2)
        assert br.record_failure(0.3)  # the tripping failure
        assert br.state == "open"
        assert not br.allow(0.5)  # shedding inside the cooldown

    def test_success_resets_the_streak(self):
        br = CircuitBreaker(BreakerConfig(failures_to_open=2,
                                          reset_timeout=1.0))
        br.record_failure(0.1)
        br.record_success()
        assert not br.record_failure(0.2)  # streak restarted
        assert br.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        br = CircuitBreaker(BreakerConfig(failures_to_open=1,
                                          reset_timeout=1.0))
        br.record_failure(0.0)
        assert br.allow(1.5)       # cooldown over: the probe
        assert br.state == "half-open"
        assert not br.allow(1.6)   # second request still shed

    def test_probe_success_closes(self):
        br = CircuitBreaker(BreakerConfig(failures_to_open=1,
                                          reset_timeout=1.0))
        br.record_failure(0.0)
        assert br.allow(1.5)
        br.record_success()
        assert br.state == "closed"
        assert br.allow(1.6) and br.allow(1.7)  # fully open for traffic

    def test_probe_failure_reopens(self):
        br = CircuitBreaker(BreakerConfig(failures_to_open=1,
                                          reset_timeout=1.0))
        br.record_failure(0.0)
        assert br.allow(1.5)
        assert br.record_failure(1.6)  # the probe failed: trips again
        assert br.state == "open"
        assert not br.allow(2.0)       # new cooldown from the re-open
        assert br.allow(2.7)           # ... then a fresh probe

    def test_zero_threshold_disables_breaking(self):
        br = CircuitBreaker(BreakerConfig(failures_to_open=0))
        assert not br.enabled
        for t in range(20):
            assert not br.record_failure(float(t))
            assert br.allow(float(t))
        assert br.state == "closed"


# -- end to end through Server.submit -----------------------------------------


class TestServerDeadline:
    def test_deadline_must_be_positive(self, feeds):
        async def main():
            async with serve.Server() as server:
                with pytest.raises(ValueError, match="deadline"):
                    await server.submit(model, feeds, deadline=0)

        run(main())

    def test_deadline_expires_in_admission(self, feeds):
        async def main():
            faults.install("serve.dispatch:delay(0.5)@1")
            async with serve.Server(
                admission=AdmissionConfig(max_inflight=1),
                coalesce=CoalesceConfig(max_wave=1, max_delay=0.001),
            ) as server:
                slow = asyncio.ensure_future(server.submit(model, feeds))
                await asyncio.sleep(0.1)  # the slow wave holds the slot
                with pytest.raises(ServeDeadlineError):
                    await server.submit(model, feeds, deadline=0.1)
                assert server.metrics.deadline_expired == 1
                assert server.metrics.failure_causes.get("deadline") == 1
                out = await slow  # the slow request itself completes
                np.testing.assert_allclose(
                    out.data,
                    (feeds[0].data @ feeds[1].data + feeds[2].data)
                    @ feeds[0].data.T,
                    rtol=1e-5,
                )

        run(main())

    def test_deadline_expires_in_coalescer_without_poisoning_wave(
        self, feeds
    ):
        async def main():
            async with serve.Server(
                coalesce=CoalesceConfig(max_wave=8, max_delay=30.0),
            ) as server:
                loop = asyncio.get_running_loop()
                start = loop.time()
                patient = asyncio.ensure_future(server.submit(model, feeds))
                await asyncio.sleep(0)  # both requests join one wave
                with pytest.raises(ServeDeadlineError):
                    await server.submit(model, feeds, deadline=0.05)
                # The expiring member pulled the flush forward: the
                # patient request is served now, not at max_delay.
                out = await asyncio.wait_for(patient, 10.0)
                assert loop.time() - start < 10.0
                np.testing.assert_allclose(
                    out.data,
                    (feeds[0].data @ feeds[1].data + feeds[2].data)
                    @ feeds[0].data.T,
                    rtol=1e-5,
                )
                assert server.metrics.completed == 1
                assert server.metrics.deadline_expired == 1

        run(main())


class TestServerBreaker:
    def test_trip_shed_and_half_open_recovery(self, feeds):
        async def main():
            faults.install("serve.dispatch:error@1x2")
            async with serve.Server(
                coalesce=CoalesceConfig(max_wave=1, max_delay=0.001),
                breaker=BreakerConfig(failures_to_open=2,
                                      reset_timeout=0.2),
            ) as server:
                for _ in range(2):  # two failing waves trip the breaker
                    with pytest.raises(faults.InjectedFault):
                        await server.submit(model, feeds)
                assert server.metrics.breaker_trips == 1
                assert server.metrics.failure_causes.get(
                    "InjectedFault") == 2
                # Open: shed before admission, with the overload error.
                with pytest.raises(ServeOverloadError,
                                   match="circuit breaker"):
                    await server.submit(model, feeds)
                assert server.metrics.breaker_shed == 1
                await asyncio.sleep(0.25)  # cooldown → half-open
                # The probe succeeds (the fault window is exhausted)
                # and the breaker closes for regular traffic again.
                out = await server.submit(model, feeds)
                np.testing.assert_allclose(
                    out.data,
                    (feeds[0].data @ feeds[1].data + feeds[2].data)
                    @ feeds[0].data.T,
                    rtol=1e-5,
                )
                await server.submit(model, feeds)
                assert server.metrics.completed == 2

        run(main())

    def test_breaker_is_per_tenant(self, feeds):
        async def main():
            faults.install("serve.dispatch:error@1x2")
            async with serve.Server(
                coalesce=CoalesceConfig(max_wave=1, max_delay=0.001),
                breaker=BreakerConfig(failures_to_open=1,
                                      reset_timeout=30.0),
            ) as server:
                with pytest.raises(faults.InjectedFault):
                    await server.submit(model, feeds, tenant="alice")
                with pytest.raises(ServeOverloadError):
                    await server.submit(model, feeds, tenant="alice")
                # Bob's breaker is untouched; his wave consumes the
                # second injected fault and his next request serves.
                with pytest.raises(faults.InjectedFault):
                    await server.submit(model, feeds, tenant="bob")
                with pytest.raises(ServeOverloadError):
                    await server.submit(model, feeds, tenant="bob")

        run(main())

    def test_disabled_breaker_never_sheds(self, feeds):
        async def main():
            faults.install("serve.dispatch:error@1x3")
            async with serve.Server(
                coalesce=CoalesceConfig(max_wave=1, max_delay=0.001),
                breaker=BreakerConfig(failures_to_open=0),
            ) as server:
                for _ in range(3):  # every failure surfaces; no shedding
                    with pytest.raises(faults.InjectedFault):
                        await server.submit(model, feeds)
                assert server.metrics.breaker_trips == 0
                assert server.metrics.breaker_shed == 0
                out = await server.submit(model, feeds)
                assert out is not None

        run(main())

    def test_metrics_render_mentions_failures(self, feeds):
        async def main():
            faults.install("serve.dispatch:error@1")
            async with serve.Server(
                coalesce=CoalesceConfig(max_wave=1, max_delay=0.001),
            ) as server:
                with pytest.raises(faults.InjectedFault):
                    await server.submit(model, feeds)
                text = server.metrics.render()
                assert "InjectedFault" in text

        run(main())


class TestSessionFallbackOption:
    def test_inline_fallback_completes_batch_and_records_stats(self):
        A, B, C = (random_general(16, seed=s) for s in (7, 8, 9))

        def fn(a, b, c):
            return (a @ b + c) @ a.T

        with api.Session(
            shards=2, shard_fallback="inline",
            faults="worker.exec:crash@1w0",
        ) as s:
            f = s.compile(fn)
            ref = (A.data @ B.data + C.data) @ A.data.T
            result = s.run_batch(f, [[A, B, C]] * 4)
            assert all(
                np.allclose(o[0], ref, rtol=1e-5) for o in result.outputs
            )
            stats = s.stats()
            assert stats.shard_fallback_runs == 1
            assert stats.shard_fallback == "inline"
            assert "degraded: 1 batch(es)" in stats.render()

    def test_error_fallback_raises(self):
        from repro.runtime import ShardWorkerError

        A, B = random_general(8, seed=1), random_general(8, seed=2)
        with api.Session(shards=2,
                         faults="worker.exec:crash@1w0") as s:
            f = s.compile(lambda a, b: a @ b)
            with pytest.raises(ShardWorkerError):
                s.run_batch(f, [[A, B]] * 4)

    def test_fallback_option_validated(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="shard_fallback"):
            api.Options(shard_fallback="retry").validate()
