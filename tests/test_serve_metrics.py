"""Streaming serve metrics: log-spaced latency histograms, occupancy
distributions, gauges, and the ServeMetrics bundle.

Contracts under test:

* :class:`~repro.serve.LatencyHistogram` quantiles agree with exact
  percentiles to within one bucket ratio, are clamped to the observed
  min/max, and handle the under-/overflow buckets without losing
  samples.
* :class:`~repro.serve.Distribution` is exact over small integers.
* :class:`~repro.serve.ServeMetrics` snapshots are flat, JSON-ready
  dicts and render() mentions every headline number.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.serve import Distribution, Gauge, LatencyHistogram, ServeMetrics


class TestLatencyHistogram:
    def test_empty(self):
        h = LatencyHistogram()
        assert h.count == 0
        assert h.p50 == 0.0 and h.p99 == 0.0 and h.p999 == 0.0
        assert h.mean == 0.0

    def test_single_sample_all_quantiles_equal_it(self):
        h = LatencyHistogram()
        h.record(0.0042)
        for q in (0.01, 0.5, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(0.0042)
        assert h.mean == pytest.approx(0.0042)
        assert h.min == h.max == pytest.approx(0.0042)

    def test_quantiles_track_exact_percentiles(self):
        # Log-uniform samples spanning 50 µs .. 2 s: the histogram's
        # relative resolution is its bucket ratio, so every quantile
        # must land within that factor of the exact order statistic.
        rng = random.Random(7)
        samples = sorted(10 ** rng.uniform(-4.3, 0.3) for _ in range(5000))
        h = LatencyHistogram()
        for s in samples:
            h.record(s)
        for q in (0.50, 0.90, 0.99, 0.999):
            exact = samples[min(int(q * len(samples)), len(samples) - 1)]
            assert h.quantile(q) == pytest.approx(exact, rel=h.ratio - 1.0)
        assert h.count == len(samples)
        assert h.mean == pytest.approx(sum(samples) / len(samples))

    def test_clamped_to_observed_extremes(self):
        h = LatencyHistogram()
        h.record(0.010)
        h.record(0.011)
        # Interpolation inside a shared bucket can't escape [min, max].
        assert 0.010 <= h.quantile(0.5) <= 0.011
        assert h.quantile(1.0) == pytest.approx(0.011)

    def test_underflow_and_overflow_buckets(self):
        h = LatencyHistogram(lo=1e-3, hi=1.0)
        h.record(1e-9)   # below lo: first bucket
        h.record(500.0)  # above hi: overflow bucket
        assert h.count == 2
        assert h.min == pytest.approx(1e-9)
        assert h.max == pytest.approx(500.0)
        assert h.quantile(1.0) == pytest.approx(500.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="0 < lo < hi"):
            LatencyHistogram(lo=2.0, hi=1.0)
        with pytest.raises(ValueError, match="ratio"):
            LatencyHistogram(ratio=1.0)
        h = LatencyHistogram()
        with pytest.raises(ValueError, match=">= 0"):
            h.record(-1.0)
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(0.0)
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)

    def test_snapshot_keys(self):
        h = LatencyHistogram()
        h.record(0.002)
        snap = h.snapshot()
        assert set(snap) == {
            "count", "mean_seconds", "p50_seconds", "p99_seconds",
            "p999_seconds", "max_seconds",
        }
        json.dumps(snap)  # JSON-ready


class TestDistribution:
    def test_exact_counts(self):
        d = Distribution()
        for v in (1, 8, 8, 8, 4, 2, 8):
            d.record(v)
        assert d.count == 7
        assert d.max == 8
        assert d.mean == pytest.approx(39 / 7)
        assert d.quantile(0.5) == 8  # 4 of 7 samples are 8
        assert d.quantile(0.01) == 1
        assert d.quantile(1.0) == 8

    def test_empty(self):
        d = Distribution()
        assert d.mean == 0.0 and d.quantile(0.5) == 0
        with pytest.raises(ValueError, match="quantile"):
            d.quantile(0.0)


class TestGauge:
    def test_high_water(self):
        g = Gauge()
        g.set(3)
        g.set(9)
        g.set(1)
        assert g.value == 1
        assert g.high_water == 9


class TestServeMetrics:
    def test_snapshot_is_json_ready_and_complete(self):
        m = ServeMetrics()
        m.submitted = 10
        m.completed = 8
        m.rejected = 1
        m.cancelled = 1
        m.waves = 3
        m.latency.record(0.004)
        m.queue_wait.record(0.001)
        m.wave_occupancy.record(4)
        m.queue_depth.set(6)
        snap = m.snapshot()
        json.dumps(snap)
        assert snap["submitted"] == 10
        assert snap["waves"] == 3
        assert snap["latency"]["count"] == 1
        assert snap["wave_occupancy"]["mean"] == pytest.approx(4.0)
        assert snap["queue_depth_high_water"] == 6

    def test_render_mentions_headlines(self):
        m = ServeMetrics()
        m.submitted = m.completed = 2
        m.waves = 1
        m.latency.record(0.004)
        m.wave_occupancy.record(2)
        text = m.render()
        assert "2 completed" in text
        assert "p50" in text and "p99" in text and "p999" in text
        assert "1 dispatched" in text
        assert "occupancy mean 2.00" in text
