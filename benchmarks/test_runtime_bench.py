"""Runtime benchmark: compiled plans vs the reference interpreter.

Demonstrates the tentpole claims — compile-once/execute-many beats
re-interpreting the graph per call, and the fused/arena engine beats the
plain plan executor — and records the numbers to ``BENCH_runtime.json``
at the repo root (plan-compile time, cached-exec time, interpreter-exec
time, per-mode exec times, allocation peaks via ``tracemalloc``, batch
throughput), which the CI benchmarks jobs upload as artifacts.

The workload is deliberately dispatch-bound (many small kernels on small
operands): that is the regime where per-call graph walking, liveness
rebuilding, kernel re-selection, per-node closure launches and
per-intermediate allocation dominate, i.e. exactly the overhead plans,
fusion and the preallocated arena remove.  Kernel-bound workloads
converge to the same BLAS time in every path.

Environment knobs (used by the CI smoke job to keep PR feedback fast):

``REPRO_BENCH_REPS``   timed repetitions per measurement (default 50)
``REPRO_BENCH_LOOPS``  chain length of the workload (default 12)
"""

from __future__ import annotations

import json
import os
import pathlib
import tracemalloc

import pytest

from repro.bench.timing import measure
from repro.ir import Interpreter, trace
from repro.passes import default_pipeline
from repro.runtime import PlanCache, compile_plan, execute_batch
from repro.tensor import random_general

REPS = int(os.environ.get("REPRO_BENCH_REPS", "50"))
LOOPS = int(os.environ.get("REPRO_BENCH_LOOPS", "12"))
ROOT = pathlib.Path(__file__).resolve().parent.parent


def _dispatch_bound_graph():
    """~50 tiny ops: a chain of products and sums on 16x16 operands."""

    def fn(a, b, c):
        acc = a
        for _ in range(LOOPS):
            acc = (acc @ b + c - a) @ a.T
        return acc + acc.T

    args = [random_general(16, seed=s) for s in (1, 2, 3)]
    graph = default_pipeline().run(trace(fn, args))
    return graph, [t.data for t in args]


def _alloc_peak(fn, reps=20):
    """Peak traced bytes across ``reps`` calls (one warm call first)."""
    fn()
    tracemalloc.start()
    tracemalloc.reset_peak()
    for _ in range(reps):
        fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


@pytest.fixture(scope="module")
def workload():
    return _dispatch_bound_graph()


@pytest.fixture(scope="module")
def timings(workload):
    graph, feeds = workload
    interp = Interpreter(record=True)

    compile_time = measure(
        lambda: compile_plan(graph), label="plan-compile", repetitions=10
    )
    plan = compile_plan(graph)
    fused = compile_plan(graph, fusion=True)
    arena = plan.new_arena()
    fused_arena = fused.new_arena()
    plan.execute(feeds, arena=arena)        # warm the arenas before timing
    fused.execute(feeds, arena=fused_arena)
    cache = PlanCache()
    cache.get(graph)  # warm
    cache_hit = measure(
        lambda: cache.get(graph), label="plan-cache-hit", repetitions=REPS
    )
    interp_exec = measure(
        lambda: interp.run(graph, feeds), label="interpreter-exec",
        repetitions=REPS,
    )
    plan_exec = measure(
        lambda: plan.execute(feeds), label="plan-exec", repetitions=REPS
    )
    serving_exec = measure(
        lambda: plan.execute(feeds, record=False), label="plan-exec-norecord",
        repetitions=REPS,
    )
    fused_exec = measure(
        lambda: fused.execute(feeds, record=False),
        label="plan-exec-fused", repetitions=REPS,
    )
    arena_exec = measure(
        lambda: plan.execute(feeds, record=False, arena=arena),
        label="plan-exec-arena", repetitions=REPS,
    )
    fused_arena_exec = measure(
        lambda: fused.execute(feeds, record=False, arena=fused_arena),
        label="plan-exec-fused-arena", repetitions=REPS,
    )
    batch = measure(
        lambda: execute_batch(plan, [feeds] * 8, workers=4),
        label="batch-8x-4workers", repetitions=10,
    )
    arena_batch = measure(
        lambda: execute_batch(fused, [feeds] * 8, workers=4,
                              arena="preallocated"),
        label="batch-8x-4workers-fused-arena", repetitions=10,
    )
    return {
        "plan_compile_seconds": compile_time.best,
        "plan_cache_hit_seconds": cache_hit.best,
        "interpreter_exec_seconds": interp_exec.best,
        "plan_exec_seconds": plan_exec.best,
        "plan_exec_norecord_seconds": serving_exec.best,
        "plan_exec_fused_seconds": fused_exec.best,
        "plan_exec_arena_seconds": arena_exec.best,
        "plan_exec_fused_arena_seconds": fused_arena_exec.best,
        "batch_8_feeds_4_workers_seconds": batch.best,
        "batch_8_feeds_4_workers_fused_arena_seconds": arena_batch.best,
        "alloc_peak_bytes_per_call": _alloc_peak(
            lambda: plan.execute(feeds, record=False)
        ),
        "alloc_peak_bytes_fused_arena": _alloc_peak(
            lambda: fused.execute(feeds, record=False, arena=fused_arena)
        ),
        "fused_sites": fused.fusion_stats.sites,
    }


def test_cached_plan_beats_interpreter_and_records_json(timings, workload):
    graph, feeds = workload
    speedup = (
        timings["interpreter_exec_seconds"] / timings["plan_exec_seconds"]
    )
    fused_arena_speedup = (
        timings["interpreter_exec_seconds"]
        / timings["plan_exec_fused_arena_seconds"]
    )
    payload = {
        "workload": {
            "nodes": len(graph),
            "op_counts": graph.op_counts(),
            "operand_n": 16,
            "repetitions": REPS,
        },
        **timings,
        "plan_over_interpreter_speedup": speedup,
        "fused_arena_over_interpreter_speedup": fused_arena_speedup,
    }
    (ROOT / "BENCH_runtime.json").write_text(json.dumps(payload, indent=2))
    # The acceptance claim: repeated execution of a cached plan beats
    # re-running the reference interpreter on the same graph.
    assert timings["plan_exec_seconds"] < timings["interpreter_exec_seconds"]
    # A cache hit is far cheaper than recompiling.
    assert timings["plan_cache_hit_seconds"] < timings["plan_compile_seconds"]


def test_fused_arena_at_or_below_plain_plan(timings):
    """The fused + preallocated engine must run at or below the PR-1
    ``plan_exec_norecord_seconds`` baseline on the dispatch-bound
    workload — fewer closure launches, zero intermediate allocations."""
    assert (
        timings["plan_exec_fused_arena_seconds"]
        <= timings["plan_exec_norecord_seconds"]
    )


def test_arena_is_allocation_free_and_per_call_is_not(timings, workload):
    """Relative gate only: the 16x16 bench operands (1 KiB) sit too close
    to Python-object churn for a tight absolute bound to be stable across
    CPython/allocator versions.  The strict absolute zero-allocation
    proof lives in tests/test_runtime_arena.py at N=64 (16 KiB margin)."""
    assert (
        timings["alloc_peak_bytes_fused_arena"]
        < timings["alloc_peak_bytes_per_call"] / 2
    )


@pytest.mark.benchmark(group="runtime-plans")
def test_interpreter_exec(benchmark, workload):
    graph, feeds = workload
    interp = Interpreter(record=True)
    benchmark(lambda: interp.run(graph, feeds))


@pytest.mark.benchmark(group="runtime-plans")
def test_plan_exec(benchmark, workload):
    graph, feeds = workload
    plan = compile_plan(graph)
    benchmark(lambda: plan.execute(feeds))


@pytest.mark.benchmark(group="runtime-plans")
def test_plan_exec_norecord(benchmark, workload):
    graph, feeds = workload
    plan = compile_plan(graph)
    benchmark(lambda: plan.execute(feeds, record=False))


@pytest.mark.benchmark(group="runtime-plans")
def test_plan_exec_fused_arena(benchmark, workload):
    graph, feeds = workload
    plan = compile_plan(graph, fusion=True)
    arena = plan.new_arena()
    plan.execute(feeds, arena=arena)
    benchmark(lambda: plan.execute(feeds, record=False, arena=arena))
