"""Level-1 BLAS wrappers: vector-vector operations.

Each function validates operands, dispatches on dtype to the compiled
single/double precision routine in :mod:`scipy.linalg.blas`, and returns a
plain ndarray (or scalar).  None of the wrappers mutate their inputs unless
explicitly documented.

Destination-aware variants
--------------------------
:func:`add`, :func:`sub`, :func:`neg` and the ``out=`` mode of
:func:`scal` accept a caller-provided destination buffer and write the
result in place, so a preallocated execution arena
(:class:`repro.runtime.plan.PlanArena`) can run elementwise kernels with
zero allocations.  They are ufunc-backed (the elementwise substrate both
the Interpreter and the compiled runtime lower ``+``/``-``/negate/scale
onto), so with and without ``out=`` they produce **bit-identical** results
— the invariant the plan/interpreter parity suite pins down.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import blas as _blas

from ..errors import KernelError
from .validation import (
    as_ndarray,
    check_same_length,
    require_same_dtype,
    require_vector,
)

_SCAL = {np.dtype(np.float32): _blas.sscal, np.dtype(np.float64): _blas.dscal}
_AXPY = {np.dtype(np.float32): _blas.saxpy, np.dtype(np.float64): _blas.daxpy}
_DOT = {np.dtype(np.float32): _blas.sdot, np.dtype(np.float64): _blas.ddot}
_NRM2 = {np.dtype(np.float32): _blas.snrm2, np.dtype(np.float64): _blas.dnrm2}
_ASUM = {np.dtype(np.float32): _blas.sasum, np.dtype(np.float64): _blas.dasum}
_COPY = {np.dtype(np.float32): _blas.scopy, np.dtype(np.float64): _blas.dcopy}


def _routine(table: dict, dtype: np.dtype, name: str):
    try:
        return table[np.dtype(dtype)]
    except KeyError:  # pragma: no cover - guarded by validation
        raise KernelError(f"no {name} kernel for dtype {dtype}") from None


def scal(
    alpha: float,
    x: np.ndarray,
    *,
    overwrite: bool = False,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """SCAL: return ``alpha * x`` (n FLOPs).

    With ``overwrite=True`` the input buffer is scaled in place and returned,
    saving an allocation — the mode used by the tridiagonal row-scaling
    decomposition of Experiment 3.  With ``out=`` the scaled vector is
    written into the caller's buffer instead (``overwrite`` is then
    meaningless and rejected); unlike the BLAS path this mode accepts
    operands of any shape, since it lowers onto the scale ufunc.
    """
    if out is not None:
        if overwrite:
            raise KernelError("scal: pass either overwrite=True or out=, not both")
        x = as_ndarray(x, "x")
        return np.multiply(x, x.dtype.type(alpha), out=out)
    x = require_vector(as_ndarray(x, "x"), "x")
    fn = _routine(_SCAL, x.dtype, "scal")
    if not overwrite:
        x = x.copy()
    # f2py's SCAL always scales in place (no overwrite flag); the copy
    # above protects the caller's buffer.
    return fn(x.dtype.type(alpha), x)


def add(x: np.ndarray, y: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
    """Elementwise ``x + y`` (n FLOPs), optionally into ``out``.

    Bit-identical to ``x + y``; ``out`` may alias ``x`` or ``y`` (ufunc
    semantics: same-shape elementwise, no read-after-write hazard).
    """
    return np.add(x, y, out=out)


def sub(x: np.ndarray, y: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
    """Elementwise ``x - y`` (n FLOPs), optionally into ``out``.

    Bit-identical to ``x - y``; aliasing ``out`` with an operand is safe.
    """
    return np.subtract(x, y, out=out)


def neg(x: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
    """Elementwise ``-x`` (n FLOPs), optionally into ``out`` (may alias ``x``)."""
    return np.negative(x, out=out)


def axpy(alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """AXPY: return ``alpha * x + y`` (2n FLOPs).  ``y`` is not modified."""
    x = as_ndarray(x, "x")
    y = as_ndarray(y, "y")
    check_same_length(x, y)
    require_same_dtype((x, "x"), (y, "y"))
    fn = _routine(_AXPY, x.dtype, "axpy")
    # f2py's AXPY updates y in place and returns it; copy to keep y intact.
    out = y.copy()
    return fn(x, out, a=x.dtype.type(alpha))


def dot(x: np.ndarray, y: np.ndarray) -> float:
    """DOT: return the inner product ``x . y`` (2n FLOPs)."""
    x = as_ndarray(x, "x")
    y = as_ndarray(y, "y")
    check_same_length(x, y)
    require_same_dtype((x, "x"), (y, "y"))
    fn = _routine(_DOT, x.dtype, "dot")
    return float(fn(x, y))


def nrm2(x: np.ndarray) -> float:
    """NRM2: return the Euclidean norm of ``x`` (~2n FLOPs)."""
    x = require_vector(as_ndarray(x, "x"), "x")
    fn = _routine(_NRM2, x.dtype, "nrm2")
    return float(fn(x))


def asum(x: np.ndarray) -> float:
    """ASUM: return the sum of absolute values of ``x`` (n FLOPs)."""
    x = require_vector(as_ndarray(x, "x"), "x")
    fn = _routine(_ASUM, x.dtype, "asum")
    return float(fn(x))


def copy(x: np.ndarray) -> np.ndarray:
    """COPY: return a fresh buffer holding ``x`` (0 FLOPs, n memops)."""
    x = require_vector(as_ndarray(x, "x"), "x")
    fn = _routine(_COPY, x.dtype, "copy")
    out = np.empty_like(x)
    return fn(x, out)
