"""Request coalescing: flush boundaries, wave splitting, cancellation.

Contracts under test (the ISSUE's flush-boundary checklist):

* a queue flushes the moment it reaches ``max_wave`` (occupancy flush)
  and otherwise when its oldest request has waited ``max_delay``
  (deadline flush);
* requests with incompatible feed shapes/dtypes never share a wave —
  at the server level the coalesce key carries the feed signature, so
  mixed-shape submissions split into per-signature waves;
* a request cancelled while queued is dropped at flush time: it
  occupies no wave slot and the remaining requests still complete;
* waves of one key serialize; dispatch failures fan out to every
  request of the wave; ``drain()`` leaves nothing queued or in flight.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import api, serve
from repro.serve import CoalesceConfig, Coalescer, ServeMetrics
from repro.tensor import random_general


def run(coro):
    return asyncio.run(coro)


def make_coalescer(waves, config, metrics=None, delay=0.0):
    """A Coalescer whose dispatch echoes items back and logs each wave."""

    async def dispatch(key, items):
        if delay:
            await asyncio.sleep(delay)
        waves.append((key, list(items)))
        return [f"done:{item}" for item in items]

    return Coalescer(dispatch, config=config, metrics=metrics)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs", [{"max_wave": 0}, {"max_wave": 1.5}, {"max_delay": -0.1}]
    )
    def test_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            CoalesceConfig(**kwargs).validate()


class TestFlushBoundaries:
    def test_max_wave_flushes_immediately(self):
        async def main():
            waves = []
            c = make_coalescer(
                waves, CoalesceConfig(max_wave=3, max_delay=60.0)
            )
            futs = [c.submit("k", i) for i in range(3)]
            # Hitting max_wave dispatched the wave with no timer wait
            # (max_delay is a minute — a deadline flush can't be it).
            assert c.pending("k") == 0
            results = await asyncio.gather(*futs)
            assert results == ["done:0", "done:1", "done:2"]
            assert len(waves) == 1
            assert waves[0] == ("k", [0, 1, 2])

        run(main())

    def test_deadline_flushes_partial_wave(self):
        async def main():
            waves = []
            metrics = ServeMetrics()
            c = make_coalescer(
                waves, CoalesceConfig(max_wave=64, max_delay=0.01), metrics
            )
            fut = c.submit("k", "only")
            assert c.pending("k") == 1  # far from max_wave: still queued
            assert await fut == "done:only"
            assert len(waves) == 1 and waves[0][1] == ["only"]
            assert metrics.wave_occupancy.max == 1
            # The request waited roughly the deadline, not the minute a
            # full wave would imply.
            assert metrics.queue_wait.max >= 0.009

        run(main())

    def test_overfull_burst_splits_at_max_wave(self):
        async def main():
            waves = []
            c = make_coalescer(
                waves, CoalesceConfig(max_wave=4, max_delay=0.005)
            )
            futs = [c.submit("k", i) for i in range(10)]
            await asyncio.gather(*futs)
            assert [len(items) for _, items in waves] == [4, 4, 2]

        run(main())

    def test_distinct_keys_never_share_a_wave(self):
        async def main():
            waves = []
            c = make_coalescer(
                waves, CoalesceConfig(max_wave=8, max_delay=0.005)
            )
            futs = [c.submit(f"k{i % 2}", i) for i in range(6)]
            await asyncio.gather(*futs)
            assert len(waves) == 2
            by_key = dict(waves)
            assert by_key["k0"] == [0, 2, 4]
            assert by_key["k1"] == [1, 3, 5]

        run(main())


class TestIncompatibleFeedsSplitWaves:
    def test_shape_and_dtype_split_at_the_server(self):
        # The server keys waves by (tenant, plan, feed signature): two
        # feed sizes for the same function must land in separate waves.
        async def main():
            small = [random_general(8, seed=s) for s in (1, 2)]
            big = [random_general(16, seed=s) for s in (3, 4)]

            def model(a, b):
                return a @ b + a

            async with serve.Server(
                api.Options(fusion=True, arena="preallocated"),
                coalesce=serve.CoalesceConfig(max_wave=2, max_delay=0.5),
            ) as server:
                outs = await asyncio.gather(
                    server.submit(model, small),
                    server.submit(model, big),
                    server.submit(model, small),
                    server.submit(model, big),
                )
                assert server.metrics.waves == 2
                assert server.metrics.wave_occupancy.max == 2
                np.testing.assert_allclose(
                    outs[0].data, small[0].data @ small[1].data
                    + small[0].data, rtol=1e-5)
                np.testing.assert_allclose(
                    outs[1].data, big[0].data @ big[1].data + big[0].data,
                    rtol=1e-5)

        run(main())


class TestCancellation:
    def test_cancelled_request_dropped_at_flush(self):
        async def main():
            waves = []
            metrics = ServeMetrics()
            c = make_coalescer(
                waves, CoalesceConfig(max_wave=8, max_delay=0.005), metrics
            )
            keep = c.submit("k", "keep")
            drop = c.submit("k", "drop")
            drop.cancel()
            assert await keep == "done:keep"
            # The cancelled request never reached a wave.
            assert waves == [("k", ["keep"])]
            assert drop.cancelled()
            assert metrics.wave_occupancy.max == 1

        run(main())

    def test_fully_cancelled_queue_dispatches_nothing(self):
        async def main():
            waves = []
            c = make_coalescer(
                waves, CoalesceConfig(max_wave=8, max_delay=0.002)
            )
            futs = [c.submit("k", i) for i in range(3)]
            for fut in futs:
                fut.cancel()
            await asyncio.sleep(0.02)
            await c.drain()
            assert waves == []

        run(main())

    def test_cancelled_during_serialization_wait_dropped(self):
        async def main():
            waves = []
            metrics = ServeMetrics()
            c = make_coalescer(
                waves, CoalesceConfig(max_wave=1, max_delay=0.1), metrics,
                delay=0.02,
            )
            first = c.submit("k", "first")    # wave 1, holds the key lock
            second = c.submit("k", "second")  # wave 2, parked on the lock
            await asyncio.sleep(0.005)
            second.cancel()
            assert await first == "done:first"
            await c.drain()
            # Wave 2 found its only request cancelled and dispatched
            # nothing.
            assert [items for _, items in waves] == [["first"]]
            assert metrics.cancelled == 1

        run(main())


class TestDispatchSemantics:
    def test_same_key_waves_serialize(self):
        async def main():
            running = {"now": 0, "peak": 0}

            async def dispatch(key, items):
                running["now"] += 1
                running["peak"] = max(running["peak"], running["now"])
                await asyncio.sleep(0.01)
                running["now"] -= 1
                return list(items)

            c = Coalescer(
                dispatch, config=CoalesceConfig(max_wave=2, max_delay=0.5)
            )
            futs = [c.submit("k", i) for i in range(6)]  # three waves
            await asyncio.gather(*futs)
            assert running["peak"] == 1

        run(main())

    def test_dispatch_failure_fans_out_to_whole_wave(self):
        async def main():
            async def dispatch(key, items):
                raise ValueError("kernel exploded")

            c = Coalescer(
                dispatch, config=CoalesceConfig(max_wave=2, max_delay=0.5)
            )
            f1 = c.submit("k", 1)
            f2 = c.submit("k", 2)
            for fut in (f1, f2):
                with pytest.raises(ValueError, match="kernel exploded"):
                    await fut
            # The coalescer survives a failed wave: the next one runs.
            f3 = c.submit("k", 3)
            c.flush("k")
            with pytest.raises(ValueError, match="kernel exploded"):
                await f3

        run(main())

    def test_result_count_mismatch_is_an_error(self):
        async def main():
            async def dispatch(key, items):
                return [0]  # wrong arity for a 2-wave

            c = Coalescer(
                dispatch, config=CoalesceConfig(max_wave=2, max_delay=0.5)
            )
            f1 = c.submit("k", 1)
            f2 = c.submit("k", 2)
            for fut in (f1, f2):
                with pytest.raises(RuntimeError, match="2"):
                    await fut

        run(main())

    def test_drain_flushes_and_waits(self):
        async def main():
            waves = []
            c = make_coalescer(
                waves, CoalesceConfig(max_wave=64, max_delay=60.0),
                delay=0.01,
            )
            futs = [c.submit("k", i) for i in range(3)]
            assert c.pending() == 3
            await c.drain()
            assert c.pending() == 0
            assert c.inflight_waves == 0
            assert len(waves) == 1
            assert all(f.done() for f in futs)

        run(main())
