"""The serve bench: coalesced serving vs one-request-at-a-time.

One function, :func:`serve_bench`, drives the same dispatch-bound
workload the runtime bench uses (a chain of small GEMMs — the regime
where per-request overhead dominates and coalescing pays) through two
configurations of the same :class:`~repro.serve.Server`:

* **sequential baseline** — a closed loop with ``concurrency=1`` and a
  ``max_wave=1`` coalescer (flush on submit, no deadline wait): every
  request travels the full serve path alone and pays the whole dispatch
  overhead itself, with zero artificial queueing delay.  This is the
  honest "serve without coalescing" number — not a strawman that sleeps
  out the deadline per request.
* **coalesced** — a closed loop with ``concurrency >= max_wave``:
  enough requests are in flight that waves fill, and the per-wave
  overhead amortizes across the wave.

The comparison is deliberately *within the serving stack* (not against
direct compiled calls): both sides pay admission, coalescing, the
executor hop and the result fan-out, so the measured ratio isolates
what wave formation buys — and stays meaningful on a single-core CI
runner, where cross-process sharding cannot add parallel speedup.

Numbers are returned as a flat ``serve_*`` dict, merged into
``BENCH_runtime.json`` by ``benchmarks/test_serve_bench.py`` and
printed by ``laab serve-bench``.
"""

from __future__ import annotations

import asyncio
import dataclasses

from ..api import Options
from ..tensor import random_general
from .admission import AdmissionConfig
from .coalesce import CoalesceConfig
from .loadgen import LoadReport, closed_loop
from .server import Server

__all__ = ["ServeBenchResult", "serve_bench"]


@dataclasses.dataclass(frozen=True)
class ServeBenchResult:
    """Everything one serve-bench run produced."""

    #: Flat ``serve_*`` keys for ``BENCH_runtime.json``.
    numbers: dict
    sequential: LoadReport
    coalesced: LoadReport
    #: ``server.stats().render()`` of the coalesced server, post-run.
    stats_render: str

    def render(self) -> str:
        n = self.numbers
        lines = [
            "== serve bench: sequential baseline (concurrency 1) ==",
            self.sequential.render(),
            "",
            f"== serve bench: coalesced (concurrency "
            f"{n['serve_concurrency']}) ==",
            self.coalesced.render(),
            "",
            f"coalescing speedup: {n['serve_coalescing_speedup']:.2f}x "
            f"({n['serve_sequential_rps']:,.0f} -> "
            f"{n['serve_throughput_rps']:,.0f} req/s)",
            f"wave occupancy: mean {n['serve_wave_occupancy_mean']:.2f} | "
            f"max {n['serve_wave_occupancy_max']}",
            f"latency: p50 {n['serve_p50_latency_seconds'] * 1e3:.3f} ms | "
            f"p99 {n['serve_p99_latency_seconds'] * 1e3:.3f} ms | "
            f"p999 {n['serve_p999_latency_seconds'] * 1e3:.3f} ms",
            "",
            "== coalesced server stats ==",
            self.stats_render,
        ]
        return "\n".join(lines)


def _workload(loops: int):
    """The runtime bench's dispatch-bound chain, as serve feeds."""
    feeds = [random_general(16, seed=s) for s in (1, 2, 3)]

    def model(a, b, c):
        acc = a
        for _ in range(loops):
            acc = (acc @ b + c - a) @ a.T
        return acc + acc.T

    return model, feeds


def serve_bench(
    *,
    requests: int = 256,
    concurrency: int = 8,
    shards: int | None = None,
    max_wave: int = 8,
    max_delay: float = 0.002,
    max_inflight: int = 256,
    loops: int = 12,
) -> ServeBenchResult:
    """Run the sequential-vs-coalesced comparison; see the module doc.

    ``shards=None`` (or ``0``) keeps wave execution in-process;
    ``shards=N`` dispatches waves through N worker processes.  Both
    servers — baseline and coalesced — get identical Options, so the
    ratio never mixes engine configurations.
    """
    if requests < 2 * concurrency:
        raise ValueError(
            f"requests ({requests}) should be >= 2x concurrency "
            f"({concurrency}) for waves to reach steady state"
        )
    options = Options(
        fusion=True,
        arena="preallocated",
        shards=shards if shards else None,
    )
    admission = AdmissionConfig(max_inflight=max_inflight)
    model, feeds = _workload(loops)

    async def timed_run(concurrency_: int, coalesce: CoalesceConfig):
        async with Server(
            options, admission=admission, coalesce=coalesce,
        ) as server:
            # Warm outside the timed loop: trace + compile + (sharded)
            # pool spawn + arena warmup all happen on the first wave.
            await server.submit(model, feeds)
            report = await closed_loop(
                server, model, feeds,
                concurrency=concurrency_, requests=requests,
            )
            report.metrics = server.metrics.snapshot()
            stats_render = server.stats().render()
        return report, stats_render

    async def main():
        # Baseline: one client, waves of one, flushed on submit — the
        # serve path with coalescing switched off, not slowed down.
        sequential, _ = await timed_run(
            1, CoalesceConfig(max_wave=1, max_delay=0.0)
        )
        coalesced, stats_render = await timed_run(
            concurrency,
            CoalesceConfig(max_wave=max_wave, max_delay=max_delay),
        )
        return sequential, coalesced, stats_render

    sequential, coalesced, stats_render = asyncio.run(main())

    metrics = coalesced.metrics
    # The warm request adds one occupancy-1 wave to the metrics; report
    # occupancy over the timed waves only.
    waves = metrics["waves"] - 1
    occupancy_mean = (
        (metrics["wave_occupancy"]["mean"] * metrics["waves"] - 1) / waves
        if waves > 0 else 0.0
    )
    numbers = {
        "serve_requests": requests,
        "serve_concurrency": concurrency,
        "serve_shards": shards or 0,
        "serve_max_wave": max_wave,
        "serve_max_delay_seconds": max_delay,
        "serve_sequential_rps": sequential.throughput_rps,
        "serve_throughput_rps": coalesced.throughput_rps,
        "serve_coalescing_speedup": (
            coalesced.throughput_rps / sequential.throughput_rps
            if sequential.throughput_rps else 0.0
        ),
        "serve_waves": waves,
        "serve_wave_occupancy_mean": occupancy_mean,
        "serve_wave_occupancy_max": metrics["wave_occupancy"]["max"],
        "serve_p50_latency_seconds": metrics["latency"]["p50_seconds"],
        "serve_p99_latency_seconds": metrics["latency"]["p99_seconds"],
        "serve_p999_latency_seconds": metrics["latency"]["p999_seconds"],
        "serve_queue_depth_high_water": metrics["queue_depth_high_water"],
    }
    return ServeBenchResult(
        numbers=numbers,
        sequential=sequential,
        coalesced=coalesced,
        stats_render=stats_render,
    )
