"""Batched execution of one plan over many feed sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.ir import trace
from repro.passes import default_pipeline
from repro.runtime import compile_plan, execute_batch
from repro.tensor import random_general


@pytest.fixture
def plan_and_feeds():
    fn = lambda a, b: (a.T @ b).T @ (a.T @ b)  # noqa: E731
    a0 = random_general(12, seed=1)
    b0 = random_general(12, seed=2)
    graph = default_pipeline().run(trace(fn, [a0, b0]))
    plan = compile_plan(graph)
    feed_sets = [
        [random_general(12, seed=100 + i).data,
         random_general(12, seed=200 + i).data]
        for i in range(6)
    ]
    return plan, feed_sets


def test_sequential_matches_single_runs(plan_and_feeds):
    plan, feed_sets = plan_and_feeds
    batch = execute_batch(plan, feed_sets)
    assert len(batch) == len(feed_sets)
    for feeds, outs in zip(feed_sets, batch.outputs):
        single, _ = plan.execute(feeds, record=False)
        assert outs[0].tobytes() == single[0].tobytes()


def test_threaded_matches_sequential(plan_and_feeds):
    plan, feed_sets = plan_and_feeds
    seq = execute_batch(plan, feed_sets, workers=1)
    par = execute_batch(plan, feed_sets, workers=4)
    for s, p in zip(seq.outputs, par.outputs):
        assert s[0].tobytes() == p[0].tobytes()


def test_recorded_batch_reports_match_single(plan_and_feeds):
    plan, feed_sets = plan_and_feeds
    batch = execute_batch(plan, feed_sets, workers=3, record=True)
    _, ref = plan.execute(feed_sets[0])
    for report in batch.reports:
        assert report.calls == ref.calls
        assert report.peak_bytes == ref.peak_bytes
    assert batch.total_flops == ref.total_flops * len(feed_sets)


def test_record_off_by_default(plan_and_feeds):
    plan, feed_sets = plan_and_feeds
    batch = execute_batch(plan, feed_sets[:2])
    assert all(r.calls == [] for r in batch.reports)


def test_first_outputs_helper(plan_and_feeds):
    plan, feed_sets = plan_and_feeds
    batch = execute_batch(plan, feed_sets[:3])
    firsts = batch.first_outputs()
    assert len(firsts) == 3
    assert all(isinstance(f, np.ndarray) for f in firsts)


def test_empty_batch(plan_and_feeds):
    plan, _ = plan_and_feeds
    batch = execute_batch(plan, [])
    assert len(batch) == 0 and batch.total_flops == 0


def test_negative_workers_rejected(plan_and_feeds):
    plan, feed_sets = plan_and_feeds
    with pytest.raises(GraphError):
        execute_batch(plan, feed_sets, workers=-1)


def test_unknown_arena_mode_rejected(plan_and_feeds):
    plan, feed_sets = plan_and_feeds
    with pytest.raises(GraphError):
        execute_batch(plan, feed_sets, arena="bogus")


# -- preallocated-arena batches -----------------------------------------------


@pytest.mark.parametrize("workers", [None, 4], ids=["sequential", "threaded"])
def test_arena_batch_matches_per_call(plan_and_feeds, workers):
    """One reused arena per worker must not let feeds bleed into each
    other: every feed's outputs are bit-identical to a standalone run."""
    plan, feed_sets = plan_and_feeds
    batch = execute_batch(plan, feed_sets, workers=workers,
                          arena="preallocated")
    for feeds, outs in zip(feed_sets, batch.outputs):
        single, _ = plan.execute(feeds, record=False)
        assert outs[0].tobytes() == single[0].tobytes()
    # Outputs are detached copies, not views of shared arena storage.
    assert batch.outputs[0][0].base is None


def test_arena_batch_reports_match(plan_and_feeds):
    plan, feed_sets = plan_and_feeds
    ref = execute_batch(plan, feed_sets, record=True)
    arena = execute_batch(plan, feed_sets, record=True, arena="preallocated")
    for r, a in zip(ref.reports, arena.reports):
        assert r.calls == a.calls
        assert r.peak_bytes == a.peak_bytes


# -- failure paths ------------------------------------------------------------
#
# A feed set that raises mid-batch must surface the error and leave the
# system reusable: earlier/other feeds' results untouched, worker arenas
# uncorrupted (every slot is fully rewritten by the next run).


def _bad_feed_sets(feed_sets):
    bad = list(feed_sets)
    bad[3] = [random_general(5, seed=9).data, random_general(5, seed=10).data]
    return bad


@pytest.mark.parametrize("workers", [None, 4], ids=["sequential", "threaded"])
@pytest.mark.parametrize("arena", ["per-call", "preallocated"])
def test_raising_feed_surfaces_error(plan_and_feeds, workers, arena):
    plan, feed_sets = plan_and_feeds
    with pytest.raises(GraphError):
        execute_batch(plan, _bad_feed_sets(feed_sets), workers=workers,
                      arena=arena)


@pytest.mark.parametrize("workers", [None, 4], ids=["sequential", "threaded"])
@pytest.mark.parametrize("arena", ["per-call", "preallocated"])
def test_failed_batch_does_not_corrupt_later_runs(plan_and_feeds, workers,
                                                  arena):
    plan, feed_sets = plan_and_feeds
    expected = [plan.execute(feeds, record=False)[0][0].tobytes()
                for feeds in feed_sets]
    with pytest.raises(GraphError):
        execute_batch(plan, _bad_feed_sets(feed_sets), workers=workers,
                      arena=arena)
    # The same call path, rerun with good feeds, yields pristine results.
    batch = execute_batch(plan, feed_sets, workers=workers, arena=arena)
    assert [outs[0].tobytes() for outs in batch.outputs] == expected


def test_mid_execution_failure_in_threaded_batch(plan_and_feeds):
    """An error raised *inside* plan execution (not at bind time) also
    propagates cleanly out of the pool."""
    plan, feed_sets = plan_and_feeds
    poisoned = list(feed_sets)
    poisoned[2] = {"nope": feed_sets[2][0]}
    with pytest.raises(GraphError):
        execute_batch(plan, poisoned, workers=3, arena="preallocated")
    batch = execute_batch(plan, feed_sets, workers=3, arena="preallocated")
    single, _ = plan.execute(feed_sets[2], record=False)
    assert batch.outputs[2][0].tobytes() == single[0].tobytes()
