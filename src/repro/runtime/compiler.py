"""Graph → Plan compilation.

The compiler performs, once, everything ``Interpreter.run`` redoes per
call:

* **Schedule** — the topological order is frozen into a flat instruction
  list (loop bodies compile into nested sub-plans).
* **Kernel selection** — the shape/flag/hint dispatch of the interpreter's
  ``matmul`` handler (DOT/GEMV/GEMM, and the property-dispatch hints
  TRMM/SYRK/SYMM/diag/tridiag/zero/identity) is resolved here; each
  instruction carries a closure that calls the chosen BLAS kernel
  directly, plus the pre-built :class:`KernelCall` records (dims and
  FLOPs are static, so the modelled-cost accounting costs nothing at
  execution time).
* **Buffer table** — liveness analysis assigns every value an arena slot;
  slots of dead temporaries are recycled (inputs, constants and graph
  outputs stay live for the whole run, matching the interpreter's memory
  model), so the arena is as small as the peak working set.
* **Constant preloading** — ``const`` payloads are captured into the
  instruction at compile time; with ``fold_constants=True`` the
  :class:`~repro.passes.constant_folding.ConstantFolding` pass
  pre-evaluates const-only sub-DAGs before compilation (note: the plan
  then mirrors the *folded* program, so report parity is with the
  Interpreter on the folded graph).

The executor closures below must stay in lock-step with the corresponding
``Interpreter._op_*`` handlers: the parity suite executes both on every
workload and compares outputs bit-for-bit and reports field-for-field.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import GraphError, KernelError
from ..ir.graph import Graph
from ..ir.interpreter import KernelCall
from ..ir.node import Node
from ..kernels import blas1, blas2, blas3, special
from ..kernels.flops import kernel_flops
from .plan import Instruction, Plan, PlanInput
from .signature import graph_signature


def _call(kernel: str, dims: tuple[int, ...], node_op: str) -> KernelCall:
    return KernelCall(kernel, dims, kernel_flops(kernel, *dims), node_op)


def _call_free(kernel: str, node_op: str) -> KernelCall:
    return KernelCall(kernel, (), 0, node_op)


# -- per-op compilation -------------------------------------------------------
#
# Each _compile_* returns (fn, calls): the executor closure and the static
# kernel-call records appended per execution.


def _compile_const(node: Node):
    value = node.attrs["value"]

    def run(args, report, record):
        return value

    return run, ()


def _compile_transpose(node: Node):
    def run(args, report, record):
        return np.ascontiguousarray(args[0].T)

    return run, (_call("transpose", node.inputs[0].shape, node.op),)


def _compile_add(node: Node):
    def run(args, report, record):
        return args[0] + args[1]

    return run, (_call("add", node.inputs[0].shape, node.op),)


def _compile_sub(node: Node):
    def run(args, report, record):
        return args[0] - args[1]

    return run, (_call("sub", node.inputs[0].shape, node.op),)


def _compile_neg(node: Node):
    def run(args, report, record):
        return -args[0]

    return run, (_call("scale", node.inputs[0].shape, node.op),)


def _compile_scale(node: Node):
    alpha = node.attrs["alpha"]

    def run(args, report, record):
        a = args[0]
        return a * a.dtype.type(alpha)

    return run, (_call("scale", node.inputs[0].shape, node.op),)


def _compile_dot(node: Node):
    a_shape = node.inputs[0].shape
    length = a_shape[0] * a_shape[1]

    def run(args, report, record):
        a, b = args
        av = np.ascontiguousarray(a).ravel()
        bv = np.ascontiguousarray(b).ravel()
        return np.array([[blas1.dot(av, bv)]], dtype=a.dtype)

    return run, (_call("dot", (length,), node.op),)


def _compile_slice(node: Node):
    sel = []
    for key in ("rows", "cols"):
        s = node.attrs.get(key)
        if s is None:
            sel.append(slice(None))
        elif isinstance(s, int):
            sel.append(slice(s, s + 1) if s != -1 else slice(s, None))
        else:
            sel.append(slice(s[0], s[1]))
    sel = tuple(sel)

    def run(args, report, record):
        return np.ascontiguousarray(args[0][sel])

    return run, (_call_free("slice", node.op),)


def _compile_concat(node: Node):
    axis = node.attrs.get("axis", 0)

    def run(args, report, record):
        return np.concatenate(args, axis=axis)

    return run, (_call_free("concat", node.op),)


def _compile_tridiagonal_matmul(node: Node):
    t, b = node.inputs

    def run(args, report, record):
        return special.tridiagonal_matmul(args[0], args[1])

    return run, (_call("tridiagonal_matmul", (t.shape[0], b.shape[1]), node.op),)


def _compile_loop(node: Node):
    body: Graph = node.attrs["body"]
    trip: int = node.attrs["trip_count"]
    sub_plan = compile_plan(body)

    def run(args, report, record):
        carried = args[0]
        captured = args[1:]
        for i in range(trip):
            idx = np.array([[float(i)]], dtype=carried.dtype)
            outs, _ = sub_plan.execute(
                [idx, carried, *captured], report=report, record=record
            )
            carried = outs[0]
        return carried

    return run, ()


def _compile_matmul(node: Node):
    a_node, b_node = node.inputs
    trans_a = bool(node.attrs.get("trans_a"))
    trans_b = bool(node.attrs.get("trans_b"))
    hint = node.attrs.get("kernel")
    if hint is not None:
        return _compile_structured_matmul(node, trans_a, trans_b, hint)

    a_eff = tuple(reversed(a_node.shape)) if trans_a else a_node.shape
    b_eff = tuple(reversed(b_node.shape)) if trans_b else b_node.shape
    m, k = a_eff
    _, n = b_eff

    if m == 1 and n == 1 and k > 1:
        def run(args, report, record):
            a, b = args
            av = np.ascontiguousarray(a).ravel()
            bv = np.ascontiguousarray(b).ravel()
            return np.array([[blas1.dot(av, bv)]], dtype=a.dtype)

        return run, (_call("dot", (k,), node.op),)
    if n == 1 and m > 1:
        def run(args, report, record):
            a, b = args
            x = np.ascontiguousarray(b).ravel()
            return blas2.gemv(a, x, trans=trans_a).reshape(-1, 1)

        return run, (_call("gemv", (a_node.shape[0], a_node.shape[1]), node.op),)
    if m == 1 and n > 1:
        def run(args, report, record):
            a, b = args
            x = np.ascontiguousarray(a).ravel()
            return blas2.gemv(b, x, trans=not trans_b).reshape(1, -1)

        return run, (_call("gemv", (b_node.shape[0], b_node.shape[1]), node.op),)

    def run(args, report, record):
        return blas3.gemm(args[0], args[1], trans_a=trans_a, trans_b=trans_b)

    return run, (_call("gemm", (m, k, n), node.op),)


def _compile_structured_matmul(node: Node, trans_a: bool, trans_b: bool, hint: str):
    """Compile a matmul carrying a property-dispatch kernel hint."""
    a_node, b_node = node.inputs
    opts = dict(node.attrs.get("kernel_opts", ()))
    a_eff_shape = tuple(reversed(a_node.shape)) if trans_a else a_node.shape
    b_eff_shape = tuple(reversed(b_node.shape)) if trans_b else b_node.shape
    m, k = a_eff_shape
    n = b_eff_shape[1]

    def eff(args):
        a, b = args
        a_eff = np.ascontiguousarray(a.T) if trans_a else a
        b_eff = np.ascontiguousarray(b.T) if trans_b else b
        return a_eff, b_eff

    if hint == "zero":
        def run(args, report, record):
            return np.zeros((m, n), dtype=args[0].dtype)

        return run, (_call_free("zero", node.op),)
    if hint == "identity":
        def run(args, report, record):
            return eff(args)[1].copy()

        return run, (_call_free("identity", node.op),)
    if hint == "identity_right":
        def run(args, report, record):
            return eff(args)[0].copy()

        return run, (_call_free("identity", node.op),)
    if hint == "diag_matmul":
        def run(args, report, record):
            return special.diag_matmul(*eff(args))

        return run, (_call("diag_matmul", (k, n), node.op),)
    if hint == "tridiagonal_matmul":
        def run(args, report, record):
            return special.tridiagonal_matmul(*eff(args))

        return run, (_call("tridiagonal_matmul", (k, n), node.op),)
    if hint == "trmm":
        lower = opts.get("lower", True)

        def run(args, report, record):
            a_eff, b_eff = eff(args)
            return blas3.trmm(a_eff, b_eff, lower=lower)

        return run, (_call("trmm", (m, n), node.op),)
    if hint == "trmm_right":
        lower = opts.get("lower", True)

        def run(args, report, record):
            a_eff, b_eff = eff(args)
            return blas3.trmm(b_eff, a_eff, side_left=False, lower=lower)

        return run, (_call("trmm", (n, m), node.op),)
    if hint == "symm":
        def run(args, report, record):
            return blas3.symm(*eff(args))

        return run, (_call("symm", (m, n), node.op),)
    if hint == "syrk":
        if trans_b == trans_a:
            raise KernelError("syrk hint requires exactly one transpose flag")
        trans = trans_a

        def run(args, report, record):
            return blas3.syrk(args[0], trans=trans)

        return run, (_call("syrk", (m, k), node.op),)
    raise KernelError(f"unknown matmul kernel hint {hint!r}")


_COMPILERS = {
    "const": _compile_const,
    "transpose": _compile_transpose,
    "add": _compile_add,
    "sub": _compile_sub,
    "neg": _compile_neg,
    "scale": _compile_scale,
    "dot": _compile_dot,
    "slice": _compile_slice,
    "concat": _compile_concat,
    "tridiagonal_matmul": _compile_tridiagonal_matmul,
    "loop": _compile_loop,
    "matmul": _compile_matmul,
}


# -- the compiler proper ------------------------------------------------------


def compile_plan(graph: Graph, *, fold_constants: bool = False) -> Plan:
    """Compile ``graph`` into an executable :class:`Plan`."""
    start = time.perf_counter()
    signature = graph_signature(graph)
    if fold_constants:
        from ..passes.constant_folding import ConstantFolding

        graph = ConstantFolding().run(graph)

    order = graph.topological()
    last_use: dict[int, int] = {}
    for idx, node in enumerate(order):
        for inp in node.inputs:
            last_use[id(inp)] = idx
    for out in graph.outputs:
        last_use[id(out)] = len(order)  # outputs stay live

    # Slot assignment: inputs first (positional feed order), then one slot
    # per executed node, recycling slots of dead temporaries.
    slot_of: dict[int, int] = {}
    inputs: list[PlanInput] = []
    for i, node in enumerate(graph.inputs):
        slot_of[id(node)] = i
        inputs.append(PlanInput(node.name, node.shape, i))
    num_slots = len(inputs)
    free_pool: list[int] = []

    instructions: list[Instruction] = []
    for idx, node in enumerate(order):
        if node.op == "input":
            if id(node) not in slot_of:
                raise GraphError(f"reachable input {node.name!r} not declared")
            continue
        compiler = _COMPILERS.get(node.op)
        if compiler is None:
            raise GraphError(f"runtime has no compiler for op {node.op!r}")
        fn, calls = compiler(node)
        if free_pool:
            out_slot = free_pool.pop()
        else:
            out_slot = num_slots
            num_slots += 1
        slot_of[id(node)] = out_slot
        frees: list[int] = []
        seen: set[int] = set()
        for inp in node.inputs:
            if id(inp) in seen:
                continue
            seen.add(id(inp))
            if last_use.get(id(inp)) == idx and inp.op not in ("input", "const"):
                frees.append(slot_of[id(inp)])
        free_pool.extend(frees)
        instructions.append(
            Instruction(
                out_slot=out_slot,
                arg_slots=tuple(slot_of[id(i)] for i in node.inputs),
                fn=fn,
                calls=tuple(calls),
                free_slots=tuple(frees),
                op=node.op,
                label=node.name,
            )
        )

    return Plan(
        instructions=tuple(instructions),
        inputs=tuple(inputs),
        output_slots=tuple(slot_of[id(o)] for o in graph.outputs),
        num_slots=num_slots,
        signature=signature,
        compile_seconds=time.perf_counter() - start,
    )
