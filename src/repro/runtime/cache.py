"""Signature-keyed LRU cache of compiled plans.

The cache is keyed by :func:`~repro.runtime.signature.graph_signature`, so
*structurally identical* graphs share one plan regardless of where their
node objects came from — two independent traces of the same Python
function, or the same expression arriving from ``tfsim`` and ``pytsim``,
compile exactly once.  Graphs that differ in any attr (a ``trans_a`` flag,
a property annotation on an input, a constant's payload) key differently.

A process-wide default cache (:func:`default_plan_cache`) backs the
simulated frameworks' ``function``/``jit`` decorators.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict

from ..ir.graph import Graph
from .compiler import compile_plan
from .plan import Plan
from .signature import graph_signature


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache:
    """LRU cache mapping graph signatures to compiled :class:`Plan` s."""

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._plans: OrderedDict[tuple, Plan] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, graph: Graph, *, fold_constants: bool = False) -> Plan:
        """The compiled plan for ``graph`` — compiles on miss.

        ``fold_constants`` takes part in the key: a folded and an unfolded
        plan of the same graph execute different instruction sequences.
        """
        key = (graph_signature(graph), fold_constants)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.stats.hits += 1
                self._plans.move_to_end(key)
                return plan
            self.stats.misses += 1
        # Compile outside the lock: compilation can be slow and must not
        # serialize concurrent lookups of other graphs.
        plan = compile_plan(graph, fold_constants=fold_constants)
        with self._lock:
            existing = self._plans.get(key)
            if existing is not None:
                return existing  # another thread won the race
            self._plans[key] = plan
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
                self.stats.evictions += 1
        return plan

    def contains(self, graph: Graph, *, fold_constants: bool = False) -> bool:
        """Whether a plan for ``graph`` is cached (does not touch LRU order)."""
        with self._lock:
            return (graph_signature(graph), fold_constants) in self._plans

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PlanCache {len(self)}/{self.maxsize} plans, "
            f"{self.stats.hits} hits / {self.stats.misses} misses>"
        )


_default_cache = PlanCache(maxsize=256)


def default_plan_cache() -> PlanCache:
    """The process-wide cache shared by the simulated frameworks."""
    return _default_cache
