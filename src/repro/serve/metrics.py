"""Serving metrics: streaming latency histograms and occupancy gauges.

The engine below already reports *throughput*-shaped numbers (exec
seconds per plan, batch seconds per wave).  A serving front-end is
judged on different axes — tail latency against an SLO, admission-queue
depth, and how full the coalesced waves actually run — and those need
streaming estimators that cost O(1) per request:

* :class:`LatencyHistogram` — fixed log-spaced buckets (default 1 µs …
  120 s, ×1.25 per bucket, ~84 buckets).  Recording is an index
  computation and an increment; quantiles (p50/p99/p999) read the
  cumulative counts and interpolate geometrically inside the winning
  bucket, clamped to the observed min/max so tiny samples don't report
  a bucket edge nobody measured.  Resolution is the bucket ratio
  (±~12%) — the right trade for an always-on estimator.
* :class:`Distribution` — exact counts over small integer values (wave
  occupancy: sizes are bounded by ``max_wave``, so a Counter is both
  exact and tiny).
* :class:`Gauge` — last value + high-water mark (admission queue depth).
* :class:`ServeMetrics` — the one bundle a :class:`~repro.serve.Server`
  owns: request/reject/cancel counters, end-to-end latency, coalesce
  queue wait, wave occupancy and queue depth, with ``snapshot()`` (flat
  dict, JSON-ready — merged into ``BENCH_runtime.json`` by the serve
  bench) and ``render()`` (human table, printed by ``laab serve-bench``
  next to the session's plan-cache stats).

Everything takes a lock per record: recording happens on the event loop
*and* — for queue-wait — from coalescer wave tasks, and the bench reads
snapshots from the main thread while load generators run.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from collections import Counter

__all__ = [
    "Distribution",
    "Gauge",
    "LatencyHistogram",
    "ServeMetrics",
]


class LatencyHistogram:
    """Streaming histogram over fixed log-spaced buckets.

    Parameters
    ----------
    lo, hi:
        The bucketed range in seconds.  Values below ``lo`` land in the
        first bucket, values at or above ``hi`` in the overflow bucket;
        both still update min/max, so the clamped quantiles stay honest.
    ratio:
        Geometric growth per bucket — the histogram's relative
        resolution.
    """

    def __init__(self, lo: float = 1e-6, hi: float = 120.0,
                 ratio: float = 1.25) -> None:
        if not (0.0 < lo < hi):
            raise ValueError(f"need 0 < lo < hi, got lo={lo!r} hi={hi!r}")
        if ratio <= 1.0:
            raise ValueError(f"ratio must be > 1, got {ratio!r}")
        self.lo = float(lo)
        self.hi = float(hi)
        self.ratio = float(ratio)
        self._log_ratio = math.log(ratio)
        n = int(math.ceil(math.log(hi / lo) / self._log_ratio))
        #: Upper bound of bucket ``i`` is ``lo * ratio**(i + 1)``; the
        #: last slot is the overflow bucket for values >= hi.
        self._counts = [0] * (n + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        self._lock = threading.Lock()

    def _index(self, seconds: float) -> int:
        if seconds < self.lo:
            return 0
        i = int(math.log(seconds / self.lo) / self._log_ratio)
        return min(i, len(self._counts) - 1)

    def record(self, seconds: float) -> None:
        if seconds < 0.0:
            raise ValueError(f"latency must be >= 0, got {seconds!r}")
        with self._lock:
            self._counts[self._index(seconds)] += 1
            self.count += 1
            self.total += seconds
            if seconds < self.min:
                self.min = seconds
            if seconds > self.max:
                self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The latency at quantile ``q`` (0 < q <= 1), 0.0 when empty.

        Geometric midpoint-interpolation inside the winning bucket,
        clamped to the observed extremes — ``quantile(1.0)`` is exactly
        the recorded max.
        """
        if not (0.0 < q <= 1.0):
            raise ValueError(f"quantile must be in (0, 1], got {q!r}")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = q * self.count
            seen = 0
            for i, c in enumerate(self._counts):
                seen += c
                if seen >= rank:
                    # Bucket ``i`` spans [lo*ratio^i, lo*ratio^(i+1));
                    # bucket 0 also absorbs the underflow below ``lo``,
                    # the last bucket the overflow up to the seen max.
                    lo_edge = self.lo * self.ratio ** i if i else 0.0
                    hi_edge = self.lo * self.ratio ** (i + 1)
                    if i == len(self._counts) - 1:
                        hi_edge = max(self.max, lo_edge)
                    # Linear interpolation of the rank within the bucket.
                    frac = (rank - (seen - c)) / c
                    value = lo_edge + (hi_edge - lo_edge) * frac
                    return min(max(value, self.min), self.max)
            return self.max  # pragma: no cover - rank <= count always hits

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        return self.quantile(0.999)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean_seconds": self.mean,
            "p50_seconds": self.p50,
            "p99_seconds": self.p99,
            "p999_seconds": self.p999,
            "max_seconds": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<LatencyHistogram n={self.count} p50={self.p50:.3g}s "
            f"p99={self.p99:.3g}s>"
        )


class Distribution:
    """Exact distribution over small integers (wave occupancy)."""

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self.count = 0
        self.total = 0
        self.max = 0
        self._lock = threading.Lock()

    def record(self, value: int) -> None:
        with self._lock:
            self._counts[int(value)] += 1
            self.count += 1
            self.total += int(value)
            if value > self.max:
                self.max = int(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> int:
        if not (0.0 < q <= 1.0):
            raise ValueError(f"quantile must be in (0, 1], got {q!r}")
        with self._lock:
            if self.count == 0:
                return 0
            rank = q * self.count
            seen = 0
            for value in sorted(self._counts):
                seen += self._counts[value]
                if seen >= rank:
                    return value
            return self.max  # pragma: no cover

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "max": self.max,
        }


class Gauge:
    """Last-set value plus a high-water mark."""

    def __init__(self) -> None:
        self.value = 0
        self.high_water = 0
        self._lock = threading.Lock()

    def set(self, value: int) -> None:
        with self._lock:
            self.value = value
            if value > self.high_water:
                self.high_water = value


@dataclasses.dataclass
class ServeMetrics:
    """The metrics bundle one :class:`~repro.serve.Server` owns."""

    #: End-to-end request latency: admission wait + coalesce wait +
    #: wave execution + result delivery, measured inside ``submit``.
    latency: LatencyHistogram = dataclasses.field(
        default_factory=LatencyHistogram
    )
    #: Time a request sat in the coalescer before its wave dispatched.
    queue_wait: LatencyHistogram = dataclasses.field(
        default_factory=LatencyHistogram
    )
    #: Requests per dispatched wave — >1 means coalescing is working.
    wave_occupancy: Distribution = dataclasses.field(
        default_factory=Distribution
    )
    #: Admitted-but-unfinished requests (set by the admission controller).
    queue_depth: Gauge = dataclasses.field(default_factory=Gauge)
    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    cancelled: int = 0
    failed: int = 0
    waves: int = 0
    #: Requests resolved with :class:`ServeDeadlineError` — parked past
    #: their deadline in admission, or expired in the coalescer.
    deadline_expired: int = 0
    #: Circuit-breaker state transitions closed → open.
    breaker_trips: int = 0
    #: Requests shed because their (tenant, plan) breaker was open.
    breaker_shed: int = 0
    #: Failed-request causes: ``"shard_hang"``, ``"shard_crash"``,
    #: ``"deadline"``, or the exception type name.
    failure_causes: dict = dataclasses.field(default_factory=dict)

    def count_failure(self, cause: str) -> None:
        self.failure_causes[cause] = self.failure_causes.get(cause, 0) + 1

    def snapshot(self) -> dict:
        """Flat JSON-ready dict (the serve bench merges this into
        ``BENCH_runtime.json`` under ``serve_*`` keys)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "failed": self.failed,
            "waves": self.waves,
            "deadline_expired": self.deadline_expired,
            "breaker_trips": self.breaker_trips,
            "breaker_shed": self.breaker_shed,
            "failure_causes": dict(self.failure_causes),
            "latency": self.latency.snapshot(),
            "queue_wait": self.queue_wait.snapshot(),
            "wave_occupancy": self.wave_occupancy.snapshot(),
            "queue_depth_high_water": self.queue_depth.high_water,
        }

    def render(self) -> str:
        """Human-readable block printed by ``laab serve-bench``."""
        lat, wait = self.latency, self.queue_wait
        lines = [
            f"requests: {self.completed} completed / {self.rejected} "
            f"rejected / {self.cancelled} cancelled / {self.failed} failed "
            f"(of {self.submitted} submitted)",
            f"latency:  p50 {lat.p50 * 1e3:.3f} ms | p99 "
            f"{lat.p99 * 1e3:.3f} ms | p999 {lat.p999 * 1e3:.3f} ms | "
            f"max {lat.max * 1e3:.3f} ms",
            f"queue:    wait p99 {wait.p99 * 1e3:.3f} ms | depth "
            f"high-water {self.queue_depth.high_water}",
            f"waves:    {self.waves} dispatched | occupancy mean "
            f"{self.wave_occupancy.mean:.2f} | max {self.wave_occupancy.max}",
        ]
        if self.deadline_expired or self.breaker_trips or self.breaker_shed:
            lines.append(
                f"faults:   {self.deadline_expired} deadline-expired | "
                f"{self.breaker_trips} breaker trip(s) | "
                f"{self.breaker_shed} shed by open breakers"
            )
        if self.failure_causes:
            causes = ", ".join(
                f"{cause}={count}"
                for cause, count in sorted(self.failure_causes.items())
            )
            lines.append(f"failures: {causes}")
        return "\n".join(lines)
