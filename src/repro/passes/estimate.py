"""FLOP estimation of IR sub-DAGs — the cost model the aware passes share.

Costs follow :mod:`repro.kernels.flops` (the same model the matrix-chain DP
and the derivation graph use), and shared nodes are counted once, because
the interpreter executes each DAG node once.
"""

from __future__ import annotations

from ..ir.node import Node
from ..kernels.flops import kernel_flops


def node_flops(node: Node) -> int:
    """Modelled FLOPs of executing this single node (not its inputs)."""
    if node.op == "matmul":
        a, b = node.inputs
        sa = tuple(reversed(a.shape)) if node.attrs.get("trans_a") else a.shape
        sb = tuple(reversed(b.shape)) if node.attrs.get("trans_b") else b.shape
        hint = node.attrs.get("kernel")
        m, k, n = sa[0], sa[1], sb[1]
        if hint in (None, "gemm"):
            return kernel_flops("gemm", m, k, n)
        if hint in ("zero", "identity", "identity_right"):
            return 0
        if hint == "diag_matmul":
            return kernel_flops("diag_matmul", k, n)
        if hint == "tridiagonal_matmul":
            return kernel_flops("tridiagonal_matmul", k, n)
        if hint == "trmm":
            return kernel_flops("trmm", m, n)
        if hint == "trmm_right":
            return kernel_flops("trmm", n, m)
        if hint == "symm":
            return kernel_flops("symm", m, n)
        if hint == "syrk":
            return kernel_flops("syrk", m, k)
        return kernel_flops("gemm", m, k, n)
    if node.op in ("add", "sub"):
        return kernel_flops("add", *node.shape)
    if node.op in ("neg", "scale"):
        return kernel_flops("scale", *node.shape)
    if node.op == "dot":
        length = max(node.inputs[0].shape)
        return kernel_flops("dot", length)
    if node.op == "tridiagonal_matmul":
        t, b = node.inputs
        return kernel_flops("tridiagonal_matmul", t.shape[0], b.shape[1])
    if node.op == "loop":
        body = node.attrs["body"]
        per_iter = sum(node_flops(n) for n in body.topological())
        return per_iter * int(node.attrs["trip_count"])
    # input/const/transpose/slice/concat: 0 FLOPs (data movement only).
    return 0


def subtree_flops(root: Node, memo: dict[int, int] | None = None) -> int:
    """Total FLOPs of the sub-DAG rooted at ``root``, shared nodes once."""
    seen: set[int] = set()
    total = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        total += node_flops(node)
        stack.extend(node.inputs)
    return total
