"""Op registry: arity validation plus shape/dtype inference per op.

Adding an op means adding one :class:`OpSpec` here; the Node constructor,
the interpreter, the pretty-printer, and the passes all consult this
registry, so unknown ops fail fast at graph-construction time.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable
from typing import Any

import numpy as np

from ..errors import GraphError, ShapeError

# A shape is always a 2-tuple: everything in the IR is a matrix.
Shape = tuple[int, int]
InferFn = Callable[[tuple, dict[str, Any]], tuple[Shape, np.dtype]]
ValidateFn = Callable[[tuple, dict[str, Any]], None]


@dataclasses.dataclass(frozen=True)
class OpSpec:
    """Static description of one IR operation."""

    name: str
    arity: int | None  # None = variadic (>= 1)
    infer: InferFn
    validate: ValidateFn
    doc: str = ""


def _common_dtype(inputs: tuple) -> np.dtype:
    dtypes = {i.dtype for i in inputs}
    if len(dtypes) > 1:
        raise GraphError(f"mixed dtypes in op inputs: {sorted(map(str, dtypes))}")
    return next(iter(dtypes))


def _fixed_arity(n: int, name: str) -> ValidateFn:
    def check(inputs: tuple, attrs: dict[str, Any]) -> None:
        if len(inputs) != n:
            raise GraphError(f"{name} expects {n} inputs, got {len(inputs)}")

    return check


# -- per-op inference ---------------------------------------------------------


def _infer_input(inputs: tuple, attrs: dict[str, Any]):
    shape = attrs.get("shape")
    dtype = attrs.get("dtype")
    if shape is None or dtype is None:
        raise GraphError("input node requires 'shape' and 'dtype' attrs")
    if len(shape) != 2:
        raise ShapeError(f"input shape must be 2-D, got {shape}")
    return tuple(shape), np.dtype(dtype)


def _validate_input(inputs: tuple, attrs: dict[str, Any]) -> None:
    if inputs:
        raise GraphError("input node takes no inputs")


def _infer_const(inputs: tuple, attrs: dict[str, Any]):
    value = attrs.get("value")
    if not isinstance(value, np.ndarray) or value.ndim != 2:
        raise GraphError("const node requires a 2-D ndarray 'value' attr")
    return value.shape, value.dtype


def _validate_const(inputs: tuple, attrs: dict[str, Any]) -> None:
    if inputs:
        raise GraphError("const node takes no inputs")


def _matmul_operand_shapes(inputs: tuple, attrs: dict[str, Any]) -> tuple[Shape, Shape]:
    (a, b) = inputs
    sa = tuple(reversed(a.shape)) if attrs.get("trans_a") else a.shape
    sb = tuple(reversed(b.shape)) if attrs.get("trans_b") else b.shape
    return sa, sb


def _infer_matmul(inputs: tuple, attrs: dict[str, Any]):
    sa, sb = _matmul_operand_shapes(inputs, attrs)
    if sa[1] != sb[0]:
        raise ShapeError(f"matmul: {sa} @ {sb} (after transpose flags)")
    return (sa[0], sb[1]), _common_dtype(inputs)


def _infer_transpose(inputs: tuple, attrs: dict[str, Any]):
    (a,) = inputs
    return (a.shape[1], a.shape[0]), a.dtype


def _infer_elementwise2(name: str) -> InferFn:
    def infer(inputs: tuple, attrs: dict[str, Any]):
        a, b = inputs
        if a.shape != b.shape:
            raise ShapeError(f"{name}: shapes disagree {a.shape} vs {b.shape}")
        return a.shape, _common_dtype(inputs)

    return infer


def _infer_unary(inputs: tuple, attrs: dict[str, Any]):
    (a,) = inputs
    return a.shape, a.dtype


def _validate_scale(inputs: tuple, attrs: dict[str, Any]) -> None:
    _fixed_arity(1, "scale")(inputs, attrs)
    if "alpha" not in attrs:
        raise GraphError("scale requires an 'alpha' attr")
    float(attrs["alpha"])  # raises for non-numeric


def _infer_dot(inputs: tuple, attrs: dict[str, Any]):
    a, b = inputs
    if not (1 in a.shape and 1 in b.shape):
        raise ShapeError(f"dot expects vectors, got {a.shape} and {b.shape}")
    if a.shape[0] * a.shape[1] != b.shape[0] * b.shape[1]:
        raise ShapeError(f"dot: lengths disagree {a.shape} vs {b.shape}")
    return (1, 1), _common_dtype(inputs)


def _axis_extent(dim: int, sel: Any) -> int:
    """Extent of a normalized slice selector along one axis."""
    if sel is None:
        return dim
    if isinstance(sel, int):
        if not -dim <= sel < dim:
            raise ShapeError(f"index {sel} out of range for extent {dim}")
        return 1
    start, stop = sel
    start = 0 if start is None else (start + dim if start < 0 else start)
    stop = dim if stop is None else (stop + dim if stop < 0 else stop)
    if not (0 <= start <= stop <= dim):
        raise ShapeError(f"slice ({sel}) out of range for extent {dim}")
    return stop - start


def _infer_slice(inputs: tuple, attrs: dict[str, Any]):
    (a,) = inputs
    rows = _axis_extent(a.shape[0], attrs.get("rows"))
    cols = _axis_extent(a.shape[1], attrs.get("cols"))
    return (rows, cols), a.dtype


def _infer_concat(inputs: tuple, attrs: dict[str, Any]):
    axis = attrs.get("axis", 0)
    if axis not in (0, 1):
        raise GraphError(f"concat axis must be 0 or 1, got {axis}")
    other = 1 - axis
    ref = inputs[0].shape[other]
    total = 0
    for node in inputs:
        if node.shape[other] != ref:
            raise ShapeError(
                f"concat along axis {axis}: non-concat extents disagree "
                f"({node.shape} vs first {inputs[0].shape})"
            )
        total += node.shape[axis]
    shape = (total, ref) if axis == 0 else (ref, total)
    return shape, _common_dtype(inputs)


def _validate_concat(inputs: tuple, attrs: dict[str, Any]) -> None:
    if len(inputs) < 1:
        raise GraphError("concat needs at least one input")


def _infer_tridiag_matmul(inputs: tuple, attrs: dict[str, Any]):
    t, b = inputs
    if t.shape[0] != t.shape[1]:
        raise ShapeError(f"tridiagonal_matmul: T must be square, got {t.shape}")
    if t.shape[1] != b.shape[0]:
        raise ShapeError(f"tridiagonal_matmul: {t.shape} @ {b.shape}")
    return (t.shape[0], b.shape[1]), _common_dtype(inputs)


def _validate_loop(inputs: tuple, attrs: dict[str, Any]) -> None:
    from .graph import Graph  # local import to avoid cycle

    if len(inputs) < 1:
        raise GraphError("loop needs at least the initial carried value")
    body = attrs.get("body")
    if not isinstance(body, Graph):
        raise GraphError("loop requires a 'body' Graph attr")
    trip = attrs.get("trip_count")
    if not isinstance(trip, int) or trip < 0:
        raise GraphError(f"loop trip_count must be a non-negative int, got {trip!r}")
    # Body signature: inputs = [idx, carried, *captured]; outputs = [carried'].
    if len(body.inputs) != 1 + len(inputs):
        raise GraphError(
            f"loop body expects {1 + len(inputs)} inputs "
            f"(idx, carried, {len(inputs) - 1} captured), has {len(body.inputs)}"
        )
    if len(body.outputs) != 1:
        raise GraphError("loop body must produce exactly one carried output")
    if body.outputs[0].shape != inputs[0].shape:
        raise ShapeError(
            f"loop carried value changes shape: {inputs[0].shape} -> "
            f"{body.outputs[0].shape}"
        )


def _infer_loop(inputs: tuple, attrs: dict[str, Any]):
    return inputs[0].shape, _common_dtype(inputs)


OP_REGISTRY: dict[str, OpSpec] = {
    "input": OpSpec("input", 0, _infer_input, _validate_input,
                    "graph input placeholder (circular node in Fig. 3)"),
    "const": OpSpec("const", 0, _infer_const, _validate_const,
                    "embedded constant matrix"),
    "matmul": OpSpec("matmul", 2, _infer_matmul, _fixed_arity(2, "matmul"),
                     "matrix product; trans_a/trans_b fold transposes into "
                     "the kernel call, optional 'kernel' hint from the "
                     "property-aware dispatcher"),
    "transpose": OpSpec("transpose", 1, _infer_transpose,
                        _fixed_arity(1, "transpose"), "explicit transpose"),
    "add": OpSpec("add", 2, _infer_elementwise2("add"), _fixed_arity(2, "add"),
                  "element-wise sum"),
    "sub": OpSpec("sub", 2, _infer_elementwise2("sub"), _fixed_arity(2, "sub"),
                  "element-wise difference"),
    "neg": OpSpec("neg", 1, _infer_unary, _fixed_arity(1, "neg"),
                  "element-wise negation"),
    "scale": OpSpec("scale", 1, _infer_unary, _validate_scale,
                    "scalar multiple alpha * X"),
    "dot": OpSpec("dot", 2, _infer_dot, _fixed_arity(2, "dot"),
                  "vector inner product (1x1 result)"),
    "slice": OpSpec("slice", 1, _infer_slice, _fixed_arity(1, "slice"),
                    "rectangular sub-block / element access"),
    "concat": OpSpec("concat", None, _infer_concat, _validate_concat,
                     "concatenation along rows (axis=0) or columns (axis=1)"),
    "tridiagonal_matmul": OpSpec(
        "tridiagonal_matmul", 2, _infer_tridiag_matmul,
        _fixed_arity(2, "tridiagonal_matmul"),
        "TF's opt-in banded product (Experiment 3)"),
    "loop": OpSpec("loop", None, _infer_loop, _validate_loop,
                   "counted loop with one carried value; body is a sub-graph "
                   "with inputs [idx, carried, *captured]"),
}
