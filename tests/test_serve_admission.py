"""Admission control: bounded in-flight depth, backpressure, shedding.

Contracts under test:

* slots grant immediately below the limits and park (``policy="wait"``)
  or raise :class:`ServeOverloadError` (``policy="reject"``) above them;
* waiters are granted strictly FIFO on release, except that a waiter
  blocked only by its tenant cap does not head-of-line-block other
  tenants;
* ``wait_timeout`` turns a parked waiter into a rejection, and a waiter
  cancelled while parked never leaks a slot;
* config validation fails loudly.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import (
    AdmissionConfig,
    AdmissionController,
    ServeMetrics,
    ServeOverloadError,
)


def run(coro):
    return asyncio.run(coro)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_inflight": 0},
            {"max_inflight": 2.5},
            {"max_per_tenant": 0},
            {"policy": "drop"},
            {"wait_timeout": 0.0},
            {"wait_timeout": -1},
        ],
    )
    def test_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionConfig(**kwargs).validate()

    def test_controller_validates_on_construction(self):
        with pytest.raises(ValueError):
            AdmissionController(AdmissionConfig(max_inflight=-1))


class TestGrantAndRelease:
    def test_grants_below_limit(self):
        async def main():
            ctl = AdmissionController(AdmissionConfig(max_inflight=2))
            await ctl.acquire("a")
            await ctl.acquire("b")
            assert ctl.depth() == 2
            assert ctl.depth("a") == 1
            ctl.release("a")
            ctl.release("b")
            assert ctl.depth() == 0
            assert ctl.depth("a") == 0

        run(main())

    def test_reject_policy_raises_at_limit(self):
        async def main():
            ctl = AdmissionController(
                AdmissionConfig(max_inflight=1, policy="reject")
            )
            await ctl.acquire()
            with pytest.raises(ServeOverloadError, match="rejected"):
                await ctl.acquire()
            ctl.release()
            await ctl.acquire()  # slot freed, grants again

        run(main())

    def test_per_tenant_cap_rejects_only_that_tenant(self):
        async def main():
            ctl = AdmissionController(
                AdmissionConfig(max_inflight=8, max_per_tenant=1,
                                policy="reject")
            )
            await ctl.acquire("chatty")
            with pytest.raises(ServeOverloadError, match="chatty"):
                await ctl.acquire("chatty")
            await ctl.acquire("quiet")  # other tenants unaffected

        run(main())

    def test_rejections_counted_in_metrics(self):
        async def main():
            metrics = ServeMetrics()
            ctl = AdmissionController(
                AdmissionConfig(max_inflight=1, policy="reject"), metrics
            )
            await ctl.acquire()
            for _ in range(3):
                with pytest.raises(ServeOverloadError):
                    await ctl.acquire()
            assert metrics.rejected == 3
            assert metrics.queue_depth.high_water == 1

        run(main())


class TestWaitPolicy:
    def test_waiter_parks_then_granted_fifo(self):
        async def main():
            ctl = AdmissionController(AdmissionConfig(max_inflight=1))
            await ctl.acquire("a")
            order = []

            async def waiter(name):
                await ctl.acquire(name)
                order.append(name)

            t1 = asyncio.ensure_future(waiter("first"))
            await asyncio.sleep(0)
            t2 = asyncio.ensure_future(waiter("second"))
            await asyncio.sleep(0)
            assert ctl.waiting == 2
            ctl.release("a")
            await asyncio.sleep(0)
            assert order == ["first"]
            ctl.release("first")
            await asyncio.sleep(0)
            assert order == ["first", "second"]
            ctl.release("second")
            await asyncio.gather(t1, t2)
            assert ctl.depth() == 0 and ctl.waiting == 0

        run(main())

    def test_tenant_capped_waiter_does_not_block_other_tenants(self):
        async def main():
            ctl = AdmissionController(
                AdmissionConfig(max_inflight=2, max_per_tenant=1)
            )
            await ctl.acquire("a")
            await ctl.acquire("b")
            granted = []

            async def waiter(name):
                await ctl.acquire(name)
                granted.append(name)

            # "a" parks first (blocked by its tenant cap once a slot
            # frees from "b"); "c" parks behind it.
            ta = asyncio.ensure_future(waiter("a"))
            await asyncio.sleep(0)
            tc = asyncio.ensure_future(waiter("c"))
            await asyncio.sleep(0)
            ctl.release("b")  # global slot free, but "a" still capped
            await asyncio.sleep(0)
            assert granted == ["c"]  # skipped over the capped waiter
            ctl.release("a")  # now "a"'s cap clears
            await asyncio.sleep(0)
            assert granted == ["c", "a"]
            ctl.release("c")
            ctl.release("a")
            await asyncio.gather(ta, tc)

        run(main())

    def test_wait_timeout_rejects(self):
        async def main():
            ctl = AdmissionController(
                AdmissionConfig(max_inflight=1, wait_timeout=0.01)
            )
            await ctl.acquire()
            with pytest.raises(ServeOverloadError, match="wait_timeout"):
                await ctl.acquire()
            # The timed-out waiter must not consume the next free slot.
            ctl.release()
            await ctl.acquire()
            assert ctl.depth() == 1

        run(main())

    def test_cancelled_waiter_leaks_no_slot(self):
        async def main():
            ctl = AdmissionController(AdmissionConfig(max_inflight=1))
            await ctl.acquire("a")
            task = asyncio.ensure_future(ctl.acquire("b"))
            await asyncio.sleep(0)
            assert ctl.waiting == 1
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            ctl.release("a")
            # The cancelled waiter is skipped; the slot is free.
            await asyncio.sleep(0)
            assert ctl.depth() == 0
            await ctl.acquire("c")
            assert ctl.depth("c") == 1

        run(main())

    def test_grant_then_cancel_same_tick_returns_slot(self):
        async def main():
            ctl = AdmissionController(AdmissionConfig(max_inflight=1))
            await ctl.acquire("a")
            task = asyncio.ensure_future(ctl.acquire("b"))
            await asyncio.sleep(0)
            ctl.release("a")       # grants b's future...
            task.cancel()          # ...but b is cancelled before waking
            with pytest.raises(asyncio.CancelledError):
                await task
            # The granted-then-cancelled slot was handed back.
            assert ctl.depth() == 0

        run(main())

    def test_grant_in_same_tick_as_wait_timeout_returns_slot(
        self, monkeypatch
    ):
        # The nastiest interleaving: wait_for's timer fires in the very
        # tick _dispatch_waiters grants the parked future.  The slot was
        # already charged to the timed-out request — acquire must hand
        # it back before rejecting, or the pool shrinks by one forever.
        async def main():
            import repro.serve.admission as admission_module

            ctl = AdmissionController(
                AdmissionConfig(max_inflight=1, wait_timeout=0.05)
            )
            await ctl.acquire("a")

            async def grant_then_time_out(fut, timeout):
                ctl.release("a")  # frees the slot; grants fut to "b"
                assert fut.done() and not fut.cancelled()
                raise asyncio.TimeoutError

            monkeypatch.setattr(
                admission_module.asyncio, "wait_for", grant_then_time_out
            )
            try:
                with pytest.raises(ServeOverloadError):
                    await ctl.acquire("b")
            finally:
                monkeypatch.undo()
            # The granted-then-timed-out slot was released again...
            assert ctl.depth() == 0
            assert ctl.depth("b") == 0
            await ctl.acquire("c")  # ...and is immediately grantable
            assert ctl.depth("c") == 1

        run(main())
