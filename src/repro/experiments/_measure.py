"""Shared measurement helpers for experiment modules."""

from __future__ import annotations

from collections.abc import Callable

from ..bench.timing import TimingSample, measure
from ..frameworks.common import CompiledFunction
from ..tensor.tensor import Tensor


def time_compiled(
    fn: CompiledFunction,
    args: list[Tensor],
    *,
    label: str,
    repetitions: int | None = None,
) -> TimingSample:
    """Time a graph-mode function: trace/optimize first (untimed — the
    paper excludes decorator overheads), then measure steady-state calls."""
    fn.get_concrete(*args)
    return measure(lambda: fn(*args), label=label, repetitions=repetitions)


def time_eager(
    thunk: Callable[[], object],
    *,
    label: str,
    repetitions: int | None = None,
) -> TimingSample:
    """Time an eager expression (a closure over bound operands)."""
    return measure(thunk, label=label, repetitions=repetitions)
