"""``@tfsim.function`` — the graph-mode decorator (``@tf.function``)."""

from __future__ import annotations

from collections.abc import Callable

from ..common import TF_PROFILE, CompiledFunction


def function(fn: Callable | None = None, *, aware: bool = False):
    """Wrap ``fn`` for graph-mode execution.

    Usable bare or with arguments::

        @tfsim.function
        def f(a, b): ...

        @tfsim.function(aware=True)   # opt-in linear-algebra-aware pipeline
        def g(a, b): ...

    The first call per input signature traces and optimizes (Grappler-like
    pipeline); later calls run the cached optimized graph.  ``aware=True``
    enables the paper's recommended optimizations (chain reordering,
    property dispatch, distributivity, partial access) for ablations.

    Execution-engine knobs are session-level, not decorator-level: run
    decorated functions inside ``with repro.api.Session(fusion=True,
    arena="preallocated"):`` to get fused kernels and allocation-free
    preallocated buffers without changing any call site.
    """
    if fn is None:
        return lambda f: CompiledFunction(f, TF_PROFILE, aware=aware)
    return CompiledFunction(fn, TF_PROFILE, aware=aware)
