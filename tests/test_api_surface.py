"""API-surface and error-hierarchy tests.

Downstream users import from package ``__init__`` modules; these tests pin
the public names and the exception taxonomy so refactors can't silently
break the documented API.
"""

import importlib

import pytest

from repro import errors


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ShapeError,
            errors.DTypeError,
            errors.PropertyError,
            errors.KernelError,
            errors.GraphError,
            errors.TracingError,
            errors.RewriteError,
            errors.ChainError,
            errors.BenchmarkError,
            errors.ConfigError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_shape_error_is_value_error(self):
        # numpy-style callers catching ValueError keep working
        assert issubclass(errors.ShapeError, ValueError)

    def test_dtype_error_is_type_error(self):
        assert issubclass(errors.DTypeError, TypeError)

    def test_tracing_error_is_graph_error(self):
        assert issubclass(errors.TracingError, errors.GraphError)

    def test_one_catch_all(self):
        with pytest.raises(errors.ReproError):
            from repro.chain import optimal_parenthesization

            optimal_parenthesization([])


class TestPublicExports:
    @pytest.mark.parametrize(
        "module,names",
        [
            ("repro", ["config", "limit_threads", "override", "__version__"]),
            ("repro.kernels", ["gemm", "trmm", "syrk", "symm", "trsm", "gemv",
                               "dot", "scal", "axpy", "tridiagonal_matmul",
                               "diag_matmul", "block_diag_matmul", "potrf",
                               "cholesky_solve", "lu_solve", "kernel_flops",
                               "select_matmul_kernel", "default_registry"]),
            ("repro.tensor", ["Tensor", "Property", "eye", "zeros", "diag",
                              "tridiag", "block_diag", "random_general",
                              "random_lower_triangular", "random_orthogonal",
                              "random_spd", "detect_properties"]),
            ("repro.ir", ["Graph", "Node", "trace", "run_graph", "Interpreter",
                          "SymbolicTensor", "render_graph", "graph_to_dot",
                          "validate_graph", "matmul", "transpose", "loop"]),
            ("repro.passes", ["PassPipeline", "default_pipeline",
                              "aware_pipeline", "CommonSubexpressionElimination",
                              "ChainReordering", "PropertyDispatch",
                              "DistributivityRewrite", "PartialOperandAccess",
                              "LoopInvariantCodeMotion"]),
            ("repro.chain", ["optimal_parenthesization", "catalan",
                             "enumerate_parenthesizations", "evaluate_chain"]),
            ("repro.rewrite", ["Symbol", "MatMul", "Add", "Transpose", "Scale",
                               "Identity", "Zero", "expr_flops", "variants",
                               "best_variant", "DerivationGraph"]),
            ("repro.frameworks", ["tfsim", "pytsim", "CompiledFunction",
                                  "FrameworkProfile"]),
            ("repro.api", ["Session", "Options", "Compiled", "Concrete",
                           "FrameworkProfile", "backend", "register_backend",
                           "available_backends", "current_session",
                           "default_session", "SessionStats", "PlanStats"]),
            ("repro.runtime", ["Plan", "PlanCache", "CacheStats",
                               "compile_plan", "execute_batch",
                               "graph_signature", "default_plan_cache"]),
            ("repro.bench", ["measure", "bootstrap_compare", "TimingSample",
                             "ExperimentTable", "format_seconds"]),
        ],
    )
    def test_names_importable(self, module, names):
        mod = importlib.import_module(module)
        for name in names:
            assert hasattr(mod, name), f"{module}.{name} missing"

    def test_tfsim_api(self):
        from repro.frameworks import tfsim

        for name in ("function", "constant", "eye", "zeros", "matmul",
                     "transpose", "concat", "fori_loop", "linalg", "grappler"):
            assert hasattr(tfsim, name)
        assert hasattr(tfsim.linalg, "tridiagonal_matmul")

    def test_pytsim_api(self):
        from repro.frameworks import pytsim

        for name in ("jit", "tensor", "eye", "matmul", "t", "cat", "linalg"):
            assert hasattr(pytsim, name)
        assert hasattr(pytsim.linalg, "multi_dot")
        assert hasattr(pytsim.jit, "script")

    def test_version_is_semver(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_all_lists_are_accurate(self):
        """Every name in __all__ must actually exist."""
        for modname in ("repro", "repro.kernels", "repro.tensor", "repro.ir",
                        "repro.passes", "repro.chain", "repro.rewrite",
                        "repro.bench", "repro.frameworks", "repro.api",
                        "repro.runtime"):
            mod = importlib.import_module(modname)
            for name in getattr(mod, "__all__", []):
                assert hasattr(mod, name), f"{modname}.__all__ lists {name}"

    def test_docstrings_on_public_callables(self):
        """Every public callable in the kernel layer is documented."""
        import repro.kernels as k

        for name in k.__all__:
            obj = getattr(k, name)
            if callable(obj):
                assert obj.__doc__, f"repro.kernels.{name} lacks a docstring"
