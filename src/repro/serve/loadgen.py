"""Load generators: open- and closed-loop arrival processes.

The two canonical ways to drive a server, with opposite failure
behaviours — both needed to characterize a serving stack honestly:

* **closed loop** (:func:`closed_loop`): ``concurrency`` clients each
  submit, await the result, and submit again.  Offered load adapts to
  service rate, so the system is never overloaded by construction —
  this measures *sustained throughput* and the latency of a busy but
  stable server.  It is also the shape that fills coalesced waves: with
  ``concurrency >= max_wave``, every wave runs full.
* **open loop** (:func:`open_loop`): requests arrive on a timer at
  ``rate`` per second — uniform spacing or a Poisson process —
  regardless of completions, exactly like independent external users.
  When the arrival rate exceeds capacity the queue grows without bound,
  which is precisely what admission control exists for: the report
  counts rejections (:class:`~repro.serve.ServeOverloadError`)
  separately from failures, so the bench can show load shedding
  working.

Both return a :class:`LoadReport` carrying counts, wall-clock
throughput and the server's metrics snapshot at the end of the run.
"""

from __future__ import annotations

import asyncio
import dataclasses
import random
from collections.abc import Callable, Sequence

from .admission import ServeOverloadError

__all__ = ["LoadReport", "closed_loop", "open_loop"]


@dataclasses.dataclass
class LoadReport:
    """Outcome of one load-generator run."""

    mode: str
    requests: int
    completed: int
    rejected: int
    failed: int
    elapsed_seconds: float
    #: Completions per wall-clock second.
    throughput_rps: float
    #: Open loop only: the configured arrival rate.
    offered_rps: float | None = None
    #: ``server.metrics.snapshot()`` taken when the run finished.
    metrics: dict | None = None

    def render(self) -> str:
        lines = [
            f"{self.mode} load: {self.completed}/{self.requests} completed "
            f"({self.rejected} rejected, {self.failed} failed) in "
            f"{self.elapsed_seconds:.3f}s",
            f"throughput: {self.throughput_rps:,.0f} req/s"
            + (f" (offered {self.offered_rps:,.0f} req/s)"
               if self.offered_rps else ""),
        ]
        return "\n".join(lines)


def _feeds_fn(feeds) -> Callable[[int], Sequence]:
    """Normalize the feeds argument: a callable ``i -> feed list`` is
    used as-is; a plain feed list is reused for every request."""
    if callable(feeds):
        return feeds
    feed_list = list(feeds)
    return lambda i: feed_list


async def closed_loop(
    server,
    fn: Callable,
    feeds,
    *,
    concurrency: int = 4,
    requests: int = 64,
    tenant: str = "default",
) -> LoadReport:
    """``concurrency`` clients submitting back-to-back until ``requests``
    total submissions have been made."""
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency!r}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests!r}")
    feeds_for = _feeds_fn(feeds)
    counters = {"next": 0, "completed": 0, "rejected": 0, "failed": 0}

    async def client() -> None:
        while True:
            i = counters["next"]
            if i >= requests:
                return
            counters["next"] = i + 1
            try:
                await server.submit(fn, feeds_for(i), tenant=tenant)
                counters["completed"] += 1
            except ServeOverloadError:
                counters["rejected"] += 1
            except Exception:
                counters["failed"] += 1
                raise

    loop = asyncio.get_running_loop()
    start = loop.time()
    await asyncio.gather(*(client() for _ in range(min(concurrency,
                                                       requests))))
    elapsed = loop.time() - start
    return LoadReport(
        mode="closed-loop",
        requests=requests,
        completed=counters["completed"],
        rejected=counters["rejected"],
        failed=counters["failed"],
        elapsed_seconds=elapsed,
        throughput_rps=counters["completed"] / elapsed if elapsed else 0.0,
        metrics=server.metrics.snapshot(),
    )


async def open_loop(
    server,
    fn: Callable,
    feeds,
    *,
    rate: float,
    requests: int = 64,
    process: str = "poisson",
    seed: int = 0,
    tenant: str = "default",
) -> LoadReport:
    """Timer-driven arrivals at ``rate``/s, independent of completions.

    ``process="poisson"`` draws exponential inter-arrival gaps from a
    seeded RNG (reproducible bursts); ``"uniform"`` spaces arrivals
    evenly.  Every arrival is submitted as its own task; the run ends
    when all ``requests`` arrivals have resolved (completed, rejected,
    or failed).
    """
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate!r}")
    if process not in ("poisson", "uniform"):
        raise ValueError(
            f"process must be 'poisson' or 'uniform', got {process!r}"
        )
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests!r}")
    feeds_for = _feeds_fn(feeds)
    rng = random.Random(seed)
    counters = {"completed": 0, "rejected": 0, "failed": 0}

    async def one(i: int) -> None:
        try:
            await server.submit(fn, feeds_for(i), tenant=tenant)
            counters["completed"] += 1
        except ServeOverloadError:
            counters["rejected"] += 1
        except Exception:
            counters["failed"] += 1

    loop = asyncio.get_running_loop()
    start = loop.time()
    next_at = start
    tasks = []
    for i in range(requests):
        gap = rng.expovariate(rate) if process == "poisson" else 1.0 / rate
        delay = next_at - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(one(i)))
        next_at += gap
    await asyncio.gather(*tasks)
    elapsed = loop.time() - start
    return LoadReport(
        mode=f"open-loop/{process}",
        requests=requests,
        completed=counters["completed"],
        rejected=counters["rejected"],
        failed=counters["failed"],
        elapsed_seconds=elapsed,
        throughput_rps=counters["completed"] / elapsed if elapsed else 0.0,
        offered_rps=rate,
        metrics=server.metrics.snapshot(),
    )
