"""Setup shim.

The execution environment has setuptools but no ``wheel`` package and no
network, so PEP-517 editable installs (``pip install -e .``) cannot build a
wheel.  This shim lets ``python setup.py develop`` (which pip falls back to)
install the package in editable mode; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
