"""The asyncio Server: submit → admission → coalesce → engine → Tensor.

Contracts under test:

* ``await server.submit(fn, feeds)`` returns bit-identical results to a
  direct compiled call, for single submissions and coalesced bursts;
* tenants get isolated sessions (separate plan caches and stats) built
  from the server's Options template;
* lifecycle: submit before start / after stop fails loudly, stop drains
  queued requests, stop is idempotent, a stopped server refuses restart;
* a wave-execution failure fails exactly the requests of that wave and
  is counted in metrics; the server keeps serving afterwards;
* ``Options(shards=N)`` dispatches waves through the multi-process
  pool, visible in the tenant session's sharding stats.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import api, serve
from repro.tensor import random_general


def run(coro):
    return asyncio.run(coro)


def model(a, b, c):
    return (a @ b + c) @ a.T


def reference(a, b, c):
    return (a.data @ b.data + c.data) @ a.data.T


@pytest.fixture()
def feeds():
    return [random_general(16, seed=s) for s in (1, 2, 3)]


class TestSubmit:
    def test_single_submit_matches_direct_call(self, feeds):
        async def main():
            async with serve.Server() as server:
                out = await server.submit(model, feeds)
                np.testing.assert_allclose(
                    out.data, reference(*feeds), rtol=1e-5
                )
                assert server.metrics.completed == 1
                assert server.metrics.waves == 1
                assert server.metrics.latency.count == 1

        run(main())

    def test_burst_coalesces_and_every_result_is_correct(self):
        async def main():
            all_feeds = [
                [random_general(16, seed=100 * i + s) for s in (1, 2, 3)]
                for i in range(8)
            ]
            async with serve.Server(
                coalesce=serve.CoalesceConfig(max_wave=8, max_delay=0.5)
            ) as server:
                outs = await asyncio.gather(
                    *(server.submit(model, f) for f in all_feeds)
                )
                for out, f in zip(outs, all_feeds):
                    np.testing.assert_allclose(
                        out.data, reference(*f), rtol=1e-5
                    )
                # One wave: the burst coalesced instead of running
                # request-at-a-time.
                assert server.metrics.waves == 1
                assert server.metrics.wave_occupancy.max == 8

        run(main())

    def test_submit_rejects_precompiled_fn(self, feeds):
        async def main():
            async with serve.Server() as server:
                compiled = server.session().compile(model)
                with pytest.raises(TypeError, match="plain Python function"):
                    await server.submit(compiled, feeds)

        run(main())

    def test_failing_wave_fails_those_requests_only(self, feeds):
        async def main():
            def bad(a, b, c):
                raise ValueError("tracing explodes")

            async with serve.Server() as server:
                with pytest.raises(ValueError, match="tracing explodes"):
                    await server.submit(bad, feeds)
                assert server.metrics.failed == 1
                # The server still serves good requests afterwards.
                out = await server.submit(model, feeds)
                np.testing.assert_allclose(
                    out.data, reference(*feeds), rtol=1e-5
                )

        run(main())


class TestTenancy:
    def test_tenants_get_isolated_sessions(self, feeds):
        async def main():
            async with serve.Server() as server:
                await server.submit(model, feeds, tenant="alice")
                await server.submit(model, feeds, tenant="bob")
                assert set(server.tenants) == {"alice", "bob"}
                assert server.session("alice") is not server.session("bob")
                # Each tenant traced its own plan.
                for tenant in ("alice", "bob"):
                    st = server.session(tenant).stats()
                    assert len(st.plans) == 1
                    assert st.plans[0].executions == 1

        run(main())

    def test_bad_tenant_name(self):
        async def main():
            async with serve.Server() as server:
                with pytest.raises(ValueError, match="tenant"):
                    server.session("")

        run(main())


class TestLifecycle:
    def test_submit_before_start_raises(self, feeds):
        async def main():
            server = serve.Server()
            with pytest.raises(RuntimeError, match="not running"):
                await server.submit(model, feeds)

        run(main())

    def test_submit_after_stop_raises(self, feeds):
        async def main():
            server = serve.Server()
            await server.start()
            await server.stop()
            with pytest.raises(RuntimeError, match="not running"):
                await server.submit(model, feeds)

        run(main())

    def test_stop_is_idempotent_and_blocks_restart(self):
        async def main():
            server = serve.Server()
            await server.start()
            await server.stop()
            await server.stop()
            with pytest.raises(RuntimeError, match="stopped"):
                await server.start()

        run(main())

    def test_stop_drains_queued_requests(self, feeds):
        async def main():
            server = serve.Server(
                coalesce=serve.CoalesceConfig(max_wave=64, max_delay=60.0)
            )
            await server.start()
            # With a one-minute deadline the request sits queued until
            # stop() drains it.
            task = asyncio.ensure_future(server.submit(model, feeds))
            await asyncio.sleep(0.01)
            assert not task.done()
            await server.stop()
            out = await task
            np.testing.assert_allclose(out.data, reference(*feeds),
                                       rtol=1e-5)
            # stop() closed the tenant session.
            assert server._sessions["default"].closed

        run(main())


class TestShardedDispatch:
    def test_waves_run_through_the_shard_pool(self, feeds):
        async def main():
            opts = api.Options(fusion=True, arena="preallocated", shards=2)
            async with serve.Server(
                opts, coalesce=serve.CoalesceConfig(max_wave=4,
                                                    max_delay=0.005)
            ) as server:
                outs = await asyncio.gather(
                    *(server.submit(model, feeds) for _ in range(8))
                )
                for out in outs:
                    np.testing.assert_allclose(
                        out.data, reference(*feeds), rtol=1e-5
                    )
                st = server.session().stats()
                assert st.shard_pools_open == 1
                assert st.shard_workers == 2
                assert st.shard_waves_served >= 1
            # Server stop closed the session and its pools.
            assert server._sessions["default"].closed

        run(main())


class TestServerStats:
    def test_stats_snapshot_and_render(self, feeds):
        async def main():
            async with serve.Server() as server:
                await server.submit(model, feeds, tenant="alice")
                stats = server.stats()
                assert stats.metrics["completed"] == 1
                assert "alice" in stats.tenants
                text = stats.render()
                assert "tenant 'alice'" in text
                assert "p50" in text
                assert "plan cache" in text

        run(main())

    def test_validation_of_constructor_args(self):
        with pytest.raises(ValueError, match="dispatch_workers"):
            serve.Server(dispatch_workers=0)
