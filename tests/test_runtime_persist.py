"""Cross-run plan-cache persistence (repro.runtime.persist + snapshot).

Contracts under test: cache snapshots account hits/compiles per key
(eviction-proof), signature digests are process- and order-stable,
save/load merges across runs with correct recurrence counting, and the
CLI surface (``laab cache-stats --save/--load``) renders the report.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.ir import trace
from repro.runtime import PlanCache, compile_plan
from repro.runtime.persist import (
    load_stats,
    render_stats,
    save_stats,
    signature_digest,
)
from repro.tensor import Property, random_general


def _graph(seed=1, scale=2.0):
    ops = [random_general(8, seed=seed), random_general(8, seed=seed + 1)]
    return trace(lambda a, b: scale * (a @ b) + a, ops)


class TestSnapshot:
    def test_counts_hits_and_compiles(self):
        cache = PlanCache(maxsize=4)
        g = _graph()
        cache.get(g)
        cache.get(g)
        cache.get(g, fusion=True)
        rows = cache.snapshot()
        assert len(rows) == 2
        by_fusion = {r["fusion"]: r for r in rows}
        assert by_fusion[False]["compiles"] == 1
        assert by_fusion[False]["hits"] == 1
        assert by_fusion[True]["compiles"] == 1
        assert by_fusion[True]["hits"] == 0
        assert all(r["compile_seconds"] > 0 for r in rows)

    def test_survives_eviction(self):
        cache = PlanCache(maxsize=1)
        # Distinct *structures* (the scale attr keys the signature):
        # equal-seeded graphs would share one plan slot.
        g1, g2 = _graph(scale=2.0), _graph(scale=4.0)
        cache.get(g1)
        cache.get(g2)  # evicts g1's plan
        cache.get(g1)  # recompiles
        rows = cache.snapshot()
        assert len(rows) == 2
        assert sum(r["compiles"] for r in rows) == 3

    def test_clear_resets(self):
        cache = PlanCache()
        cache.get(_graph())
        cache.clear()
        assert cache.snapshot() == []


class TestSignatureDigest:
    def test_equal_signatures_equal_digests(self):
        s1 = compile_plan(_graph()).signature
        s2 = compile_plan(_graph()).signature
        assert s1 == s2
        assert signature_digest(s1) == signature_digest(s2)

    def test_different_graphs_differ(self):
        s1 = compile_plan(_graph(scale=2.0)).signature
        s2 = compile_plan(_graph(scale=3.0)).signature
        assert signature_digest(s1) != signature_digest(s2)

    def test_frozenset_order_independent(self):
        # Property sets iterate in hash-randomized order; the digest must
        # not depend on it (this is what makes digests stable across
        # interpreter invocations).
        a = ("x", frozenset({Property.SPD, Property.SYMMETRIC,
                             Property.SQUARE}))
        b = ("x", frozenset({Property.SQUARE, Property.SYMMETRIC,
                             Property.SPD}))
        assert signature_digest(a) == signature_digest(b)


class TestSaveLoad:
    def test_merge_across_runs(self, tmp_path):
        path = str(tmp_path / "stats.json")
        cache = PlanCache()
        cache.get(_graph())
        save_stats(path, cache.snapshot())
        # Second "run": fresh cache, same graph → same signature recurs.
        cache2 = PlanCache()
        cache2.get(_graph())
        cache2.get(_graph(scale=7.0))
        merged = save_stats(path, cache2.snapshot())
        assert merged["runs"] == 2
        recurring = [p for p in merged["plans"].values()
                     if p["runs_seen"] == 2]
        assert len(recurring) == 1
        assert recurring[0]["compiles"] == 2
        # The file round-trips.
        assert load_stats(path) == merged

    def test_missing_file_is_empty(self, tmp_path):
        data = load_stats(str(tmp_path / "absent.json"))
        assert data["runs"] == 0 and data["plans"] == {}

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"version": 0, "runs": 1, "plans": {}}))
        with pytest.raises(ValueError, match="format version"):
            load_stats(str(path))

    def test_render_reports_dedup_rate(self, tmp_path):
        path = str(tmp_path / "stats.json")
        for _ in range(3):
            cache = PlanCache()
            cache.get(_graph())
            merged = save_stats(path, cache.snapshot())
        text = render_stats(merged)
        assert "3 runs" in text
        assert "1 recur across runs" in text
        assert "100.0% of signatures" in text
        assert "2 redundant compiles" in text

    def test_render_empty(self):
        assert "no plans yet" in render_stats(
            {"version": 1, "runs": 0, "plans": {}}
        )


class TestCliSurface:
    def test_save_and_load_flags(self, tmp_path, capsys):
        from repro.experiments.cli import main

        path = str(tmp_path / "cli-stats.json")
        rc = main(["cache-stats", "exp1", "--n", "64", "--reps", "1",
                   "--save", path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cross-run plan-cache persistence" in out
        rc = main(["cache-stats", "--load", path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cache persistence: 1 runs" in out
