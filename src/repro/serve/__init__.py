"""repro.serve — the async serving front-end over the compiled runtime.

PRs 1–5 built the engine: compile-once plans, fused allocation-free
arenas, zero-copy donation, pinned bindings and GIL-free multi-process
sharding.  This package is the *service* on top — the layer that turns
independent caller requests into the feed waves that engine is fast at:

``server``     :class:`Server` — asyncio front-end owning per-tenant
               :class:`~repro.api.Session` s; one entry point,
               ``await server.submit(fn, feeds, tenant=...)``.
``coalesce``   :class:`Coalescer` — per-plan request queues that batch
               compatible in-flight requests (same compiled function +
               feed signature) into waves, flushed on max-wave-size or
               a deadline timer, dispatched off the event loop.
``admission``  :class:`AdmissionController` — bounded in-flight depth
               (global and per-tenant) with await-until-slot
               backpressure or explicit :class:`ServeOverloadError`
               load shedding.
``metrics``    :class:`ServeMetrics` — streaming latency histograms
               (p50/p99/p999 over fixed log-spaced buckets), queue
               wait, wave occupancy and queue-depth gauges.
``loadgen``    :func:`closed_loop` / :func:`open_loop` — the two
               canonical arrival processes, for the serve bench and the
               ``laab serve-bench`` CLI.

Quickstart::

    import asyncio
    from repro import api, serve, tensor as T

    A, B, C = (T.random_general(64, seed=s) for s in (1, 2, 3))

    def model(a, b, c):
        return (a @ b + c) @ a.T

    async def main():
        async with serve.Server(
            api.Options(fusion=True, arena="preallocated", shards=2),
            coalesce=serve.CoalesceConfig(max_wave=8, max_delay=0.002),
            admission=serve.AdmissionConfig(max_inflight=64),
        ) as server:
            report = await serve.closed_loop(
                server, model, [A, B, C], concurrency=8, requests=256
            )
            print(report.render())
            print(server.metrics.render())

    asyncio.run(main())
"""

from .admission import (
    AdmissionConfig,
    AdmissionController,
    ServeDeadlineError,
    ServeOverloadError,
)
from .breaker import BreakerConfig, CircuitBreaker
from .coalesce import CoalesceConfig, Coalescer
from .loadgen import LoadReport, closed_loop, open_loop
from .metrics import Distribution, Gauge, LatencyHistogram, ServeMetrics
from .server import Server, ServerStats

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "BreakerConfig",
    "CircuitBreaker",
    "CoalesceConfig",
    "Coalescer",
    "Distribution",
    "Gauge",
    "LatencyHistogram",
    "LoadReport",
    "Server",
    "ServerStats",
    "ServeDeadlineError",
    "ServeMetrics",
    "ServeOverloadError",
    "closed_loop",
    "open_loop",
]
