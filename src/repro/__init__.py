"""repro — reproduction of *Benchmarking the Linear Algebra Awareness of
TensorFlow and PyTorch* (Sankaran, Akbari Alashti, Psarras, Bientinesi;
IPDPSW 2022, arXiv:2202.09888).

The original study probes two real frameworks; this package *builds* both
frameworks as faithful simulators over a real BLAS substrate and re-runs
every experiment:

* :mod:`repro.api`         — **the public surface**: ``Session`` (scoped plan
  cache + options), backend registry, one compile/run/stats entry point
* :mod:`repro.kernels`     — BLAS/LAPACK substrate (the "MKL" role)
* :mod:`repro.tensor`      — dense tensors + matrix-property annotations
* :mod:`repro.ir`          — computational-graph IR, tracing, interpreter
* :mod:`repro.passes`      — Grappler-analogue optimizer + "aware" passes
* :mod:`repro.runtime`     — compiled plans, plan cache, batched execution
* :mod:`repro.serve`       — async serving: coalescing, admission, SLO metrics
* :mod:`repro.faults`      — deterministic fault injection (chaos testing)
* :mod:`repro.chaos`       — scripted recovery drills (``laab chaos``)
* :mod:`repro.chain`       — matrix-chain DP and enumeration
* :mod:`repro.properties`  — property algebra, inference, annotations
* :mod:`repro.rewrite`     — Linnea-analogue derivation-graph engine
* :mod:`repro.frameworks`  — ``tfsim`` (TensorFlow) and ``pytsim`` (PyTorch)
* :mod:`repro.bench`       — timing, bootstrap significance, reporting
* :mod:`repro.experiments` — one module per paper table/figure (+ CLI)

Quickstart::

    from repro import api, tensor as T

    A, B = T.random_general(1000, seed=1), T.random_general(1000, seed=2)

    with api.Session() as session:
        f = session.compile(lambda a, b: (a.T @ b).T @ (a.T @ b),
                            backend="tfsim")
        y = session.run(f, A, B)                  # CSE: 2 GEMMs, not 3
        print(f.last_report.kernel_counts())
        print(session.stats().render())           # cache + per-plan timings
"""

__version__ = "1.0.0"

from .config import config, limit_threads, override
from .errors import ReproError

__all__ = ["config", "limit_threads", "override", "ReproError", "__version__"]
