"""Multi-process sharded plan execution: the GIL-free dispatch path.

The thread-pooled :func:`~repro.runtime.batch.execute_batch` overlaps
BLAS time (kernels release the GIL) but not *dispatch* time — on the
dispatch-bound workloads this repo benchmarks, four threads run barely
better than serial because every instruction step re-acquires the GIL.
A :class:`ShardPool` removes the interpreter from the contention path
entirely:

* **N worker processes**, each receiving the plan *by reconstruction*
  (a structural graph payload plus the compile knobs — see
  :mod:`repro.runtime.serialize`; under the ``fork`` start method the
  compiled plan is inherited directly) and executing through its own
  fused :class:`~repro.runtime.plan.PlanArena`;
* **shared-memory ring buffers** (:mod:`multiprocessing.shared_memory`)
  laid out from the plan's own
  :meth:`~repro.runtime.plan.Plan.buffer_descriptors` — every input and
  output slot of every ring entry is a contiguous region in the slot's
  declared memory order, so the parent writes feeds *directly into the
  shard's input slots* and workers execute with pinned bindings: feeds
  alias shared memory, outputs land in shared memory, and steady-state
  calls copy **zero bytes** inside the worker (the per-call
  ``bytes_copied`` counter, surfaced per run, proves it);
* **one wake-up per worker per wave**, not per feed: a worker receives
  ``("run", k)``, serves ``k`` ring entries through per-entry
  :class:`~repro.runtime.plan.PinnedBinding` s, and replies once — the
  synchronization cost amortizes over the whole shard.

Failure semantics
-----------------
A feed that *raises inside a worker* (kernel error, dtype drift) is
reported back as :class:`ShardWorkerError` (``cause="exec"``); the
worker itself survives and the pool stays usable — already-executed
feeds of the same run are simply discarded with the failed wave.  The
supervisor classifies everything else by how the wave reply failed:

* **crash** — the worker's pipe closed (killed, segfaulted, OOM'd);
* **hang** — no reply within ``wave_deadline`` seconds (stuck BLAS
  call, livelocked ring): the worker is reaped with terminate→kill
  escalation, so even a SIGTERM-ignoring worker comes down;
* **protocol** — the reply arrived but is not a well-formed
  ``("done", k, bytes)`` / ``("error", msg)`` tuple (a corrupted pipe).

With ``respawn=False`` (the default) any of these marks the pool broken
and raises a :class:`ShardWorkerError` carrying structured ``worker`` /
``exitcode`` / ``cause`` fields.  With ``respawn=True`` the pool starts
a replacement and **replays the wave** (the feeds are still in the
ring) under a bounded retry budget with exponential backoff; only when
the budget is exhausted does it give up (``cause="gave_up"``).  Health
counters (:attr:`hangs_detected`, :attr:`respawns`,
:attr:`waves_replayed`) surface through ``SessionStats``.

Shared-memory segments are always unlinked — on :meth:`close`, on
garbage collection (``weakref.finalize``), and worker-side attachments
deregister from the resource tracker so interpreter shutdown never
double-frees them.  Recovery paths are exercised deterministically via
:mod:`repro.faults` (sites ``worker.exec``, ``pipe.send``,
``pipe.recv``), which replaced the old ad-hoc ``_test_fault_hook``.
"""

from __future__ import annotations

import os
import pickle
import time
import weakref
from collections.abc import Mapping, Sequence

import multiprocessing
import numpy as np

from .. import faults
from ..errors import GraphError
from ..ir.interpreter import ExecutionReport, _normalize_feed
from .batch import BatchResult, FeedSet
from .plan import Plan

__all__ = ["ShardPool", "ShardWorkerError", "default_shards"]

#: Alignment of every ring entry (and of the per-slot regions inside
#: it): keeps float64 views aligned and slot starts cache-line-friendly.
_ALIGN = 64

#: Grace period between ``terminate()`` and the ``kill()`` escalation
#: when reaping a dead/hung worker.
_TERM_GRACE = 2.0


class ShardWorkerError(RuntimeError):
    """A shard worker failed.

    Carries structured fields so recovery logic (and tests) can react to
    *what* failed instead of string-matching the message:

    ``worker``
        Shard index of the failing worker, or ``None`` for pool-level
        failures (closed/broken pool).
    ``exitcode``
        The reaped process's exit code (negative = killed by that
        signal), or ``None`` when the worker is still alive (an
        execution error reported over a healthy pipe).
    ``cause``
        ``"crash"`` (pipe closed), ``"hang"`` (missed the wave
        deadline), ``"protocol"`` (malformed reply), ``"gave_up"``
        (respawn/replay budget exhausted), ``"exec"`` (a feed raised in
        a live worker), or ``None`` for pool-level failures.
    """

    def __init__(self, message: str, *, worker: int | None = None,
                 exitcode: int | None = None,
                 cause: str | None = None) -> None:
        super().__init__(message)
        self.worker = worker
        self.exitcode = exitcode
        self.cause = cause


class _WaveTimeout(Exception):
    """Internal: a worker missed its wave deadline (classified *hung*)."""


def default_shards() -> int:
    """Shard count used when callers pass ``shards=True``-style defaults:
    ``REPRO_BENCH_SHARDS`` if set, else CPU count capped at 4."""
    env = os.environ.get("REPRO_BENCH_SHARDS")
    if env:
        return max(1, int(env))
    return max(1, min(4, os.cpu_count() or 1))


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def _ring_layout(descs) -> tuple[list[int], int]:
    """Per-descriptor byte offsets within one ring entry, and the entry
    stride (both sides build views from this, so layout cannot drift)."""
    offsets = []
    off = 0
    for d in descs:
        offsets.append(off)
        off += _align(d.nbytes)
    return offsets, _align(off)


def _entry_views(buf, descs, offsets, base: int):
    """ndarray views over one ring entry of a shared-memory buffer."""
    views = []
    for d, off in zip(descs, offsets):
        views.append(
            np.ndarray(d.shape, dtype=d.dtype, buffer=buf,
                       offset=base + off, order=d.order)
        )
    return views


def _shard_worker(conn, shm_name: str, plan_blob: bytes, dtype_str: str,
                  ring_slots: int, store_ref=None, worker_index: int = 0,
                  fault_spec: str | None = None) -> None:
    """Worker loop: attach the ring, compile/adopt the plan, serve waves.

    Runs in a child process.  ``plan_blob`` is the pickled plan —
    unpickling *reconstructs* it (graph payload → ``compile_plan``), so
    each worker owns its own closures and arena.  When ``store_ref =
    (store_root, plan_key)`` names a persistent-plan-store artifact the
    worker warm-starts from it instead — same re-lower, but the graph
    payload and its const sidecars come from disk (consts mmapped, so N
    workers share one page-cache copy instead of unpickling N private
    ones); any store failure falls back to the blob, so a corrupt
    artifact can never break a pool.  After setup the worker sends one
    ``("ready", warm_started)`` handshake, then replies per wave with
    ``("done", k, bytes_copied)`` or ``("error", message)``; the loop
    only exits on ``("stop",)`` or a closed pipe.
    """
    from multiprocessing import shared_memory

    # Fork workers inherit the parent's installed fault plan; spawn
    # workers receive it re-rendered as a string.  Installing resets the
    # hit counters either way — each worker counts its own hits.
    if fault_spec:
        faults.install(fault_spec)
    injector = faults.active()

    # Attaching re-registers the segment with the resource tracker, but
    # fork and spawn children both share the *parent's* tracker process,
    # whose registry is a set — the re-register dedupes to a no-op and
    # the parent's close()/finalizer unlink stays the single cleanup
    # point.  (Unregistering here instead would strip the parent's own
    # registration and break crash cleanup.)
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        plan: Plan | None = None
        if store_ref is not None:
            try:
                from .store import PlanStore

                plan = PlanStore(store_ref[0]).load_plan(store_ref[1])
            except Exception:
                plan = None  # store unreachable → recompile from blob
        warm_started = plan is not None
        if plan is None:
            plan = pickle.loads(plan_blob)
        dtype = np.dtype(dtype_str)
        descs = plan.buffer_descriptors(dtype)
        offsets, stride = _ring_layout(descs)
        n_inputs = len(plan.inputs)
        input_slots = {spec.slot for spec in plan.inputs}
        arena = plan.new_arena()
        bindings = []
        ring = []
        pin_lists = []  # per ring entry: (slot, output view) to install
        out_slots = [d.slot for d in descs[n_inputs:]]
        for r in range(ring_slots):
            views = _entry_views(shm.buf, descs, offsets, r * stride)
            ins, outs = views[:n_inputs], views[n_inputs:]
            bindings.append(plan.bind_pinned(ins, arena))
            ring.append((ins, outs))
            pins = [
                (slot, view)
                for slot, view in zip(out_slots, outs)
                if slot not in input_slots
            ]
            # Validate each entry's views once, up front; the serving
            # loop then swaps the (already vetted) buffers in directly.
            for slot, view in pins:
                plan.pin_slot(arena, slot, view)
            pin_lists.append(pins)
        bufs = arena.buffers
        conn.send(("ready", warm_started))
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg[0] == "stop":
                break
            count = msg[1]
            before = arena.bytes_copied
            try:
                for i in range(count):
                    if injector is not None:
                        injector.fire("worker.exec", worker=worker_index)
                    _, outs = ring[i]
                    for slot, view in pin_lists[i]:
                        bufs[slot] = view
                    results = bindings[i].execute()
                    for view, result in zip(outs, results):
                        if result is view:
                            continue
                        if result.dtype != view.dtype:
                            raise TypeError(
                                f"plan produced dtype {result.dtype}, but "
                                f"the shard pool was sized for {dtype} — "
                                "build the pool with the dtype the plan "
                                "actually computes"
                            )
                        np.copyto(view, result)
                reply = ("done", count, arena.bytes_copied - before)
                if injector is not None:
                    spec = injector.fire("pipe.send", worker=worker_index)
                    if spec is not None and spec.action == "corrupt":
                        reply = ("?corrupt?", None)
                conn.send(reply)
            except Exception as exc:  # noqa: BLE001 - reported to parent
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        shm.close()
        conn.close()


class ShardPool:
    """N worker processes serving one plan through shared-memory rings.

    Parameters
    ----------
    plan:
        A :func:`~repro.runtime.compiler.compile_plan` product (anything
        else cannot be shipped across the process boundary).  Compile it
        with ``fusion=True`` for the fused/arena fast path — each worker
        recompiles the same graph with the same knobs.
    shards:
        Worker-process count (``None`` → :func:`default_shards`).
    ring_slots:
        Ring entries per worker — the largest chunk a worker serves per
        wake-up.  Larger rings amortize the per-wave pipe round-trip
        over more feeds at the cost of shared memory
        (``ring_slots × (inputs + outputs)`` bytes per worker).
    dtype:
        The uniform feed/output dtype the rings are sized for (defaults
        to the repo-configured default dtype).  Feeds are written into
        the ring with a casting ``copyto`` — feed float64 into a
        float32 pool and you asked for float32 results.
    start_method:
        ``multiprocessing`` start method; default ``fork`` where
        available (workers inherit the compiled plan for free), else
        ``spawn`` (workers unpickle → recompile).
    respawn:
        Failed-worker policy: ``False`` marks the pool broken on a
        worker crash/hang/protocol failure; ``True`` starts a
        replacement and replays the wave (the feeds persist in the
        ring) under the ``max_retries`` budget.
    wave_deadline:
        Seconds a worker may take to answer one wave before it is
        classified *hung*, reaped (terminate→kill), and handled like a
        death.  ``None`` (the default) keeps the blocking wait — zero
        supervision overhead on the clean path.  Size it to the
        slowest legitimate wave (``ring_slots`` × worst per-feed
        latency), not the average.
    max_retries:
        Respawn/replay attempts per failed wave before giving up
        (``cause="gave_up"``, pool broken).
    retry_backoff:
        Base of the exponential backoff between replay attempts: retry
        ``i`` (0-based) sleeps ``retry_backoff * 2**(i-1)`` first, the
        first retry is immediate.
    store:
        Optional :class:`~repro.runtime.store.PlanStore`.  The plan's
        artifact is ensured on disk at construction and workers
        warm-start from it — the structural payload and mmapped const
        sidecars come from the store instead of each worker's copy of
        the pickle blob (``spawn`` mode especially: the blob still
        ships as a corruption fallback, but a warm worker never reads
        it).  :attr:`workers_warm_started` counts how many workers
        reported a store warm start.
    """

    def __init__(
        self,
        plan: Plan,
        *,
        shards: int | None = None,
        ring_slots: int = 32,
        dtype: object = None,
        start_method: str | None = None,
        respawn: bool = False,
        wave_deadline: float | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        store=None,
    ) -> None:
        from multiprocessing import shared_memory

        if shards is None:
            shards = default_shards()
        if not isinstance(shards, int) or isinstance(shards, bool) \
                or shards < 1:
            raise GraphError(f"shards must be an int >= 1, got {shards!r}")
        if not isinstance(ring_slots, int) or ring_slots < 1:
            raise GraphError(
                f"ring_slots must be an int >= 1, got {ring_slots!r}"
            )
        if wave_deadline is not None and not wave_deadline > 0:
            raise GraphError(
                f"wave_deadline must be > 0 seconds or None, got "
                f"{wave_deadline!r}"
            )
        if not isinstance(max_retries, int) or max_retries < 1:
            raise GraphError(
                f"max_retries must be an int >= 1, got {max_retries!r}"
            )
        if retry_backoff < 0:
            raise GraphError(
                f"retry_backoff must be >= 0, got {retry_backoff!r}"
            )
        if dtype is None:
            from ..config import config

            dtype = config.default_dtype
        self.plan = plan
        self.shards = shards
        self.ring_slots = ring_slots
        self.dtype = np.dtype(dtype)
        self.respawn = respawn
        self.wave_deadline = wave_deadline
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)
        # Pickle once here (also validates the plan is reconstructible
        # *before* any worker starts); fork workers still inherit the
        # live plan via the blob's round-trip — one recompile per worker
        # either way, paid at pool construction, not per batch.
        self._plan_blob = pickle.dumps(plan)
        #: ``(store_root, plan_key)`` workers warm-start from, or None.
        self._store_ref = None
        #: Workers whose ready handshake reported a store warm start.
        self.workers_warm_started = 0
        if store is not None:
            key = store.put_plan(plan)
            if key is not None:
                self._store_ref = (store.root, key)
        self._descs = plan.buffer_descriptors(self.dtype)
        self._offsets, self._stride = _ring_layout(self._descs)
        self._n_inputs = len(plan.inputs)
        seg_size = self._stride * ring_slots
        self._shms = []
        self._conns = []
        self._procs = []
        self._rings = []  # parent-side (input_views, output_views) per worker
        self._broken = False
        self._closed = False
        self.bytes_copied_last_run = 0
        #: Worker-waves dispatched over this pool's lifetime (one count
        #: per ``("run", k)`` message) — surfaced by ``SessionStats``.
        self.waves_served = 0
        #: Workers that missed their wave deadline and were reaped.
        self.hangs_detected = 0
        #: Replacement workers started after a crash/hang/protocol fail.
        self.respawns = 0
        #: Waves re-dispatched to a replacement worker.
        self.waves_replayed = 0
        try:
            for _ in range(shards):
                shm = shared_memory.SharedMemory(create=True, size=seg_size)
                self._shms.append(shm)
                self._rings.append([
                    (views[:self._n_inputs], views[self._n_inputs:])
                    for views in (
                        _entry_views(shm.buf, self._descs, self._offsets,
                                     r * self._stride)
                        for r in range(ring_slots)
                    )
                ])
            for w in range(shards):
                self._start_worker(w)
            # Collect readiness after *all* workers launched, so their
            # setup compiles/store loads overlap instead of serializing.
            for w in range(shards):
                self._await_ready(w)
        except BaseException:
            self.close()
            raise
        # The lists themselves (not copies): respawns mutate them in
        # place, so the finalizer always sees the current workers.
        self._finalizer = weakref.finalize(
            self, _cleanup, self._shms, self._procs, self._conns
        )

    # -- lifecycle -------------------------------------------------------------

    def _start_worker(self, w: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_shard_worker,
            args=(child_conn, self._shms[w].name, self._plan_blob,
                  str(self.dtype), self.ring_slots, self._store_ref,
                  w, faults.active_render()),
            daemon=True,
            name=f"repro-shard-{w}",
        )
        proc.start()
        child_conn.close()
        if w < len(self._conns):
            self._conns[w] = parent_conn
            self._procs[w] = proc
        else:
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def _await_ready(self, w: int) -> None:
        """Consume worker ``w``'s ready handshake (sent once after its
        plan is built and its ring bindings are validated).  A worker
        dying during setup surfaces here, at construction/respawn time,
        instead of desyncing the first wave."""
        try:
            msg = self._conns[w].recv()
        except (EOFError, ConnectionResetError, OSError):
            self._broken = True
            raise ShardWorkerError(
                f"shard worker {w} died during startup (before its ready "
                "handshake) — the plan or ring setup fails in the worker",
                worker=w, exitcode=self._procs[w].exitcode, cause="crash",
            ) from None
        if msg[0] != "ready":  # pragma: no cover - protocol guard
            self._broken = True
            raise ShardWorkerError(
                f"shard worker {w} spoke out of turn during startup: {msg!r}",
                worker=w, cause="protocol",
            )
        self.workers_warm_started += bool(msg[1])

    def close(self) -> None:
        """Stop every worker and unlink the shared-memory segments.

        Idempotent; also runs from a ``weakref.finalize`` at collection
        time, so dropping the last reference never leaks ``/dev/shm``
        segments (the worker-death tests re-run under ``pytest -x`` and
        would trip over leftovers otherwise).
        """
        if self._closed:
            return
        self._closed = True
        fin = getattr(self, "_finalizer", None)
        if fin is not None:
            fin.detach()
        # Release the parent-side views BEFORE unmapping: with exported
        # buffer pointers still alive, shm.close() raises BufferError and
        # the segment would stay mapped for as long as the pool object is
        # referenced.
        self._rings.clear()
        _cleanup(self._shms, self._procs, self._conns)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else (
            "broken" if self._broken else "live"
        )
        return (
            f"<ShardPool {self.shards} workers x {self.ring_slots} ring "
            f"slots, {self.dtype}, {state}>"
        )

    # -- execution -------------------------------------------------------------

    def _write_feed(self, worker: int, ring_slot: int, feeds) -> None:
        ins, _ = self._rings[worker][ring_slot]
        if isinstance(feeds, Mapping):
            raise GraphError(
                "ShardPool.run takes positional feed sequences; bind "
                "mapping feeds through the plan's input order first"
            )
        feeds = list(feeds)
        if len(feeds) != self._n_inputs:
            raise GraphError(
                f"plan has {self._n_inputs} inputs, got {len(feeds)} feeds"
            )
        for spec, view, feed in zip(self.plan.inputs, ins, feeds):
            arr = _normalize_feed(feed)
            if tuple(arr.shape) != tuple(spec.shape):
                raise GraphError(
                    f"feed for {spec.name!r} has shape {arr.shape}, "
                    f"input declares {spec.shape}"
                )
            np.copyto(view, arr)

    def run(self, feed_sets: Sequence[FeedSet]) -> BatchResult:
        """Execute the plan over ``feed_sets``, sharded across workers.

        Feeds are partitioned into contiguous per-worker chunks and
        streamed through the rings in waves of up to ``ring_slots``
        each; the parent writes every feed straight into the target
        shard's input slots and reads results straight out of its output
        slots.  Returns a :class:`~repro.runtime.batch.BatchResult`
        whose outputs are parent-owned copies (reports are empty — the
        shard path is the serving path, ``record=False``).
        """
        if self._closed:
            raise ShardWorkerError("pool is closed")
        if self._broken:
            raise ShardWorkerError(
                "pool is broken (a worker died and respawn=False); build "
                "a new ShardPool or construct it with respawn=True"
            )
        feed_sets = list(feed_sets)
        n = len(feed_sets)
        outputs: list[list[np.ndarray] | None] = [None] * n
        self.bytes_copied_last_run = 0
        # Contiguous balanced partition: worker w serves chunk w.
        base, extra = divmod(n, self.shards)
        chunks = []
        pos = 0
        for w in range(self.shards):
            size = base + (1 if w < extra else 0)
            chunks.append((pos, pos + size))
            pos += size
        offsets = [c[0] for c in chunks]
        while any(offsets[w] < chunks[w][1] for w in range(self.shards)):
            wave = []  # (worker, start_index, count)
            error: BaseException | None = None
            try:
                for w in range(self.shards):
                    start, end = offsets[w], chunks[w][1]
                    count = min(self.ring_slots, end - start)
                    if count <= 0:
                        continue
                    for i in range(count):
                        self._write_feed(w, i, feed_sets[start + i])
                    # Dispatch as soon as this shard's chunk is written:
                    # worker w executes while the parent fills shard w+1.
                    self._dispatch(w, count)
                    wave.append((w, start, count))
                    offsets[w] = start + count
            except BaseException as exc:
                # A feed failed validation (or a dispatch died) after
                # earlier shards were already sent work: fall through and
                # drain their replies before raising, or the pipe
                # protocol desyncs and the next run() reads stale waves.
                error = exc
            for w, start, count in wave:
                try:
                    self._collect(w, start, count, outputs)
                except ShardWorkerError as exc:
                    # Keep draining the other dispatched workers — every
                    # in-flight reply must be consumed so a surviving
                    # pool stays wave-aligned.  First error wins.
                    if error is None:
                        error = exc
            if error is not None:
                raise error
        return BatchResult(
            outputs=[out for out in outputs],
            reports=[ExecutionReport() for _ in range(n)],
        )

    # -- supervision -----------------------------------------------------------

    _CAUSE_VERB = {
        "crash": "died",
        "hang": "hung (missed the wave deadline)",
        "protocol": "sent a malformed reply",
    }

    @staticmethod
    def _valid_reply(reply) -> bool:
        """Wave-protocol well-formedness: anything else is ``protocol``."""
        if not isinstance(reply, tuple) or len(reply) < 2:
            return False
        if reply[0] == "done":
            return (len(reply) == 3 and isinstance(reply[1], int)
                    and isinstance(reply[2], int))
        return reply[0] == "error" and isinstance(reply[1], str)

    def _recv(self, w: int):
        """One wave reply from worker ``w``, under the wave deadline.

        ``wave_deadline=None`` keeps the plain blocking ``recv()`` —
        the clean path pays nothing for supervision it didn't ask for.
        """
        conn = self._conns[w]
        if self.wave_deadline is not None and not conn.poll(
                self.wave_deadline):
            raise _WaveTimeout()
        reply = conn.recv()
        spec = faults.fire("pipe.recv")
        if spec is not None and spec.action == "corrupt":
            reply = ("?corrupt?", reply)
        return reply

    def _reap(self, w: int) -> int | None:
        """Bring worker ``w`` down for sure: terminate, then escalate to
        kill if it lingers (a hung worker may be ignoring SIGTERM).
        Returns the exit code; closes the parent-side pipe end."""
        proc = self._procs[w]
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=_TERM_GRACE)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=_TERM_GRACE)
        else:
            proc.join(timeout=_TERM_GRACE)
        self._conns[w].close()
        return proc.exitcode

    def _fail(self, w: int, cause: str, exitcode: int | None,
              retries: int = 0) -> ShardWorkerError:
        """Terminal failure for worker ``w``: break the pool, build the
        structured error (returned, not raised, so callers control the
        raise site and ``run()``'s drain loop stays simple)."""
        self._broken = True
        if retries:
            return ShardWorkerError(
                f"shard worker {w} kept failing through {retries} respawn/"
                f"replay attempt(s) (last cause: {cause}, exit code "
                f"{exitcode}); pool is now unusable — the workload breaks "
                "workers deterministically",
                worker=w, exitcode=exitcode, cause="gave_up",
            )
        return ShardWorkerError(
            f"shard worker {w} {self._CAUSE_VERB[cause]} (exit code "
            f"{exitcode}); pool is now unusable — construct with "
            "respawn=True for automatic replacement",
            worker=w, exitcode=exitcode, cause=cause,
        )

    def _respawn(self, w: int) -> bool:
        """Start a replacement worker; ``False`` if it fails its own
        startup (counts against the caller's retry budget)."""
        try:
            self._start_worker(w)
            self._await_ready(w)
        except ShardWorkerError:
            # _await_ready marked the pool broken; we're still inside a
            # retry budget, so un-mark and let the caller decide.
            self._broken = False
            self._reap(w)
            return False
        self.respawns += 1
        return True

    def _replay_wave(self, w: int, count: int, cause: str,
                     exitcode: int | None):
        """Worker ``w`` failed a wave (already reaped): respawn and
        re-dispatch the wave — the feeds persist in the ring — under the
        retry budget with exponential backoff.  Returns the replayed
        wave's (validated) reply, or raises ``cause="gave_up"``."""
        if not self.respawn:
            raise self._fail(w, cause, exitcode)
        for attempt in range(self.max_retries):
            if attempt:
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
            if not self._respawn(w):
                exitcode = self._procs[w].exitcode
                cause = "crash"
                continue
            try:
                self._conns[w].send(("run", count))
                self.waves_replayed += 1
                reply = self._recv(w)
            except _WaveTimeout:
                self.hangs_detected += 1
                cause, exitcode = "hang", self._reap(w)
                continue
            except (EOFError, ConnectionResetError, BrokenPipeError,
                    OSError):
                cause, exitcode = "crash", self._reap(w)
                continue
            if self._valid_reply(reply):
                return reply
            cause, exitcode = "protocol", self._reap(w)
        raise self._fail(w, cause, exitcode, retries=self.max_retries)

    def _dispatch(self, w: int, count: int) -> None:
        self.waves_served += 1
        try:
            self._conns[w].send(("run", count))
            return
        except (BrokenPipeError, OSError):
            exitcode = self._reap(w)
        if not self.respawn:
            raise self._fail(w, "crash", exitcode)
        for attempt in range(self.max_retries):
            if attempt:
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
            if not self._respawn(w):
                exitcode = self._procs[w].exitcode
                continue
            try:
                self._conns[w].send(("run", count))
                self.waves_replayed += 1
                return
            except (BrokenPipeError, OSError):
                exitcode = self._reap(w)
        raise self._fail(w, "crash", exitcode, retries=self.max_retries)

    def _collect(self, w: int, start: int, count: int, outputs) -> None:
        try:
            reply = self._recv(w)
            cause = None if self._valid_reply(reply) else "protocol"
        except _WaveTimeout:
            cause = "hang"
        except (EOFError, ConnectionResetError, OSError):
            cause = "crash"
        if cause is not None:
            if cause == "hang":
                self.hangs_detected += 1
            exitcode = self._reap(w)
            reply = self._replay_wave(w, count, cause, exitcode)
        if reply[0] == "error":
            raise ShardWorkerError(
                f"shard worker {w} failed while executing feeds "
                f"[{start}, {start + count}): {reply[1]}",
                worker=w, cause="exec",
            )
        _, served, copied = reply
        self.bytes_copied_last_run += copied
        for i in range(served):
            _, outs = self._rings[w][i]
            outputs[start + i] = [np.array(v) for v in outs]


def _cleanup(shms, procs, conns) -> None:
    """Best-effort teardown shared by close() and the GC finalizer."""
    for conn in conns:
        try:
            conn.send(("stop",))
        except Exception:
            pass
    for proc in procs:
        proc.join(timeout=2)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=2)
    for conn in conns:
        try:
            conn.close()
        except Exception:
            pass
    for shm in shms:
        try:
            shm.close()
        except Exception:
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:
            pass
