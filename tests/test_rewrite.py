"""Tests for the derivation-graph engine (expr algebra, rules, search)."""

import numpy as np
import pytest

from repro.errors import RewriteError, ShapeError
from repro.rewrite import (
    Add,
    DerivationGraph,
    Identity,
    MatMul,
    Scale,
    Symbol,
    Transpose,
    Zero,
    best_variant,
    expr_flops,
    variants,
)
from repro.rewrite.rules import DEFAULT_RULES, apply_everywhere
from repro.tensor.properties import Property

N = 50


@pytest.fixture
def syms():
    return {
        "A": Symbol("A", N, N),
        "B": Symbol("B", N, N),
        "C": Symbol("C", N, N),
        "H": Symbol("H", N, N),
        "S": Symbol("S", N, N, {Property.SYMMETRIC}),
        "Q": Symbol("Q", N, N, {Property.ORTHOGONAL}),
        "x": Symbol("x", N, 1),
        "y": Symbol("y", N, 1),
    }


@pytest.fixture
def env(rng):
    q, _ = np.linalg.qr(rng.standard_normal((N, N)))
    s = rng.random((N, N))
    return {
        "A": rng.random((N, N)) - 0.5,
        "B": rng.random((N, N)) - 0.5,
        "C": rng.random((N, N)) - 0.5,
        "H": rng.random((N, N)) - 0.5,
        "S": (s + s.T) / 2,
        "Q": q,
        "x": rng.random((N, 1)) - 0.5,
        "y": rng.random((N, 1)) - 0.5,
    }


class TestCanonicalization:
    def test_double_transpose(self, syms):
        assert Transpose(Transpose(syms["A"])) == syms["A"]

    def test_transpose_of_symmetric(self, syms):
        assert Transpose(syms["S"]) == syms["S"]

    def test_transpose_pushes_through_product(self, syms):
        e = Transpose(MatMul(syms["A"], syms["B"]))
        assert e == MatMul(Transpose(syms["B"]), Transpose(syms["A"]))

    def test_transpose_distributes_over_sum(self, syms):
        e = Transpose(Add(syms["A"], syms["B"]))
        assert e == Add(Transpose(syms["A"]), Transpose(syms["B"]))

    def test_matmul_flattens(self, syms):
        e = MatMul(MatMul(syms["A"], syms["B"]), syms["C"])
        f = MatMul(syms["A"], MatMul(syms["B"], syms["C"]))
        assert e == f  # association is not identity

    def test_identity_dropped(self, syms):
        assert MatMul(Identity(N), syms["A"]) == syms["A"]

    def test_zero_absorbs_product(self, syms):
        assert MatMul(Zero(N, N), syms["A"]) == Zero(N, N)

    def test_add_flattens_and_sorts(self, syms):
        e = Add(syms["A"], Add(syms["B"], syms["C"]))
        f = Add(Add(syms["C"], syms["A"]), syms["B"])
        assert e == f

    def test_x_plus_x_merges(self, syms):
        assert Add(syms["A"], syms["A"]) == Scale(2.0, syms["A"])

    def test_x_minus_x_is_zero(self, syms):
        assert (syms["A"] - syms["A"]) == Zero(N, N)

    def test_add_drops_zero(self, syms):
        assert Add(syms["A"], Zero(N, N)) == syms["A"]

    def test_scale_merging(self, syms):
        assert Scale(2.0, Scale(3.0, syms["A"])) == Scale(6.0, syms["A"])

    def test_scale_one_is_identity_op(self, syms):
        assert Scale(1.0, syms["A"]) is syms["A"]

    def test_scale_zero_is_zero(self, syms):
        assert Scale(0.0, syms["A"]) == Zero(N, N)

    def test_scale_hoisted_from_product(self, syms):
        e = MatMul(Scale(2.0, syms["A"]), syms["B"])
        assert isinstance(e, Scale)
        assert e.alpha == 2.0

    def test_operator_sugar(self, syms):
        a, b = syms["A"], syms["B"]
        assert (a @ b) == MatMul(a, b)
        assert (a + b) == Add(a, b)
        assert (a - b) == Add(a, Scale(-1.0, b))
        assert (2.0 * a) == Scale(2.0, a)
        assert (-a) == Scale(-1.0, a)
        assert a.T == Transpose(a)

    def test_shape_mismatch_rejected(self, syms):
        with pytest.raises(ShapeError):
            MatMul(syms["x"], syms["A"])
        with pytest.raises(ShapeError):
            Add(syms["x"], syms["A"])

    def test_evaluate_missing_binding(self, syms):
        with pytest.raises(RewriteError):
            syms["A"].evaluate({})


class TestCost:
    def test_product_uses_dp(self, syms):
        # HᵀHx costed right-to-left: 2·(2n²)
        e = MatMul(Transpose(syms["H"]), syms["H"], syms["x"])
        assert expr_flops(e) == 4 * N * N

    def test_sum_cost(self, syms):
        e = Add(syms["A"], syms["B"], syms["C"])
        assert expr_flops(e) == 2 * N * N

    def test_scale_cost(self, syms):
        assert expr_flops(Scale(2.0, syms["A"])) == N * N

    def test_leaves_free(self, syms):
        assert expr_flops(syms["A"]) == 0
        assert expr_flops(Identity(N)) == 0
        assert expr_flops(Transpose(syms["A"])) == 0

    def test_aware_discount_diagonal(self):
        d = Symbol("D", N, N, {Property.DIAGONAL})
        b = Symbol("B", N, N)
        assert expr_flops(MatMul(d, b), aware=True) == N * N
        assert expr_flops(MatMul(d, b), aware=False) == 2 * N**3


class TestRules:
    def _all_rewrites(self, expr):
        out = []
        for rule in DEFAULT_RULES:
            out.extend(apply_everywhere(rule, expr))
        return out

    def test_rewrites_preserve_value(self, syms, env):
        exprs = [
            MatMul(syms["A"], Add(syms["B"], syms["C"])),
            Add(MatMul(syms["A"], syms["B"]), MatMul(syms["A"], syms["C"])),
            MatMul(Transpose(syms["Q"]), syms["Q"], syms["A"]),
            Add(Scale(2.0, syms["A"]), Scale(2.0, syms["B"])),
            Add(MatMul(syms["H"], syms["x"]),
                Scale(-1.0, MatMul(syms["A"], syms["x"]))),
        ]
        for e in exprs:
            ref = e.evaluate(env)
            for app in self._all_rewrites(e):
                got = app.result.evaluate(env)
                assert np.allclose(got, ref, atol=1e-8), (e, app.rule)

    def test_expand_found(self, syms):
        e = MatMul(syms["A"], Add(syms["B"], syms["C"]))
        rules = {a.rule for a in self._all_rewrites(e)}
        assert "expand" in rules

    def test_factor_found(self, syms):
        e = Add(MatMul(syms["A"], syms["B"]), MatMul(syms["A"], syms["C"]))
        results = [a.result for a in self._all_rewrites(e) if a.rule == "factor"]
        assert MatMul(syms["A"], Add(syms["B"], syms["C"])) in results

    def test_trailing_factor_found(self, syms):
        e = Add(MatMul(syms["B"], syms["A"]), MatMul(syms["C"], syms["A"]))
        results = [a.result for a in self._all_rewrites(e) if a.rule == "factor"]
        assert MatMul(Add(syms["B"], syms["C"]), syms["A"]) in results

    def test_orthogonal_cancel(self, syms):
        e = MatMul(Transpose(syms["Q"]), syms["Q"], syms["A"])
        results = [a.result for a in self._all_rewrites(e)
                   if a.rule == "orthogonal_cancel"]
        assert syms["A"] in results

    def test_orthogonal_not_cancelled_for_general(self, syms):
        e = MatMul(Transpose(syms["A"]), syms["A"], syms["B"])
        assert not [a for a in self._all_rewrites(e)
                    if a.rule == "orthogonal_cancel"]

    def test_nested_positions_reached(self, syms):
        """A rewrite deep inside a sum is found."""
        inner = MatMul(syms["A"], Add(syms["B"], syms["C"]))
        e = Add(inner, syms["A"])
        rules = {a.rule for a in self._all_rewrites(e)}
        assert "expand" in rules


class TestDerivation:
    def test_fig1_discovery(self, syms, env):
        """From variant 1 the search reaches the paper's variant 3 cost."""
        H, x, y = syms["H"], syms["x"], syms["y"]
        root = Add(
            MatMul(Transpose(H), y),
            MatMul(Add(Identity(N), Scale(-1.0, MatMul(Transpose(H), H))), x),
        )
        res = best_variant(root, max_nodes=300)
        # variant 3 = Hᵀ(y − Hx) + x: two gemvs + adds
        assert res.best_flops <= 3 * 2 * N * N + 3 * N
        assert res.root_flops > 2 * N**3
        assert np.allclose(root.evaluate(env), res.best.evaluate(env), atol=1e-8)
        assert res.speedup_flops > 10

    def test_variants_sorted(self, syms):
        e = MatMul(syms["A"], Add(syms["B"], syms["C"]))
        vs = variants(e, max_nodes=100)
        flops = [f for _, f in vs]
        assert flops == sorted(flops)

    def test_orthogonal_chain_to_zero_cost(self, syms):
        e = MatMul(Transpose(syms["Q"]), syms["Q"], syms["A"])
        res = best_variant(e)
        assert res.best == syms["A"]
        assert res.best_flops == 0

    def test_path_reconstruction(self, syms):
        e = Add(MatMul(syms["A"], syms["B"]), MatMul(syms["A"], syms["C"]))
        res = best_variant(e)
        assert res.path and all(isinstance(r, str) for r in res.path)

    def test_max_nodes_respected(self, syms):
        H, x, y = syms["H"], syms["x"], syms["y"]
        root = Add(
            MatMul(Transpose(H), y),
            MatMul(Add(Identity(N), Scale(-1.0, MatMul(Transpose(H), H))), x),
        )
        g = DerivationGraph(root, max_nodes=2).explore()
        assert g.graph.number_of_nodes() <= 3  # root + limited expansion

    def test_already_optimal_stays(self, syms):
        e = MatMul(syms["A"], syms["x"])
        res = best_variant(e)
        assert res.best == e
        assert res.path == ()
