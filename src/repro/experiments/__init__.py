"""Experiment modules — one per table/figure of the paper.

Importing this package registers every experiment with
:mod:`repro.bench.registry`:

========  ==============  ====================================================
Name      Paper artifact  Content
========  ==============  ====================================================
fig1      Fig. 1          image-restoration variants (distributivity +
                          associativity); derivation-graph auto-discovery
table1    Table I         Eager vs Graph vs MKL-C reference
exp1      Table II        common sub-expression elimination
exp2      Table III       matrix-chain parenthesization (+ multi_dot)
fig6      Fig. 6          equal-FLOP instruction orders (memory effects)
fig7      Fig. 7          all parenthesizations of a length-4 chain
exp3      Table IV        matrix properties (TRMM/SYRK/tridiag/diag)
exp4      Table V         algebraic manipulation (distributivity, blocked)
exp5      Table VI        code motion (LICM, partial operand access)
ablation  (extension)     default vs aware pipelines on every test expression
solve     (extension)     property-aware linear-system solve (LU vs Cholesky)
========  ==============  ====================================================
"""

from . import (  # noqa: F401  (imported for registration side effects)
    ablation,
    exp1_cse,
    exp2_chains,
    exp3_properties,
    exp4_algebraic,
    exp5_code_motion,
    fig6_order,
    fig7_chain4,
    intro_fig1,
    solve_systems,
    table1_modes,
)
from .sizes import experiment_size
from .workloads import Workloads

__all__ = ["experiment_size", "Workloads"]
