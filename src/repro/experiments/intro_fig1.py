"""Fig. 1 — the image-restoration variants from the introduction.

The expression ``y := Hᵀy + (I − HᵀH)x`` (Tirer & Giryes image restoration)
in three mathematically equivalent forms:

* Variant 1: as written — materializes ``HᵀH``: O(n³);
* Variant 2: distributed, chain right-to-left: ``Hᵀy + x − Hᵀ(Hx)``: O(n²),
  three matrix-vector products;
* Variant 3: factored again: ``Hᵀ(y − Hx) + x``: O(n²), two matrix-vector
  products.

Both frameworks execute each variant as written (Table reproduces the
figure); the final rows show our derivation-graph engine *discovering*
variant 3 automatically from variant 1 — the capability the paper argues
the frameworks should adopt.
"""

from __future__ import annotations

from ..bench.registry import register_experiment
from ..bench.reporting import Cell, ExperimentTable
from ..frameworks import pytsim, tfsim
from ..rewrite import Add, Identity, MatMul, Scale, Symbol, Transpose
from ..rewrite import best_variant, expr_flops
from ._measure import time_compiled
from .sizes import experiment_size
from .workloads import Workloads


def _variants(n: int):
    @tfsim.function
    def tf_v1(h, x, y):
        i = tfsim.eye(n)
        return tfsim.transpose(h) @ y + (i - tfsim.transpose(h) @ h) @ x

    @pytsim.jit.script
    def pyt_v1(h, x, y):
        i = pytsim.eye(n)
        return h.T @ y + (i - h.T @ h) @ x

    @tfsim.function
    def tf_v2(h, x, y):
        return tfsim.transpose(h) @ y + x - tfsim.transpose(h) @ (h @ x)

    @pytsim.jit.script
    def pyt_v2(h, x, y):
        return h.T @ y + x - h.T @ (h @ x)

    @tfsim.function
    def tf_v3(h, x, y):
        return tfsim.transpose(h) @ (y - h @ x) + x

    @pytsim.jit.script
    def pyt_v3(h, x, y):
        return h.T @ (y - h @ x) + x

    return [
        ("Variant 1: Hᵀy + (I−HᵀH)x", tf_v1, pyt_v1),
        ("Variant 2: Hᵀy + x − Hᵀ(Hx)", tf_v2, pyt_v2),
        ("Variant 3: Hᵀ(y−Hx) + x", tf_v3, pyt_v3),
    ]


def derivation_demo(n: int):
    """Run the derivation graph on the variant-1 expression; returns the
    search result (best variant, FLOPs, rule path)."""
    H = Symbol("H", n, n)
    x = Symbol("x", n, 1)
    y = Symbol("y", n, 1)
    root = Add(
        MatMul(Transpose(H), y),
        MatMul(Add(Identity(n), Scale(-1.0, MatMul(Transpose(H), H))), x),
    )
    return root, best_variant(root, max_nodes=500)


@register_experiment(
    "fig1",
    "Fig. 1",
    "image-restoration variants; derivation-graph auto-discovery of variant 3",
)
def run(n: int | None = None, repetitions: int | None = None) -> ExperimentTable:
    n = experiment_size(n)
    w = Workloads(n)
    h = w.general(0)
    x = w.vector(0)
    y = w.vector(1)

    table = ExperimentTable(
        title=f"Fig. 1: image-restoration variants, execution time (s), n = {n}",
        columns=["TF graph", "PyT graph", "model FLOPs"],
    )
    for label, tf_fn, pyt_fn in _variants(n):
        tf_t = time_compiled(tf_fn, [h, x, y], label="tf",
                             repetitions=repetitions)
        pyt_t = time_compiled(pyt_fn, [h, x, y], label="pyt",
                              repetitions=repetitions)
        flops = tf_fn.last_report.total_flops
        table.add_row(
            label,
            TF_graph=tf_t.best,
            PyT_graph=pyt_t.best,
            model_FLOPs=Cell(text=f"{flops:,}"),
        )

    root, result = derivation_demo(n)
    table.add_row(
        "derivation-graph best (auto)",
        TF_graph=Cell(text="–"),
        PyT_graph=Cell(text="–"),
        model_FLOPs=Cell(text=f"{result.best_flops:,}"),
    )
    table.notes.append(
        f"derivation graph: {root.pretty()}  →  {result.best.pretty()} "
        f"via {'+'.join(result.path)} "
        f"({result.root_flops:,} → {result.best_flops:,} FLOPs, "
        f"{result.explored} variants explored)"
    )
    table.notes.append(
        "expected shape: variant 1 ≫ variants 2, 3 (O(n³) vs O(n²)); "
        "variant 3 ≤ variant 2; auto-derived best ≡ variant 3"
    )
    return table
