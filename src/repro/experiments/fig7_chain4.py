"""Fig. 7 — all parenthesizations of a length-4 matrix chain.

The paper's figure lists the C₃ = 5 parenthesizations of ``ABCD`` with
their FLOP formulas.  This experiment regenerates the figure over a chain
whose sizes make the *mixed* order ``(AB)(CD)`` optimal (the interesting
case neither pure order finds), reporting the modelled FLOPs and the
measured execution time of each variant, plus ``multi_dot``'s choice.
"""

from __future__ import annotations

from ..bench.registry import register_experiment
from ..bench.reporting import Cell, ExperimentTable
from ..bench.timing import measure
from ..chain import (
    count_parenthesizations,
    enumerate_parenthesizations,
    evaluate_chain,
    optimal_parenthesization,
)
from ..tensor import random_general
from .sizes import experiment_size


def chain_shapes(n: int) -> list[tuple[int, int]]:
    """Shapes making (AB)(CD) optimal: a narrow waist in the middle.

    A: n×n, B: n×k, C: k×n, D: n×n with k = n/50 — both pure orders drag an
    O(n³) product along; the mixed order computes two thin products and one
    n×k·k×n GEMM.
    """
    k = max(2, n // 50)
    return [(n, n), (n, k), (k, n), (n, n)]


@register_experiment(
    "fig7",
    "Fig. 7",
    "all 5 parenthesizations of a length-4 chain: FLOPs and measured time",
)
def run(n: int | None = None, repetitions: int | None = None) -> ExperimentTable:
    n = experiment_size(n)
    shapes = chain_shapes(n)
    names = ["A", "B", "C", "D"]
    operands = [
        random_general(r, c, seed=1000 + i).numpy()
        for i, (r, c) in enumerate(shapes)
    ]

    variants = enumerate_parenthesizations(shapes, names)
    assert len(variants) == count_parenthesizations(4) == 5
    optimal = optimal_parenthesization(shapes)

    table = ExperimentTable(
        title=(
            f"Fig. 7: parenthesizations of ABCD, "
            f"shapes {'x'.join(str(s[0]) for s in shapes)}x{shapes[-1][1]}"
        ),
        columns=["FLOPs", "measured (s)", "optimal?"],
    )
    for var in variants:
        sample = measure(
            lambda tree=var.tree: evaluate_chain(operands, tree),
            label=var.expression,
            repetitions=repetitions,
        )
        table.add_row(
            var.expression,
            FLOPs=Cell(text=f"{var.flops:,}"),
            measured__s_=sample.best,
            optimal_=Cell(text="← DP choice" if var.tree == optimal.tree else ""),
        )
    table.notes.append(
        f"DP optimum: {optimal.describe(names)} with {optimal.flops:,} FLOPs; "
        "expected shape: measured time ranks consistently with the FLOP column"
    )
    return table
