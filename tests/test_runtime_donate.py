"""Zero-copy feed donation (Plan.execute(donate=...) / Options(donate_feeds=)).

The contract under test: donating already-Fortran-ordered feeds aliases
them into the arena's input slots — no staging memcpys, no allocations,
bit-identical outputs — while a feed that fails the layout check raises
a clear ``ValueError`` naming the input (strict mode) or is copied
(``"fallback"`` mode).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro import api
from repro.errors import ConfigError, GraphError
from repro.ir import trace
from repro.passes import default_pipeline
from repro.runtime import compile_plan, execute_batch
from repro.tensor import Tensor, random_general

N = 64


def _workload():
    ops = [random_general(N, seed=s) for s in (1, 2, 3)]

    def fn(a, b, c):
        acc = a
        for _ in range(4):
            acc = (acc @ b + c - a) @ a.T
        return 2.0 * acc + b - (-c) * 0.5

    graph = default_pipeline().run(trace(fn, ops))
    return graph, [t.data for t in ops]


@pytest.fixture(scope="module")
def workload():
    return _workload()


def _alloc_peak(fn, reps=30):
    fn()
    tracemalloc.start()
    tracemalloc.reset_peak()
    for _ in range(reps):
        fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


class TestPlanDonation:
    @pytest.mark.parametrize("fusion", [False, True], ids=["plain", "fused"])
    def test_donated_feeds_are_aliased_not_copied(self, workload, fusion):
        graph, feeds = workload
        plan = compile_plan(graph, fusion=fusion)
        arena = plan.new_arena()
        ref, _ = plan.execute(feeds, record=False)
        feeds_f = [np.asfortranarray(f) for f in feeds]
        for _ in range(3):
            outs, _ = plan.execute(feeds_f, record=False, arena=arena,
                                   donate=True)
            assert outs[0].tobytes() == ref[0].tobytes()
        # The aliasing is real: no bytes were staged, and no arena buffer
        # was ever materialized for the input slots.
        assert arena.bytes_copied == 0
        for spec in plan.inputs:
            assert arena.buffers[spec.slot] is None

    def test_donation_is_zero_allocation_after_warmup(self, workload):
        graph, feeds = workload
        plan = compile_plan(graph, fusion=True)
        arena = plan.new_arena()
        feeds_f = [np.asfortranarray(f) for f in feeds]
        for _ in range(3):
            plan.execute(feeds_f, record=False, arena=arena, donate=True)
        warm = arena.allocations
        peak = _alloc_peak(
            lambda: plan.execute(feeds_f, record=False, arena=arena,
                                 donate=True)
        )
        assert peak < feeds[0].nbytes, f"donated execution allocated: {peak}"
        assert arena.allocations == warm
        # ...and strictly: zero ndarray *data* allocations survive.
        tracemalloc.start()
        for _ in range(10):
            plan.execute(feeds_f, record=False, arena=arena, donate=True)
        snap = tracemalloc.take_snapshot().filter_traces(
            [tracemalloc.DomainFilter(
                inclusive=True, domain=np.lib.tracemalloc_domain)]
        )
        tracemalloc.stop()
        assert sum(s.size for s in snap.statistics("lineno")) == 0

    def test_c_ordered_feed_raises_naming_the_input(self, workload):
        graph, feeds = workload
        plan = compile_plan(graph)
        arena = plan.new_arena()
        bad = [np.asfortranarray(f) for f in feeds]
        bad[1] = np.ascontiguousarray(feeds[1])  # C-ordered: fails the check
        with pytest.raises(ValueError, match=plan.inputs[1].name):
            plan.execute(bad, record=False, arena=arena, donate=True)
        with pytest.raises(ValueError, match="Fortran-contiguous"):
            plan.execute(bad, record=False, arena=arena, donate=True)

    def test_fallback_copies_rejected_layouts(self, workload):
        graph, feeds = workload
        plan = compile_plan(graph, fusion=True)
        arena = plan.new_arena()
        ref, _ = plan.execute(feeds, record=False)
        mixed = [np.asfortranarray(feeds[0]), feeds[1], feeds[2]]
        outs, _ = plan.execute(mixed, record=False, arena=arena,
                               donate="fallback")
        assert outs[0].tobytes() == ref[0].tobytes()
        # Exactly the two C-ordered feeds were staged; the F one aliased.
        assert arena.bytes_copied == feeds[1].nbytes + feeds[2].nbytes
        assert arena.buffers[plan.inputs[0].slot] is None

    def test_donate_requires_arena(self, workload):
        graph, feeds = workload
        plan = compile_plan(graph)
        with pytest.raises(GraphError, match="arena"):
            plan.execute(feeds, donate=True)

    def test_donated_record_mode_keeps_report_parity(self, workload):
        graph, feeds = workload
        plan = compile_plan(graph)
        _, rep_ref = plan.execute(feeds)
        arena = plan.new_arena()
        feeds_f = [np.asfortranarray(f) for f in feeds]
        _, rep = plan.execute(feeds_f, arena=arena, donate=True)
        assert rep.calls == rep_ref.calls
        assert rep.peak_bytes == rep_ref.peak_bytes

    def test_donated_feeds_are_read_not_mutated(self, workload):
        graph, feeds = workload
        plan = compile_plan(graph, fusion=True)
        arena = plan.new_arena()
        feeds_f = [np.asfortranarray(f) for f in feeds]
        before = [f.copy() for f in feeds_f]
        for _ in range(2):
            plan.execute(feeds_f, record=False, arena=arena, donate=True)
        for f, b in zip(feeds_f, before):
            assert f.tobytes() == b.tobytes()


class TestBatchDonation:
    def test_batch_donated_matches_per_call(self, workload):
        graph, feeds = workload
        plan = compile_plan(graph, fusion=True)
        feeds_f = [np.asfortranarray(f) for f in feeds]
        ref = execute_batch(plan, [feeds] * 4)
        res = execute_batch(plan, [feeds_f] * 4, arena="preallocated",
                            donate_feeds=True)
        for a, b in zip(ref.outputs, res.outputs):
            assert a[0].tobytes() == b[0].tobytes()

    def test_batch_donation_requires_arena(self, workload):
        graph, feeds = workload
        plan = compile_plan(graph)
        with pytest.raises(GraphError, match="preallocated"):
            execute_batch(plan, [feeds], donate_feeds=True)


class TestSessionDonation:
    def test_options_gate(self):
        with pytest.raises(ConfigError, match="preallocated"):
            api.Options(donate_feeds=True).validate()
        with pytest.raises(ConfigError, match="donate_feeds"):
            api.Options(arena="preallocated", donate_feeds="bogus").validate()
        api.Options(arena="preallocated", donate_feeds="fallback").validate()

    def test_session_donated_run_matches_plain(self):
        a = Tensor(np.asfortranarray(random_general(16, seed=1).data))
        b = Tensor(np.asfortranarray(random_general(16, seed=2).data))
        fn = lambda p, q: (p @ q + p).T @ q  # noqa: E731
        with api.Session() as plain:
            ref = plain.run(fn, a, b)
        with api.Session(fusion=True, arena="preallocated",
                         donate_feeds=True) as s:
            for _ in range(3):
                out = s.run(fn, a, b)
                assert out.data.tobytes() == ref.data.tobytes()
            assert "donated feeds (strict)" in s.stats().render()

    def test_session_strict_donation_rejects_c_ordered(self):
        a = random_general(16, seed=1)  # C-ordered tensor data
        b = random_general(16, seed=2)
        with api.Session(arena="preallocated", donate_feeds=True) as s:
            with pytest.raises(ValueError, match="Fortran-contiguous"):
                s.run(lambda p, q: p @ q, a, b)

    def test_validation_full_softens_to_fallback(self):
        a = random_general(16, seed=1)
        b = random_general(16, seed=2)
        with api.Session() as plain:
            ref = plain.run(lambda p, q: p @ q, a, b)
        with api.Session(arena="preallocated", donate_feeds=True,
                         validation="full") as s:
            out = s.run(lambda p, q: p @ q, a, b)
            assert out.data.tobytes() == ref.data.tobytes()
