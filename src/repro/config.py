"""Global configuration for the LAAB reproduction.

The paper's measurements are single-threaded, float32, with a fixed problem
size (n = 3000) and 20 repetitions.  This module centralizes those knobs so
experiments, tests, and benchmarks share one source of truth.

Thread pinning
--------------
BLAS libraries read their thread-count environment variables at load time, so
:func:`limit_threads` is only fully effective when called *before* numpy is
imported (the ``laab`` CLI does this).  When called later it still sets the
variables — useful for subprocess workers — and additionally tries the
``threadpoolctl``-style control exposed by scipy when available.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Iterator

from .errors import ConfigError

#: Environment variables consulted by the common BLAS implementations.
_BLAS_THREAD_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "BLIS_NUM_THREADS",
)


def limit_threads(n: int = 1) -> None:
    """Pin the BLAS/OpenMP thread pools to ``n`` threads via environment.

    Mirrors the paper's single-core methodology (Sec. III).  Safe to call
    multiple times; later calls overwrite earlier ones.
    """
    if n < 1:
        raise ConfigError(f"thread count must be >= 1, got {n}")
    for var in _BLAS_THREAD_VARS:
        os.environ[var] = str(n)


@dataclasses.dataclass
class Config:
    """Runtime configuration shared across the package.

    Attributes
    ----------
    default_dtype:
        Numpy dtype name used when tensors are created without an explicit
        dtype.  The paper notes both TF and PyTorch default to single
        precision; we follow suit.
    problem_size:
        The ``n`` used by experiments when none is given.  The paper uses
        3000; the default here is smaller so the full suite runs in minutes
        on commodity hardware.  Ratios, not absolute times, are the target.
    repetitions:
        Number of timed repetitions per measurement (paper: 20).
    warmup:
        Untimed warm-up executions before measuring.
    bootstrap_samples:
        Resamples drawn by the significance test of [11].
    alpha:
        Significance level for the bootstrap verdict.
    seed:
        Seed for operand generation, so measurements are reproducible.
    """

    default_dtype: str = "float32"
    problem_size: int = 1000
    repetitions: int = 20
    warmup: int = 2
    bootstrap_samples: int = 1000
    alpha: float = 0.05
    seed: int = 20220220  # arXiv submission date of the paper

    def validate(self) -> None:
        """Raise :class:`ConfigError` if any field is out of range."""
        if self.default_dtype not in ("float32", "float64"):
            raise ConfigError(
                f"default_dtype must be float32 or float64, got {self.default_dtype!r}"
            )
        if self.problem_size < 1:
            raise ConfigError(f"problem_size must be positive, got {self.problem_size}")
        if self.repetitions < 1:
            raise ConfigError(f"repetitions must be positive, got {self.repetitions}")
        if self.warmup < 0:
            raise ConfigError(f"warmup must be non-negative, got {self.warmup}")
        if self.bootstrap_samples < 1:
            raise ConfigError(
                f"bootstrap_samples must be positive, got {self.bootstrap_samples}"
            )
        if not 0.0 < self.alpha < 1.0:
            raise ConfigError(f"alpha must be in (0, 1), got {self.alpha}")


#: The process-wide configuration instance.
config = Config()


class override:
    """Context manager that temporarily overrides fields of :data:`config`.

    Example
    -------
    >>> from repro.config import config, override
    >>> with override(problem_size=50):
    ...     assert config.problem_size == 50
    """

    def __init__(self, **fields: object) -> None:
        unknown = set(fields) - {f.name for f in dataclasses.fields(Config)}
        if unknown:
            raise ConfigError(f"unknown config fields: {sorted(unknown)}")
        self._fields = fields
        self._saved: dict[str, object] = {}

    def __enter__(self) -> Config:
        for name, value in self._fields.items():
            self._saved[name] = getattr(config, name)
            setattr(config, name, value)
        try:
            config.validate()
        except ConfigError:
            # Roll back: an invalid override must not leak into the
            # process-wide config.
            self.__exit__()
            raise
        return config

    def __exit__(self, *exc: object) -> None:
        for name, value in self._saved.items():
            setattr(config, name, value)


def iter_thread_vars() -> Iterator[tuple[str, str | None]]:
    """Yield the current values of the BLAS thread environment variables."""
    for var in _BLAS_THREAD_VARS:
        yield var, os.environ.get(var)
