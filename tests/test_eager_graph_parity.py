"""Eager/graph-mode parity: the same user code must produce the same values
in both execution modes, in both frameworks — the contract that lets real
TF/PyT users move between research and deployment (paper Sec. III)."""

import numpy as np
import pytest

from repro.frameworks import pytsim, tfsim
from repro.tensor import random_general, random_vector

N = 20


@pytest.fixture(scope="module")
def args3():
    return (
        random_general(N, seed=1),
        random_general(N, seed=2),
        random_vector(N, seed=3),
    )


# (id, expression over (a, b, x)) — written with operators so the identical
# callable runs eagerly on Tensors and symbolically under tracing.
EXPRESSIONS = [
    ("matmul", lambda a, b, x: a @ b),
    ("matmul_chain", lambda a, b, x: a @ b @ x),
    ("transpose_product", lambda a, b, x: a.T @ b),
    ("gram", lambda a, b, x: (a.T @ b).T @ (a.T @ b)),
    ("gram_noparen", lambda a, b, x: (a.T @ b).T @ a.T @ b),
    ("sum_of_products", lambda a, b, x: a @ b + b @ a),
    ("self_sum", lambda a, b, x: a.T @ b + a.T @ b),
    ("difference", lambda a, b, x: a @ b - b @ a),
    ("scaled", lambda a, b, x: 2.5 * (a @ b) - a @ b * 0.5),
    ("negated", lambda a, b, x: -(a @ x)),
    ("double_transpose", lambda a, b, x: a.T.T @ x),
    ("slice_element", lambda a, b, x: (a @ b)[2, 2]),
    ("slice_block", lambda a, b, x: (a + b)[1:4, 2:6]),
    ("vector_sandwich", lambda a, b, x: x.T @ a @ x),
    ("outer_product", lambda a, b, x: x @ x.T + a),
    ("long_mixed", lambda a, b, x: (a @ b + b @ a).T @ x - a @ (b @ x)),
]


def _eager_value(fn, args):
    return fn(*args)


@pytest.mark.parametrize("name,fn", EXPRESSIONS, ids=[e[0] for e in EXPRESSIONS])
class TestParity:
    def test_tfsim_graph_matches_eager(self, args3, name, fn):
        eager = _eager_value(fn, args3)
        compiled = tfsim.function(fn)
        graph = compiled(*args3)
        assert graph.allclose(eager, rtol=1e-3, atol=1e-4), name

    def test_pytsim_graph_matches_eager(self, args3, name, fn):
        eager = _eager_value(fn, args3)
        compiled = pytsim.jit.script(fn)
        graph = compiled(*args3)
        assert graph.allclose(eager, rtol=1e-3, atol=1e-4), name

    def test_tfsim_aware_matches_eager(self, args3, name, fn):
        eager = _eager_value(fn, args3)
        compiled = tfsim.function(fn, aware=True)
        graph = compiled(*args3)
        assert graph.allclose(eager, rtol=5e-3, atol=1e-3), name

    def test_frameworks_agree(self, args3, name, fn):
        tf_out = tfsim.function(fn)(*args3)
        pyt_out = pytsim.jit.script(fn)(*args3)
        assert tf_out.allclose(pyt_out, rtol=1e-4, atol=1e-5), name


class TestNumericReference:
    """Graph-mode results against a plain-numpy oracle."""

    @pytest.mark.parametrize("name,fn", EXPRESSIONS[:8],
                             ids=[e[0] for e in EXPRESSIONS[:8]])
    def test_against_numpy(self, args3, name, fn):
        a, b, x = (t.numpy().astype(np.float64) for t in args3)

        class _Np:
            def __init__(self, v):
                self.v = v

            @property
            def T(self):
                return _Np(self.v.T)

            def __matmul__(self, o):
                return _Np(self.v @ o.v)

            def __add__(self, o):
                return _Np(self.v + o.v)

            def __sub__(self, o):
                return _Np(self.v - o.v)

            def __mul__(self, alpha):
                return _Np(self.v * alpha)

            __rmul__ = __mul__

            def __neg__(self):
                return _Np(-self.v)

            def __getitem__(self, k):
                out = self.v[k]
                return _Np(np.atleast_2d(out))

        ref = fn(_Np(a), _Np(b), _Np(x)).v
        got = tfsim.function(fn)(*args3)
        assert np.allclose(got.numpy(), ref.reshape(got.shape),
                           rtol=1e-3, atol=1e-4), name
