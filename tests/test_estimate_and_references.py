"""Tests for the pass-level FLOP estimator and the SciPy reference column."""

import numpy as np
import pytest

from repro.experiments import scipy_reference as ref
from repro.experiments.workloads import Workloads
from repro.ir import Graph, builder, trace
from repro.passes.estimate import node_flops, subtree_flops
from repro.tensor import random_general


class TestNodeFlops:
    def _inputs(self, m, k, n):
        return (
            builder.input_node((m, k), "float32"),
            builder.input_node((k, n), "float32"),
        )

    def test_plain_gemm(self):
        a, b = self._inputs(4, 5, 6)
        assert node_flops(builder.matmul(a, b)) == 2 * 4 * 5 * 6

    def test_trans_flags_change_dims(self):
        a = builder.input_node((5, 4), "float32")
        b = builder.input_node((5, 6), "float32")
        m = builder.matmul(a, b, trans_a=True)
        assert node_flops(m) == 2 * 4 * 5 * 6

    @pytest.mark.parametrize(
        "hint,expected",
        [
            ("trmm", 8 * 8 * 8),
            ("symm", 2 * 8 * 8 * 8),
            ("diag_matmul", 8 * 8),
            ("tridiagonal_matmul", 6 * 8 * 8),
            ("zero", 0),
            ("identity", 0),
        ],
    )
    def test_kernel_hints(self, hint, expected):
        a = builder.input_node((8, 8), "float32")
        b = builder.input_node((8, 8), "float32")
        m = builder.matmul(a, b, kernel=hint)
        assert node_flops(m) == expected

    def test_syrk_hint(self):
        a = builder.input_node((8, 8), "float32")
        m = builder.matmul(a, a, trans_b=True, kernel="syrk")
        assert node_flops(m) == 8 * 8 * 8

    def test_elementwise(self):
        a = builder.input_node((4, 6), "float32")
        b = builder.input_node((4, 6), "float32")
        assert node_flops(builder.add(a, b)) == 24
        assert node_flops(builder.scale(a, 2.0)) == 24
        assert node_flops(builder.transpose(a)) == 0
        assert node_flops(builder.slice_(a, 1, 2)) == 0

    def test_loop_multiplies_by_trips(self):
        idx = builder.input_node((1, 1), "float32")
        carried = builder.input_node((4, 4), "float32")
        cap = builder.input_node((4, 4), "float32")
        body = Graph(
            [builder.add(carried, builder.matmul(cap, cap))],
            inputs=[idx, carried, cap],
        )
        init = builder.input_node((4, 4), "float32")
        outer_cap = builder.input_node((4, 4), "float32")
        loop = builder.loop(body, init, [outer_cap], trip_count=5)
        per_iter = 2 * 4**3 + 16
        assert node_flops(loop) == 5 * per_iter

    def test_subtree_counts_shared_once(self):
        a = builder.input_node((8, 8), "float32")
        b = builder.input_node((8, 8), "float32")
        m = builder.matmul(a, b)
        total = subtree_flops(builder.add(m, m))
        assert total == 2 * 8**3 + 64  # one gemm + one add


class TestScipyReferences:
    @pytest.fixture(scope="class")
    def w(self):
        return Workloads(32)

    def test_gemm_reference(self, w):
        a, b = w.general(0), w.general(1)
        out = ref.gemm_reference(a.numpy(), b.numpy(), trans_a=True)
        assert np.allclose(out, a.numpy().T @ b.numpy(), atol=1e-4)

    def test_gram_reference(self, w):
        a, b = w.general(0), w.general(1)
        s = a.numpy().T @ b.numpy()
        assert np.allclose(ref.gram_reference(a.numpy(), b.numpy()),
                           s.T @ s, atol=1e-3)

    def test_trmm_reference(self, w):
        l, b = w.lower_triangular(), w.general(1)
        assert np.allclose(ref.trmm_reference(l.numpy(), b.numpy()),
                           l.numpy() @ b.numpy(), atol=1e-4)

    def test_syrk_reference(self, w):
        a = w.general(0)
        assert np.allclose(ref.syrk_reference(a.numpy()),
                           a.numpy() @ a.numpy().T, atol=1e-4)

    def test_tridiag_reference(self, w):
        t, b = w.tridiagonal(), w.general(1)
        assert np.allclose(ref.tridiag_scal_reference(t.numpy(), b.numpy()),
                           t.numpy() @ b.numpy(), atol=1e-4)

    def test_diag_reference(self, w):
        d, b = w.diagonal(), w.general(1)
        assert np.allclose(ref.diag_scale_reference(d.numpy(), b.numpy()),
                           d.numpy() @ b.numpy(), atol=1e-4)

    def test_dot_reference(self, w):
        a, b = w.general(0), w.general(1)
        got = ref.dot_reference(a.numpy()[2, :], b.numpy()[:, 2])
        assert got == pytest.approx(float(a.numpy()[2, :] @ b.numpy()[:, 2]),
                                    rel=1e-4)


class TestWorkloads:
    def test_reproducible_across_instances(self):
        w1, w2 = Workloads(16), Workloads(16)
        assert np.array_equal(w1.general(0).numpy(), w2.general(0).numpy())
        assert np.array_equal(w1.vector(1).numpy(), w2.vector(1).numpy())

    def test_tags_give_distinct_data(self):
        w = Workloads(16)
        assert not np.array_equal(w.general(0).numpy(), w.general(1).numpy())

    def test_blocks_shapes(self):
        w = Workloads(16)
        a1, a2, b1, b2 = w.blocks()
        assert a1.shape == (8, 8) and b1.shape == (8, 16)

    def test_structured_annotations(self):
        from repro.tensor.properties import Property

        w = Workloads(16)
        assert Property.LOWER_TRIANGULAR in w.lower_triangular().props
        assert Property.TRIDIAGONAL in w.tridiagonal().props
        assert Property.DIAGONAL in w.diagonal().props
        assert Property.ORTHOGONAL in w.orthogonal().props
        assert Property.SPD in w.spd().props

    def test_fortran_helper(self):
        w = Workloads(8)
        f = w.fortran(w.general(0))
        assert f.flags["F_CONTIGUOUS"]
        assert np.array_equal(f, w.general(0).numpy())

    def test_flops_model_matches_interpreter(self):
        """The estimator and the interpreter must agree on executed FLOPs
        for hint-free graphs (same cost model end to end)."""
        from repro.ir import run_graph

        w = Workloads(12)
        a, b, x = w.general(0), w.general(1), w.vector(0)
        g = trace(lambda p, q, v: (p @ q) @ v + v, [a, b, x])
        _, report = run_graph(g, [a.data, b.data, x.data])
        assert subtree_flops(g.outputs[0]) == report.total_flops
