"""Persistent content-addressed plan store — cross-run warm starts.

The in-process :class:`~repro.runtime.cache.PlanCache` dedupes traces
*within* a run; :mod:`repro.runtime.persist` proved the same signatures
recur *across* runs and priced the recompiles.  This module closes that
loop: compiled plans are persisted as versioned on-disk artifacts, so a
cold ``Session`` (or a freshly spawned shard worker) rebuilds a plan
from the store instead of re-deriving it.

What an artifact is
-------------------
A plan cannot ship its instruction closures (they capture f2py
routines), but it *can* ship the optimized graph it was compiled from —
the :mod:`~repro.runtime.serialize` payload — plus the compile knobs.
Loading therefore re-lowers (one ``compile_plan``), but skips the trace
*and the whole optimization pipeline*, which on the dispatch-bound
bench workload is ~3/4 of a cold build.  Artifacts are addressed two
ways:

* ``objects/<digest>-<fold><fuse>.plan`` — the canonical artifact,
  keyed by :func:`~repro.runtime.persist.signature_digest` of the
  *optimized* graph's signature (exactly the :class:`PlanCache` key),
  holding a header (format version, runtime fingerprint, knobs, the
  creator's build cost) and the structural payload with large ndarray
  consts split out;
* ``objects/<key>.c<i>.npy`` — const sidecars, loaded back with
  ``np.load(mmap_mode="r")`` so warm starts *map* const bytes (shared
  page cache across N shard workers) instead of copying them;
* ``aliases/<digest>`` — tiny JSON pointers keyed by the *traced*
  graph's signature plus pipeline identity (backend, pipeline choice,
  knobs), which is what lets ``Session._build`` jump from a fresh trace
  straight to the artifact without running a single pass.

Multi-process safety: every file is written to a same-directory temp
name and published with ``os.replace`` — sidecars strictly before the
``.plan`` file that references them — so concurrent sessions and shard
workers never observe a torn artifact; the worst race is two writers
producing identical content, last ``rename`` wins.

Invalidation is explicit and versioned: each header carries
:data:`STORE_FORMAT_VERSION` and :func:`runtime_fingerprint` (kernel
registry + pass pipelines + payload format).  Any mismatch — and any
corruption: truncated pickle, garbage bytes, missing sidecar, a payload
that no longer compiles — degrades to a silent recompile, counted in
:class:`StoreStats` as ``corrupt_evicted``, never an exception on the
load path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import pickle
import threading
import time

import numpy as np

from .. import faults
from ..ir.graph import Graph
from .compiler import compile_plan
from .persist import signature_digest
from .plan import Plan
from .serialize import (
    PAYLOAD_VERSION,
    graph_from_payload,
    graph_to_payload,
    join_payload_consts,
    split_payload_consts,
)
from .signature import graph_signature

__all__ = ["PlanStore", "StoreStats", "GCStats", "runtime_fingerprint",
           "STORE_FORMAT_VERSION", "DEFAULT_MMAP_THRESHOLD",
           "DEFAULT_GC_GRACE_SECONDS"]

#: Artifact layout version — bumped on any change to the on-disk shape.
STORE_FORMAT_VERSION = 1

#: Const payloads at or above this many bytes leave the artifact body
#: for an ``.npy`` sidecar (mmap-loaded).  Below it, a file-per-array
#: costs more than it saves.
DEFAULT_MMAP_THRESHOLD = 4096

#: GC never touches a file younger than this (seconds).  Publishes are
#: ordered sidecars → ``.plan`` → alias, each atomic but the *sequence*
#: is not: an artifact whose alias is still being written looks
#: unreferenced, and a freshly published alias can look dangling while a
#: concurrent eviction races its target.  The grace window is what makes
#: "never evict an artifact referenced by a live alias mid-publish" hold.
DEFAULT_GC_GRACE_SECONDS = 60.0

_write_counter = itertools.count()

_fingerprint_lock = threading.Lock()
_fingerprint: str | None = None


def runtime_fingerprint() -> str:
    """Digest of everything that shapes a compiled plan besides the graph.

    Covers the kernel registry (names, priorities, descriptions — a new
    or re-prioritized kernel changes which BLAS call a node lowers to),
    both optimization pipelines of :mod:`repro.passes` (pass identity
    and order), and the serialize/store format versions.  Baked into
    every artifact header: a stored plan from an older checkout is a
    *miss*, not a wrong answer.  Computed once per process.
    """
    global _fingerprint
    if _fingerprint is not None:
        return _fingerprint
    with _fingerprint_lock:
        if _fingerprint is None:
            from ..kernels.registry import default_registry
            from ..passes import aware_pipeline, default_pipeline

            parts = [
                f"store:{STORE_FORMAT_VERSION}",
                f"payload:{PAYLOAD_VERSION}",
            ]
            for k in default_registry:
                parts.append(f"kernel:{k.name}:{k.priority}:{k.description}")
            for name, pipe in (
                ("default", default_pipeline()),
                ("aware", aware_pipeline()),
            ):
                passes = "->".join(p.name for p in pipe.passes)
                parts.append(f"pipeline:{name}:{passes}")
            _fingerprint = hashlib.sha1(
                "\n".join(parts).encode()
            ).hexdigest()
    return _fingerprint


@dataclasses.dataclass
class StoreStats:
    """Counters of one :class:`PlanStore` instance (process-local)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Artifacts dropped on the load path: corruption, missing sidecars,
    #: stale format versions or runtime fingerprints.
    corrupt_evicted: int = 0
    #: Const bytes served via ``np.load(mmap_mode="r")`` across all hits.
    bytes_mapped: int = 0
    #: Wall seconds spent inside successful artifact loads.
    load_seconds: float = 0.0
    #: Estimated build seconds warm starts avoided: per hit, the
    #: creator's recorded trace+optimize cost minus this load's cost.
    seconds_saved: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclasses.dataclass(frozen=True)
class GCStats:
    """What one :meth:`PlanStore.gc` sweep found and freed."""

    artifacts_before: int
    artifacts_evicted: int
    bytes_before: int
    bytes_freed: int
    aliases_swept: int
    #: Orphan files removed: sidecars whose ``.plan`` is gone, and
    #: abandoned ``.tmp`` files from publishers that died mid-write.
    orphans_removed: int

    @property
    def bytes_after(self) -> int:
        return self.bytes_before - self.bytes_freed

    def render(self) -> str:
        return (
            f"store gc: {self.artifacts_evicted}/{self.artifacts_before} "
            f"artifact(s) evicted | {self.bytes_freed / 1024:.1f} KiB freed "
            f"({self.bytes_before / 1024:.1f} -> "
            f"{self.bytes_after / 1024:.1f} KiB) | "
            f"{self.aliases_swept} dangling alias(es) swept | "
            f"{self.orphans_removed} orphan file(s) removed"
        )


class PlanStore:
    """Content-addressed on-disk plan artifacts under one ``root`` dir.

    Thread-safe; multi-process-safe by construction (atomic publishes,
    see the module docstring).  Stats are per-instance — a shard worker
    opening the same directory accounts its own loads.
    """

    def __init__(
        self, root: "str | os.PathLike", *,
        mmap_threshold: int = DEFAULT_MMAP_THRESHOLD,
        max_bytes: "int | None" = None,
        gc_grace_seconds: float = DEFAULT_GC_GRACE_SECONDS,
    ) -> None:
        self.root = os.fspath(root)
        self.mmap_threshold = int(mmap_threshold)
        #: Soft size cap of ``objects/``: every write that grows the
        #: store checks it and runs :meth:`gc` when exceeded.  ``None``
        #: leaves collection to explicit ``gc()`` / ``laab store-gc``.
        self.max_bytes = max_bytes
        self.gc_grace_seconds = float(gc_grace_seconds)
        self._objects = os.path.join(self.root, "objects")
        self._aliases = os.path.join(self.root, "aliases")
        os.makedirs(self._objects, exist_ok=True)
        os.makedirs(self._aliases, exist_ok=True)
        self.stats = StoreStats()
        self._lock = threading.Lock()

    # -- keys ------------------------------------------------------------------

    def plan_key(
        self, signature: tuple, *, fold_constants: bool, fusion: bool
    ) -> str:
        """Artifact key of a plan: optimized-signature digest + knobs —
        the on-disk spelling of the :class:`PlanCache` key."""
        return (
            f"{signature_digest(signature)}-"
            f"{int(bool(fold_constants))}{int(bool(fusion))}"
        )

    def trace_key(
        self, graph: Graph, *, backend: str, pipeline: str,
        fold_constants: bool, fusion: bool,
    ) -> str:
        """Alias key of a *traced* (pre-optimization) graph.

        Pipeline identity takes part: the same trace optimized by the
        ``default`` and ``aware`` pipelines yields different plans, so
        each (backend, pipeline, knobs) combination aliases separately.
        """
        return signature_digest((
            "trace", graph_signature(graph), str(backend), str(pipeline),
            bool(fold_constants), bool(fusion),
        ))

    def _plan_path(self, key: str) -> str:
        return os.path.join(self._objects, f"{key}.plan")

    def _sidecar_name(self, key: str, index: int) -> str:
        return f"{key}.c{index}.npy"

    # -- atomic file plumbing --------------------------------------------------

    def _publish(self, path: str, writer) -> None:
        """Write via ``writer(fh)`` to a same-directory temp file, then
        ``os.replace`` into place — the torn-artifact guard."""
        tmp = f"{path}.{os.getpid()}.{next(_write_counter)}.tmp"
        try:
            with open(tmp, "wb") as fh:
                writer(fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _evict(self, key: str) -> None:
        """Best-effort removal of an artifact and its sidecars (the
        ``corrupt_evicted`` path — a later write recreates them)."""
        try:
            names = os.listdir(self._objects)
        except OSError:
            names = []
        for name in names:
            if name == f"{key}.plan" or (
                name.startswith(f"{key}.c") and name.endswith(".npy")
            ):
                try:
                    os.unlink(os.path.join(self._objects, name))
                except OSError:
                    pass
        with self._lock:
            self.stats.corrupt_evicted += 1
            self.stats.misses += 1

    def _miss(self) -> None:
        with self._lock:
            self.stats.misses += 1

    # -- writes ----------------------------------------------------------------

    def put_plan(
        self, plan: Plan, *, cold_seconds: float = 0.0,
    ) -> str | None:
        """Persist ``plan`` (a ``compile_plan`` product); returns its key.

        Idempotent and cheap on re-put: an existing artifact file is
        left alone (content addressing — same key, same content).
        Hand-built plans without a source graph return ``None``.
        ``cold_seconds`` is the full build cost the writer paid
        (trace + optimize + compile); stored in the header so loads can
        report the seconds a warm start saved.
        """
        if plan.source is None:
            return None
        graph, fold_constants, fusion = plan.source
        key = self.plan_key(
            plan.signature, fold_constants=fold_constants, fusion=fusion
        )
        path = self._plan_path(key)
        if os.path.exists(path):
            return key
        payload = graph_to_payload(graph)
        stripped, arrays = split_payload_consts(payload, self.mmap_threshold)
        consts = []
        # Sidecars publish before the .plan that references them: a
        # reader that sees the artifact always sees its consts.
        for i, arr in enumerate(arrays):
            name = self._sidecar_name(key, i)
            self._publish(
                os.path.join(self._objects, name),
                lambda fh, arr=arr: np.save(fh, arr, allow_pickle=False),
            )
            consts.append({"file": name, "nbytes": int(arr.nbytes)})
        artifact = {
            "format": STORE_FORMAT_VERSION,
            "fingerprint": runtime_fingerprint(),
            "key": key,
            "fold_constants": bool(fold_constants),
            "fusion": bool(fusion),
            "payload": stripped,
            "consts": consts,
            "cold_seconds": float(cold_seconds),
            "compile_seconds": float(plan.compile_seconds),
        }
        blob = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
        self._publish(path, lambda fh: fh.write(blob))
        with self._lock:
            self.stats.writes += 1
        if self.max_bytes is not None:
            _, nbytes = self.disk_stats()
            if nbytes > self.max_bytes:
                self.gc(max_bytes=self.max_bytes)
        return key

    def put_alias(
        self, trace_key: str, plan_key: str, *,
        record: "dict | None" = None, overwrite: bool = False,
    ) -> None:
        """Point ``aliases/<trace_key>`` at ``plan_key`` (idempotent).

        ``record`` attaches a JSON-able dict to the alias — the autotune
        promotion path stores the winner's derivation record and
        measured cost here, which is how a warm restart knows the plan
        it loaded was a tuned winner.  ``overwrite=True`` repoints an
        existing alias (promotion re-aliases the trace to the winning
        artifact); the default keeps the first write, as before.
        """
        path = os.path.join(self._aliases, trace_key)
        if os.path.exists(path) and not overwrite:
            return
        spec = {
            "format": STORE_FORMAT_VERSION,
            "fingerprint": runtime_fingerprint(),
            "target": plan_key,
        }
        if record is not None:
            spec["record"] = record
        blob = json.dumps(spec).encode()
        self._publish(path, lambda fh: fh.write(blob))

    # -- loads (never raise) ---------------------------------------------------

    def _load_alias_spec(self, trace_key: str) -> "dict | None":
        path = os.path.join(self._aliases, trace_key)
        try:
            with open(path, "rb") as fh:
                spec = json.loads(fh.read())
            if spec["format"] != STORE_FORMAT_VERSION or \
                    spec["fingerprint"] != runtime_fingerprint():
                raise ValueError("stale alias")
            target = spec["target"]
            if not isinstance(target, str):
                raise ValueError("bad alias target")
            return spec
        except FileNotFoundError:
            return None
        except Exception:
            # Garbage or stale alias: drop it so the next build rewrites.
            try:
                os.unlink(path)
            except OSError:
                pass
            with self._lock:
                self.stats.corrupt_evicted += 1
            return None

    def _load_alias(self, trace_key: str) -> str | None:
        spec = self._load_alias_spec(trace_key)
        return None if spec is None else spec["target"]

    def _load_artifact(self, key: str) -> "tuple[Graph, dict] | None":
        """Artifact ``key`` → (optimized graph, header) with hit/miss/
        corrupt accounting; consts arrive as read-only mmap views.
        """
        path = self._plan_path(key)
        start = time.perf_counter()
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            self._miss()
            return None
        spec = faults.fire("store.load")
        if spec is not None and spec.action == "corrupt":
            # Injected torn artifact: exercises the real corruption
            # path below (decode fails → evict → silent recompile).
            blob = blob[: len(blob) // 2]
        try:
            artifact = pickle.loads(blob)
            if artifact["format"] != STORE_FORMAT_VERSION or \
                    artifact["fingerprint"] != runtime_fingerprint():
                raise ValueError("stale artifact")
            arrays = []
            mapped = 0
            for ref in artifact["consts"]:
                arr = np.load(
                    os.path.join(self._objects, ref["file"]),
                    mmap_mode="r", allow_pickle=False,
                )
                arrays.append(arr)
                mapped += int(arr.nbytes)
            payload = join_payload_consts(artifact["payload"], arrays)
            # Node validation and shape inference re-run here — a
            # mangled payload raises instead of building a wrong graph.
            graph = graph_from_payload(payload)
        except Exception:
            self._evict(key)
            return None
        elapsed = time.perf_counter() - start
        with self._lock:
            self.stats.hits += 1
            self.stats.bytes_mapped += mapped
            self.stats.load_seconds += elapsed
            # What the warm start skipped: the creator's trace+pipeline
            # cost (full build minus its compile — a load re-lowers, so
            # the compile is paid on both sides) minus this load.
            skipped = float(artifact.get("cold_seconds", 0.0)) - \
                float(artifact.get("compile_seconds", 0.0))
            self.stats.seconds_saved += max(0.0, skipped - elapsed)
        return graph, artifact

    def load_graph(
        self, trace_key: "str | None" = None, *, plan_key: "str | None" = None,
    ) -> "Graph | None":
        """The stored *optimized* graph for a trace alias or plan key.

        This is the Session warm-start entry point: give it the
        :meth:`trace_key` of a fresh trace and, on a hit, feed the
        returned graph to the plan cache — no pipeline pass runs.
        Returns ``None`` on miss/corruption (accounted, never raised).
        """
        if (trace_key is None) == (plan_key is None):
            raise TypeError("pass exactly one of trace_key/plan_key")
        if plan_key is None:
            return self.load_graph_with_record(trace_key)[0]
        loaded = self._load_artifact(plan_key)
        return None if loaded is None else loaded[0]

    def load_graph_with_record(
        self, trace_key: str
    ) -> "tuple[Graph | None, dict | None]":
        """Like :meth:`load_graph` (trace-alias form), also returning the
        alias's attached ``record``.

        The record is how restarted sessions recognize an autotuned
        winner: a promotion re-aliased this trace key to the winning
        artifact and attached its derivation record, so a warm start
        that sees one restores the promotion with zero re-tuning.
        """
        spec = self._load_alias_spec(trace_key)
        if spec is None:
            self._miss()
            return None, None
        loaded = self._load_artifact(spec["target"])
        if loaded is None:
            return None, None
        record = spec.get("record")
        return loaded[0], record if isinstance(record, dict) else None

    def load_plan(self, plan_key: str) -> "Plan | None":
        """Artifact → compiled :class:`Plan` (the shard-worker path).

        Re-lowers with the knobs from the artifact header.  Any failure
        — including a payload that decodes but no longer compiles —
        degrades to ``None`` with ``corrupt_evicted`` accounting.
        """
        loaded = self._load_artifact(plan_key)
        if loaded is None:
            return None
        graph, artifact = loaded
        try:
            return compile_plan(
                graph,
                fold_constants=artifact["fold_constants"],
                fusion=artifact["fusion"],
            )
        except Exception:
            # The hit was already counted; reclassify as an eviction.
            with self._lock:
                self.stats.hits -= 1
            self._evict(plan_key)
            return None

    # -- garbage collection ----------------------------------------------------

    def gc(
        self, *,
        max_bytes: "int | None" = None,
        grace_seconds: "float | None" = None,
    ) -> GCStats:
        """Bound the store: sweep garbage, then evict LRU-by-atime.

        Three phases, all best-effort and multi-process-safe:

        1. **Orphan removal** — abandoned ``.tmp`` files and sidecars
           whose ``.plan`` is gone (a dead publisher, or a previous
           eviction interrupted partway).
        2. **Dangling-alias sweep** — aliases whose target artifact no
           longer exists (evicted or corrupt-evicted).
        3. **Size-cap eviction** — when ``max_bytes`` is set (argument,
           else the store's ``max_bytes``), whole artifacts (``.plan`` +
           sidecars) are evicted least-recently-*accessed* first until
           ``objects/`` fits; aliases pointing at an evicted artifact
           are swept in the same pass.

        Nothing younger than the grace window is touched: a publish is a
        *sequence* of atomic renames (sidecars → ``.plan`` → alias), so
        an artifact referenced by an alias still mid-publish always
        looks "fresh" and survives — that is the no-torn-eviction
        guarantee.  Every deletion tolerates a concurrent deleter.
        """
        grace = self.gc_grace_seconds if grace_seconds is None \
            else float(grace_seconds)
        if max_bytes is None:
            max_bytes = self.max_bytes
        now = time.time()

        def fresh(st: os.stat_result) -> bool:
            return now - st.st_mtime < grace

        # One scan of objects/: size, atime, freshness per file.
        files: dict[str, os.stat_result] = {}
        try:
            names = os.listdir(self._objects)
        except OSError:
            names = []
        for name in names:
            try:
                files[name] = os.stat(os.path.join(self._objects, name))
            except OSError:
                continue
        plan_keys = {n[: -len(".plan")] for n in files if n.endswith(".plan")}
        alias_bytes = 0
        alias_targets: dict[str, str] = {}
        try:
            alias_names = os.listdir(self._aliases)
        except OSError:
            alias_names = []
        for name in alias_names:
            path = os.path.join(self._aliases, name)
            try:
                alias_bytes += os.path.getsize(path)
                with open(path, "rb") as fh:
                    target = json.loads(fh.read()).get("target")
                alias_targets[name] = target if isinstance(target, str) else ""
            except OSError:
                continue
            except Exception:
                alias_targets[name] = ""  # unreadable → dangling
        bytes_before = sum(st.st_size for st in files.values()) + alias_bytes
        artifacts_before = len(plan_keys)
        freed = 0
        orphans = 0
        aliases_swept = 0
        evicted = 0

        def unlink(path: str, size: int) -> int:
            nonlocal freed
            try:
                os.unlink(path)
            except OSError:
                return 0
            freed += size
            return 1

        # Phase 1: orphans.
        for name, st in list(files.items()):
            if fresh(st):
                continue
            is_tmp = name.endswith(".tmp")
            is_orphan_sidecar = (
                name.endswith(".npy") and ".c" in name
                and name.rsplit(".c", 1)[0] not in plan_keys
            )
            if is_tmp or is_orphan_sidecar:
                n = unlink(os.path.join(self._objects, name), st.st_size)
                orphans += n
                if n:
                    del files[name]

        # Phase 2: dangling aliases.
        for name, target in list(alias_targets.items()):
            path = os.path.join(self._aliases, name)
            if target and f"{target}.plan" in files:
                continue
            try:
                st = os.stat(path)
            except OSError:
                continue
            if fresh(st):
                continue
            n = unlink(path, st.st_size)
            aliases_swept += n
            if n:
                del alias_targets[name]

        # Phase 3: size-cap eviction, LRU by access time.
        if max_bytes is not None:
            groups: dict[str, list[str]] = {k: [] for k in plan_keys}
            for name in files:
                if name.endswith(".plan"):
                    groups[name[: -len(".plan")]].append(name)
                elif name.endswith(".npy") and ".c" in name:
                    key = name.rsplit(".c", 1)[0]
                    if key in groups:
                        groups[key].append(name)
            total = sum(st.st_size for st in files.values())
            order = sorted(
                groups,
                key=lambda k: files[f"{k}.plan"].st_atime,
            )
            for key in order:
                if total <= max_bytes:
                    break
                if fresh(files[f"{key}.plan"]):
                    continue  # possibly mid-publish: never evict
                evicted += 1
                for name in groups[key]:
                    size = files[name].st_size
                    if unlink(os.path.join(self._objects, name), size):
                        total -= size
                for name, target in list(alias_targets.items()):
                    if target == key:
                        path = os.path.join(self._aliases, name)
                        try:
                            size = os.path.getsize(path)
                        except OSError:
                            continue
                        aliases_swept += unlink(path, size)
                        del alias_targets[name]
        return GCStats(
            artifacts_before=artifacts_before,
            artifacts_evicted=evicted,
            bytes_before=bytes_before,
            bytes_freed=freed,
            aliases_swept=aliases_swept,
            orphans_removed=orphans,
        )

    # -- reporting -------------------------------------------------------------

    def disk_stats(self) -> tuple[int, int]:
        """(artifact count, total bytes on disk) — aliases included in
        the byte total, ``.plan`` files in the count."""
        plans = 0
        total = 0
        for d in (self._objects, self._aliases):
            try:
                names = os.listdir(d)
            except OSError:
                continue
            for name in names:
                try:
                    total += os.path.getsize(os.path.join(d, name))
                except OSError:
                    continue
                plans += name.endswith(".plan")
        return plans, total

    def render(self) -> str:
        """One-paragraph report for ``laab cache-stats --store``."""
        plans, nbytes = self.disk_stats()
        s = self.stats
        return (
            f"plan store: {self.root}\n"
            f"  {plans} artifact(s), {nbytes / 1024:.1f} KiB on disk\n"
            f"  {s.hits} hits / {s.misses} misses / {s.writes} writes / "
            f"{s.corrupt_evicted} corrupt evicted "
            f"(hit rate {s.hit_rate:.1%})\n"
            f"  {s.bytes_mapped / 1024:.1f} KiB consts mmapped | "
            f"{s.load_seconds:.4f}s loading | "
            f"~{s.seconds_saved:.4f}s build time saved"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats
        return (
            f"<PlanStore {self.root!r} {s.hits}h/{s.misses}m/"
            f"{s.writes}w/{s.corrupt_evicted}c>"
        )
