"""PlanCache and graph-signature correctness.

The satellite contract: two structurally identical graphs built
independently must collide in the cache; graphs differing only in a
property annotation or an attr (e.g. ``trans_a``) must not.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.frameworks import pytsim, tfsim
from repro.ir import Graph, builder, trace
from repro.runtime import PlanCache, default_plan_cache, graph_signature
from repro.tensor import random_general
from repro.tensor.properties import Property


def _inputs(n=8, dtype="float32"):
    a = builder.input_node((n, n), dtype, name="a")
    b = builder.input_node((n, n), dtype, name="b")
    return a, b


class TestGraphSignature:
    def test_independent_traces_collide(self, operands):
        """Same Python function, two traces → different node names/ids,
        same signature."""
        fn = lambda a, b: (a.T @ b).T @ (a.T @ b)  # noqa: E731
        g1 = trace(fn, [operands["A"], operands["B"]])
        g2 = trace(fn, [operands["A"], operands["B"]])
        assert g1 is not g2
        assert graph_signature(g1) == graph_signature(g2)

    def test_attr_difference_separates(self):
        a1, b1 = _inputs()
        a2, b2 = _inputs()
        g_plain = Graph([builder.matmul(a1, b1)], inputs=[a1, b1])
        g_trans = Graph(
            [builder.matmul(a2, b2, trans_a=True)], inputs=[a2, b2]
        )
        assert graph_signature(g_plain) != graph_signature(g_trans)

    def test_property_annotation_separates(self):
        n = 8
        plain = builder.input_node((n, n), "float32", name="p")
        annotated = builder.input_node(
            (n, n), "float32", name="p",
            props=frozenset({Property.SYMMETRIC}),
        )
        g1 = Graph([builder.matmul(plain, plain)], inputs=[plain])
        g2 = Graph([builder.matmul(annotated, annotated)], inputs=[annotated])
        assert graph_signature(g1) != graph_signature(g2)

    def test_shape_and_dtype_separate(self, operands):
        fn = lambda a: a @ a  # noqa: E731
        g1 = trace(fn, [operands["A"]])
        g2 = trace(fn, [random_general(8, seed=1)])
        assert graph_signature(g1) != graph_signature(g2)

    def test_const_payload_separates(self):
        a1, _ = _inputs()
        a2, _ = _inputs()
        c1 = builder.const(np.ones((8, 8), dtype=np.float32))
        c2 = builder.const(np.zeros((8, 8), dtype=np.float32))
        g1 = Graph([builder.add(a1, c1)], inputs=[a1])
        g2 = Graph([builder.add(a2, c2)], inputs=[a2])
        assert graph_signature(g1) != graph_signature(g2)

    def test_loop_bodies_compared_structurally(self, operands):
        """Bodies with equal op histograms but different wiring must not
        collide (a repr()-based key would)."""
        a, b = operands["A"], operands["B"]

        def make(body):
            def fn(p, q):
                return tfsim.fori_loop(2, body, tfsim.zeros(*p.shape), [p, q])

            return trace(fn, [a, b])

        g_ab = make(lambda i, acc, aa, bb: acc + aa @ bb)
        g_ba = make(lambda i, acc, aa, bb: acc + bb @ aa)
        g_ab2 = make(lambda i, acc, aa, bb: acc + aa @ bb)
        assert graph_signature(g_ab) != graph_signature(g_ba)
        assert graph_signature(g_ab) == graph_signature(g_ab2)

    def test_output_selection_separates(self):
        a, b = _inputs()
        prod = builder.matmul(a, b)
        total = builder.add(prod, prod)
        g_one = Graph([total], inputs=[a, b])
        g_two = Graph([prod, total], inputs=[a, b])
        assert graph_signature(g_one) != graph_signature(g_two)


class TestPlanCache:
    def test_structural_hit(self, operands):
        cache = PlanCache(maxsize=8)
        fn = lambda a, b: a.T @ b + a.T @ b  # noqa: E731
        g1 = trace(fn, [operands["A"], operands["B"]])
        g2 = trace(fn, [operands["A"], operands["B"]])
        p1 = cache.get(g1)
        p2 = cache.get(g2)
        assert p1 is p2
        assert len(cache) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_attr_and_props_miss(self, operands):
        cache = PlanCache(maxsize=8)
        a1, b1 = _inputs()
        a2, b2 = _inputs()
        cache.get(Graph([builder.matmul(a1, b1)], inputs=[a1, b1]))
        cache.get(Graph([builder.matmul(a2, b2, trans_a=True)],
                        inputs=[a2, b2]))
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        assert len(cache) == 2

    def test_lru_eviction(self, operands):
        cache = PlanCache(maxsize=2)
        graphs = [
            trace(lambda a: a @ a, [random_general(n, seed=n)])
            for n in (4, 5, 6)
        ]
        for g in graphs:
            cache.get(g)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert not cache.contains(graphs[0])  # oldest evicted
        assert cache.contains(graphs[1]) and cache.contains(graphs[2])

    def test_lru_order_refreshed_by_hits(self):
        cache = PlanCache(maxsize=2)
        g4 = trace(lambda a: a @ a, [random_general(4, seed=1)])
        g5 = trace(lambda a: a @ a, [random_general(5, seed=1)])
        g6 = trace(lambda a: a @ a, [random_general(6, seed=1)])
        cache.get(g4)
        cache.get(g5)
        cache.get(g4)  # refresh g4 → g5 becomes LRU
        cache.get(g6)
        assert cache.contains(g4) and cache.contains(g6)
        assert not cache.contains(g5)

    def test_fold_constants_keys_separately(self):
        a, b = _inputs()
        g = Graph([builder.matmul(a, b)], inputs=[a, b])
        cache = PlanCache(maxsize=8)
        p1 = cache.get(g)
        p2 = cache.get(g, fold_constants=True)
        assert p1 is not p2
        assert len(cache) == 2

    def test_clear_resets(self):
        cache = PlanCache(maxsize=8)
        cache.get(trace(lambda a: a @ a, [random_general(4, seed=1)]))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)


class TestPlanCacheConcurrency:
    def test_same_signature_compiles_exactly_once(self, monkeypatch):
        """Two threads racing one signature must trigger a single compile
        (single-flight): the loser waits for the leader's plan instead of
        compiling a duplicate that gets thrown away."""
        import threading
        import time as _time

        from repro.runtime import cache as cache_module

        compile_calls = []
        real_compile = cache_module.compile_plan

        def slow_compile(graph, **kwargs):
            compile_calls.append(threading.get_ident())
            _time.sleep(0.05)  # widen the race window
            return real_compile(graph, **kwargs)

        monkeypatch.setattr(cache_module, "compile_plan", slow_compile)
        cache = PlanCache(maxsize=8)
        fn = lambda a: a @ a + a  # noqa: E731
        graphs = [trace(fn, [random_general(8, seed=1)]) for _ in range(2)]
        plans: list = [None, None]
        barrier = threading.Barrier(2)

        def worker(i):
            barrier.wait()
            plans[i] = cache.get(graphs[i])

        threads = [threading.Thread(target=worker, args=(i,)) for i in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(compile_calls) == 1
        assert plans[0] is plans[1]
        assert cache.stats.misses == 1  # misses == compiles performed
        assert cache.stats.hits == 1
        assert len(cache) == 1

    def test_failed_compile_releases_waiters(self, monkeypatch):
        """If the leading compile raises, waiters retry (electing a new
        leader) instead of deadlocking on the in-flight event."""
        import threading

        from repro.errors import GraphError
        from repro.runtime import cache as cache_module

        real_compile = cache_module.compile_plan
        calls = []

        def flaky_compile(graph, **kwargs):
            calls.append(None)
            if len(calls) == 1:
                raise GraphError("injected failure")
            return real_compile(graph, **kwargs)

        monkeypatch.setattr(cache_module, "compile_plan", flaky_compile)
        cache = PlanCache(maxsize=8)
        g = trace(lambda a: a @ a, [random_general(8, seed=2)])
        with pytest.raises(GraphError):
            cache.get(g)
        plan = cache.get(g)  # retry succeeds, no stale in-flight entry
        assert plan is not None
        assert len(calls) == 2

    def test_clear_during_inflight_compile_stays_cleared(self, monkeypatch):
        """A compile that started before clear() must not publish into
        the cleared cache or corrupt its fresh counters."""
        import threading

        from repro.runtime import cache as cache_module

        real_compile = cache_module.compile_plan
        started = threading.Event()
        release = threading.Event()

        def gated_compile(graph, **kwargs):
            started.set()
            release.wait(timeout=5)
            return real_compile(graph, **kwargs)

        monkeypatch.setattr(cache_module, "compile_plan", gated_compile)
        cache = PlanCache(maxsize=8)
        g = trace(lambda a: a @ a, [random_general(8, seed=3)])
        plans = []
        t = threading.Thread(target=lambda: plans.append(cache.get(g)))
        t.start()
        started.wait(timeout=5)
        cache.clear()  # reset while the compile is in flight
        release.set()
        t.join()
        assert plans[0] is not None  # the caller still got its plan...
        assert len(cache) == 0  # ...but the cleared cache stayed empty
        assert cache.stats.misses == 0 and cache.stats.hits == 0
        monkeypatch.setattr(cache_module, "compile_plan", real_compile)
        cache.get(g)  # post-clear compile publishes normally
        assert len(cache) == 1
        assert cache.stats.misses == 1

    def test_many_threads_distinct_signatures_not_serialized(self):
        """Distinct keys compile concurrently (compile happens outside the
        lock); smoke-check correctness under churn."""
        import threading

        cache = PlanCache(maxsize=16)
        sizes = (4, 5, 6, 7)
        results: dict[int, object] = {}

        def worker(n):
            g = trace(lambda a: a @ a, [random_general(n, seed=n)])
            results[n] = cache.get(g)

        threads = [threading.Thread(target=worker, args=(n,)) for n in sizes]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) == len(sizes)
        assert all(results[n] is not None for n in sizes)


class TestFrameworkIntegration:
    def test_same_expression_shares_plan_across_frameworks(self, operands):
        """tfsim and pytsim traces of one expression land on one plan in
        the process-wide cache — the cross-trace dedup the tentpole asks
        for."""

        @tfsim.function
        def f(a, b):
            return (a.T @ b).T @ (a.T @ b)

        @pytsim.jit.script
        def g(a, b):
            return (a.T @ b).T @ (a.T @ b)

        a, b = operands["A"], operands["B"]
        plan_tf = f.get_concrete(a, b).plan
        plan_pyt = g.get_concrete(a, b).plan
        assert plan_tf is plan_pyt

    def test_default_cache_is_processwide(self):
        assert default_plan_cache() is default_plan_cache()

    def test_call_results_unchanged_by_cache_hits(self, operands):
        @tfsim.function
        def f(a, b):
            return a @ b

        a, b = operands["A"], operands["B"]
        first = f(a, b)
        second = f(a, b)
        assert first.numpy().tobytes() == second.numpy().tobytes()
        ref = a.numpy() @ b.numpy()
        np.testing.assert_allclose(first.numpy(), ref, rtol=1e-5)
