"""Backend registry: named :class:`FrameworkProfile` s.

A *backend* is one simulated framework front-end — its identity, its
paper-reported decorator overhead, and the optimization pipelines its
graph mode runs.  ``tfsim`` and ``pytsim`` register their profiles when
:mod:`repro.frameworks` is imported; :func:`backend` imports it lazily on
first lookup, so ``repro.api.backend("tfsim")`` works from a cold start.

The registry exists so :class:`~repro.api.session.Session` can name
backends by string (``session.compile(fn, backend="pytsim")``) without the
API layer depending on the framework packages at import time.
"""

from __future__ import annotations

import dataclasses
import threading
from collections.abc import Callable

from ..errors import ConfigError
from ..passes import PassPipeline


@dataclasses.dataclass(frozen=True)
class FrameworkProfile:
    """Identity and knobs of one simulated framework backend."""

    name: str
    #: The decorator overhead the paper reports (seconds); informational —
    #: the simulator's real overhead is the measured trace time.
    paper_decorator_overhead_s: float
    pipeline_factory: Callable[[], PassPipeline]
    aware_pipeline_factory: Callable[[], PassPipeline]

    def pipeline(self, choice: str) -> PassPipeline:
        """A fresh pipeline for ``choice`` (``"default"`` or ``"aware"``)."""
        if choice == "aware":
            return self.aware_pipeline_factory()
        if choice == "default":
            return self.pipeline_factory()
        raise ConfigError(
            f"unknown pipeline {choice!r}; expected 'default' or 'aware'"
        )


_registry: dict[str, FrameworkProfile] = {}
_lock = threading.Lock()


def register_backend(profile: FrameworkProfile) -> FrameworkProfile:
    """Register ``profile`` under ``profile.name``.

    Re-registering the same name is allowed only with an equal profile —
    two different frameworks claiming one name is a wiring bug.
    """
    with _lock:
        existing = _registry.get(profile.name)
        if existing is not None and existing != profile:
            raise ConfigError(
                f"backend {profile.name!r} already registered with a "
                "different profile"
            )
        _registry[profile.name] = profile
    return profile


def backend(name: str) -> FrameworkProfile:
    """The registered profile for ``name`` (e.g. ``"tfsim"``).

    Imports :mod:`repro.frameworks` on a registry miss so the built-in
    backends resolve without an explicit framework import first.
    """
    with _lock:
        profile = _registry.get(name)
    if profile is None:
        from .. import frameworks  # noqa: F401  (registers tfsim/pytsim)

        with _lock:
            profile = _registry.get(name)
    if profile is None:
        raise ConfigError(
            f"unknown backend {name!r}; registered: {available_backends()}"
        )
    return profile


def available_backends() -> tuple[str, ...]:
    """Names of all registered backends, sorted."""
    with _lock:
        return tuple(sorted(_registry))
