"""Shared fixtures for the benchmark suite.

Each benchmark file regenerates one paper table/figure: every cell of the
table is one pytest-benchmark entry, and the entries of a table share a
``group`` so the comparison output renders the paper's row structure with
min/mean ratios — the "who wins, by what factor" shape the reproduction
targets.

Problem size defaults to 512 (fast everywhere) and can be raised with
``LAAB_BENCH_N=3000`` to match the paper.  Warm-up/trace happens inside the
fixtures, so benchmark numbers exclude decorator overheads exactly as the
paper's do (its footnote 4).
"""

from __future__ import annotations

import os

import pytest

from repro.config import limit_threads
from repro.experiments.workloads import Workloads

#: Benchmark problem size (paper: 3000).
BENCH_N = int(os.environ.get("LAAB_BENCH_N", "512"))

limit_threads(int(os.environ.get("LAAB_BENCH_THREADS", "1")))


@pytest.fixture(scope="session")
def n() -> int:
    return BENCH_N


@pytest.fixture(scope="session")
def w(n) -> Workloads:
    return Workloads(n)


@pytest.fixture(scope="session")
def dense(w):
    """(A, B, C) dense n×n operands."""
    return w.general(0), w.general(1), w.general(2)


@pytest.fixture(scope="session")
def chain_ops(w):
    """(H, x, y) for the chain experiments."""
    return w.general(0), w.vector(0), w.vector(1)


@pytest.fixture(scope="session")
def structured(w):
    """(L, T, D) structured operands of Table IV."""
    return w.lower_triangular(), w.tridiagonal(), w.diagonal()
