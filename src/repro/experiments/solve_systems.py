"""Linear-system extension — the paper's named future-work item.

The conclusion lists "exploitation of properties in the solution of linear
systems" as a natural extension.  This experiment provides it: solving
``Ax = b`` where ``A`` is (a) general, (b) SPD, (c) triangular, comparing
the blind LU path (what a property-unaware framework always does) against
the property-appropriate factorization:

* SPD → Cholesky (POTRF+POTRS): half the factorization FLOPs of LU;
* triangular → direct TRSV: O(n²), no factorization at all.
"""

from __future__ import annotations

import numpy as np

from ..bench.registry import register_experiment
from ..bench.reporting import Cell, ExperimentTable
from ..bench.timing import measure
from ..kernels import blas2, lapack
from .sizes import experiment_size
from .workloads import Workloads


@register_experiment(
    "solve",
    "extension",
    "property-aware linear solves: LU vs Cholesky (SPD) vs TRSV (triangular)",
)
def run(n: int | None = None, repetitions: int | None = None) -> ExperimentTable:
    n = experiment_size(n)
    w = Workloads(n)
    rhs = np.ascontiguousarray(w.vector(0).numpy()).ravel()

    general = w.fortran(w.general(0)) + np.eye(n, dtype=np.float32) * 2.0
    spd = w.fortran(w.spd())
    tri = w.fortran(w.lower_triangular()) + np.eye(n, dtype=np.float32)

    table = ExperimentTable(
        title=f"Extension: property-aware linear solves, time (s), n = {n}",
        columns=["blind LU", "property-aware", "residual aware"],
    )

    def residual(a: np.ndarray, x: np.ndarray) -> float:
        r = a @ x - rhs
        return float(np.linalg.norm(r) / max(np.linalg.norm(rhs), 1e-30))

    # -- general: LU is the right tool; both columns identical ------------------
    t_lu = measure(lambda: lapack.lu_solve(general, rhs), label="lu",
                   repetitions=repetitions)
    x = lapack.lu_solve(general, rhs)
    table.add_row(
        "general A",
        blind_LU=t_lu.best,
        property_aware=t_lu.best,
        residual_aware=Cell(text=f"{residual(general, x):.1e}"),
    )

    # -- SPD: Cholesky halves the factorization -----------------------------------
    t_blind = measure(lambda: lapack.lu_solve(spd, rhs), label="lu",
                      repetitions=repetitions)
    t_chol = measure(lambda: lapack.cholesky_solve(spd, rhs), label="chol",
                     repetitions=repetitions)
    x = lapack.cholesky_solve(spd, rhs)
    table.add_row(
        "SPD A",
        blind_LU=t_blind.best,
        property_aware=t_chol.best,
        residual_aware=Cell(text=f"{residual(spd, x):.1e}"),
    )

    # -- triangular: no factorization needed at all ----------------------------------
    t_blind = measure(lambda: lapack.lu_solve(tri, rhs), label="lu",
                      repetitions=repetitions)
    t_trsv = measure(lambda: blas2.trsv(tri, rhs, lower=True), label="trsv",
                     repetitions=repetitions)
    x = blas2.trsv(tri, rhs, lower=True)
    table.add_row(
        "lower-triangular A",
        blind_LU=t_blind.best,
        property_aware=t_trsv.best,
        residual_aware=Cell(text=f"{residual(np.tril(tri), x):.1e}"),
    )
    table.notes.append(
        "expected shape: Cholesky ≈ 0.5× LU for SPD; TRSV ≪ LU for triangular"
    )
    return table
