"""End-to-end smoke of the persistent plan store across two processes.

Run this script **twice** with the same store directory::

    python benchmarks/store_smoke.py /tmp/plan-store

The first invocation finds an empty store: every workload function is a
cold compile (plan-cache miss + store write), and the build wall time
plus the output digests land in a marker file inside the store dir.
The second invocation is a brand-new process with nothing in memory —
exactly a service restart — and must:

* compile **zero** plans (plan-cache ``misses == 0``; every build is a
  ``store_hits`` warm start — one per workload signature);
* produce bit-identical outputs (digests match the cold run's);
* build faster than the cold run's recorded wall time.

Any violated invariant exits non-zero — this is the CI ``store-smoke``
job's assertion surface.  The workload is the dispatch-bound chain the
runtime bench uses (many tiny kernels — the regime where the skipped
optimization pipeline dominates the build) plus a second expression so
the store serves more than one signature.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

from repro import api
from repro.tensor import random_general

MARKER = "store_smoke_cold.json"


def _chain(a, b, c):
    acc = a
    for _ in range(12):
        acc = (acc @ b + c - a) @ a.T
    return acc + acc.T


def _gram(a, b, c):
    return (a.T @ b).T @ (a.T @ b) + c


WORKLOAD = (_chain, _gram)


def _build_and_run(store_dir: str):
    """Compile + execute every workload fn in one session; returns
    (session stats, build wall seconds, output digests)."""
    feeds = [random_general(16, seed=s) for s in (1, 2, 3)]
    session = api.Session(plan_store=store_dir, fusion=True)
    digests = []
    t0 = time.perf_counter()
    for fn in WORKLOAD:
        out = session.compile(fn)(*feeds)
        digests.append(hashlib.sha1(out.data.tobytes()).hexdigest())
    wall = time.perf_counter() - t0
    stats = session.stats()
    session.close()
    return stats, wall, digests


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("store_dir", help="plan store directory shared "
                                          "by both invocations")
    args = parser.parse_args(argv)
    marker = os.path.join(args.store_dir, MARKER)
    warm_phase = os.path.exists(marker)

    stats, wall, digests = _build_and_run(args.store_dir)
    n = len(WORKLOAD)
    failures = []

    if not warm_phase:
        if stats.misses != n:
            failures.append(
                f"cold run expected {n} compiles, saw {stats.misses}"
            )
        if stats.store_writes != n:
            failures.append(
                f"cold run expected {n} store writes, saw "
                f"{stats.store_writes}"
            )
        with open(marker, "w") as fh:
            json.dump({"wall_seconds": wall, "digests": digests}, fh)
        print(
            f"store-smoke COLD: {stats.misses} compile(s), "
            f"{stats.store_writes} artifact(s) written, build wall "
            f"{wall:.4f}s"
        )
    else:
        with open(marker) as fh:
            cold = json.load(fh)
        if stats.misses != 0:
            failures.append(
                f"warm run compiled {stats.misses} plan(s); expected 0"
            )
        if stats.store_hits != n:
            failures.append(
                f"warm run expected {n} store hits, saw {stats.store_hits}"
            )
        if digests != cold["digests"]:
            failures.append("warm outputs differ from the cold run's")
        if wall >= cold["wall_seconds"]:
            failures.append(
                f"warm build wall {wall:.4f}s not below cold "
                f"{cold['wall_seconds']:.4f}s"
            )
        print(
            f"store-smoke WARM: 0 compiles expected "
            f"({stats.misses} seen), {stats.store_hits}/{n} warm starts, "
            f"build wall {wall:.4f}s vs cold {cold['wall_seconds']:.4f}s "
            f"({cold['wall_seconds'] / wall:.2f}x)"
        )
    print(stats.render())

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
