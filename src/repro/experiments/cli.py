"""``laab`` — command-line entry point for the benchmark suite.

Examples::

    laab list                       # show available experiments
    laab run all                    # every table and figure, default size
    laab run exp2 --n 2000          # one experiment at a custom size
    laab run all --paper-scale      # n = 3000 like the paper (slow)
    laab run exp3 --json out.json   # machine-readable results
    laab graphs                     # print Fig. 3 / Fig. 4 DAGs
"""

from __future__ import annotations

import argparse
import sys

from ..config import config, limit_threads


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="laab",
        description="Linear-Algebra-Awareness Benchmarks (IPDPSW'22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment or 'all'")
    run.add_argument("experiment", help="experiment name or 'all'")
    run.add_argument("--n", type=int, default=None, help="problem size")
    run.add_argument("--reps", type=int, default=None, help="timed repetitions")
    run.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's n = 3000 (overrides --n)",
    )
    run.add_argument("--threads", type=int, default=1,
                     help="BLAS threads (paper: 1)")
    run.add_argument("--json", default=None, help="also write results as JSON")
    run.add_argument("--markdown", default=None,
                     help="also write results as markdown")

    sub.add_parser("list", help="list experiments")
    graphs = sub.add_parser("graphs",
                            help="print the Fig. 3 / Fig. 4 computational graphs")
    graphs.add_argument("--n", type=int, default=128)
    return parser


def _cmd_list() -> int:
    from ..bench.registry import EXPERIMENTS

    width = max(len(k) for k in EXPERIMENTS)
    for name, info in sorted(EXPERIMENTS.items()):
        print(f"{name.ljust(width)}  {info.paper_artifact:<10}  {info.description}")
    return 0


def _cmd_graphs(n: int) -> int:
    from ..frameworks import tfsim
    from ..ir.pretty import render_graph
    from ..tensor import random_general

    a = random_general(n, seed=1)
    b = random_general(n, seed=2)

    @tfsim.function
    def parenthesized(p, q):
        return tfsim.transpose(tfsim.transpose(p) @ q) @ (tfsim.transpose(p) @ q)

    @tfsim.function
    def unparenthesized(p, q):
        return tfsim.transpose(tfsim.transpose(p) @ q) @ tfsim.transpose(p) @ q

    print(render_graph(parenthesized.initial_graph(a, b),
                       title="Fig. 3 initial: (AᵀB)ᵀ(AᵀB)"))
    print()
    print(render_graph(parenthesized.optimized_graph(a, b),
                       title="Fig. 3 optimized: (AᵀB)ᵀ(AᵀB)"))
    print()
    print(render_graph(unparenthesized.optimized_graph(a, b),
                       title="Fig. 4: (AᵀB)ᵀAᵀB (no duplicates -> no CSE)"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    limit_threads(args.threads)
    # Experiments import numpy transitively; registration happens here so
    # limit_threads above is set before any BLAS pool spins up.
    from .. import experiments  # noqa: F401
    from ..bench.registry import EXPERIMENTS, get_experiment

    n = 3000 if args.paper_scale else args.n
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    tables = []
    for name in names:
        info = get_experiment(name)
        print(f"\n>>> {info.name} ({info.paper_artifact}): {info.description}")
        table = info.fn(n=n, repetitions=args.reps)
        tables.append(table)
        print(table.render())
    if args.json:
        import json

        payload = [json.loads(t.to_json()) for t in tables]
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {args.json}")
    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write("\n\n".join(t.to_markdown() for t in tables))
        print(f"wrote {args.markdown}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        from .. import experiments  # noqa: F401

        return _cmd_list()
    if args.command == "graphs":
        return _cmd_graphs(args.n)
    if args.command == "run":
        return _cmd_run(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
