"""The classical O(m³) matrix-chain-order dynamic program.

Given dimensions ``d₀ × d₁, d₁ × d₂, …, d_{m-1} × d_m``, find the
parenthesization minimizing total GEMM FLOPs (2·dᵢdₖdⱼ per product).  This
is the algorithm behind ``torch.linalg.multi_dot``, which the paper points
end users to (Fig. 5), and behind the opt-in chain-reordering pass that
shows what the frameworks *could* do automatically.
"""

from __future__ import annotations

import dataclasses

from ..errors import ChainError

#: A parse tree over chain positions: either an int leaf or a (left, right)
#: tuple of sub-trees.
Tree = "int | tuple"


@dataclasses.dataclass(frozen=True)
class ChainSolution:
    """Result of the DP: optimal tree, its FLOPs, and the DP tables."""

    dims: tuple[int, ...]
    tree: object
    flops: int
    cost_table: tuple[tuple[int, ...], ...]
    split_table: tuple[tuple[int, ...], ...]

    def describe(self, names: list[str] | None = None) -> str:
        """Render the tree with operand names, e.g. ``((A B) (C D))``."""
        names = names or [f"M{i}" for i in range(len(self.dims) - 1)]

        def render(tree: object) -> str:
            if isinstance(tree, int):
                return names[tree]
            left, right = tree
            return f"({render(left)} {render(right)})"

        return render(self.tree)


def chain_dims(shapes: list[tuple[int, int]]) -> tuple[int, ...]:
    """Collapse operand shapes into the DP's dimension vector.

    Raises :class:`ChainError` if consecutive operands are incompatible.
    """
    if not shapes:
        raise ChainError("empty matrix chain")
    dims = [shapes[0][0]]
    for i, (rows, cols) in enumerate(shapes):
        if rows != dims[-1]:
            raise ChainError(
                f"chain operand {i} has {rows} rows, expected {dims[-1]} "
                f"(shapes: {shapes})"
            )
        dims.append(cols)
    return tuple(dims)


def optimal_parenthesization(
    shapes: list[tuple[int, int]] | tuple[tuple[int, int], ...]
) -> ChainSolution:
    """Run the DP; returns the minimum-FLOP :class:`ChainSolution`.

    >>> sol = optimal_parenthesization([(10, 100), (100, 5), (5, 50)])
    >>> sol.describe(["A", "B", "C"])
    '((A B) C)'
    """
    dims = chain_dims(list(shapes))
    m = len(dims) - 1
    if m == 0:
        raise ChainError("empty matrix chain")
    # cost[i][j]: min FLOPs to compute product of operands i..j inclusive.
    cost = [[0] * m for _ in range(m)]
    split = [[0] * m for _ in range(m)]
    for length in range(2, m + 1):
        for i in range(m - length + 1):
            j = i + length - 1
            best = None
            best_k = i
            for k in range(i, j):
                c = (
                    cost[i][k]
                    + cost[k + 1][j]
                    + 2 * dims[i] * dims[k + 1] * dims[j + 1]
                )
                if best is None or c < best:
                    best = c
                    best_k = k
            cost[i][j] = best if best is not None else 0
            split[i][j] = best_k

    def build(i: int, j: int) -> object:
        if i == j:
            return i
        k = split[i][j]
        return (build(i, k), build(k + 1, j))

    return ChainSolution(
        dims=dims,
        tree=build(0, m - 1),
        flops=cost[0][m - 1],
        cost_table=tuple(tuple(row) for row in cost),
        split_table=tuple(tuple(row) for row in split),
    )


def left_to_right_tree(m: int) -> object:
    """The default evaluation order the paper measures in both frameworks."""
    if m < 1:
        raise ChainError("empty matrix chain")
    tree: object = 0
    for i in range(1, m):
        tree = (tree, i)
    return tree


def right_to_left_tree(m: int) -> object:
    """Fully right-associated order, optimal for ``HᵀHx``-style chains."""
    if m < 1:
        raise ChainError("empty matrix chain")
    tree: object = m - 1
    for i in range(m - 2, -1, -1):
        tree = (i, tree)
    return tree
