"""Hand-coded reference implementations (the paper's "MKL-C" and "SciPy" columns).

The paper compares the frameworks against (a) a C program calling MKL GEMM
directly (Table I) and (b) SciPy code explicitly invoking specialized BLAS
kernels (Table IV).  Here both roles are played by direct
``scipy.linalg.blas`` calls — the same compiled BLAS the simulated
frameworks' substrate uses, so "the frameworks link to MKL" is true by
construction and the comparison isolates *framework overhead and kernel
choice*, exactly as in the paper.
"""

from __future__ import annotations

import numpy as np

from ..kernels import blas1, blas3, special


def gemm_reference(a: np.ndarray, b: np.ndarray, *, trans_a: bool = False) -> np.ndarray:
    """Direct GEMM call — the Table I "MKL-C" reference for ``AᵀB``."""
    return blas3.gemm(a, b, trans_a=trans_a)


def gram_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Two GEMMs computing ``(AᵀB)ᵀ(AᵀB)`` with an explicit temporary —
    the natural hand-written C implementation (reuses the temporary)."""
    t0 = blas3.gemm(a, b, trans_a=True)
    return blas3.gemm(t0, t0, trans_a=True)


def trmm_reference(l: np.ndarray, b: np.ndarray, *, lower: bool = True) -> np.ndarray:
    """``LB`` via TRMM (half the FLOPs of GEMM) — Table IV row 2."""
    return blas3.trmm(l, b, lower=lower)


def syrk_reference(a: np.ndarray) -> np.ndarray:
    """``AAᵀ`` via SYRK (half the FLOPs of GEMM) — Table IV row 3.

    Matches the paper's hand-coded call: only one triangle is computed; the
    mirroring copy is included (it is O(n²), negligible next to the n³/2
    kernel, and needed for a dense result comparable to matmul's).
    """
    return blas3.syrk(a)


def tridiag_scal_reference(t: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``TB`` as a sequence of row scalings (SCAL/AXPY) — Table IV row 4.

    This is the sequential hand-coded decomposition; TF's
    ``tridiagonal_matmul`` vectorizes the same arithmetic (see
    :func:`repro.kernels.special.tridiagonal_matmul`), which is why the
    paper finds the TF op faster than this reference.
    """
    return special.tridiagonal_matmul_scal_loop(t, b)


def diag_scale_reference(d: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``DB`` as row scaling — Table IV row 5 (n² FLOPs)."""
    return special.diag_matmul(d, b)


def dot_reference(row: np.ndarray, col: np.ndarray) -> float:
    """Single DOT — the recommended partial-product access of Table VI."""
    return blas1.dot(np.ascontiguousarray(row).ravel(),
                     np.ascontiguousarray(col).ravel())
