"""Preallocated-arena execution (repro.runtime.plan.PlanArena).

The headline claim under test: after warmup, repeated execution of a
plan through an arena performs **zero ndarray allocations** — verified
two ways, with ``tracemalloc`` peaks (any intermediate would show up as a
matrix-sized transient) and with numpy's tracemalloc domain (no ndarray
*data* allocations survive).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.frameworks import tfsim
from repro.ir import Interpreter, trace
from repro.passes import aware_pipeline, default_pipeline
from repro.runtime import compile_plan
from repro.tensor import (
    random_general,
    random_lower_triangular,
    random_symmetric,
    random_tridiagonal,
    random_vector,
)

N = 64  # one float32 matrix = N*N*4 = 16 KiB; python-object noise ~1 KiB


def _workload():
    """Dispatch-bound mix covering the destination-aware kernels:
    elementwise chains, GEMM (plain + trans), transpose."""
    ops = [random_general(N, seed=s) for s in (1, 2, 3)]

    def fn(a, b, c):
        acc = a
        for _ in range(4):
            acc = (acc @ b + c - a) @ a.T
        return 2.0 * acc + b - (-c) * 0.5

    graph = default_pipeline().run(trace(fn, ops))
    return graph, [t.data for t in ops]


def _alloc_peak(fn, reps=30):
    """Peak traced bytes across ``reps`` calls (after one warm call)."""
    fn()
    tracemalloc.start()
    tracemalloc.reset_peak()
    for _ in range(reps):
        fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


@pytest.fixture(scope="module")
def workload():
    return _workload()


class TestAllocationFree:
    @pytest.mark.parametrize("fusion", [False, True], ids=["plain", "fused"])
    def test_zero_ndarray_allocations_after_warmup(self, workload, fusion):
        graph, feeds = workload
        plan = compile_plan(graph, fusion=fusion)
        arena = plan.new_arena()
        for _ in range(3):
            plan.execute(feeds, record=False, arena=arena)
        warm_allocs = arena.allocations
        peak = _alloc_peak(lambda: plan.execute(feeds, record=False,
                                                arena=arena))
        # Any materialized intermediate would add >= one matrix to the
        # peak; all that remains is python-object churn.
        matrix_bytes = feeds[0].nbytes
        assert peak < matrix_bytes, f"arena execution allocated: peak={peak}"
        assert arena.allocations == warm_allocs  # no buffer was replaced
        # And per-call mode *does* allocate on the same workload — the
        # measurement is sensitive, not vacuous.
        assert _alloc_peak(
            lambda: plan.execute(feeds, record=False)
        ) > matrix_bytes

    def test_no_live_ndarray_data_allocations(self, workload):
        graph, feeds = workload
        plan = compile_plan(graph, fusion=True)
        arena = plan.new_arena()
        plan.execute(feeds, record=False, arena=arena)
        tracemalloc.start()
        for _ in range(10):
            plan.execute(feeds, record=False, arena=arena)
        snap = tracemalloc.take_snapshot().filter_traces(
            [tracemalloc.DomainFilter(
                inclusive=True, domain=np.lib.tracemalloc_domain)]
        )
        tracemalloc.stop()
        assert sum(s.size for s in snap.statistics("lineno")) == 0


class TestLoopBodies:
    """``fori_loop`` sub-plans execute through persistent ping-pong child
    arenas: iterative workloads are allocation-free after warmup too."""

    def _power_iteration(self):
        a = random_general(N, seed=1)
        v = random_vector(N, seed=2)

        def body(i, x, aa):
            return 0.05 * (aa @ x)

        def fn(p, q):
            return tfsim.fori_loop(10, body, q, [p])

        graph = default_pipeline().run(trace(fn, [a, v]))
        return graph, [a.data, v.data]

    @pytest.mark.parametrize("fusion", [False, True], ids=["plain", "fused"])
    def test_loop_zero_ndarray_allocations_after_warmup(self, fusion):
        graph, feeds = self._power_iteration()
        plan = compile_plan(graph, fusion=fusion)
        arena = plan.new_arena()
        ref, _ = plan.execute(feeds, record=False)
        for _ in range(3):  # both ping-pong child arenas must warm
            outs, _ = plan.execute(feeds, record=False, arena=arena)
            assert outs[0].tobytes() == ref[0].tobytes()
        tracemalloc.start()
        for _ in range(10):
            plan.execute(feeds, record=False, arena=arena)
        snap = tracemalloc.take_snapshot().filter_traces(
            [tracemalloc.DomainFilter(
                inclusive=True, domain=np.lib.tracemalloc_domain)]
        )
        tracemalloc.stop()
        assert sum(s.size for s in snap.statistics("lineno")) == 0

    def test_loop_carried_value_is_donated_not_copied(self):
        """After warmup an iteration stages nothing: the carried value and
        the captures alias arena buffers across the loop boundary."""
        graph, feeds = self._power_iteration()
        plan = compile_plan(graph)
        arena = plan.new_arena()
        for _ in range(3):
            plan.execute(feeds, record=False, arena=arena)
        (state,) = arena.loops.values()
        copied = [child.bytes_copied for child in state.arenas]
        plan.execute(feeds, record=False, arena=arena)
        assert [c.bytes_copied for c in state.arenas] == copied

    def test_loop_report_parity_through_arena(self):
        graph, feeds = self._power_iteration()
        outs_i, rep_i = Interpreter(record=True).run(graph, feeds)
        plan = compile_plan(graph)
        arena = plan.new_arena()
        for _ in range(2):
            outs_p, rep_p = plan.execute(feeds, arena=arena)
            assert outs_p[0].tobytes() == outs_i[0].tobytes()
            assert rep_p.calls == rep_i.calls
            assert rep_p.peak_bytes == rep_i.peak_bytes


class TestStructuredKernels:
    """TRMM/SYMM/SYRK and the diagonal/tridiagonal specials write arena
    destinations directly — no compute-then-copy, no allocations."""

    CASES = {
        "trmm": (lambda l, b: l @ b, ["L", "B"]),
        "trmm_right": (lambda b, l: b @ l, ["B", "L"]),
        "symm": (lambda s, b: s @ b, ["S", "B"]),
        "syrk": (lambda a: a @ a.T, ["A"]),
        "tridiag": (lambda t, b: t @ b, ["T", "B"]),
    }

    @pytest.mark.parametrize("case", CASES, ids=list(CASES))
    def test_structured_arena_zero_data_allocations(self, case):
        fn, keys = self.CASES[case]
        pool = {
            "A": random_general(N, seed=1),
            "B": random_general(N, seed=2),
            "L": random_lower_triangular(N, seed=5),
            "S": random_symmetric(N, seed=6),
            "T": random_tridiagonal(N, seed=9),
        }
        args = [pool[k] for k in keys]
        graph = aware_pipeline().run(trace(fn, args))
        feeds = [t.data for t in args]
        outs_i, rep_i = Interpreter(record=True).run(graph, feeds)
        plan = compile_plan(graph)
        arena = plan.new_arena()
        plan.execute(feeds, record=False, arena=arena)
        staged = arena.bytes_copied  # feed staging only
        tracemalloc.start()
        for _ in range(5):
            outs, _ = plan.execute(feeds, record=False, arena=arena)
            assert outs[0].tobytes() == outs_i[0].tobytes()
        snap = tracemalloc.take_snapshot().filter_traces(
            [tracemalloc.DomainFilter(
                inclusive=True, domain=np.lib.tracemalloc_domain)]
        )
        tracemalloc.stop()
        assert sum(s.size for s in snap.statistics("lineno")) == 0
        # No compute-then-copy landings: the only copies are feed staging.
        per_call = sum(f.nbytes for f in feeds)
        assert arena.bytes_copied == staged + 5 * per_call


class TestArenaSemantics:
    def test_outputs_alias_arena_and_are_overwritten(self, workload):
        graph, feeds = workload
        plan = compile_plan(graph)
        arena = plan.new_arena()
        first, _ = plan.execute(feeds, record=False, arena=arena)
        kept = first[0].copy()
        # Executing with different feeds rewrites the aliased buffer...
        other = [np.full_like(feeds[0], 0.5), feeds[1], feeds[2]]
        second, _ = plan.execute(other, record=False, arena=arena)
        assert second[0] is first[0]
        assert first[0].tobytes() != kept.tobytes()
        # ...and re-running the original feeds restores the original bits.
        plan.execute(feeds, record=False, arena=arena)
        assert first[0].tobytes() == kept.tobytes()

    def test_arena_does_not_mutate_user_feeds(self, workload):
        graph, feeds = workload
        plan = compile_plan(graph, fusion=True)
        arena = plan.new_arena()
        before = [f.copy() for f in feeds]
        plan.execute(feeds, record=False, arena=arena)
        for f, b in zip(feeds, before):
            assert f.tobytes() == b.tobytes()

    def test_dtype_change_rewarms_without_breaking(self, workload):
        graph, feeds = workload
        plan = compile_plan(graph)
        arena = plan.new_arena()
        plan.execute(feeds, record=False, arena=arena)  # float32 warmup
        warm = arena.allocations
        feeds64 = [f.astype(np.float64) for f in feeds]
        outs64, _ = plan.execute(feeds64, record=False, arena=arena)
        assert outs64[0].dtype == np.float64
        assert arena.allocations > warm  # rewarmed for the new dtype
        ref64, _ = plan.execute(feeds64, record=False)
        assert outs64[0].tobytes() == ref64[0].tobytes()

    def test_two_arenas_are_independent(self, workload):
        graph, feeds = workload
        plan = compile_plan(graph)
        a1, a2 = plan.new_arena(), plan.new_arena()
        o1, _ = plan.execute(feeds, record=False, arena=a1)
        o2, _ = plan.execute(feeds, record=False, arena=a2)
        assert o1[0] is not o2[0]
        assert o1[0].tobytes() == o2[0].tobytes()

    def test_report_accounting_is_arena_independent(self, workload):
        """The modelled report (a memory *model*) must not change just
        because real buffers are reused."""
        graph, feeds = workload
        outs_i, rep_i = Interpreter(record=True).run(graph, feeds)
        plan = compile_plan(graph)
        arena = plan.new_arena()
        for _ in range(2):  # warm and repeat: stable accounting
            _, rep = plan.execute(feeds, arena=arena)
            assert rep.calls == rep_i.calls
            assert rep.peak_bytes == rep_i.peak_bytes
            assert rep.live_bytes == rep_i.live_bytes

    def test_structured_kernels_write_destinations(self):
        """TRMM executes destination-aware in arena mode (compute-then-
        copy fell away this PR); outputs stay bit-identical either way."""
        l_mat = random_lower_triangular(16, seed=5)
        b = random_general(16, seed=2)
        graph = aware_pipeline().run(trace(lambda l, p: l @ p, [l_mat, b]))
        feeds = [l_mat.data, b.data]
        plan = compile_plan(graph)
        arena = plan.new_arena()
        ref, rep = plan.execute(feeds)
        assert "trmm" in {c.kernel for c in rep.calls}
        for _ in range(2):
            outs, _ = plan.execute(feeds, record=False, arena=arena)
            assert outs[0].tobytes() == ref[0].tobytes()

    def test_non_blas_dtype_feeds_match_per_call(self):
        """Integer feeds have no BLAS routine: the arena GEMM path must
        fall back to the coercing wrapper, matching per-call mode instead
        of crashing on the dtype-dispatch lookup."""
        ab = [random_general(8, seed=1), random_general(8, seed=2)]
        graph = trace(lambda a, b: a @ b + a, ab)
        plan = compile_plan(graph, fusion=True)
        feeds = [np.arange(64, dtype=np.int64).reshape(8, 8),
                 np.ones((8, 8), dtype=np.int64)]
        ref, _ = plan.execute(feeds, record=False)
        outs, _ = plan.execute(feeds, record=False, arena=plan.new_arena())
        assert outs[0].dtype == ref[0].dtype
        assert outs[0].tobytes() == ref[0].tobytes()

    def test_constants_are_staged_once(self):
        from repro.frameworks import tfsim

        a = random_general(8, seed=1)
        graph = trace(lambda p: p + tfsim.ones(8, 8), [a])
        plan = compile_plan(graph)
        arena = plan.new_arena()
        ref, _ = plan.execute([a.data], record=False)
        plan.execute([a.data], record=False, arena=arena)
        warm = arena.allocations
        outs, _ = plan.execute([a.data], record=False, arena=arena)
        assert arena.allocations == warm
        assert outs[0].tobytes() == ref[0].tobytes()
