"""Machinery shared by the simulated frameworks.

The central class is :class:`CompiledFunction` — what ``@tfsim.function``
and ``@pytsim.jit.script`` return.  It implements the trace-once /
execute-many contract of the real decorators:

* the first call with a new *input signature* (shapes, dtypes, property
  annotations) traces the Python function into a graph, runs the
  framework's optimization pipeline, compiles the optimized graph into an
  executable :class:`~repro.runtime.Plan` through the process-wide
  :class:`~repro.runtime.PlanCache` (structurally identical expressions
  — even from different traces or the other framework — share one plan),
  and caches the result;
* subsequent calls execute the cached compiled plan directly
  (:meth:`CompiledFunction.interpret` keeps the reference-interpreter
  path for parity checks);
* trace/optimize time is recorded separately (``last_trace_seconds``) — the
  analogue of the paper's footnote-4 decorator overheads, which its
  measurements exclude.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Callable, Sequence

import numpy as np

from ..errors import TracingError
from ..ir.graph import Graph
from ..ir.interpreter import ExecutionReport, Interpreter
from ..ir.tracing import trace
from ..passes import PassPipeline, aware_pipeline, default_pipeline
from ..runtime import Plan, default_plan_cache
from ..tensor.tensor import Tensor


@dataclasses.dataclass(frozen=True)
class FrameworkProfile:
    """Identity and knobs of one simulated framework."""

    name: str
    #: The decorator overhead the paper reports (seconds); informational —
    #: the simulator's real overhead is the measured trace time.
    paper_decorator_overhead_s: float
    pipeline_factory: Callable[[], PassPipeline]
    aware_pipeline_factory: Callable[[], PassPipeline]


TF_PROFILE = FrameworkProfile(
    name="tfsim",
    paper_decorator_overhead_s=6e-4,
    pipeline_factory=default_pipeline,
    aware_pipeline_factory=aware_pipeline,
)

PYT_PROFILE = FrameworkProfile(
    name="pytsim",
    paper_decorator_overhead_s=2e-3,
    pipeline_factory=default_pipeline,
    aware_pipeline_factory=aware_pipeline,
)


def _signature(args: Sequence[Tensor]) -> tuple:
    sig = []
    for a in args:
        if not isinstance(a, Tensor):
            raise TracingError(
                f"compiled functions take Tensor arguments, got {type(a).__name__}"
            )
        sig.append((a.shape, str(a.dtype), frozenset(a.props)))
    return tuple(sig)


@dataclasses.dataclass
class ConcreteFunction:
    """One traced+optimized+plan-compiled specialization of a compiled
    function."""

    graph: Graph
    optimized: Graph
    plan: Plan
    trace_seconds: float
    pipeline_log: str


class CompiledFunction:
    """Graph-mode wrapper around a Python callable (see module docstring)."""

    def __init__(
        self,
        fn: Callable,
        profile: FrameworkProfile,
        *,
        aware: bool = False,
    ) -> None:
        self._fn = fn
        self.profile = profile
        self.aware = aware
        self._cache: dict[tuple, ConcreteFunction] = {}
        self.trace_count = 0
        self.last_trace_seconds = 0.0
        self.last_report: ExecutionReport | None = None
        self.__doc__ = fn.__doc__
        self.__name__ = getattr(fn, "__name__", "compiled_fn")

    # -- tracing ---------------------------------------------------------------

    def get_concrete(self, *args: Tensor) -> ConcreteFunction:
        """Trace/optimize for this signature (cached); does not execute."""
        sig = _signature(args)
        hit = self._cache.get(sig)
        if hit is not None:
            return hit
        start = time.perf_counter()
        graph = trace(self._fn, list(args))
        factory = (
            self.profile.aware_pipeline_factory
            if self.aware
            else self.profile.pipeline_factory
        )
        pipeline = factory()
        optimized = pipeline.run(graph)
        # Compile to an executable plan through the process-wide cache:
        # structurally identical expressions — even from different traces
        # or the other framework — share one compiled plan.
        plan = default_plan_cache().get(optimized)
        elapsed = time.perf_counter() - start
        concrete = ConcreteFunction(
            graph=graph,
            optimized=optimized,
            plan=plan,
            trace_seconds=elapsed,
            pipeline_log=pipeline.describe(),
        )
        self._cache[sig] = concrete
        self.trace_count += 1
        self.last_trace_seconds = elapsed
        return concrete

    # -- execution ---------------------------------------------------------------

    def __call__(self, *args: Tensor):
        concrete = self.get_concrete(*args)
        outputs, report = concrete.plan.execute([a.data for a in args])
        self.last_report = report
        return self._wrap(outputs)

    def interpret(self, *args: Tensor):
        """Execute through the reference :class:`Interpreter` instead of
        the compiled plan — the pre-runtime path, kept for parity checks
        and the ``interpreter`` measurement mode."""
        concrete = self.get_concrete(*args)
        interp = Interpreter(record=True)
        outputs, report = interp.run(concrete.optimized, [a.data for a in args])
        self.last_report = report
        return self._wrap(outputs)

    @staticmethod
    def _wrap(outputs):
        tensors = [Tensor(np.ascontiguousarray(o)) for o in outputs]
        if len(tensors) == 1:
            return tensors[0]
        return tuple(tensors)

    # -- introspection -------------------------------------------------------------

    def initial_graph(self, *args: Tensor) -> Graph:
        """The pre-optimization DAG (the paper's Fig. 3 left side)."""
        return self.get_concrete(*args).graph

    def optimized_graph(self, *args: Tensor) -> Graph:
        """The post-optimization DAG (the paper's Fig. 3 right side)."""
        return self.get_concrete(*args).optimized

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "aware" if self.aware else "default"
        return (
            f"<CompiledFunction {self.__name__} [{self.profile.name}/{mode}] "
            f"traces={self.trace_count}>"
        )
