"""Property-aware pipelines on a Kalman-style update (Exp. 3 + extension).

Run:  python examples/property_aware_solver.py [n]

A simplified Kalman filter step works with structured matrices throughout:
a lower-triangular Cholesky factor L, a diagonal measurement-noise matrix
D, and SPD covariances.  This example contrasts:

* the default pipeline (structure-blind, like TF/PyT — every product is a
  GEMM, every solve an LU);
* the aware pipeline + annotations (TRMM/SYRK/diagonal scaling dispatched
  from inferred properties);
* the property-aware linear solve (Cholesky instead of LU for the SPD
  innovation system) — the paper's named future-work item.
"""

import sys
import time

from repro import limit_threads

limit_threads(1)

import numpy as np  # noqa: E402

from repro import api  # noqa: E402
from repro import tensor as T  # noqa: E402
from repro.frameworks import tfsim  # noqa: E402
from repro.kernels import lapack  # noqa: E402
from repro.properties.annotations import as_spd  # noqa: E402


def main(n: int = 900) -> None:
    print(f"== property-aware Kalman-style update (n = {n}) ==\n")
    L = T.random_lower_triangular(n, seed=1)  # covariance factor, annotated
    D = T.random_diagonal(n, seed=2)  # measurement noise, annotated
    Hm = T.random_general(n, seed=3)  # measurement model

    # innovation covariance: S = H (L Lᵀ) Hᵀ + D²   (SPD by construction)
    def innovation(h, l, d):
        p = l @ tfsim.transpose(l)
        return h @ p @ tfsim.transpose(h) + d @ d

    # One session, two pipelines: the structure-blind default and the
    # paper's linear-algebra-aware pass set.
    session = api.Session(backend="tfsim")
    blind = session.compile(innovation, pipeline="default")
    aware = session.compile(innovation, pipeline="aware")
    for fn in (blind, aware):
        fn(Hm, L, D)

    t0 = time.perf_counter()
    s_blind = blind(Hm, L, D)
    t_blind = time.perf_counter() - t0
    t0 = time.perf_counter()
    s_aware = aware(Hm, L, D)
    t_aware = time.perf_counter() - t0
    assert s_blind.allclose(s_aware, rtol=2e-2, atol=1e-3)

    print(f"default pipeline: {t_blind:.4f}s  kernels "
          f"{blind.last_report.kernel_counts()}  "
          f"({blind.last_report.total_flops:,} FLOPs)")
    print(f"aware pipeline  : {t_aware:.4f}s  kernels "
          f"{aware.last_report.kernel_counts()}  "
          f"({aware.last_report.total_flops:,} FLOPs)")

    # -- solving the innovation system: blind LU vs property-aware Cholesky ----
    rhs = np.ascontiguousarray(T.random_vector(n, seed=4).numpy()).ravel()
    s_np = s_aware.numpy().astype(np.float64)
    s_np = (s_np + s_np.T) / 2 + np.eye(n) * 1e-3  # float64 symmetrize
    s_spd = as_spd(T.Tensor(s_np.astype(np.float32)), verify=False)

    t0 = time.perf_counter()
    x_lu = lapack.lu_solve(s_spd.numpy(), rhs)
    t_lu = time.perf_counter() - t0
    t0 = time.perf_counter()
    x_chol = lapack.cholesky_solve(s_spd.numpy(), rhs)
    t_chol = time.perf_counter() - t0

    res_lu = np.linalg.norm(s_spd.numpy() @ x_lu - rhs)
    res_chol = np.linalg.norm(s_spd.numpy() @ x_chol - rhs)
    print(f"\nsolve S k = v:  blind LU {t_lu:.4f}s (residual {res_lu:.2e})"
          f"   vs   Cholesky {t_chol:.4f}s (residual {res_chol:.2e})")
    print(f"LU / Cholesky ratio: {t_lu / t_chol:.2f}x  (theory: ~2x)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 900)
