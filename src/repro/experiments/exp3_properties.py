"""Experiment 3 (Table IV) — Exploiting Matrix Properties.

Products ``Y := AB`` where structure admits cheaper kernels:

=======  ======================  =============================
Row      Structure               Cheap implementation
=======  ======================  =============================
``AB``   none                    GEMM (baseline)
``LB``   L lower triangular      TRMM — half the FLOPs
``AAᵀ``  symmetric output        SYRK — half the FLOPs
``TB``   T tridiagonal           sequence of row scalings (6n²)
``DB``   D diagonal              row scaling (n²)
=======  ======================  =============================

Columns: the hand-coded SciPy/BLAS reference; both frameworks' plain
``matmul`` (expected: blind to structure, all ≈ GEMM); TF's opt-in
``linalg.tridiagonal_matmul`` where it exists (expected: beats the
sequential SciPy loop — the scalings are vectorized); PyT has no optimized
entry point (``n.a.``).
"""

from __future__ import annotations

from ..bench.registry import register_experiment
from ..bench.reporting import Cell, ExperimentTable
from ..bench.timing import measure
from ..frameworks import pytsim, tfsim
from ._measure import time_compiled
from .scipy_reference import (
    diag_scale_reference,
    gemm_reference,
    syrk_reference,
    tridiag_scal_reference,
    trmm_reference,
)
from .sizes import experiment_size
from .workloads import Workloads


@register_experiment(
    "exp3",
    "Table IV",
    "matrix properties: TRMM/SYRK/tridiagonal/diagonal vs blind matmul",
)
def run(n: int | None = None, repetitions: int | None = None) -> ExperimentTable:
    n = experiment_size(n)
    w = Workloads(n)
    a, b = w.general(0), w.general(1)
    l = w.lower_triangular()
    t = w.tridiagonal()
    d = w.diagonal()

    af, bf = w.fortran(a), w.fortran(b)
    lf, tf_arr, df = w.fortran(l), w.fortran(t), w.fortran(d)

    @tfsim.function
    def tf_matmul(p, q):
        return p @ q

    @pytsim.jit.script
    def pyt_matmul(p, q):
        return p @ q

    @tfsim.function
    def tf_gram(p):
        return p @ tfsim.transpose(p)

    @pytsim.jit.script
    def pyt_gram(p):
        return p @ p.T

    @tfsim.function
    def tf_tridiag_op(p, q):
        return tfsim.linalg.tridiagonal_matmul(p, q)

    table = ExperimentTable(
        title=f"Table IV: matrix properties, execution time (s), n = {n}",
        columns=["SciPy BLAS", "TF matmul", "TF optim", "PyT matmul", "PyT optim"],
    )

    def row(label, ref_fn, tf_args, pyt_args, tf_opt_fn=None,
            tf_fn=tf_matmul, pyt_fn=pyt_matmul):
        ref = measure(ref_fn, label="scipy", repetitions=repetitions)
        tf_t = time_compiled(tf_fn, tf_args, label="tf", repetitions=repetitions)
        pyt_t = time_compiled(pyt_fn, pyt_args, label="pyt",
                              repetitions=repetitions)
        if tf_opt_fn is not None:
            opt = time_compiled(tf_opt_fn, tf_args, label="tf_opt",
                                repetitions=repetitions)
            tf_opt_cell: Cell | float = opt.best
        else:
            tf_opt_cell = Cell(text="n.a.")
        table.add_row(
            label,
            SciPy_BLAS=ref.best,
            TF_matmul=tf_t.best,
            TF_optim=tf_opt_cell,
            PyT_matmul=pyt_t.best,
            PyT_optim=Cell(text="n.a."),
        )

    row("AB", lambda: gemm_reference(af, bf), [a, b], [a, b])
    row("LB", lambda: trmm_reference(lf, bf), [l, b], [l, b])
    row("AAᵀ", lambda: syrk_reference(af), [a], [a],
        tf_fn=tf_gram, pyt_fn=pyt_gram)
    row("TB", lambda: tridiag_scal_reference(tf_arr, bf), [t, b], [t, b],
        tf_opt_fn=tf_tridiag_op)
    row("DB", lambda: diag_scale_reference(df, bf), [d, b], [d, b],
        tf_opt_fn=tf_tridiag_op)
    table.notes.append(
        "expected shape: framework matmul columns ≈ the AB baseline on every "
        "row (structure ignored); SciPy BLAS ≈ 0.5-0.6× for LB/AAᵀ, ≪ for "
        "TB/DB; TF tridiagonal_matmul ≤ the SciPy SCAL loop"
    )
    return table
