"""Admission control: bounded in-flight depth with explicit overload.

A serving front-end that accepts every request just moves the queue
somewhere invisible (the coalescer, the executor, the kernel).  The
admission controller makes the queue *visible and bounded*: a request is
either admitted (a slot is held until its result is delivered), parked
awaiting a slot (backpressure — ``policy="wait"``), or rejected with
:class:`ServeOverloadError` (``policy="reject"``, or a waiter that
outlives ``wait_timeout``).  Limits exist at two scopes:

* ``max_inflight`` — the global depth limit: the most requests the
  server will hold anywhere (coalescer queues + executing waves);
* ``max_per_tenant`` — per-tenant fairness: one chatty tenant saturates
  its own allowance, not the server.

The controller is event-loop-confined (no locks): ``acquire`` is a
coroutine, ``release`` a plain call, and waiters are granted strictly
FIFO *except* that a waiter blocked only by its own tenant limit does
not head-of-line-block other tenants' waiters behind it.
"""

from __future__ import annotations

import asyncio
import dataclasses
from collections import deque

from ..errors import ReproError

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "ServeDeadlineError",
    "ServeOverloadError",
]


class ServeOverloadError(ReproError, RuntimeError):
    """The server is over its admission limits and the request was
    rejected (or timed out waiting for a slot), or a circuit breaker is
    shedding the request's (tenant, plan)."""


class ServeDeadlineError(ReproError, TimeoutError):
    """A request's deadline expired before the server could complete it.

    Raised wherever the deadline is first seen to have passed — parked
    in admission, queued in the coalescer, or at wave flush — always
    *instead of* the result, never alongside a partially-served wave.
    """


@dataclasses.dataclass(frozen=True)
class AdmissionConfig:
    """Depth limits and overload policy of one server.

    Attributes
    ----------
    max_inflight:
        Global admitted-request ceiling (>= 1).
    max_per_tenant:
        Per-tenant ceiling; ``None`` means tenants share only the
        global limit.
    policy:
        ``"wait"`` parks over-limit submitters until a slot frees (the
        backpressure mode — callers feel the queue as latency);
        ``"reject"`` raises :class:`ServeOverloadError` immediately
        (the load-shedding mode — callers feel it as an error).
    wait_timeout:
        Under ``"wait"``, the longest a request may be parked before it
        is rejected anyway; ``None`` waits forever.
    """

    max_inflight: int = 64
    max_per_tenant: int | None = None
    policy: str = "wait"
    wait_timeout: float | None = None

    def validate(self) -> None:
        if not isinstance(self.max_inflight, int) or self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be an int >= 1, got {self.max_inflight!r}"
            )
        if self.max_per_tenant is not None and (
            not isinstance(self.max_per_tenant, int)
            or self.max_per_tenant < 1
        ):
            raise ValueError(
                f"max_per_tenant must be an int >= 1 or None, got "
                f"{self.max_per_tenant!r}"
            )
        if self.policy not in ("wait", "reject"):
            raise ValueError(
                f"policy must be 'wait' or 'reject', got {self.policy!r}"
            )
        if self.wait_timeout is not None and self.wait_timeout <= 0:
            raise ValueError(
                f"wait_timeout must be > 0 or None, got {self.wait_timeout!r}"
            )


class AdmissionController:
    """Slot accounting behind :meth:`~repro.serve.Server.submit`."""

    def __init__(self, config: AdmissionConfig | None = None,
                 metrics=None) -> None:
        self.config = config if config is not None else AdmissionConfig()
        self.config.validate()
        self.metrics = metrics
        self._inflight = 0
        self._per_tenant: dict[str, int] = {}
        #: FIFO of (future, tenant) parked by ``policy="wait"``.
        self._waiters: deque[tuple[asyncio.Future, str]] = deque()

    # -- introspection -----------------------------------------------------------

    def depth(self, tenant: str | None = None) -> int:
        """Admitted requests currently in flight (globally or per tenant)."""
        if tenant is None:
            return self._inflight
        return self._per_tenant.get(tenant, 0)

    @property
    def waiting(self) -> int:
        """Requests parked for a slot right now."""
        return sum(1 for fut, _ in self._waiters if not fut.done())

    # -- slot lifecycle ----------------------------------------------------------

    def _grantable(self, tenant: str) -> bool:
        if self._inflight >= self.config.max_inflight:
            return False
        cap = self.config.max_per_tenant
        return cap is None or self._per_tenant.get(tenant, 0) < cap

    def _grant(self, tenant: str) -> None:
        self._inflight += 1
        self._per_tenant[tenant] = self._per_tenant.get(tenant, 0) + 1
        if self.metrics is not None:
            self.metrics.queue_depth.set(self._inflight)

    def _reject(self, tenant: str, why: str) -> ServeOverloadError:
        if self.metrics is not None:
            self.metrics.rejected += 1
        return ServeOverloadError(
            f"request for tenant {tenant!r} rejected: {why} "
            f"(inflight {self._inflight}/{self.config.max_inflight}, "
            f"tenant {self._per_tenant.get(tenant, 0)}"
            + (f"/{self.config.max_per_tenant}"
               if self.config.max_per_tenant is not None else "")
            + ")"
        )

    def _expire(self, tenant: str) -> ServeDeadlineError:
        if self.metrics is not None:
            self.metrics.deadline_expired += 1
        return ServeDeadlineError(
            f"request for tenant {tenant!r} expired before admission: "
            "its deadline passed while waiting for a slot"
        )

    async def acquire(self, tenant: str = "default", *,
                      deadline: float | None = None) -> None:
        """Hold a slot for one request; pair with :meth:`release`.

        Raises :class:`ServeOverloadError` under ``policy="reject"``
        when a limit is hit, or under ``policy="wait"`` when
        ``wait_timeout`` elapses first.  ``deadline`` (absolute
        ``loop.time()``) bounds the park further: a waiter whose
        deadline passes first raises :class:`ServeDeadlineError`.
        """
        loop = asyncio.get_running_loop()
        remaining = None
        if deadline is not None:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise self._expire(tenant)
        if self._grantable(tenant):
            self._grant(tenant)
            return
        if self.config.policy == "reject":
            raise self._reject(tenant, "admission limits reached")
        # Which bound actually limits the park decides the error type.
        timeout = self.config.wait_timeout
        deadline_bound = remaining is not None and (
            timeout is None or remaining <= timeout
        )
        if deadline_bound:
            timeout = remaining
        fut = loop.create_future()
        self._waiters.append((fut, tenant))
        try:
            if timeout is None:
                await fut
            else:
                await asyncio.wait_for(fut, timeout)
        except asyncio.TimeoutError:
            # Slot-grant race: _dispatch_waiters may have granted us the
            # slot in the same tick the timer fired — the slot is
            # charged to this request, so hand it back before rejecting.
            if fut.done() and not fut.cancelled():
                self.release(tenant)
            if deadline_bound:
                raise self._expire(tenant) from None
            raise self._reject(
                tenant,
                f"no slot freed within wait_timeout="
                f"{self.config.wait_timeout}s",
            ) from None
        except asyncio.CancelledError:
            # Granted and cancelled in the same tick: the slot was
            # already charged to us — hand it on before propagating.
            if fut.done() and not fut.cancelled():
                self.release(tenant)
            raise
        # A resolved future means _dispatch_waiters already granted the
        # slot on our behalf; nothing further to charge.

    def release(self, tenant: str = "default") -> None:
        """Free one slot and grant as many parked waiters as now fit."""
        if self._inflight <= 0:  # pragma: no cover - defensive
            raise RuntimeError("release() without a matching acquire()")
        self._inflight -= 1
        left = self._per_tenant.get(tenant, 0) - 1
        if left <= 0:
            self._per_tenant.pop(tenant, None)
        else:
            self._per_tenant[tenant] = left
        if self.metrics is not None:
            self.metrics.queue_depth.set(self._inflight)
        self._dispatch_waiters()

    def _dispatch_waiters(self) -> None:
        """Grant pending waiters FIFO; drop timed-out/cancelled entries.

        A waiter blocked only by its *tenant* cap is skipped (kept in
        order) so it cannot head-of-line-block other tenants.
        """
        kept: deque[tuple[asyncio.Future, str]] = deque()
        while self._waiters:
            fut, tenant = self._waiters.popleft()
            if fut.done():
                continue  # timed out or cancelled while parked
            if self._grantable(tenant):
                self._grant(tenant)
                fut.set_result(True)
            else:
                kept.append((fut, tenant))
                if self._inflight >= self.config.max_inflight:
                    kept.extend(self._waiters)
                    self._waiters.clear()
                    break
        self._waiters = kept
