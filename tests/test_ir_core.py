"""Tests for IR nodes, ops, graph container, and builders."""

import numpy as np
import pytest

from repro.errors import GraphError, ShapeError
from repro.ir import Graph, builder, validate_graph
from repro.ir.node import Node


def _inp(m, n, name=None):
    return builder.input_node((m, n), "float32", name=name)


class TestNodeConstruction:
    def test_unknown_op_rejected(self):
        with pytest.raises(GraphError):
            Node("frobnicate", ())

    def test_matmul_shape_inference(self):
        a, b = _inp(3, 4), _inp(4, 7)
        m = builder.matmul(a, b)
        assert m.shape == (3, 7)

    def test_matmul_trans_flags_shape(self):
        a, b = _inp(4, 3), _inp(4, 7)
        m = builder.matmul(a, b, trans_a=True)
        assert m.shape == (3, 7)

    def test_matmul_inner_mismatch(self):
        with pytest.raises(ShapeError):
            builder.matmul(_inp(3, 4), _inp(5, 6))

    def test_transpose_shape(self):
        t = builder.transpose(_inp(3, 7))
        assert t.shape == (7, 3)

    def test_add_shape_mismatch(self):
        with pytest.raises(ShapeError):
            builder.add(_inp(3, 3), _inp(3, 4))

    def test_scale_requires_alpha(self):
        with pytest.raises(GraphError):
            Node("scale", (_inp(2, 2),), {})

    def test_dot_requires_vectors(self):
        with pytest.raises(ShapeError):
            builder.dot(_inp(3, 3), _inp(3, 3))

    def test_dot_shape(self):
        d = builder.dot(_inp(1, 5), _inp(5, 1))
        assert d.shape == (1, 1)

    def test_slice_shapes(self):
        a = _inp(10, 8)
        assert builder.slice_(a, 2, 3).shape == (1, 1)
        assert builder.slice_(a, (1, 4), None).shape == (3, 8)
        assert builder.slice_(a, None, (2, 7)).shape == (10, 5)
        assert builder.slice_(a, slice(0, 2), slice(None)).shape == (2, 8)

    def test_slice_out_of_range(self):
        with pytest.raises(ShapeError):
            builder.slice_(_inp(4, 4), 10, 0)

    def test_strided_slice_rejected(self):
        with pytest.raises(GraphError):
            builder.slice_(_inp(8, 8), slice(0, 8, 2), None)

    def test_concat_shapes(self):
        a, b = _inp(3, 4), _inp(5, 4)
        assert builder.concat([a, b], axis=0).shape == (8, 4)
        c, d = _inp(3, 4), _inp(3, 2)
        assert builder.concat([c, d], axis=1).shape == (3, 6)

    def test_concat_mismatch(self):
        with pytest.raises(ShapeError):
            builder.concat([_inp(3, 4), _inp(3, 5)], axis=0)

    def test_const_normalizes_1d(self):
        c = builder.const(np.ones(4, dtype=np.float32))
        assert c.shape == (4, 1)

    def test_node_immutable(self):
        a = _inp(2, 2)
        with pytest.raises(AttributeError):
            a.op = "const"

    def test_signature_distinguishes_attrs(self):
        a, b = _inp(4, 4), _inp(4, 4)
        m1 = builder.matmul(a, b)
        m2 = builder.matmul(a, b, trans_a=True)
        assert m1.signature() != m2.signature()

    def test_signature_equal_for_same_structure(self):
        a, b = _inp(4, 4), _inp(4, 4)
        m1 = builder.matmul(a, b)
        m2 = builder.matmul(a, b)
        assert m1.signature() == m2.signature()

    def test_const_attrs_key_hashes_content(self):
        c1 = builder.const(np.ones((2, 2), dtype=np.float32))
        c2 = builder.const(np.ones((2, 2), dtype=np.float32))
        c3 = builder.const(np.zeros((2, 2), dtype=np.float32))
        assert c1.attrs_key() == c2.attrs_key()
        assert c1.attrs_key() != c3.attrs_key()


class TestGraph:
    def test_topological_order(self):
        a, b = _inp(4, 4), _inp(4, 4)
        m = builder.matmul(a, b)
        t = builder.transpose(m)
        g = Graph([t])
        order = list(g.topological())
        assert order.index(m) < order.index(t)
        assert order.index(a) < order.index(m)

    def test_len_counts_reachable_only(self):
        a, b = _inp(4, 4), _inp(4, 4)
        builder.matmul(a, b)  # unreachable from output below
        g = Graph([builder.transpose(a)])
        assert len(g) == 2

    def test_op_counts(self):
        a, b = _inp(4, 4), _inp(4, 4)
        g = Graph([builder.matmul(a, builder.matmul(a, b))])
        assert g.op_counts() == {"input": 2, "matmul": 2}

    def test_inputs_discovery_order(self):
        a, b = _inp(4, 4, "a"), _inp(4, 4, "b")
        g = Graph([builder.matmul(a, b)])
        assert [i.name for i in g.inputs] == ["a", "b"]

    def test_explicit_inputs_validated(self):
        a, b = _inp(4, 4), _inp(4, 4)
        with pytest.raises(GraphError):
            Graph([builder.matmul(a, b)], inputs=[a])  # b missing

    def test_explicit_inputs_allow_unused(self):
        a, b = _inp(4, 4), _inp(4, 4)
        g = Graph([builder.transpose(a)], inputs=[a, b])
        assert len(g.inputs) == 2

    def test_empty_outputs_rejected(self):
        with pytest.raises(GraphError):
            Graph([])

    def test_consumers(self):
        a, b = _inp(4, 4), _inp(4, 4)
        m = builder.matmul(a, b)
        g = Graph([builder.add(m, m)])
        cons = g.consumers()
        # the add uses m twice -> two consumer entries (one per use)
        assert len(cons[id(m)]) == 2
        assert all(c.op == "add" for c in cons[id(m)])

    def test_rewrite_identity_shares_nodes(self):
        a, b = _inp(4, 4), _inp(4, 4)
        m = builder.matmul(a, b)
        g = Graph([m])
        g2 = g.rewrite(lambda node, inputs: None)
        assert g2.outputs[0] is m

    def test_rewrite_replacement(self):
        a, b = _inp(4, 4), _inp(4, 4)
        g = Graph([builder.add(a, b)])

        def swap(node, inputs):
            if node.op == "add":
                return builder.sub(*inputs)
            return None

        g2 = g.rewrite(swap)
        assert g2.outputs[0].op == "sub"

    def test_rewrite_preserves_input_order(self):
        a, b, c = _inp(4, 4, "a"), _inp(4, 4, "b"), _inp(4, 4, "c")
        g = Graph([builder.add(builder.matmul(a, b), c)], inputs=[a, b, c])
        g2 = g.rewrite(lambda node, inputs: None)
        assert [i.name for i in g2.inputs] == ["a", "b", "c"]

    def test_rewrite_keeps_unreachable_declared_inputs(self):
        a, b = _inp(4, 4, "a"), _inp(4, 4, "b")
        g = Graph([builder.add(a, b)], inputs=[a, b])

        def drop_b(node, inputs):
            if node.op == "add":
                return inputs[0]
            return None

        g2 = g.rewrite(drop_b)
        assert [i.name for i in g2.inputs] == ["a", "b"]


class TestValidate:
    def test_valid_graph_passes(self):
        a, b = _inp(4, 4), _inp(4, 4)
        g = Graph([builder.matmul(builder.transpose(a), b)])
        validate_graph(g)

    def test_corrupted_shape_detected(self):
        a, b = _inp(4, 4), _inp(4, 4)
        m = builder.matmul(a, b)
        object.__setattr__(m, "shape", (9, 9))
        with pytest.raises(GraphError):
            validate_graph(Graph([m]))

    def test_loop_body_validated(self):
        idx = _inp(1, 1, "i")
        carried = _inp(4, 4, "c")
        body = Graph([builder.add(carried, carried)], inputs=[idx, carried])
        init = _inp(4, 4, "init")
        node = builder.loop(body, init, [], trip_count=3)
        validate_graph(Graph([node]))

    def test_loop_bad_body_signature(self):
        carried = _inp(4, 4, "c")
        body = Graph([builder.add(carried, carried)], inputs=[carried])
        init = _inp(4, 4)
        with pytest.raises(GraphError):
            builder.loop(body, init, [], trip_count=3)

    def test_loop_shape_change_rejected(self):
        idx = _inp(1, 1)
        carried = _inp(4, 4)
        body = Graph([builder.slice_(carried, (0, 2), None)],
                     inputs=[idx, carried])
        with pytest.raises(ShapeError):
            builder.loop(body, _inp(4, 4), [], trip_count=2)

    def test_negative_trip_count_rejected(self):
        idx = _inp(1, 1)
        carried = _inp(4, 4)
        body = Graph([builder.add(carried, carried)], inputs=[idx, carried])
        with pytest.raises(GraphError):
            builder.loop(body, _inp(4, 4), [], trip_count=-1)
