"""Property reasoning: transfer functions and graph propagation.

``repro.tensor.properties`` defines the *vocabulary* (what properties exist,
implication closure, numeric verification).  This package defines the
*reasoning*:

``algebra``
    Transfer functions — given operand property sets, what properties does
    the result of transpose/matmul/add/... have?  Pure set algebra, shared
    by the eager Tensor and the graph inference.
``inference``
    Forward dataflow over the expression IR, annotating every node with an
    inferred property set (the Sec. III-C "propagation of matrix properties
    through the graph").
``annotations``
    User-facing annotation helpers (assert-and-attach, with optional
    numeric verification).

The split mirrors what the paper asks framework developers to add: Julia
has the vocabulary *and* the reasoning; TF/PyT (and our default simulated
pipelines) have neither wired into dispatch.
"""

from . import algebra
from .algebra import (
    add_props,
    matmul_props,
    scale_props,
    transpose_props,
)

__all__ = [
    "algebra",
    "transpose_props",
    "matmul_props",
    "add_props",
    "scale_props",
]


def __getattr__(name: str):
    # Lazy imports to keep import-time dependencies acyclic.  Uses
    # importlib directly: a `from . import x` here would re-enter this
    # __getattr__ through importlib's fromlist handling and recurse.
    if name in ("inference", "annotations"):
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
