"""Level-1 BLAS wrappers: vector-vector operations.

Each function validates operands, dispatches on dtype to the compiled
single/double precision routine in :mod:`scipy.linalg.blas`, and returns a
plain ndarray (or scalar).  None of the wrappers mutate their inputs unless
explicitly documented.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import blas as _blas

from ..errors import KernelError
from .validation import (
    as_ndarray,
    check_same_length,
    require_same_dtype,
    require_vector,
)

_SCAL = {np.dtype(np.float32): _blas.sscal, np.dtype(np.float64): _blas.dscal}
_AXPY = {np.dtype(np.float32): _blas.saxpy, np.dtype(np.float64): _blas.daxpy}
_DOT = {np.dtype(np.float32): _blas.sdot, np.dtype(np.float64): _blas.ddot}
_NRM2 = {np.dtype(np.float32): _blas.snrm2, np.dtype(np.float64): _blas.dnrm2}
_ASUM = {np.dtype(np.float32): _blas.sasum, np.dtype(np.float64): _blas.dasum}
_COPY = {np.dtype(np.float32): _blas.scopy, np.dtype(np.float64): _blas.dcopy}


def _routine(table: dict, dtype: np.dtype, name: str):
    try:
        return table[np.dtype(dtype)]
    except KeyError:  # pragma: no cover - guarded by validation
        raise KernelError(f"no {name} kernel for dtype {dtype}") from None


def scal(alpha: float, x: np.ndarray, *, overwrite: bool = False) -> np.ndarray:
    """SCAL: return ``alpha * x`` (n FLOPs).

    With ``overwrite=True`` the input buffer is scaled in place and returned,
    saving an allocation — the mode used by the tridiagonal row-scaling
    decomposition of Experiment 3.
    """
    x = require_vector(as_ndarray(x, "x"), "x")
    fn = _routine(_SCAL, x.dtype, "scal")
    if not overwrite:
        x = x.copy()
    # f2py's SCAL always scales in place (no overwrite flag); the copy
    # above protects the caller's buffer.
    return fn(x.dtype.type(alpha), x)


def axpy(alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """AXPY: return ``alpha * x + y`` (2n FLOPs).  ``y`` is not modified."""
    x = as_ndarray(x, "x")
    y = as_ndarray(y, "y")
    check_same_length(x, y)
    require_same_dtype((x, "x"), (y, "y"))
    fn = _routine(_AXPY, x.dtype, "axpy")
    # f2py's AXPY updates y in place and returns it; copy to keep y intact.
    out = y.copy()
    return fn(x, out, a=x.dtype.type(alpha))


def dot(x: np.ndarray, y: np.ndarray) -> float:
    """DOT: return the inner product ``x . y`` (2n FLOPs)."""
    x = as_ndarray(x, "x")
    y = as_ndarray(y, "y")
    check_same_length(x, y)
    require_same_dtype((x, "x"), (y, "y"))
    fn = _routine(_DOT, x.dtype, "dot")
    return float(fn(x, y))


def nrm2(x: np.ndarray) -> float:
    """NRM2: return the Euclidean norm of ``x`` (~2n FLOPs)."""
    x = require_vector(as_ndarray(x, "x"), "x")
    fn = _routine(_NRM2, x.dtype, "nrm2")
    return float(fn(x))


def asum(x: np.ndarray) -> float:
    """ASUM: return the sum of absolute values of ``x`` (n FLOPs)."""
    x = require_vector(as_ndarray(x, "x"), "x")
    fn = _routine(_ASUM, x.dtype, "asum")
    return float(fn(x))


def copy(x: np.ndarray) -> np.ndarray:
    """COPY: return a fresh buffer holding ``x`` (0 FLOPs, n memops)."""
    x = require_vector(as_ndarray(x, "x"), "x")
    fn = _routine(_COPY, x.dtype, "copy")
    out = np.empty_like(x)
    return fn(x, out)
