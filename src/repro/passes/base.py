"""Pass infrastructure."""

from __future__ import annotations

import dataclasses

from ..ir.graph import Graph
from ..ir.node import Node


@dataclasses.dataclass
class PassStats:
    """What a pass did — surfaced in experiment reports and tests."""

    name: str
    nodes_before: int = 0
    nodes_after: int = 0
    rewrites: int = 0

    @property
    def removed(self) -> int:
        return self.nodes_before - self.nodes_after


class GraphPass:
    """Base class: a graph-to-graph transformation.

    Subclasses implement :meth:`apply`; :meth:`run` wraps it with node
    counting and stores :attr:`last_stats`.  Passes must be *semantics
    preserving* — the hypothesis suite executes random graphs before and
    after every pass and compares numerically.
    """

    name: str = "pass"

    def __init__(self) -> None:
        self.last_stats = PassStats(self.name)

    def apply(self, graph: Graph) -> Graph:  # pragma: no cover - abstract
        raise NotImplementedError

    def run(self, graph: Graph) -> Graph:
        stats = PassStats(self.name, nodes_before=len(graph))
        self.last_stats = stats
        out = self.apply(graph)
        stats.nodes_after = len(out)
        return out

    # -- helpers shared by subclasses -----------------------------------------

    def _count(self) -> None:
        self.last_stats.rewrites += 1

    @staticmethod
    def rebuild(node: Node, inputs: tuple[Node, ...]) -> Node:
        """Clone ``node`` with new inputs (attrs preserved)."""
        return Node(node.op, inputs, dict(node.attrs), name=node.name)

    def transform_loop_bodies(self, graph: Graph) -> Graph:
        """Recurse this pass into every ``loop`` node's body sub-graph."""

        def fn(node: Node, new_inputs: tuple[Node, ...]) -> Node | None:
            if node.op != "loop":
                return None
            body: Graph = node.attrs["body"]
            new_body = self.apply(body)
            if new_body is body and all(
                a is b for a, b in zip(new_inputs, node.inputs)
            ):
                return node
            attrs = dict(node.attrs)
            attrs["body"] = new_body
            return Node("loop", new_inputs, attrs, name=node.name)

        return graph.rewrite(fn)
