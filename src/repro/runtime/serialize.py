"""Structural (de)serialization of graphs — the shard-shipping format.

Plans are *picklable by reconstruction* (ROADMAP): the instruction
closures capture f2py routines and cannot cross a process boundary, but
the graph they were compiled from is pure structure — ops, shapes,
dtypes, attrs, wiring — and a worker that receives that structure plus
the compile knobs rebuilds an equivalent plan with one ``compile_plan``
call.  This module is that structure: :func:`graph_to_payload` flattens
a :class:`~repro.ir.graph.Graph` into a picklable dict of primitive
values (ndarray const payloads ride along verbatim; loop bodies recurse),
and :func:`graph_from_payload` rebuilds it through the ordinary
:class:`~repro.ir.node.Node` constructor — so shape/dtype inference and
attr validation re-run on the receiving side, making a corrupted payload
fail loudly instead of executing garbage.

Round-trip contract (pinned by tests): the rebuilt graph has the same
:func:`~repro.runtime.signature.graph_signature` as the original, so
both sides of a shard boundary agree on plan identity.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import GraphError
from ..ir.graph import Graph
from ..ir.node import Node

#: Payload format version — bumped on layout changes so a parent and a
#: worker built from different checkouts fail fast instead of weirdly.
PAYLOAD_VERSION = 1


def _encode_attr(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return ("ndarray", value)
    if isinstance(value, Graph):
        return ("graph", graph_to_payload(value))
    if isinstance(value, frozenset):
        return ("frozenset", sorted(value, key=repr))
    if isinstance(value, tuple):
        return ("tuple", [_encode_attr(v) for v in value])
    if isinstance(value, (str, int, float, bool, type(None))):
        return ("lit", value)
    raise GraphError(
        f"cannot serialize graph attr of type {type(value).__name__}: {value!r}"
    )


def _decode_attr(enc: Any) -> Any:
    tag, value = enc
    if tag == "ndarray":
        return value
    if tag == "graph":
        return graph_from_payload(value)
    if tag == "frozenset":
        return frozenset(value)
    if tag == "tuple":
        return tuple(_decode_attr(v) for v in value)
    if tag == "lit":
        return value
    raise GraphError(f"unknown attr tag {tag!r} in graph payload")


def graph_to_payload(graph: Graph) -> dict:
    """Flatten ``graph`` into a picklable dict of primitives (+ ndarrays).

    Nodes are stored in topological order and wired by index; declared
    inputs and outputs are stored as index lists.  Names are preserved
    so worker-side error messages match the parent's.
    """
    order = graph.topological()
    index_of = {id(n): i for i, n in enumerate(order)}
    nodes = [
        {
            "op": n.op,
            "name": n.name,
            "inputs": [index_of[id(i)] for i in n.inputs],
            "attrs": {k: _encode_attr(v) for k, v in n.attrs.items()},
        }
        for n in order
    ]
    return {
        "version": PAYLOAD_VERSION,
        "nodes": nodes,
        "inputs": [index_of.get(id(n), -1) for n in graph.inputs],
        "outputs": [index_of[id(n)] for n in graph.outputs],
        # Declared-but-unreachable inputs still consume a feed slot:
        # carry their spec so positional binding survives the trip.
        "detached_inputs": [
            {"name": n.name, "position": pos,
             "attrs": {k: _encode_attr(v) for k, v in n.attrs.items()}}
            for pos, n in enumerate(graph.inputs)
            if id(n) not in index_of
        ],
    }


def _map_ndarray_encs(enc: Any, fn) -> Any:
    """Rewrite every ndarray-carrying entry of one encoded attr via ``fn``.

    ``fn`` receives the encoded entry — ``("ndarray", arr)`` or
    ``("ndarray_ref", index)`` — and returns its replacement; every other
    tag passes through untouched (recursing into graphs and tuples).
    """
    tag = enc[0]
    if tag in ("ndarray", "ndarray_ref"):
        return fn(enc)
    if tag == "graph":
        return ("graph", _map_payload_ndarrays(enc[1], fn))
    if tag == "tuple":
        return ("tuple", [_map_ndarray_encs(v, fn) for v in enc[1]])
    return enc


def _map_payload_ndarrays(payload: dict, fn) -> dict:
    """Structure-preserving copy of ``payload`` with ``fn`` applied to
    every ndarray-carrying attr entry (loop bodies included)."""
    out = dict(payload)
    out["nodes"] = [
        {**spec, "attrs": {
            k: _map_ndarray_encs(v, fn) for k, v in spec["attrs"].items()
        }}
        for spec in payload["nodes"]
    ]
    out["detached_inputs"] = [
        {**spec, "attrs": {
            k: _map_ndarray_encs(v, fn) for k, v in spec["attrs"].items()
        }}
        for spec in payload["detached_inputs"]
    ]
    return out


def split_payload_consts(
    payload: dict, min_bytes: int
) -> tuple[dict, list[np.ndarray]]:
    """Extract ndarray const payloads of ``>= min_bytes`` into a side list.

    Returns ``(stripped_payload, arrays)`` where each extracted attr is
    replaced by ``("ndarray_ref", index)``.  The stripped payload is what
    the plan store writes as the artifact body; the arrays become
    ``.npy`` sidecar files loaded back with ``np.load(mmap_mode="r")``.
    A stripped payload is *not* loadable by :func:`graph_from_payload`
    until :func:`join_payload_consts` resolves the refs — the unknown
    ``ndarray_ref`` tag fails loudly, so a missing sidecar can never
    silently build a graph with holes.
    """
    arrays: list[np.ndarray] = []

    def extract(enc):
        if enc[0] != "ndarray":
            raise GraphError("payload already contains ndarray refs")
        arr = enc[1]
        if arr.nbytes < min_bytes:
            return enc
        arrays.append(arr)
        return ("ndarray_ref", len(arrays) - 1)

    return _map_payload_ndarrays(payload, extract), arrays


def join_payload_consts(payload: dict, arrays: list[np.ndarray]) -> dict:
    """Resolve ``("ndarray_ref", i)`` entries against ``arrays`` — the
    inverse of :func:`split_payload_consts`.  A ref with no backing array
    (truncated sidecar list, corrupted artifact) raises
    :class:`~repro.errors.GraphError`.
    """

    def resolve(enc):
        if enc[0] != "ndarray_ref":
            return enc
        index = enc[1]
        if not isinstance(index, int) or not 0 <= index < len(arrays):
            raise GraphError(
                f"payload const ref {index!r} has no backing array "
                f"({len(arrays)} sidecars present)"
            )
        return ("ndarray", arrays[index])

    return _map_payload_ndarrays(payload, resolve)


def graph_from_payload(payload: dict) -> Graph:
    """Rebuild a :class:`Graph` from :func:`graph_to_payload` output.

    Every node goes through the normal :class:`Node` constructor, so
    validation and shape/dtype inference re-run here — a mangled payload
    raises :class:`~repro.errors.GraphError` instead of mis-executing.
    """
    version = payload.get("version")
    if version != PAYLOAD_VERSION:
        raise GraphError(
            f"graph payload version {version!r} does not match this "
            f"runtime's {PAYLOAD_VERSION} — parent and worker must run "
            "the same code"
        )
    nodes: list[Node] = []
    for spec in payload["nodes"]:
        nodes.append(
            Node(
                spec["op"],
                tuple(nodes[i] for i in spec["inputs"]),
                {k: _decode_attr(v) for k, v in spec["attrs"].items()},
                name=spec["name"],
            )
        )
    inputs: dict[int, Node] = {
        pos: nodes[idx] for pos, idx in enumerate(payload["inputs"])
        if idx >= 0
    }
    for spec in payload["detached_inputs"]:
        inputs[spec["position"]] = Node(
            "input",
            (),
            {k: _decode_attr(v) for k, v in spec["attrs"].items()},
            name=spec["name"],
        )
    ordered_inputs = [inputs[pos] for pos in sorted(inputs)]
    return Graph(
        (nodes[i] for i in payload["outputs"]), inputs=ordered_inputs
    )
