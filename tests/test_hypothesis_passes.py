"""Property-based tests: every optimizer pass preserves semantics.

A hypothesis strategy generates random expression DAGs (as traced Python
functions over random operands); each pass — and both full pipelines — must
produce a graph that computes the same values.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import Graph, run_graph, trace
from repro.ir.tracing import SymbolicTensor
from repro.passes import (
    ArithmeticSimplification,
    ChainReordering,
    CommonSubexpressionElimination,
    ConstantFolding,
    DistributivityRewrite,
    LoopInvariantCodeMotion,
    NoOpElimination,
    PartialOperandAccess,
    PassPipeline,
    PropertyDispatch,
    TransposeElimination,
    aware_pipeline,
    default_pipeline,
)
from repro.tensor import Tensor

N = 6  # tiny operands: hypothesis runs many examples


@st.composite
def expressions(draw):
    """A random expression builder over inputs (a, b square; x vector).

    Returns a function of three SymbolicTensors/Tensors producing one
    output via a random tree of the supported operations.
    """
    depth = draw(st.integers(min_value=1, max_value=5))

    def build(d, draw_):
        if d == 0:
            return draw_(st.sampled_from(["a", "b", "x_outer"]))
        op = draw_(
            st.sampled_from(
                ["matmul", "add", "sub", "transpose", "scale", "neg", "slice"]
            )
        )
        if op in ("matmul", "add", "sub"):
            return (op, build(d - 1, draw_), build(d - 1, draw_))
        if op == "scale":
            alpha = draw_(st.sampled_from([0.0, 0.5, 1.0, 2.0, -1.0]))
            return (op, alpha, build(d - 1, draw_))
        if op == "slice":
            i = draw_(st.integers(min_value=0, max_value=N - 1))
            return (op, i, build(d - 1, draw_))
        return (op, build(d - 1, draw_))

    return build(depth, draw)


def _materialize(tree, a, b, x):
    """Evaluate the strategy's op-tree over symbolic/eager operands."""
    if tree == "a":
        return a
    if tree == "b":
        return b
    if tree == "x_outer":
        return x @ x.T  # keep everything n×n so shapes always match
    op = tree[0]
    if op == "matmul":
        return _materialize(tree[1], a, b, x) @ _materialize(tree[2], a, b, x)
    if op == "add":
        return _materialize(tree[1], a, b, x) + _materialize(tree[2], a, b, x)
    if op == "sub":
        return _materialize(tree[1], a, b, x) - _materialize(tree[2], a, b, x)
    if op == "transpose":
        return _materialize(tree[1], a, b, x).T
    if op == "scale":
        return _materialize(tree[2], a, b, x) * tree[1]
    if op == "neg":
        return -_materialize(tree[1], a, b, x)
    if op == "slice":
        full = _materialize(tree[2], a, b, x)
        # keep shapes n×n: slice one row out, then restore via outer
        # product with itself is overkill — take a shape-preserving slice
        # (still exercises the slice op path) plus an element-slice term
        # folded in through scaling by row tree[1]'s [0,0] is fragile under
        # float32; a full-width slice suffices here.
        return full[:, :]
    raise AssertionError(op)


def _operands():
    rng = np.random.default_rng(99)
    a = Tensor((rng.random((N, N)) - 0.5).astype(np.float32))
    b = Tensor((rng.random((N, N)) - 0.5).astype(np.float32))
    x = Tensor((rng.random((N, 1)) - 0.5).astype(np.float32))
    return a, b, x


ALL_PASSES = [
    ConstantFolding,
    TransposeElimination,
    CommonSubexpressionElimination,
    ArithmeticSimplification,
    NoOpElimination,
    LoopInvariantCodeMotion,
    ChainReordering,
    PropertyDispatch,
    DistributivityRewrite,
    PartialOperandAccess,
]


@pytest.mark.parametrize("pass_cls", ALL_PASSES)
@given(tree=expressions())
@settings(max_examples=25, deadline=None)
def test_single_pass_preserves_semantics(pass_cls, tree):
    a, b, x = _operands()
    fn = lambda p, q, v: _materialize(tree, p, q, v)  # noqa: E731
    g = trace(fn, [a, b, x])
    feeds = [a.data, b.data, x.data]
    before, _ = run_graph(g, feeds)
    opt = PassPipeline([pass_cls()]).run(g)
    after, _ = run_graph(opt, feeds)
    np.testing.assert_allclose(after[0], before[0], rtol=1e-2, atol=1e-3)


@pytest.mark.parametrize("pipeline_factory", [default_pipeline, aware_pipeline])
@given(tree=expressions())
@settings(max_examples=25, deadline=None)
def test_full_pipelines_preserve_semantics(pipeline_factory, tree):
    a, b, x = _operands()
    fn = lambda p, q, v: _materialize(tree, p, q, v)  # noqa: E731
    g = trace(fn, [a, b, x])
    feeds = [a.data, b.data, x.data]
    before, _ = run_graph(g, feeds)
    opt = pipeline_factory().run(g)
    after, _ = run_graph(opt, feeds)
    np.testing.assert_allclose(after[0], before[0], rtol=1e-2, atol=1e-3)


@given(tree=expressions())
@settings(max_examples=25, deadline=None)
def test_aware_flops_never_exceed_default(tree):
    """The aware pipeline must never produce a more expensive graph."""
    a, b, x = _operands()
    fn = lambda p, q, v: _materialize(tree, p, q, v)  # noqa: E731
    g1 = trace(fn, [a, b, x])
    g2 = trace(fn, [a, b, x])
    feeds = [a.data, b.data, x.data]
    _, rep_default = run_graph(default_pipeline().run(g1), feeds)
    _, rep_aware = run_graph(aware_pipeline().run(g2), feeds)
    assert rep_aware.total_flops <= rep_default.total_flops
