"""Post-schedule kernel fusion: rewrite a plan's instruction stream.

The compiler sees the whole schedule, so it can do what per-node eager
dispatch never can: collapse launch-bound sequences into single fused
instructions.  Two rewrites, both applied to the *finished* instruction
list (slots, liveness and kernel selection already resolved):

1. **GEMM alpha folding** — a ``scale`` (or ``neg``) whose sole operand
   is the immediately preceding dense GEMM's result, and which is that
   result's only consumer, folds into the GEMM's ``alpha`` argument: the
   BLAS call computes ``alpha * op(A) op(B)`` for free.  At most **one**
   factor folds per GEMM: BLAS applies ``alpha`` once after the dot-
   product accumulation, exactly like one elementwise post-scale, so a
   single fold is bit-identical — but combining two trailing scales into
   one premultiplied ``alpha`` would replace two rounded multiplies with
   one and drift a ULP.  Further trailing scales stay elementwise (and
   may still fuse with each other via rewrite 2).
1b. **GEMM beta folding** — an ``add``/``sub`` combining the immediately
   preceding unfolded GEMM's result (its only consumer) with an addend
   whose value liveness proves **dead** at that very instruction folds
   into the GEMM's C-accumulate: ``C := alpha·op(A)op(B) + beta·C`` with
   the addend as ``C`` and ``alpha, beta ∈ {±1}``.  The restriction to
   ±1 (no stacking on an alpha fold) is what keeps it bit-identical:
   sign flips are exact — even under FMA contraction — so BLAS's
   accumulate produces the same bits as the separate ufunc, while a
   general ``alpha`` FMA'd against ``C`` could contract two roundings
   into one.  The dead-addend requirement guarantees no later
   instruction reads the addend value again (the fused site consumes it
   as the accumulate seed) and excludes inputs/constants by
   construction; the executors still never write *through* the addend
   object itself, since slot liveness cannot prove the object isn't an
   alias of a caller-owned feed.
2. **Elementwise chain fusion** — a maximal run of adjacent
   add/sub/neg/scale instructions, each the single consumer of its
   predecessor's value, collapses into one fused closure: the first step
   materializes one array (or writes straight into the arena slot), every
   later step runs in place on it.  Intermediates are never materialized.

Parity contract (verified case-by-case by the runtime parity suite):

* **Outputs** are bit-identical to the unfused plan and the Interpreter —
  elementwise in-place ufuncs compute the same values, and BLAS applies
  ``alpha`` after the dot-product accumulation, exactly like a separate
  scale pass over the result.
* **Reports**: a fused site contributes **one** combined
  :class:`~repro.ir.interpreter.KernelCall` — ``kernel`` is
  ``"fused(<member>+<member>+...)"``, ``flops`` the members' sum, ``dims``
  the site's result shape, ``node_op`` ``"fused"`` — so total FLOPs are
  preserved while the call list shortens.  Peak/live bytes are preserved
  exactly: each fused instruction carries the members' original
  alloc/free sequence (:attr:`~repro.runtime.plan.Instruction.fused_events`,
  signed element counts) which the executor replays against the report.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..ir.interpreter import KernelCall
from .plan import Instruction, PlanInput


@dataclasses.dataclass(frozen=True)
class FusionStats:
    """What the fusion stage did to one plan."""

    ew_chains: int
    ew_ops_fused: int
    gemm_folds: int
    instructions_before: int
    instructions_after: int
    #: ``add``/``sub`` instructions folded into a GEMM's C-accumulate.
    gemm_beta_folds: int = 0
    #: Instructions the fold-aware scheduler hoisted above a GEMM to
    #: make a non-adjacent gemm→add/sub pair adjacent (each hoisted
    #: group enables one beta fold that adjacency alone would miss).
    fold_sinks: int = 0

    @property
    def sites(self) -> int:
        """Fused sites in the plan (chains + alpha folds + beta folds)."""
        return self.ew_chains + self.gemm_folds + self.gemm_beta_folds

    def describe(self) -> str:
        sinks = f" ({self.fold_sinks} scheduled)" if self.fold_sinks else ""
        return (
            f"fusion: {self.ew_chains} ew chains ({self.ew_ops_fused} ops), "
            f"{self.gemm_folds} gemm alpha-folds, "
            f"{self.gemm_beta_folds} beta-folds{sinks}"
        )


def _elems(shape: tuple[int, ...]) -> int:
    return math.prod(shape) if shape else 1


def _default_events(
    inst: Instruction, shape_of
) -> tuple[int, ...]:
    """The interpreter's alloc/free sequence for one unfused instruction,
    as signed element counts (alloc result, then free dead operands)."""
    ev = [_elems(inst.out_shape)]
    ev.extend(-_elems(shape_of(s)) for s in inst.free_slots)
    return tuple(ev)


def _combined_call(
    members: str, dims: tuple[int, ...], flops: int
) -> KernelCall:
    return KernelCall(f"fused({members})", dims, flops, "fused")


# -- GEMM alpha folding -------------------------------------------------------


def _fold_gemm(
    gemm: Instruction, ew: Instruction, shape_of
) -> Instruction:
    """Merge an (unfused) ``gemm`` and the trailing ``scale``/``neg``
    ``ew`` into one GEMM instruction with the factor folded into alpha."""
    from .compiler import make_gemm_fns  # deferred: compiler imports this module

    trans_a, trans_b, alpha = gemm.params
    factor = ew.params[1] if ew.params[0] == "scale" else -1.0
    new_alpha = alpha * factor
    fn, fn_out = make_gemm_fns(trans_a, trans_b, new_alpha)
    scratch = None
    if ew.out_slot in gemm.arg_slots:
        # The ew result reuses an operand's slot, and BLAS forbids C
        # aliasing A/B.  The GEMM's own (now dead) intermediate slot is
        # disjoint from every operand by construction — stage the product
        # there and copy it home.  Still allocation-free under an arena.
        scratch = gemm.out_slot
        direct = fn_out

        def fn_out(args, out, staging):
            np.copyto(out, direct(args, staging))
            return out

    events = _default_events(gemm, shape_of) + (
        _elems(ew.out_shape), -_elems(gemm.out_shape),
    )
    flops = gemm.calls[0].flops + ew.calls[0].flops
    members = f"{gemm.calls[0].kernel}+{ew.calls[0].kernel}"
    return Instruction(
        out_slot=ew.out_slot,
        arg_slots=gemm.arg_slots,
        fn=fn,
        calls=(_combined_call(members, ew.out_shape, flops),),
        # The merged site frees what the GEMM freed — except when the ew
        # result recycled one of those very slots: clearing it after the
        # write would null the result (the overwrite *is* the recycling).
        free_slots=tuple(s for s in gemm.free_slots if s != ew.out_slot),
        op=gemm.op,
        label=ew.label,
        out_shape=ew.out_shape,
        fn_out=fn_out,
        kind="gemm",
        params=(trans_a, trans_b, new_alpha),
        fused_events=events,
        scratch=scratch,
    )


def _beta_foldable(gemm: Instruction, ew: Instruction) -> bool:
    """Can ``ew`` (an add/sub) fold into ``gemm``'s C-accumulate?

    Requirements beyond adjacency:

    * the GEMM is unfolded with ``alpha == 1`` (±1-only bit-identity —
      see the module docstring) and not already a fused site;
    * the GEMM result feeds exactly one of the ew's two operands and
      dies there (single consumer);
    * the *addend* also dies at the ew (liveness-proved dead: the fused
      site consumes it as the accumulate seed and nothing reads it
      afterwards; inputs/constants — never freed — are excluded by
      construction);
    * the addend is not one of the GEMM's own operands (BLAS forbids
      ``C`` aliasing ``A``/``B``) and not the GEMM result itself
      (``G + G`` is a scale, not an accumulate).
    """
    if gemm.kind != "gemm" or gemm.fused_events is not None:
        return False
    if ew.kind != "ew" or ew.params[0] not in ("add", "sub"):
        return False
    if gemm.params[2] != 1.0:
        return False
    g = gemm.out_slot
    if len(ew.arg_slots) != 2 or ew.arg_slots.count(g) != 1:
        return False
    if g not in ew.free_slots:
        return False
    addend = ew.arg_slots[1] if ew.arg_slots[0] == g else ew.arg_slots[0]
    return addend in ew.free_slots and addend not in gemm.arg_slots


def _fold_gemm_beta(
    gemm: Instruction, ew: Instruction, shape_of
) -> Instruction:
    """Merge an (unfolded) ``gemm`` and the trailing ``add``/``sub``
    ``ew`` into one GEMM instruction accumulating into the dead addend."""
    from .compiler import make_gemm_beta_fns  # deferred: compiler imports this module

    trans_a, trans_b, _ = gemm.params
    op = ew.params[0]
    g_first = ew.arg_slots[0] == gemm.out_slot
    addend = ew.arg_slots[1] if g_first else ew.arg_slots[0]
    if op == "add":
        alpha, beta = 1.0, 1.0
    elif g_first:  # G - C
        alpha, beta = 1.0, -1.0
    else:  # C - G
        alpha, beta = -1.0, 1.0
    fn, fn_out = make_gemm_beta_fns(trans_a, trans_b, alpha, beta, g_first, op)
    scratch = None
    if ew.out_slot in gemm.arg_slots:
        # The ew result reuses a GEMM operand's slot; accumulating there
        # would alias C with A/B.  Stage in the GEMM's own (now dead)
        # intermediate slot — disjoint from every operand — and copy the
        # result home.  Still allocation-free under an arena.
        scratch = gemm.out_slot
        direct = fn_out

        def fn_out(args, out, staging):
            np.copyto(out, direct(args, staging))
            return out

    # Replay the members' original accounting: the GEMM's alloc/frees,
    # then the ew's — resolving the (never materialized) GEMM result's
    # shape locally.
    ev = list(_default_events(gemm, shape_of))
    ev.append(_elems(ew.out_shape))
    for s in ew.free_slots:
        shape = gemm.out_shape if s == gemm.out_slot else shape_of(s)
        ev.append(-_elems(shape))
    flops = gemm.calls[0].flops + ew.calls[0].flops
    members = f"{gemm.calls[0].kernel}+{ew.calls[0].kernel}"
    return Instruction(
        out_slot=ew.out_slot,
        arg_slots=gemm.arg_slots + (addend,),
        fn=fn,
        calls=(_combined_call(members, ew.out_shape, flops),),
        # The merged site frees what both members freed — except the GEMM
        # result (never materialized) and any slot the ew result recycled
        # (clearing it after the write would null the result).
        free_slots=tuple(
            s for s in gemm.free_slots + ew.free_slots
            if s != gemm.out_slot and s != ew.out_slot
        ),
        op=gemm.op,
        label=ew.label,
        out_shape=ew.out_shape,
        fn_out=fn_out,
        kind="gemm",
        params=(trans_a, trans_b, alpha, beta),
        fused_events=tuple(ev),
        scratch=scratch,
    )


# -- elementwise chain fusion -------------------------------------------------

#: Selector code meaning "the previous step's value".
_PREV = -1


def _first_step(op: str, sel: tuple[int, ...], alpha: float):
    """Step 0 executors: ``(args) -> fresh ndarray`` and
    ``(args, out) -> out``."""
    if op == "add":
        i, j = sel
        return (lambda args: args[i] + args[j],
                lambda args, out: np.add(args[i], args[j], out=out))
    if op == "sub":
        i, j = sel
        return (lambda args: args[i] - args[j],
                lambda args, out: np.subtract(args[i], args[j], out=out))
    if op == "neg":
        (i,) = sel
        return (lambda args: -args[i],
                lambda args, out: np.negative(args[i], out=out))
    (i,) = sel  # scale
    return (
        lambda args: args[i] * args[i].dtype.type(alpha),
        lambda args, out: np.multiply(args[i], args[i].dtype.type(alpha), out=out),
    )


def _chain_step(op: str, sel: tuple[int, ...], alpha: float):
    """Step t>0 executors: ``(val, args) -> val`` computing in place on the
    running value (bit-identical to the out-of-place op: same ufunc,
    same-shape elementwise, so aliasing the destination is safe)."""
    if op == "neg":
        return lambda val, args: np.negative(val, out=val)
    if op == "scale":
        return lambda val, args: np.multiply(val, val.dtype.type(alpha), out=val)
    ufunc = np.add if op == "add" else np.subtract
    i, j = sel
    if i == _PREV and j == _PREV:
        return lambda val, args: ufunc(val, val, out=val)
    if i == _PREV:
        return lambda val, args: ufunc(val, args[j], out=val)
    return lambda val, args: ufunc(args[i], val, out=val)


def _fuse_chain(group: list[Instruction], shape_of) -> Instruction:
    """Collapse a linear elementwise chain into one fused instruction."""
    intermediates = {g.out_slot for g in group[:-1]}
    ext_slots: list[int] = []
    ext_index: dict[int, int] = {}
    steps: list[tuple[str, tuple[int, ...], float]] = []
    for t, g in enumerate(group):
        prev_slot = group[t - 1].out_slot if t > 0 else None
        sel = []
        for s in g.arg_slots:
            if t > 0 and s == prev_slot:
                sel.append(_PREV)
            else:
                if s not in ext_index:
                    ext_index[s] = len(ext_slots)
                    ext_slots.append(s)
                sel.append(ext_index[s])
        op, *rest = g.params
        steps.append((op, tuple(sel), rest[0] if rest else 0.0))

    first, first_out = _first_step(*steps[0])
    rest_steps = tuple(_chain_step(*st) for st in steps[1:])

    def run(args, report, record):
        val = first(args)
        for step in rest_steps:
            val = step(val, args)
        return val

    out_slot = group[-1].out_slot
    # Destination aliasing: out_slot may recycle an external operand's
    # slot.  Writing into it at step 0 is still safe if that operand is
    # only *read at step 0* (same-shape elementwise ufuncs tolerate
    # out-aliasing an input); it clobbers a value still needed if the
    # operand is read at any later step.
    read_after_step0 = {
        ext_slots[code]
        for _, sel, _ in steps[1:]
        for code in sel
        if code != _PREV
    }
    scratch = None
    if out_slot in read_after_step0:
        # Stage the chain in the first member's (dead, provably
        # alias-free) intermediate slot, then copy home — the arena path
        # stays allocation-free.
        scratch = group[0].out_slot

        def run_out(args, out, staging):
            first_out(args, staging)
            for step in rest_steps:
                step(staging, args)
            np.copyto(out, staging)
            return out
    else:
        def run_out(args, out):
            first_out(args, out)
            for step in rest_steps:
                step(out, args)
            return out

    # Replay events and accounting: the members' original protocol, with
    # group-internal shapes resolved against the group itself (a member
    # may free an earlier member's value before the global map knows it).
    local: dict[int, tuple[int, ...]] = {}

    def local_shape(s: int) -> tuple[int, ...]:
        return local[s] if s in local else shape_of(s)

    events: list[int] = []
    for g in group:
        events.extend(_default_events(g, local_shape))
        local[g.out_slot] = g.out_shape

    members = "+".join(g.calls[0].kernel for g in group)
    flops = sum(g.calls[0].flops for g in group)
    # External slots the chain kills — minus the chain's own intermediates
    # (never materialized) and minus the destination slot (a freed operand
    # slot the last member recycled: clearing it post-write would null the
    # result; the overwrite is the recycling).
    free_slots = tuple(
        s
        for g in group
        for s in g.free_slots
        if s not in intermediates and s != out_slot
    )
    return Instruction(
        out_slot=out_slot,
        arg_slots=tuple(ext_slots),
        fn=run,
        calls=(_combined_call(members, group[-1].out_shape, flops),),
        free_slots=free_slots,
        op="fused",
        label=group[-1].label,
        out_shape=group[-1].out_shape,
        fn_out=run_out,
        fused_events=tuple(events),
        scratch=scratch,
    )


# -- fold-aware scheduling ----------------------------------------------------


def _hoist_legal(x: Instruction, y: Instruction) -> bool:
    """Can ``x`` (scheduled after ``y``) move above ``y`` without changing
    any value or nulling any live slot?

    Slot-table reasoning (``free_slots ⊆ arg_slots`` by construction —
    an instruction only frees its own dying operands):

    * ``x`` must not read anything ``y`` writes (``y``'s result or
      scratch), else the hoist reads a stale value;
    * ``x`` must not write (result or scratch) any slot ``y`` reads or
      writes — that covers clobbering ``y``'s operands, racing its
      destination, and the recycling hazard where ``y`` frees (clears)
      a slot ``x``'s hoisted result now occupies;
    * ``x`` must not free (clear) a slot ``y`` still reads.
    """
    y_writes = {y.out_slot} | ({y.scratch} if y.scratch is not None else set())
    if y_writes & set(x.arg_slots):
        return False
    x_writes = {x.out_slot} | ({x.scratch} if x.scratch is not None else set())
    if x_writes & (set(y.arg_slots) | y_writes):
        return False
    return not set(x.free_slots) & set(y.arg_slots)


def _sink_for_beta_folds(
    insts: list[Instruction],
) -> tuple[list[Instruction], int]:
    """Reorder so beta-foldable gemm→add/sub pairs become *adjacent*.

    The beta fold (pass 1b) only fires when the combining ``add``/``sub``
    immediately follows its GEMM, but schedules routinely interleave the
    dead addend's producer (or other independent work) between the two.
    For each GEMM whose result's single consumer is a beta-foldable
    ``ew`` further down, this pass hoists every intervening instruction
    above the GEMM — legality checked per instruction against the GEMM
    alone, since the interveners keep their relative order — which sinks
    the GEMM to just above its consumer.  Values are untouched (only
    independent work moves); the report's alloc/free *order* shifts with
    the schedule, exactly as if the trace had been written in the sunk
    order.
    """
    sinks = 0
    i = 0
    while i < len(insts):
        gemm = insts[i]
        if gemm.kind != "gemm" or gemm.fused_events is not None \
                or len(gemm.params) < 3 or gemm.params[2] != 1.0:
            i += 1
            continue
        # First consumer of the GEMM result decides everything: it must
        # be a beta-foldable ew, and every instruction before it must be
        # independent of the GEMM.
        g = gemm.out_slot
        j = i + 1
        while j < len(insts) and g not in insts[j].arg_slots:
            j += 1
        if j >= len(insts) or j == i + 1:
            i += 1
            continue  # no consumer, or already adjacent
        ew = insts[j]
        if not _beta_foldable(gemm, ew):
            i += 1
            continue
        between = insts[i + 1:j]
        if all(_hoist_legal(x, gemm) for x in between):
            insts[i:j] = between + [gemm]
            sinks += 1
            i = j - 1  # the GEMM's new position; pass 1 folds it next
            continue
        i += 1
    return insts, sinks


# -- the pass -----------------------------------------------------------------


def fuse_instructions(
    instructions: tuple[Instruction, ...], inputs: list[PlanInput]
) -> tuple[tuple[Instruction, ...], FusionStats]:
    """Run both fusion rewrites over ``instructions``; returns the fused
    stream and a :class:`FusionStats` summary."""
    before = len(instructions)
    slot_shape: dict[int, tuple[int, ...]] = {p.slot: p.shape for p in inputs}

    def shape_of(slot: int) -> tuple[int, ...]:
        return slot_shape[slot]

    # Pass 0 — fold-aware scheduling: sink each GEMM adjacent to its
    # beta-foldable consumer so pass 1b catches non-adjacent pairs too.
    insts, fold_sinks = _sink_for_beta_folds(list(instructions))

    # Pass 1 — GEMM alpha and beta folds.  One fold per GEMM, never a
    # cascade: a second factor premultiplied into alpha would merge two
    # rounded multiplies into one, and an alpha-scaled accumulate could
    # FMA-contract against C — either breaks bit-identity with the
    # interpreter (the ``fused_events is None`` guard stops re-folding).
    gemm_folds = 0
    gemm_beta_folds = 0
    idx = 0
    while idx < len(insts):
        inst = insts[idx]
        nxt = insts[idx + 1] if idx + 1 < len(insts) else None
        if (
            inst.kind == "gemm"
            and inst.fused_events is None
            and nxt is not None
            and nxt.kind == "ew"
            and nxt.params[0] in ("scale", "neg")
            and nxt.arg_slots == (inst.out_slot,)
            and inst.out_slot in nxt.free_slots
        ):
            insts[idx:idx + 2] = [_fold_gemm(inst, nxt, shape_of)]
            gemm_folds += 1
            continue  # re-examine: the guard stops a second fold
        if nxt is not None and _beta_foldable(inst, nxt):
            insts[idx:idx + 2] = [_fold_gemm_beta(inst, nxt, shape_of)]
            gemm_beta_folds += 1
            continue  # re-examine: the guard stops a second fold
        slot_shape[inst.out_slot] = inst.out_shape
        idx += 1

    # Pass 2 — elementwise chains.
    slot_shape = {p.slot: p.shape for p in inputs}
    fused: list[Instruction] = []
    ew_chains = 0
    ew_ops_fused = 0
    i = 0
    while i < len(insts):
        inst = insts[i]
        if inst.kind != "ew":
            fused.append(inst)
            slot_shape[inst.out_slot] = inst.out_shape
            i += 1
            continue
        group = [inst]
        j = i + 1
        while j < len(insts):
            nxt = insts[j]
            prev = group[-1]
            if (
                nxt.kind == "ew"
                and prev.out_slot in nxt.arg_slots
                and prev.out_slot in nxt.free_slots
            ):
                group.append(nxt)
                j += 1
            else:
                break
        if len(group) == 1:
            fused.append(inst)
            slot_shape[inst.out_slot] = inst.out_shape
            i += 1
            continue
        fused.append(_fuse_chain(group, shape_of))
        ew_chains += 1
        ew_ops_fused += len(group)
        for g in group:
            slot_shape[g.out_slot] = g.out_shape
        i = j

    stats = FusionStats(
        ew_chains=ew_chains,
        ew_ops_fused=ew_ops_fused,
        gemm_folds=gemm_folds,
        instructions_before=before,
        instructions_after=len(fused),
        gemm_beta_folds=gemm_beta_folds,
        fold_sinks=fold_sinks,
    )
    return tuple(fused), stats
