"""The :class:`Compiled` callable — the unified trace-once/execute-many
wrapper every entry point now returns.

``session.compile(fn, backend=...)`` returns a session-bound instance;
the legacy decorators (``tfsim.function`` / ``pytsim.jit.script``) return
an *ambient* instance that resolves the active session per call, so code
written against PR 1 transparently compiles into whatever session is
current (the process-wide default one when none is entered).

The trace/optimize/plan-compile work itself lives in
:meth:`Session._build` — the session owns the plan cache and the stats,
the ``Compiled`` object owns only the per-signature concrete table and
the user-facing conveniences (``interpret``, graph introspection,
``last_report``).
"""

from __future__ import annotations

import dataclasses
import threading
import time
import weakref
from collections.abc import Callable, Sequence

import numpy as np

from ..errors import TracingError
from ..ir.graph import Graph
from ..ir.interpreter import ExecutionReport, Interpreter
from ..runtime import Plan
from ..runtime.singleflight import SingleFlight
from ..tensor.tensor import Tensor
from .registry import FrameworkProfile


def input_signature(args: Sequence[Tensor]) -> tuple:
    """The retrace key: shapes, dtypes and property annotations."""
    sig = []
    for a in args:
        if not isinstance(a, Tensor):
            raise TracingError(
                f"compiled functions take Tensor arguments, got {type(a).__name__}"
            )
        sig.append((a.shape, str(a.dtype), frozenset(a.props)))
    return tuple(sig)


@dataclasses.dataclass
class Concrete:
    """One traced+optimized+plan-compiled specialization of a compiled
    function."""

    graph: Graph
    optimized: Graph
    plan: Plan
    trace_seconds: float
    pipeline_log: str
    #: Preallocated execution buffers, present when the owning session
    #: runs with ``Options(arena="preallocated")``.  Serialized calls
    #: through this concrete reuse it; outputs are copied out before they
    #: reach the caller, so user-visible results never alias arena
    #: storage.
    arena: "object | None" = None
    #: Feed-donation mode resolved from the session options (``False``,
    #: ``True`` or ``"fallback"``): passed through to ``plan.execute`` so
    #: already-F-ordered feeds alias arena input slots instead of being
    #: memcpy'd.
    donate: "bool | str" = False
    #: Guards the arena: one buffer set supports one execution at a time,
    #: so concurrent calls in arena mode serialize (per-call mode stays
    #: lock-free and fully concurrent).
    arena_lock: threading.Lock = dataclasses.field(
        default_factory=threading.Lock
    )
    #: Pinned-execution state (``Options(pin=True)``): when a call's feed
    #: arrays are identical objects to ``pinned_key``, the cached
    #: :class:`~repro.runtime.PinnedBinding` replays the serving loop
    #: with zero binding work.  Rebound whenever the identity changes.
    pin: bool = False
    pinned_key: tuple | None = None
    pinned_binding: "object | None" = None
    #: Autotune bookkeeping (set by ``Session._build`` when the session
    #: tunes): the plan-cache key hotness is tracked under, the plan-
    #: store trace key promotions re-alias, and whether this concrete is
    #: done tuning (raced, restored from the store, or claimed by a
    #: concurrent race).
    cache_key: "tuple | None" = None
    trace_key: "str | None" = None
    autotune_done: bool = False


class Compiled:
    """Graph-mode wrapper around a Python callable (see module docstring)."""

    def __init__(
        self,
        fn: Callable,
        profile: FrameworkProfile,
        *,
        session: "object | None" = None,
        pipeline: str | None = None,
    ) -> None:
        self._fn = fn
        self.profile = profile
        self._session = session  # None → resolve the ambient session per call
        self._pipeline = pipeline  # None → the session's default
        #: session → {input signature → Concrete}.  Keying by session
        #: means an ambient Compiled never leaks a plan built in one
        #: session into another; the *weak* keys mean a long-lived
        #: decorated function doesn't pin every short-lived session (and
        #: its whole PlanCache) it ever ran in.
        self._cache: "weakref.WeakKeyDictionary[object, dict[tuple, Concrete]]" = (
            weakref.WeakKeyDictionary()
        )
        # Single-flight concrete building: two threads first-calling the
        # same (session, signature) must not both pay trace+optimize, but
        # distinct signatures/sessions build concurrently — the lock only
        # guards the tables, never the build (same audited primitive the
        # PlanCache uses for plan compiles).
        self._build_lock = threading.Lock()
        self._flight = SingleFlight(self._build_lock)
        self.trace_count = 0
        self.last_trace_seconds = 0.0
        self.last_report: ExecutionReport | None = None
        self.__doc__ = fn.__doc__
        self.__name__ = getattr(fn, "__name__", "compiled_fn")

    # -- session/pipeline resolution -------------------------------------------

    @property
    def session(self):
        """The owning session (ambient instances resolve the current one)."""
        if self._session is not None:
            return self._session
        from .session import current_session

        return current_session()

    def _session_for(self, session) -> object:
        if self._session is not None and session is not None \
                and session is not self._session:
            raise ValueError(
                f"{self!r} is bound to a different Session; compile the "
                "function in the session you want to run it in"
            )
        return self._session or session or self.session

    def pipeline_choice(self, session) -> str:
        return self._pipeline or session.options.pipeline

    @property
    def aware(self) -> bool:
        """Back-compat: whether this function runs the aware pipeline —
        set explicitly or inherited from the (current) session default."""
        return self.pipeline_choice(self.session) == "aware"

    # -- tracing ---------------------------------------------------------------

    def get_concrete(self, *args: Tensor) -> Concrete:
        """Trace/optimize/plan-compile for this signature (cached); does
        not execute."""
        return self._concrete_in(self.session, args)

    def _concrete_in(self, session, args: Sequence[Tensor]) -> Concrete:
        sig = input_signature(args)

        def probe() -> Concrete | None:
            per_session = self._cache.get(session)
            if per_session is None:
                per_session = self._cache.setdefault(session, {})
            return per_session.get(sig)

        def build() -> Concrete:
            return session._build(
                self._fn,
                self.profile,
                self.pipeline_choice(session),
                args,
                label=self.__name__,
            )

        def publish(concrete: Concrete) -> None:
            self._cache.setdefault(session, {})[sig] = concrete
            self.trace_count += 1
            self.last_trace_seconds = concrete.trace_seconds

        concrete, _ = self._flight.run((session, sig), probe, build, publish)
        return concrete

    # -- execution ---------------------------------------------------------------

    def __call__(self, *args: Tensor):
        return self._call_in(self.session, args)

    def _call_in(self, session, args: Sequence[Tensor]):
        concrete = self._concrete_in(session, args)
        datas = [a.data for a in args]
        start = time.perf_counter()
        if concrete.arena is None:
            outputs, report = concrete.plan.execute(datas)
        else:
            with concrete.arena_lock:
                if concrete.pin:
                    outputs = self._execute_pinned(concrete, datas)
                    report = ExecutionReport()
                else:
                    outputs, report = concrete.plan.execute(
                        datas, arena=concrete.arena, donate=concrete.donate,
                    )
                    outputs = list(outputs)
                # Detach results from arena storage: the next call
                # rewrites the buffers these outputs alias.
                outputs = [out.copy() for out in outputs]
        session._record_exec(concrete.plan, time.perf_counter() - start)
        session._maybe_autotune(concrete, datas)
        self.last_report = report
        return self._wrap(outputs)

    @staticmethod
    def _execute_pinned(concrete: Concrete, datas: list):
        """Arena execution through the concrete's cached PinnedBinding.

        The steady-state hit is an identity comparison plus the serving
        loop — no slot-table build, no feed binding, no donation layout
        checks.  A new feed identity (or a layout the binding rejects)
        rebinds; sustained identity churn just degrades to donated-
        execution cost paid through a fresh binding per call.
        """
        key = tuple(map(id, datas))
        binding = concrete.pinned_binding
        if binding is None or concrete.pinned_key != key:
            try:
                binding = concrete.plan.bind_pinned(datas, concrete.arena)
            except ValueError:
                # Layout unsuited for aliasing (e.g. a strided view or a
                # C-ordered feed for an F slot).  Strict donation keeps
                # its contract — surface the layout error loudly —
                # otherwise stay correct via the fallback-donation path.
                if concrete.donate is True:
                    raise
                outputs, _ = concrete.plan.execute(
                    datas, arena=concrete.arena, donate="fallback",
                    record=False,
                )
                return list(outputs)
            concrete.pinned_binding = binding
            concrete.pinned_key = key
        return list(binding.execute())

    def interpret(self, *args: Tensor):
        """Execute through the reference :class:`Interpreter` instead of
        the compiled plan — the pre-runtime path, kept for parity checks
        and the ``interpreter`` measurement mode."""
        concrete = self.get_concrete(*args)
        interp = Interpreter(record=True)
        outputs, report = interp.run(concrete.optimized, [a.data for a in args])
        self.last_report = report
        return self._wrap(outputs)

    @staticmethod
    def _wrap(outputs):
        tensors = [Tensor(np.ascontiguousarray(o)) for o in outputs]
        if len(tensors) == 1:
            return tensors[0]
        return tuple(tensors)

    # -- introspection -------------------------------------------------------------

    def initial_graph(self, *args: Tensor) -> Graph:
        """The pre-optimization DAG (the paper's Fig. 3 left side)."""
        return self.get_concrete(*args).graph

    def optimized_graph(self, *args: Tensor) -> Graph:
        """The post-optimization DAG (the paper's Fig. 3 right side)."""
        return self.get_concrete(*args).optimized

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = self._pipeline or "session-default"
        bound = "ambient" if self._session is None else "bound"
        return (
            f"<Compiled {self.__name__} [{self.profile.name}/{mode}] "
            f"{bound}, traces={self.trace_count}>"
        )
