"""No-op elimination.

Dead code in the classical sense cannot exist in this IR — a
:class:`~repro.ir.graph.Graph` is defined as the nodes reachable from its
outputs, so unreachable nodes vanish at every rebuild.  What remains to
clean up are *identity* operations introduced by other passes or by naive
user code: scalings by 1, slices that select the whole operand, and
transposes of 1×1 scalars.
"""

from __future__ import annotations

from ..ir.graph import Graph
from ..ir.node import Node
from .base import GraphPass


def _selects_all(sel: object, extent: int) -> bool:
    if sel is None:
        return True
    if isinstance(sel, int):
        return extent == 1 and sel in (0, -1)
    start, stop = sel
    start_ok = start in (None, 0)
    stop_ok = stop is None or stop == extent
    return bool(start_ok and stop_ok)


class NoOpElimination(GraphPass):
    """Drop identity operations: scale×1, whole-operand slice, 1×1 transpose."""

    name = "noop_elim"

    def apply(self, graph: Graph) -> Graph:
        graph = self.transform_loop_bodies(graph)

        def fn(node: Node, new_inputs: tuple[Node, ...]) -> Node | None:
            if node.op == "scale" and float(node.attrs["alpha"]) == 1.0:
                self._count()
                return new_inputs[0]
            if node.op == "slice":
                (x,) = new_inputs
                if _selects_all(node.attrs.get("rows"), x.shape[0]) and _selects_all(
                    node.attrs.get("cols"), x.shape[1]
                ):
                    self._count()
                    return x
            if node.op == "transpose" and node.shape == (1, 1):
                self._count()
                return new_inputs[0]
            if node.op == "concat" and len(new_inputs) == 1:
                self._count()
                return new_inputs[0]
            return None

        return graph.rewrite(fn)
