"""Executable plans: the compile-once / execute-many artifact.

A :class:`Plan` is a flat list of :class:`Instruction` records over a slot
table.  Everything the Interpreter derives per call — topological order,
liveness, kernel choice, FLOP model, result sizes — is frozen into the
instructions at compile time; executing the plan is a single sweep over
the list with no graph traversal, no ``getattr`` dispatch and no dict
rebuilds.

Parity contract
---------------
``Plan.execute`` produces bit-identical outputs to ``Interpreter.run`` on
the same graph and feeds — in **every** mode combination: fusion on/off ×
arena preallocated/per-call.  The report contract has two levels:

* fusion **off**: the :class:`~repro.ir.interpreter.ExecutionReport` is
  equal field-for-field (kernel-call list, FLOPs, peak/live bytes).  The
  executor replicates the Interpreter's accounting protocol exactly:
  record kernel calls during the op, alloc the result, then free operands
  whose last consumer this was (inputs and constants stay live).
* fusion **on**: a fused site is reported as **one** combined
  :class:`~repro.ir.interpreter.KernelCall` — ``kernel`` is
  ``"fused(add+scale+...)"`` (or ``"fused(gemm+scale)"`` for an alpha
  fold), ``dims`` is the site's result shape, ``flops`` is the *sum* of
  the member kernels' modelled FLOPs, ``node_op`` is ``"fused"``.  Total
  FLOPs and peak/live bytes stay **equal** to the Interpreter's: each
  fused instruction replays the member ops' original alloc/free sequence
  (:attr:`Instruction.fused_events`), so the modelled memory high-water
  mark is unchanged even though the call list is shorter.

The **arena** never affects the report: it changes where results are
materialized (preallocated per-slot storage, written through the
``out=``-aware kernels), not what is modelled.  Arena-mode outputs alias
the arena's buffers — the next execution through the same arena
overwrites them; copy what you need to keep (``execute_batch`` and the
Session layer do this for you).

Donated feeds
-------------
``execute(..., donate=True)`` is the caller's declaration that the fed
arrays are already Fortran-ordered and theirs to hand over for the call:
instead of staging each feed into an arena input slot with a memcpy, the
plan aliases the arrays into the slot table directly.  Input slots are
never written by instructions (inputs stay live for the whole run), so
the arrays are read, never mutated — "donation" buys the zero-copy
aliasing, and in exchange the caller must not mutate the arrays during
the call and must not assume outputs are independent of later reuse of
the arena.  A feed that is not Fortran-contiguous would silently put
downstream kernels back on numpy's mixed-layout buffering paths, so
strict donation *raises* ``ValueError`` naming the offending input;
``donate="fallback"`` copies such feeds instead (the mode the Session
layer uses under ``validation="full"``).

Slot layouts
------------
Arena buffers are Fortran-ordered by default (BLAS's native layout — see
:class:`PlanArena`), but the compiler may mark individual slots
C-ordered when every instruction writing them measurably prefers a
C destination: the tridiagonal row-scaling kernel updates *row slices*
of its result, which against an F-ordered buffer degenerate into
strided inner loops roughly twice as slow as the allocating path.  The
per-slot order lives in :attr:`Plan.slot_orders`; donation checks feeds
against the slot's declared order (a C-ordered input slot accepts —
and aliases — the C-contiguous arrays tensors carry by default).

Pinned bindings
---------------
Donation still pays per-call feed binding: the dict/positional walk of
``_bind``, a layout flag check per input, and a fresh ``num_slots``-long
slot list.  :meth:`Plan.bind_pinned` moves all of that to a one-time
step: the caller's (already layout-correct) arrays are aliased into a
*persistent* slot table and the resulting :class:`PinnedBinding` replays
the serving loop with zero per-call binding work — the steady-state
shape of a server that owns its input buffers and rewrites them in
place between calls.  Used by ``Session.pin`` / ``Options(pin=True)``
and by the shard workers' shared-memory input slots.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Mapping, Sequence

import numpy as np

from ..errors import GraphError
from ..ir.interpreter import ExecutionReport, KernelCall, _normalize_feed

#: An op executor: ``fn(args, report, record) -> ndarray``.  Most ops
#: ignore ``report``/``record``; ``loop`` threads them into its sub-plan.
ExecFn = Callable[[list, ExecutionReport, bool], np.ndarray]

#: A destination-aware op executor: ``fn(args, out) -> ndarray``.  Writes
#: the result into the preallocated ``out`` buffer and returns it; ops
#: without an in-place kernel leave this ``None`` and the executor falls
#: back to compute-then-copy.
OutFn = Callable[[list, np.ndarray], np.ndarray]

#: A loop-body executor for arena mode:
#: ``fn(args, out, state, report, record) -> ndarray``.  Drives the
#: nested sub-plan through the persistent per-:class:`PlanArena`
#: ``state`` (ping-pong child arenas + index buffer) so iterative
#: workloads stay allocation-free after warmup.
LoopFn = Callable[[list, np.ndarray, "LoopState", ExecutionReport, bool], np.ndarray]


@dataclasses.dataclass(frozen=True)
class Instruction:
    """One scheduled op with everything pre-resolved."""

    #: Slot the result is written to.
    out_slot: int
    #: Slots of the operands, in positional order.
    arg_slots: tuple[int, ...]
    #: The compiled executor for this op (kernel already selected).
    fn: ExecFn
    #: Kernel-call records to append per execution (dims and FLOPs are
    #: static, so the records are built once and shared).
    calls: tuple[KernelCall, ...]
    #: Slots whose value dies here (last consumer): freed from the report
    #: and cleared from the slot table so the slot can be reused.
    free_slots: tuple[int, ...]
    #: Source node's op and name — for introspection/debugging only.
    op: str
    label: str
    #: Static result shape (slot shapes are static; this is what lets a
    #: :class:`PlanArena` preallocate real storage per slot).
    out_shape: tuple[int, ...] = ()
    #: Destination-aware executor (``None`` → compute-then-copy in arena
    #: mode).
    fn_out: OutFn | None = None
    #: Semantic tag the fusion pass dispatches on: "ew" (add/sub/neg/
    #: scale), "gemm" (plain dense matmul, alpha-foldable), "const"
    #: (result is an aliased compile-time payload), or ``None`` (opaque).
    kind: str | None = None
    #: Fusion-relevant parameters: ``("add",)``/``("sub",)``/``("neg",)``/
    #: ``("scale", alpha)`` for "ew"; ``(trans_a, trans_b, alpha)`` for
    #: "gemm".
    params: tuple = ()
    #: For fused instructions only: the member ops' alloc/free sequence as
    #: signed *element* counts, replayed against the report in order
    #: (positive → ``alloc(n * itemsize)``, negative → ``free``).  Keeps
    #: peak/live bytes bit-equal to the Interpreter's accounting even
    #: though the fused site materializes no intermediates.
    fused_events: tuple[int, ...] | None = None
    #: Slot of a guaranteed alias-free staging buffer for arena execution
    #: — used by fused sites whose destination slot recycles one of their
    #: own operand slots (the fused site's dead intermediate slot is
    #: repurposed: provably disjoint from every operand, so compute lands
    #: there and one copy moves it home), and by destination-aware
    #: kernels that need a result-shaped workspace (the tridiagonal
    #: row-scaling products).
    scratch: int | None = None
    #: Arena-aware loop executor (``loop`` ops only); per-call mode and
    #: cold arenas keep using ``fn``.
    fn_loop: LoopFn | None = None
    #: The compiled loop-body plan (``loop`` ops only) — what a
    #: :class:`LoopState` builds its child arenas from.
    sub_plan: "Plan | None" = None


@dataclasses.dataclass(frozen=True)
class PlanInput:
    """Feed-binding metadata for one graph input."""

    name: str
    shape: tuple[int, int]
    slot: int


@dataclasses.dataclass(frozen=True)
class SlotDescriptor:
    """Layout of one externally-backable plan buffer.

    What an external allocator (a shard's shared-memory segment, a
    pinned Tensor) needs to build storage an arena can adopt verbatim:
    the slot index, its static shape, the memory order the kernels
    writing/reading it expect, and the byte size at a given dtype.
    """

    role: str  #: ``"input"`` or ``"output"``
    name: str  #: input name, or ``"output[i]"`` for outputs
    slot: int
    shape: tuple[int, ...]
    order: str  #: ``"C"`` or ``"F"``
    dtype: np.dtype
    nbytes: int


class LoopState:
    """Persistent per-arena execution state of one ``loop`` instruction.

    Two child arenas, used ping-pong (iteration *i* executes through
    ``arenas[i & 1]``): the carried value coming out of one iteration
    lives in one arena's buffers and can therefore be *donated* — aliased,
    not copied — into the next iteration's feeds, because that iteration
    writes only the other arena's (disjoint) buffers.  After both child
    arenas warm up, the loop performs zero ndarray allocations and zero
    carried-value copies per trip.  ``idx`` is the persistent ``(1, 1)``
    iteration-counter buffer the sub-plan's first input aliases.
    """

    __slots__ = ("inst", "arenas", "_idx")

    def __init__(self, inst: Instruction, sub_plan: "Plan") -> None:
        # Pins the instruction: the owning dict is keyed by ``id(inst)``.
        self.inst = inst
        self.arenas = (sub_plan.new_arena(), sub_plan.new_arena())
        self._idx: np.ndarray | None = None

    def idx(self, dtype: np.dtype) -> np.ndarray:
        buf = self._idx
        if buf is None or buf.dtype != dtype:
            buf = self._idx = np.empty((1, 1), dtype=dtype, order="F")
        return buf


class PlanArena:
    """Preallocated per-slot ndarray storage for one executing context.

    Slot shapes are static (the compiler recycles a slot only for values
    of the same shape), so every slot needs at most one real buffer.
    Buffers are allocated lazily on first use — the first execution warms
    the arena (dtype is only known once feeds arrive) — and reused
    verbatim afterwards: repeated execution through a warm arena performs
    **zero** ndarray allocations for every op with a destination-aware
    kernel (elementwise, GEMM/GEMV/DOT, transpose, slice, concat, the
    zero/identity hints), and compute-then-copy for the rest.

    Every buffer — including the staged copies of feeds and constants —
    is **Fortran-ordered** unless the compiler marked the slot
    C-ordered (see *Slot layouts* in the module docstring).  The F
    default is deliberate, not cosmetic: GEMM's in-place ``C`` argument
    must be F-contiguous, f2py silently copies any C-ordered operand
    before calling BLAS, and numpy's ufunc machinery falls back to
    allocating iteration buffers the moment operand layouts mix.  A
    uniformly-F arena keeps every hot path — the elementwise ufuncs,
    GEMM/GEMV, the staged feeds — on the no-copy/no-buffering fast path
    (measured, not assumed: the allocation regression test pins this
    down); the C exceptions exist only where a row-structured kernel
    measurably prefers the opposite layout.

    An arena belongs to one execution stream: two threads must not
    execute through the same arena concurrently (use one arena per
    worker, as :func:`repro.runtime.batch.execute_batch` does).
    """

    __slots__ = ("buffers", "allocations", "bytes_copied", "loops",
                 "pinned", "_orders", "_turbo_sig", "_mixed")

    def __init__(self, plan: "Plan") -> None:
        #: Per-slot storage; ``None`` until the slot's first write.
        self.buffers: list[np.ndarray | None] = [None] * plan.num_slots
        #: Slots backed by caller-owned storage (:meth:`install`): never
        #: silently reallocated — a shape/dtype mismatch raises instead,
        #: because external owners (shared-memory views, pinned Tensors)
        #: rely on *their* buffer staying the slot's storage.
        self.pinned: set[int] = set()
        # Per-slot memory order, shared with the owning plan.
        self._orders = plan.slot_orders
        #: Buffers allocated so far — stops growing once the arena is
        #: warm (asserted by the allocation-free regression test).
        self.allocations = 0
        #: Bytes memcpy'd into arena storage so far (feed staging, const
        #: staging, compute-then-copy landings).  Donated feeds skip the
        #: staging copies, which is what the ``bytes_copied_per_call``
        #: benchmark metric measures.
        self.bytes_copied = 0
        #: ``id(instruction)`` → :class:`LoopState` for the plan's loop
        #: instructions (the state pins the instruction, keeping the id
        #: stable).
        self.loops: dict[int, LoopState] = {}
        # Turbo-eligibility: the input-dtype tuple of the last completed
        # execution that needed no mixed-dtype fallback.  A later call
        # whose bound feeds match it can skip every per-instruction
        # dtype/warmth check (see Plan.execute).
        self._turbo_sig: tuple | None = None
        self._mixed = False

    def buffer(
        self, slot: int, shape: tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        """The preallocated buffer for ``slot`` (allocating on first use
        or on a dtype change — shapes never change)."""
        buf = self.buffers[slot]
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            if slot in self.pinned:
                raise ValueError(
                    f"arena slot {slot} is pinned to external storage of "
                    f"shape {None if buf is None else buf.shape} "
                    f"{None if buf is None else buf.dtype}; execution "
                    f"needs {shape} {dtype} — unpin or rebuild the "
                    "backing buffer"
                )
            buf = np.empty(shape, dtype=dtype, order=self._orders[slot])
            self.buffers[slot] = buf
            self.allocations += 1
        return buf

    def install(self, slot: int, array: np.ndarray, *, pin: bool = True) -> None:
        """Back ``slot`` with caller-owned storage.

        The array must be contiguous in the slot's declared order
        (shape/dtype compatibility with the executing plan is the
        caller's contract; :meth:`Plan.pin_slot` is the checked front
        door).  ``pin=True`` marks the slot so a later shape/dtype
        mismatch raises instead of silently reallocating away from the
        external buffer.
        """
        order = self._orders[slot]
        contiguous = (
            array.flags.f_contiguous if order == "F" else array.flags.c_contiguous
        )
        if not contiguous:
            raise ValueError(
                f"arena slot {slot} expects {order}-contiguous storage; "
                f"got strides {array.strides} for shape {array.shape}"
            )
        self.buffers[slot] = array
        if pin:
            self.pinned.add(slot)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        warm = sum(1 for b in self.buffers if b is not None)
        return f"<PlanArena {warm}/{len(self.buffers)} slots warm>"


class Plan:
    """A compiled graph: schedule + kernels + buffer table.

    Build via :func:`repro.runtime.compiler.compile_plan`, not directly.
    """

    __slots__ = (
        "instructions",
        "inputs",
        "output_slots",
        "num_slots",
        "signature",
        "compile_seconds",
        "fusion_stats",
        "slot_orders",
        "_source",
        "_slot_shapes",
        "_by_name",
        "_by_pos",
        "_turbo_ops",
        # Weakly referenceable so per-plan accounting (Session._plan_stats)
        # can key on plans without pinning evicted ones in memory.
        "__weakref__",
    )

    def __init__(
        self,
        instructions: tuple[Instruction, ...],
        inputs: tuple[PlanInput, ...],
        output_slots: tuple[int, ...],
        num_slots: int,
        signature: tuple,
        compile_seconds: float = 0.0,
        fusion_stats: "object | None" = None,
        slot_orders: tuple[str, ...] | None = None,
        source: tuple | None = None,
    ) -> None:
        self.instructions = instructions
        self.inputs = inputs
        self.output_slots = output_slots
        self.num_slots = num_slots
        self.signature = signature
        self.compile_seconds = compile_seconds
        #: :class:`~repro.runtime.fusion.FusionStats` when the plan was
        #: compiled with ``fusion=True``, else ``None``.
        self.fusion_stats = fusion_stats
        #: Per-slot memory order ("F" default; "C" where every writer is
        #: a row-structured kernel that prefers C destinations).
        self.slot_orders = slot_orders or ("F",) * num_slots
        # (graph, fold_constants, fusion) — what pickling reconstructs
        # the plan from (see __reduce__).  None for hand-built plans.
        self._source = source
        # Static per-slot shapes: inputs + instruction outputs + scratch
        # workspaces (scratch shares the out shape of its requester).
        shapes: dict[int, tuple[int, ...]] = {p.slot: p.shape for p in inputs}
        for inst in instructions:
            shapes.setdefault(inst.out_slot, inst.out_shape)
            if inst.scratch is not None:
                shapes.setdefault(inst.scratch, inst.out_shape)
        self._slot_shapes = shapes
        # Feed-binding lookups are static — build them once here instead
        # of rebuilding two dicts on every mapping-feed call.
        self._by_name = {p.name: p for p in inputs}
        self._by_pos = dict(enumerate(inputs))
        # The warm-arena fast-dispatch table: per instruction, the
        # destination-aware executor when it can be called with zero
        # per-call checks (no const/loop special casing), else None →
        # the general ``_exec_into`` path.  Scratch-carrying kernels
        # (tridiagonal row scalings, fused staging sites) take the fast
        # path too — their workspace buffer is warm by the time the
        # arena certifies, so the slot index is all the call needs.
        # Purely structural, so resolved once here instead of per
        # instruction per execution.
        self._turbo_ops = tuple(
            (
                inst.fn_out
                if inst.fn_out is not None and inst.kind != "const"
                else None,
                inst.out_slot,
                inst.arg_slots,
                inst,
                inst.scratch,
            )
            for inst in instructions
        )

    def new_arena(self) -> PlanArena:
        """A fresh preallocated-buffer arena for this plan."""
        return PlanArena(self)

    @property
    def source(self) -> "tuple | None":
        """``(graph, fold_constants, fusion)`` this plan was compiled
        from — what pickling and the persistent plan store reconstruct;
        ``None`` for hand-built plans (which neither can ship)."""
        return self._source

    # -- pickling -------------------------------------------------------------

    def __reduce__(self):
        """Plans pickle *by reconstruction*: the instruction closures are
        unpicklable (and deliberately so — they capture f2py routines),
        but the source graph serializes structurally and recompiles into
        an equivalent plan.  This is what lets a shard worker receive a
        plan under the ``spawn`` start method and compile it once into
        its own arena."""
        if self._source is None:
            raise TypeError(
                "this Plan was built without a source graph and cannot be "
                "pickled; compile via compile_plan() to get a picklable plan"
            )
        from .serialize import graph_to_payload  # deferred: cycle-free

        graph, fold_constants, fusion = self._source
        return (
            _rebuild_plan,
            (graph_to_payload(graph), fold_constants, fusion),
        )

    # -- external buffer backing ----------------------------------------------

    def slot_shape(self, slot: int) -> tuple[int, ...]:
        """The static shape of ``slot``'s value."""
        return self._slot_shapes[slot]

    def buffer_descriptors(self, dtype: np.dtype) -> list[SlotDescriptor]:
        """Input and output slot layouts at ``dtype`` — what an external
        allocator (shared-memory segment, pinned Tensor pool) needs to
        build storage :meth:`pin_slot` can adopt.  Ordered inputs first
        (feed order), then outputs; an output that *is* an input appears
        once per role."""
        dtype = np.dtype(dtype)
        descs = [
            SlotDescriptor(
                role="input",
                name=spec.name,
                slot=spec.slot,
                shape=spec.shape,
                order=self.slot_orders[spec.slot],
                dtype=dtype,
                nbytes=int(np.prod(spec.shape)) * dtype.itemsize,
            )
            for spec in self.inputs
        ]
        for i, slot in enumerate(self.output_slots):
            shape = self._slot_shapes[slot]
            descs.append(
                SlotDescriptor(
                    role="output",
                    name=f"output[{i}]",
                    slot=slot,
                    shape=shape,
                    order=self.slot_orders[slot],
                    dtype=dtype,
                    nbytes=int(np.prod(shape)) * dtype.itemsize,
                )
            )
        return descs

    def pin_slot(self, arena: PlanArena, slot: int, array: np.ndarray) -> None:
        """Back ``slot`` of ``arena`` with ``array`` for the arena's
        lifetime (checked: static shape and declared order must match).
        Instructions then write the slot's value straight into ``array``
        — the hook shard workers use to land outputs in shared memory."""
        expected = self._slot_shapes.get(slot)
        if expected is None or tuple(array.shape) != tuple(expected):
            raise ValueError(
                f"slot {slot} holds values of shape {expected}, got buffer "
                f"of shape {tuple(array.shape)}"
            )
        arena.install(slot, array)

    def bind_pinned(
        self, feeds: Sequence[np.ndarray], arena: PlanArena
    ) -> "PinnedBinding":
        """Bind ``feeds`` into a persistent slot table (see *Pinned
        bindings* in the module docstring).  Validates length, shapes
        and per-slot layout once; the returned binding executes with no
        per-call binding work.  The caller keeps ownership of the arrays
        and may rewrite their *contents* between calls — identity and
        layout are fixed for the binding's lifetime."""
        # Same normalization as every other feed path (Tensor unwrap,
        # 0-d/1-D promotion via reshape *views* — aliasing is preserved).
        feeds = [_normalize_feed(f) for f in feeds]
        if len(feeds) != len(self.inputs):
            raise GraphError(
                f"plan has {len(self.inputs)} inputs, got {len(feeds)} feeds"
            )
        for spec, arr in zip(self.inputs, feeds):
            if tuple(arr.shape) != spec.shape:
                raise GraphError(
                    f"feed for {spec.name!r} has shape {arr.shape}, "
                    f"input declares {spec.shape}"
                )
            order = self.slot_orders[spec.slot]
            contiguous = (
                arr.flags.f_contiguous if order == "F" else arr.flags.c_contiguous
            )
            if not contiguous:
                raise ValueError(
                    f"pinned feed for input {spec.name!r} must be "
                    f"{order}-contiguous — allocate it with "
                    f"np.empty(..., order={order!r}) (Session.pin does)"
                )
        return PinnedBinding(self, arena, feeds)

    # -- feed binding ---------------------------------------------------------

    def _bind(
        self, feeds: Sequence[object] | Mapping[object, object], slots: list
    ) -> None:
        if isinstance(feeds, Mapping):
            by_name = self._by_name
            by_pos = self._by_pos
            bound: set[int] = set()
            for key, value in feeds.items():
                if isinstance(key, str):
                    spec = by_name.get(key)
                elif isinstance(key, int):
                    spec = by_pos.get(key)
                else:
                    # Node keys: match by input name (plans outlive the
                    # node objects they were compiled from).
                    spec = by_name.get(getattr(key, "name", None))
                if spec is None:
                    raise GraphError(f"no plan input matches feed key {key!r}")
                slots[spec.slot] = _normalize_feed(value)
                bound.add(spec.slot)
            for spec in self.inputs:
                if spec.slot not in bound:
                    raise GraphError(f"missing feed for input {spec.name!r}")
        else:
            feeds = list(feeds)
            if len(feeds) != len(self.inputs):
                raise GraphError(
                    f"plan has {len(self.inputs)} inputs, got {len(feeds)} feeds"
                )
            for spec, value in zip(self.inputs, feeds):
                slots[spec.slot] = _normalize_feed(value)
        for spec in self.inputs:
            arr = slots[spec.slot]
            if tuple(arr.shape) != spec.shape:
                raise GraphError(
                    f"feed for {spec.name!r} has shape {arr.shape}, "
                    f"input declares {spec.shape}"
                )

    # -- execution ------------------------------------------------------------

    def _exec_into(
        self,
        inst: Instruction,
        args: list,
        arena: PlanArena,
        report: ExecutionReport,
        record: bool,
    ) -> np.ndarray:
        """Run one instruction with its result in the arena's slot buffer.

        This is the general path (constants, staged fused sites, ops
        without an in-place kernel, cold buffers); the executor loop
        inlines the common warm case — ``fn_out`` straight into the
        slot's existing buffer — to keep per-instruction overhead below
        what a fresh allocation would cost.
        """
        if inst.kind == "const":
            # Constant payloads never change: stage them into arena (F-
            # order) storage once, when the slot buffer is first created.
            value = inst.fn(args, report, record)
            buf = arena.buffers[inst.out_slot]
            if buf is None or buf.shape != value.shape or buf.dtype != value.dtype:
                buf = arena.buffer(inst.out_slot, value.shape, value.dtype)
                np.copyto(buf, value)
                arena.bytes_copied += value.nbytes
            return buf
        dtype = args[0].dtype if args else np.dtype(np.float64)
        if inst.fn_loop is not None:
            # Loops thread a persistent LoopState (ping-pong child arenas
            # + index buffer) so the body executes arena'd too.
            state = arena.loops.get(id(inst))
            if state is None:
                state = arena.loops[id(inst)] = LoopState(inst, inst.sub_plan)
            buf = arena.buffer(inst.out_slot, inst.out_shape, dtype)
            return inst.fn_loop(args, buf, state, report, record)
        mixed = any(a.dtype != dtype for a in args)
        if inst.fn_out is not None and not mixed:
            buf = arena.buffer(inst.out_slot, inst.out_shape, dtype)
            if inst.scratch is None:
                return inst.fn_out(args, buf)
            staging = arena.buffer(inst.scratch, inst.out_shape, dtype)
            return inst.fn_out(args, buf, staging)
        if mixed:
            # Ufunc promotion must win over in-place destinations; also
            # bars the turbo path until a uniform-dtype pass completes.
            arena._mixed = True
        # No in-place kernel, or mixed operand dtypes: compute as
        # per-call mode does, then land the result in the slot's stable
        # storage when it fits.
        result = inst.fn(args, report, record)
        buf = arena.buffer(inst.out_slot, result.shape, result.dtype)
        np.copyto(buf, result)
        arena.bytes_copied += result.nbytes
        return buf

    def execute(
        self,
        feeds: Sequence[object] | Mapping[object, object],
        *,
        report: ExecutionReport | None = None,
        record: bool = True,
        arena: PlanArena | None = None,
        donate: "bool | str" = False,
    ) -> tuple[list[np.ndarray], ExecutionReport]:
        """Run the plan; returns ``(outputs, report)`` like Interpreter.run.

        ``arena`` switches execution onto preallocated per-slot buffers
        (see :class:`PlanArena`); outputs then alias arena storage and are
        only valid until the next execution through the same arena.

        ``donate`` (arena mode only) aliases already-Fortran-ordered
        feeds straight into the slot table instead of memcpy'ing them
        into arena input buffers — see *Donated feeds* in the module
        docstring.  ``True`` raises :class:`ValueError` on a feed whose
        layout would defeat the aliasing; ``"fallback"`` copies such
        feeds instead.
        """
        report = report if report is not None else ExecutionReport()
        slots: list = [None] * self.num_slots
        self._bind(feeds, slots)
        if arena is not None:
            if donate:
                orders = self.slot_orders
                for spec in self.inputs:
                    src = slots[spec.slot]
                    order = orders[spec.slot]
                    if (src.flags.f_contiguous if order == "F"
                            else src.flags.c_contiguous):
                        continue  # aliased in place — the zero-copy path
                    if donate != "fallback":
                        kind, hint = (
                            ("Fortran", "np.asfortranarray(...)")
                            if order == "F"
                            else ("C", "np.ascontiguousarray(...)")
                        )
                        raise ValueError(
                            f"donate=True: feed for input {spec.name!r} is "
                            f"not {kind}-contiguous — pass {hint} (or "
                            "donate='fallback' to copy feeds the layout "
                            "check rejects)"
                        )
                    buf = arena.buffer(spec.slot, src.shape, src.dtype)
                    np.copyto(buf, src)
                    arena.bytes_copied += src.nbytes
                    slots[spec.slot] = buf
            else:
                # Stage feeds into the arena's F-ordered input buffers:
                # one memcpy per input that (a) keeps every downstream
                # ufunc on the single-layout no-buffering path and (b)
                # hands BLAS F-contiguous operands it can use without
                # f2py's hidden copies.  Values are unchanged, so outputs
                # stay bit-identical.
                for spec in self.inputs:
                    src = slots[spec.slot]
                    buf = arena.buffer(spec.slot, src.shape, src.dtype)
                    np.copyto(buf, src)
                    arena.bytes_copied += src.nbytes
                    slots[spec.slot] = buf
        elif donate:
            raise GraphError(
                "donate= only applies to arena execution; pass arena= "
                "(per-call mode never copies feeds)"
            )
        bufs = arena.buffers if arena is not None else None
        if record:
            if bufs is not None:
                # A recording pass can still (re)warm buffers, so it must
                # take part in the turbo certification protocol (see the
                # serving branch below): invalidate first, certify after.
                sig = tuple(slots[spec.slot].dtype for spec in self.inputs)
                arena._turbo_sig = None
                arena._mixed = False
            calls = report.calls
            for inst in self.instructions:
                args = [slots[s] for s in inst.arg_slots]
                if bufs is None:
                    result = inst.fn(args, report, record)
                else:
                    result = self._run_arena(inst, args, arena, bufs,
                                             report, record)
                slots[inst.out_slot] = result
                if inst.calls:
                    calls.extend(inst.calls)
                if inst.fused_events is None:
                    report.alloc(result.nbytes)
                    for s in inst.free_slots:
                        report.free(slots[s].nbytes)
                        slots[s] = None
                else:
                    # Replay the fused members' original alloc/free
                    # sequence so peak/live bytes match the Interpreter.
                    isz = result.itemsize
                    for e in inst.fused_events:
                        if e >= 0:
                            report.alloc(e * isz)
                        else:
                            report.free(-e * isz)
                    for s in inst.free_slots:
                        slots[s] = None
            if bufs is not None and not arena._mixed:
                arena._turbo_sig = sig
        elif bufs is None:
            for inst in self.instructions:
                args = [slots[s] for s in inst.arg_slots]
                slots[inst.out_slot] = inst.fn(args, report, record)
                for s in inst.free_slots:
                    slots[s] = None
        else:
            # Serving path (arena, no accounting).  Once a full pass has
            # completed with no mixed-dtype fallback, every buffer's
            # shape/dtype is a pure function of the input dtypes — so a
            # call whose bound feeds match that signature can run the
            # *turbo* loop: precompiled fast dispatch, no per-instruction
            # dtype/warmth checks, no slot clearing (arena buffers
            # persist regardless).
            sig = tuple(slots[spec.slot].dtype for spec in self.inputs)
            if sig == arena._turbo_sig:
                for fast, out_slot, arg_slots, inst, scratch in self._turbo_ops:
                    args = [slots[s] for s in arg_slots]
                    if fast is not None:
                        if scratch is None:
                            slots[out_slot] = fast(args, bufs[out_slot])
                        else:
                            slots[out_slot] = fast(
                                args, bufs[out_slot], bufs[scratch]
                            )
                    else:
                        slots[out_slot] = self._exec_into(
                            inst, args, arena, report, record
                        )
            else:
                # General pass: per-instruction checks, and (re)warming
                # as needed.  Invalidate the turbo signature first so an
                # exception mid-pass can't leave a stale one pointing at
                # half-rewarmed buffers; certify at the end.
                arena._turbo_sig = None
                arena._mixed = False
                for inst in self.instructions:
                    args = [slots[s] for s in inst.arg_slots]
                    slots[inst.out_slot] = self._run_arena(
                        inst, args, arena, bufs, report, record
                    )
                    for s in inst.free_slots:
                        slots[s] = None
                if not arena._mixed:
                    arena._turbo_sig = sig
        return [slots[s] for s in self.output_slots], report

    def _run_arena(self, inst, args, arena, bufs, report, record):
        """Arena dispatch: warm in-place fast path, general path otherwise.

        The fast path requires every operand to share the warm buffer's
        dtype — a mismatch means either a dtype change (rewarm) or mixed
        operands (ufunc promotion must win over in-place writing); both
        take the general path.
        """
        fn_out = inst.fn_out
        if fn_out is not None and inst.scratch is None and inst.kind != "const":
            buf = bufs[inst.out_slot]
            if buf is not None:
                bd = buf.dtype
                for a in args:
                    ad = a.dtype
                    if bd is not ad and bd != ad:
                        break
                else:
                    return fn_out(args, buf)
        return self._exec_into(inst, args, arena, report, record)

    __call__ = execute

    # -- introspection --------------------------------------------------------

    @property
    def flops(self) -> int:
        """Modelled FLOPs of one execution (loops excluded — their cost
        lives in the sub-plan and depends on the trip count)."""
        return sum(c.flops for inst in self.instructions for c in inst.calls)

    def describe(self) -> str:
        """One line per instruction: slot assignment and chosen kernels."""
        lines = [
            f"plan: {len(self.instructions)} instructions, "
            f"{len(self.inputs)} inputs, {self.num_slots} slots"
        ]
        if self.fusion_stats is not None:
            lines[0] += f" | {self.fusion_stats.describe()}"
        for i, inst in enumerate(self.instructions):
            kernels = ",".join(c.kernel for c in inst.calls) or "-"
            frees = f" free{list(inst.free_slots)}" if inst.free_slots else ""
            lines.append(
                f"  [{i:>3}] s{inst.out_slot} <- {inst.op}"
                f"({', '.join(f's{s}' for s in inst.arg_slots)})"
                f" [{kernels}]{frees}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Plan {len(self.instructions)} instructions, "
            f"{self.num_slots} slots, {len(self.inputs)} inputs -> "
            f"{len(self.output_slots)} outputs>"
        )


def _rebuild_plan(payload: dict, fold_constants: bool, fusion: bool) -> Plan:
    """Unpickle hook: reconstruct the graph and recompile (module-level so
    pickle can address it)."""
    from .compiler import compile_plan
    from .serialize import graph_from_payload

    return compile_plan(
        graph_from_payload(payload),
        fold_constants=fold_constants,
        fusion=fusion,
    )


class PinnedBinding:
    """A plan + arena + permanently bound feed arrays (see *Pinned
    bindings* in the module docstring).

    The slot table is built once and **reused across calls**: inputs
    stay aliased at their slots, and every other slot is rewritten by
    its producing instruction before anything reads it (the schedule
    guarantees write-before-read within a pass), so no per-call
    clearing is needed.  Execution is the serving path (``record=False``)
    — outputs alias arena storage and are valid until the next call.
    """

    __slots__ = ("plan", "arena", "slots", "_sig", "_report")

    def __init__(
        self, plan: Plan, arena: PlanArena, feeds: list[np.ndarray]
    ) -> None:
        self.plan = plan
        self.arena = arena
        self.slots: list = [None] * plan.num_slots
        for spec, arr in zip(plan.inputs, feeds):
            self.slots[spec.slot] = arr
        self._sig = tuple(arr.dtype for arr in feeds)
        # One reusable report: the serving loop never records into it.
        self._report = ExecutionReport()

    def execute(self) -> list[np.ndarray]:
        """One serving pass over the bound feeds; returns the outputs
        (aliasing arena storage — copy what you keep)."""
        plan = self.plan
        arena = self.arena
        slots = self.slots
        bufs = arena.buffers
        if self._sig == arena._turbo_sig:
            for fast, out_slot, arg_slots, inst, scratch in plan._turbo_ops:
                args = [slots[s] for s in arg_slots]
                if fast is not None:
                    if scratch is None:
                        slots[out_slot] = fast(args, bufs[out_slot])
                    else:
                        slots[out_slot] = fast(
                            args, bufs[out_slot], bufs[scratch]
                        )
                else:
                    slots[out_slot] = plan._exec_into(
                        inst, args, arena, self._report, False
                    )
        else:
            # Warming pass: per-instruction checks, turbo certification
            # protocol (invalidate first so a mid-pass exception can't
            # certify half-warm buffers).
            arena._turbo_sig = None
            arena._mixed = False
            for inst in plan.instructions:
                args = [slots[s] for s in inst.arg_slots]
                slots[inst.out_slot] = plan._run_arena(
                    inst, args, arena, bufs, self._report, False
                )
            if not arena._mixed:
                arena._turbo_sig = self._sig
        return [slots[s] for s in plan.output_slots]

    __call__ = execute
