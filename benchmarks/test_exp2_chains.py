"""Table III — matrix-chain parenthesization.

Expected shape: unparenthesized HᵀHx and HᵀyxᵀH ≫ their explicit optima
(the default evaluation is left-to-right); yᵀHᵀH ≈ its optimum;
``multi_dot`` matches the optimum everywhere.
"""

import pytest

from repro.frameworks import pytsim, tfsim


@pytest.fixture(scope="module")
def fns(chain_ops):
    h, x, y = chain_ops

    @tfsim.function
    def rl_noparen(hh, xx):
        return tfsim.transpose(hh) @ hh @ xx

    @tfsim.function
    def rl_paren(hh, xx):
        return tfsim.transpose(hh) @ (hh @ xx)

    @pytsim.jit.script
    def lr_noparen(hh, yy):
        return yy.T @ hh.T @ hh

    @pytsim.jit.script
    def lr_paren(hh, yy):
        return (yy.T @ hh.T) @ hh

    @tfsim.function
    def mixed_noparen(hh, xx, yy):
        return tfsim.transpose(hh) @ yy @ tfsim.transpose(xx) @ hh

    @tfsim.function
    def mixed_paren(hh, xx, yy):
        return (tfsim.transpose(hh) @ yy) @ (tfsim.transpose(xx) @ hh)

    rl_noparen.get_concrete(h, x)
    rl_paren.get_concrete(h, x)
    lr_noparen.get_concrete(h, y)
    lr_paren.get_concrete(h, y)
    mixed_noparen.get_concrete(h, x, y)
    mixed_paren.get_concrete(h, x, y)
    return {
        "rl_noparen": rl_noparen,
        "rl_paren": rl_paren,
        "lr_noparen": lr_noparen,
        "lr_paren": lr_paren,
        "mixed_noparen": mixed_noparen,
        "mixed_paren": mixed_paren,
    }


@pytest.mark.benchmark(group="table3-chain-HtHx")
class TestRightToLeft:
    def test_matmul_no_parens(self, benchmark, chain_ops, fns):
        h, x, _ = chain_ops
        benchmark(lambda: fns["rl_noparen"](h, x))

    def test_matmul_explicit_parens(self, benchmark, chain_ops, fns):
        h, x, _ = chain_ops
        benchmark(lambda: fns["rl_paren"](h, x))

    def test_multi_dot(self, benchmark, chain_ops):
        h, x, _ = chain_ops
        benchmark(lambda: pytsim.linalg.multi_dot([h.T, h, x]))


@pytest.mark.benchmark(group="table3-chain-ytHtH")
class TestLeftToRight:
    def test_matmul_no_parens(self, benchmark, chain_ops, fns):
        h, _, y = chain_ops
        benchmark(lambda: fns["lr_noparen"](h, y))

    def test_matmul_explicit_parens(self, benchmark, chain_ops, fns):
        h, _, y = chain_ops
        benchmark(lambda: fns["lr_paren"](h, y))

    def test_multi_dot(self, benchmark, chain_ops):
        h, _, y = chain_ops
        benchmark(lambda: pytsim.linalg.multi_dot([y.T, h.T, h]))


@pytest.mark.benchmark(group="table3-chain-HtyxtH")
class TestMixed:
    def test_matmul_no_parens(self, benchmark, chain_ops, fns):
        h, x, y = chain_ops
        benchmark(lambda: fns["mixed_noparen"](h, x, y))

    def test_matmul_explicit_parens(self, benchmark, chain_ops, fns):
        h, x, y = chain_ops
        benchmark(lambda: fns["mixed_paren"](h, x, y))

    def test_multi_dot(self, benchmark, chain_ops):
        h, x, y = chain_ops
        benchmark(lambda: pytsim.linalg.multi_dot([h.T, y, x.T, h]))
