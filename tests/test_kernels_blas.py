"""Tests for the BLAS kernel wrappers (levels 1-3) against numpy oracles."""

import numpy as np
import pytest

from repro.errors import DTypeError, KernelError, ShapeError
from repro.kernels import blas1, blas2, blas3


def _mat(rng, m, n, dtype=np.float32):
    return (rng.random((m, n)) - 0.5).astype(dtype)


def _vec(rng, n, dtype=np.float32):
    return (rng.random(n) - 0.5).astype(dtype)


class TestBlas1:
    def test_scal(self, rng):
        x = _vec(rng, 50)
        assert np.allclose(blas1.scal(2.5, x), 2.5 * x, atol=1e-6)

    def test_scal_does_not_mutate_by_default(self, rng):
        x = _vec(rng, 10)
        orig = x.copy()
        blas1.scal(3.0, x)
        assert np.array_equal(x, orig)

    def test_scal_overwrite_mutates(self, rng):
        x = _vec(rng, 10)
        expected = 3.0 * x
        out = blas1.scal(3.0, x, overwrite=True)
        assert np.allclose(out, expected, atol=1e-6)

    def test_axpy(self, rng):
        x, y = _vec(rng, 40), _vec(rng, 40)
        assert np.allclose(blas1.axpy(1.5, x, y), 1.5 * x + y, atol=1e-6)

    def test_axpy_preserves_y(self, rng):
        x, y = _vec(rng, 12), _vec(rng, 12)
        y0 = y.copy()
        blas1.axpy(2.0, x, y)
        assert np.array_equal(y, y0)

    def test_dot(self, rng):
        x, y = _vec(rng, 100), _vec(rng, 100)
        assert blas1.dot(x, y) == pytest.approx(float(x @ y), rel=1e-5)

    def test_nrm2(self, rng):
        x = _vec(rng, 64)
        assert blas1.nrm2(x) == pytest.approx(float(np.linalg.norm(x)), rel=1e-5)

    def test_asum(self, rng):
        x = _vec(rng, 64)
        assert blas1.asum(x) == pytest.approx(float(np.abs(x).sum()), rel=1e-5)

    def test_copy(self, rng):
        x = _vec(rng, 30)
        out = blas1.copy(x)
        assert np.array_equal(out, x)
        assert out is not x

    def test_float64_dispatch(self, rng):
        x = _vec(rng, 20, np.float64)
        y = _vec(rng, 20, np.float64)
        out = blas1.axpy(1.0, x, y)
        assert out.dtype == np.float64
        assert np.allclose(out, x + y)

    def test_length_mismatch(self, rng):
        with pytest.raises(ShapeError):
            blas1.dot(_vec(rng, 5), _vec(rng, 6))

    def test_mixed_dtypes_rejected(self, rng):
        with pytest.raises(DTypeError):
            blas1.axpy(1.0, _vec(rng, 5), _vec(rng, 5, np.float64))

    def test_matrix_rejected_for_vector_op(self, rng):
        with pytest.raises(ShapeError):
            blas1.nrm2(_mat(rng, 3, 3))

    def test_int_input_promoted_to_float32(self):
        out = blas1.scal(2.0, np.array([1, 2, 3]))
        assert out.dtype == np.float32
        assert np.allclose(out, [2, 4, 6])


class TestBlas2:
    def test_gemv(self, rng):
        a, x = _mat(rng, 20, 30), _vec(rng, 30)
        assert np.allclose(blas2.gemv(a, x), a @ x, atol=1e-5)

    def test_gemv_trans(self, rng):
        a, x = _mat(rng, 20, 30), _vec(rng, 20)
        assert np.allclose(blas2.gemv(a, x, trans=True), a.T @ x, atol=1e-5)

    def test_gemv_alpha(self, rng):
        a, x = _mat(rng, 10, 10), _vec(rng, 10)
        assert np.allclose(blas2.gemv(a, x, alpha=2.0), 2.0 * (a @ x), atol=1e-5)

    def test_gemv_shape_error(self, rng):
        with pytest.raises(ShapeError):
            blas2.gemv(_mat(rng, 4, 5), _vec(rng, 4))

    def test_gemv_trans_shape_error(self, rng):
        with pytest.raises(ShapeError):
            blas2.gemv(_mat(rng, 4, 5), _vec(rng, 5), trans=True)

    def test_ger(self, rng):
        x, y = _vec(rng, 15), _vec(rng, 25)
        assert np.allclose(blas2.ger(x, y), np.outer(x, y), atol=1e-5)

    def test_symv_reads_one_triangle(self, rng):
        s = _mat(rng, 16, 16)
        s = (s + s.T) / 2
        x = _vec(rng, 16)
        # corrupt the strict upper triangle; lower=True must ignore it
        corrupted = s.copy()
        corrupted[np.triu_indices(16, 1)] = 99.0
        assert np.allclose(blas2.symv(corrupted, x, lower=True), s @ x, atol=1e-4)

    def test_trmv_lower(self, rng):
        l = np.tril(_mat(rng, 12, 12))
        x = _vec(rng, 12)
        assert np.allclose(blas2.trmv(l, x, lower=True), l @ x, atol=1e-5)

    def test_trmv_upper(self, rng):
        u = np.triu(_mat(rng, 12, 12))
        x = _vec(rng, 12)
        assert np.allclose(blas2.trmv(u, x, lower=False), u @ x, atol=1e-5)

    def test_trsv_solves(self, rng):
        l = np.tril(_mat(rng, 10, 10)) + 2 * np.eye(10, dtype=np.float32)
        b = _vec(rng, 10)
        x = blas2.trsv(l, b, lower=True)
        assert np.allclose(l @ x, b, atol=1e-4)

    def test_trsv_trans_solves(self, rng):
        l = np.tril(_mat(rng, 10, 10)) + 2 * np.eye(10, dtype=np.float32)
        b = _vec(rng, 10)
        x = blas2.trsv(l, b, lower=True, trans=True)
        assert np.allclose(l.T @ x, b, atol=1e-4)

    def test_nonsquare_rejected_for_trmv(self, rng):
        with pytest.raises(ShapeError):
            blas2.trmv(_mat(rng, 4, 5), _vec(rng, 5))


class TestBlas3:
    def test_gemm(self, rng):
        a, b = _mat(rng, 10, 20), _mat(rng, 20, 15)
        assert np.allclose(blas3.gemm(a, b), a @ b, atol=1e-5)

    @pytest.mark.parametrize("ta,tb", [(False, False), (True, False),
                                       (False, True), (True, True)])
    def test_gemm_transpose_flags(self, rng, ta, tb):
        a = _mat(rng, 8, 12) if not ta else _mat(rng, 12, 8)
        b = _mat(rng, 12, 9) if not tb else _mat(rng, 9, 12)
        ref = (a.T if ta else a) @ (b.T if tb else b)
        assert np.allclose(blas3.gemm(a, b, trans_a=ta, trans_b=tb), ref, atol=1e-5)

    def test_gemm_alpha(self, rng):
        a, b = _mat(rng, 6, 6), _mat(rng, 6, 6)
        assert np.allclose(blas3.gemm(a, b, alpha=-0.5), -0.5 * (a @ b), atol=1e-5)

    def test_gemm_inner_mismatch(self, rng):
        with pytest.raises(ShapeError):
            blas3.gemm(_mat(rng, 4, 5), _mat(rng, 6, 4))

    def test_trmm_lower(self, rng):
        l = np.tril(_mat(rng, 14, 14))
        b = _mat(rng, 14, 9)
        assert np.allclose(blas3.trmm(l, b, lower=True), l @ b, atol=1e-5)

    def test_trmm_upper(self, rng):
        u = np.triu(_mat(rng, 14, 14))
        b = _mat(rng, 14, 9)
        assert np.allclose(blas3.trmm(u, b, lower=False), u @ b, atol=1e-5)

    def test_trmm_right_side(self, rng):
        l = np.tril(_mat(rng, 9, 9))
        b = _mat(rng, 14, 9)
        assert np.allclose(
            blas3.trmm(l, b, side_left=False, lower=True), b @ l, atol=1e-5
        )

    def test_trmm_ignores_other_triangle(self, rng):
        """TRMM must never read the zero triangle — the very reason it is
        half the FLOPs of GEMM."""
        dense = _mat(rng, 10, 10)
        b = _mat(rng, 10, 10)
        assert np.allclose(
            blas3.trmm(dense, b, lower=True), np.tril(dense) @ b, atol=1e-5
        )

    def test_trmm_shape_error(self, rng):
        with pytest.raises(ShapeError):
            blas3.trmm(np.tril(_mat(rng, 5, 5)), _mat(rng, 6, 4))

    def test_syrk_a_at(self, rng):
        a = _mat(rng, 12, 7)
        assert np.allclose(blas3.syrk(a), a @ a.T, atol=1e-5)

    def test_syrk_at_a(self, rng):
        a = _mat(rng, 12, 7)
        assert np.allclose(blas3.syrk(a, trans=True), a.T @ a, atol=1e-5)

    def test_syrk_unfilled_is_triangular(self, rng):
        a = _mat(rng, 8, 8)
        c = blas3.syrk(a, fill=False, lower=True)
        assert np.allclose(c, np.tril(c))

    def test_syrk_result_symmetric(self, rng):
        c = blas3.syrk(_mat(rng, 9, 5))
        assert np.allclose(c, c.T, atol=1e-6)

    def test_symm(self, rng):
        s = _mat(rng, 11, 11)
        s = (s + s.T) / 2
        b = _mat(rng, 11, 6)
        assert np.allclose(blas3.symm(s, b), s @ b, atol=1e-5)

    def test_trsm_solves(self, rng):
        l = np.tril(_mat(rng, 10, 10)) + 2 * np.eye(10, dtype=np.float32)
        b = _mat(rng, 10, 4)
        x = blas3.trsm(l, b, lower=True)
        assert np.allclose(l @ x, b, atol=1e-4)

    def test_float64_gemm(self, rng):
        a, b = _mat(rng, 8, 8, np.float64), _mat(rng, 8, 8, np.float64)
        out = blas3.gemm(a, b)
        assert out.dtype == np.float64
        assert np.allclose(out, a @ b)

    def test_mixed_dtype_rejected(self, rng):
        with pytest.raises(DTypeError):
            blas3.gemm(_mat(rng, 4, 4), _mat(rng, 4, 4, np.float64))


class TestDestinationAware:
    """The ``out=``/``overwrite`` variants must be bit-identical to the
    allocating paths and genuinely write into the caller's buffer —
    that is the contract arena execution is built on."""

    def test_add_sub_neg_out(self, rng):
        x = _mat(rng, 12, 12)
        y = _mat(rng, 12, 12)
        out = np.empty_like(x)
        assert blas1.add(x, y, out=out) is out
        assert out.tobytes() == (x + y).tobytes()
        assert blas1.sub(x, y, out=out) is out
        assert out.tobytes() == (x - y).tobytes()
        assert blas1.neg(x, out=out) is out
        assert out.tobytes() == (-x).tobytes()

    def test_add_without_out_allocates(self, rng):
        x = _mat(rng, 8, 8)
        y = _mat(rng, 8, 8)
        r = blas1.add(x, y)
        assert r is not x and r is not y
        assert r.tobytes() == (x + y).tobytes()

    def test_out_may_alias_operand(self, rng):
        x = _mat(rng, 10, 10)
        y = _mat(rng, 10, 10)
        expected = (x + y).tobytes()
        blas1.add(x, y, out=x)
        assert x.tobytes() == expected

    def test_scal_out_mode(self, rng):
        x = _mat(rng, 9, 9)
        out = np.empty_like(x)
        assert blas1.scal(2.5, x, out=out) is out
        assert out.tobytes() == (x * x.dtype.type(2.5)).tobytes()

    def test_scal_rejects_out_plus_overwrite(self, rng):
        x = _vec(rng, 8)
        with pytest.raises(KernelError):
            blas1.scal(2.0, x, overwrite=True, out=np.empty_like(x))

    def test_gemm_out(self, rng):
        a = _mat(rng, 14, 10)
        b = _mat(rng, 10, 12)
        ref = blas3.gemm(a, b)
        out = np.empty((14, 12), dtype=a.dtype, order="F")
        res = blas3.gemm(a, b, out=out)
        assert res is out
        assert out.tobytes() == ref.tobytes()

    def test_gemm_out_with_alpha_and_trans(self, rng):
        a = _mat(rng, 10, 14)
        b = _mat(rng, 10, 12)
        ref = blas3.gemm(a, b, alpha=2.0, trans_a=True)
        out = np.empty((14, 12), dtype=a.dtype, order="F")
        assert blas3.gemm(a, b, alpha=2.0, trans_a=True, out=out) is out
        assert out.tobytes() == ref.tobytes()

    def test_gemm_alpha_fold_is_bit_identical(self, rng):
        """alpha rides along after accumulation: scaling inside the BLAS
        call equals an elementwise post-scale, bit for bit (the fusion
        pass's alpha-fold contract)."""
        a = _mat(rng, 16, 16)
        b = _mat(rng, 16, 16)
        folded = blas3.gemm(a, b, alpha=2.5)
        scaled = blas3.gemm(a, b) * a.dtype.type(2.5)
        assert folded.tobytes() == scaled.tobytes()

    def test_gemm_beta_accumulates(self, rng):
        a = _mat(rng, 8, 8)
        b = _mat(rng, 8, 8)
        c = np.asfortranarray(_mat(rng, 8, 8))
        expected = blas3.gemm(a, b) + c
        res = blas3.gemm(a, b, beta=1.0, out=c)
        assert np.allclose(res, expected, atol=1e-5)

    def test_gemm_out_rejects_bad_buffers(self, rng):
        a = _mat(rng, 8, 8)
        b = _mat(rng, 8, 8)
        with pytest.raises(ShapeError):
            blas3.gemm(a, b, out=np.empty((4, 4), dtype=a.dtype, order="F"))
        with pytest.raises(KernelError):
            blas3.gemm(a, b, out=np.empty((8, 8), dtype=np.float64, order="F"))
        with pytest.raises(KernelError):
            blas3.gemm(a, b, out=np.ones((8, 8), dtype=a.dtype))  # C-order
        with pytest.raises(KernelError):
            blas3.gemm(a, b, beta=0.5)  # beta without out

    def test_gemv_out(self, rng):
        a = _mat(rng, 12, 9)
        x = _vec(rng, 9)
        ref = blas2.gemv(a, x)
        out = np.empty(12, dtype=a.dtype)
        assert blas2.gemv(a, x, out=out) is out
        assert out.tobytes() == ref.tobytes()

    def test_gemv_out_trans(self, rng):
        a = _mat(rng, 12, 9)
        x = _vec(rng, 12)
        ref = blas2.gemv(a, x, trans=True)
        out = np.empty(9, dtype=a.dtype)
        assert blas2.gemv(a, x, trans=True, out=out) is out
        assert out.tobytes() == ref.tobytes()

    def test_gemv_out_rejects_bad_buffers(self, rng):
        a = _mat(rng, 12, 9)
        x = _vec(rng, 9)
        with pytest.raises(ShapeError):
            blas2.gemv(a, x, out=np.empty(5, dtype=a.dtype))
        with pytest.raises(KernelError):
            blas2.gemv(a, x, out=np.empty(12, dtype=np.float64))


class TestStructuredDestinationAware:
    """``out=`` on TRMM/SYMM/SYRK: bit-identical to the allocating path,
    written into the caller's Fortran buffer (the contract arena mode's
    structured kernels rely on)."""

    def test_trmm_out(self, rng):
        a = np.tril(_mat(rng, 10, 10))
        b = _mat(rng, 10, 7)
        ref = blas3.trmm(a, b)
        out = np.empty((10, 7), dtype=a.dtype, order="F")
        assert blas3.trmm(a, b, out=out) is out
        assert out.tobytes() == ref.tobytes()

    def test_trmm_out_right_side(self, rng):
        a = np.tril(_mat(rng, 7, 7))
        b = _mat(rng, 10, 7)
        ref = blas3.trmm(a, b, side_left=False)
        out = np.empty((10, 7), dtype=a.dtype, order="F")
        assert blas3.trmm(a, b, side_left=False, out=out) is out
        assert out.tobytes() == ref.tobytes()

    def test_symm_out(self, rng):
        s = _mat(rng, 9, 9)
        s = s + s.T
        b = _mat(rng, 9, 6)
        ref = blas3.symm(s, b)
        out = np.asfortranarray(np.full((9, 6), np.nan, dtype=s.dtype))
        assert blas3.symm(s, b, out=out) is out
        assert out.tobytes() == ref.tobytes()

    @pytest.mark.parametrize("lower", [True, False], ids=["lower", "upper"])
    @pytest.mark.parametrize("trans", [False, True], ids=["a_at", "at_a"])
    def test_syrk_out_overwrites_dirty_buffer(self, rng, lower, trans):
        a = _mat(rng, 8, 5)
        ref = blas3.syrk(a, trans=trans, lower=lower)
        n = ref.shape[0]
        # A dirty destination must be fully overwritten: BLAS only
        # touches one triangle, the in-place mirror fill covers the rest.
        out = np.asfortranarray(np.full((n, n), 123.0, dtype=a.dtype))
        assert blas3.syrk(a, trans=trans, lower=lower, out=out) is out
        assert out.tobytes() == ref.tobytes()

    def test_syrk_fill_is_exact_mirror(self, rng):
        a = _mat(rng, 9, 4)
        c = blas3.syrk(a)
        assert c.tobytes() == np.ascontiguousarray(c.T).tobytes()

    def test_syrk_out_requires_fill(self, rng):
        a = _mat(rng, 6, 4)
        out = np.empty((6, 6), dtype=a.dtype, order="F")
        with pytest.raises(KernelError, match="fill"):
            blas3.syrk(a, fill=False, out=out)

    def test_structured_out_rejects_bad_buffers(self, rng):
        a = np.tril(_mat(rng, 8, 8))
        b = _mat(rng, 8, 5)
        with pytest.raises(ShapeError):
            blas3.trmm(a, b, out=np.empty((5, 5), dtype=a.dtype, order="F"))
        with pytest.raises(KernelError, match="dtype"):
            blas3.trmm(a, b, out=np.empty((8, 5), dtype=np.float64, order="F"))
        with pytest.raises(KernelError, match="Fortran"):
            blas3.trmm(a, b, out=np.empty((8, 5), dtype=a.dtype))
        s = a + a.T
        with pytest.raises(KernelError, match="Fortran"):
            blas3.symm(s, b, out=np.empty((8, 5), dtype=a.dtype))
