"""repro.api — the canonical public surface of the compiled runtime.

The paper's trace-once/execute-many story previously had three
uncoordinated entry points (``tfsim.function``, ``pytsim.jit.script`` and
the raw ``repro.runtime`` calls), all sharing one mutable process-wide
plan cache.  This package redesigns that surface around an explicit
:class:`Session`:

* :class:`Session` — context manager owning its own
  :class:`~repro.runtime.PlanCache` and :class:`Options`; the one
  compile/run surface: ``session.compile(fn, backend=...)``,
  ``session.run(...)``, ``session.run_batch(feeds)``, ``session.stats()``.
* :class:`Options` — pipeline choice, cache capacity, batch executor,
  validation level, constant folding, kernel fusion and the execution
  arena (``Options(fusion=True, arena="preallocated")`` turns on the
  fused, allocation-free engine without touching any call site).
* Backend registry — ``backend("tfsim")`` / ``backend("pytsim")`` resolve
  the registered :class:`FrameworkProfile` s; new front-ends plug in via
  :func:`register_backend`.
* :class:`Compiled` — what ``session.compile`` (and, via a shim, the
  legacy decorators) returns.

Quickstart::

    from repro import api, tensor as T

    A, B = T.random_general(512, seed=1), T.random_general(512, seed=2)

    with api.Session(pipeline="default") as session:
        f = session.compile(lambda a, b: (a.T @ b).T @ (a.T @ b),
                            backend="tfsim")
        y = session.run(f, A, B)
        print(session.stats().render())   # hits/misses + per-plan timings

The legacy decorators stay supported: they compile into the *ambient*
session — the innermost ``with Session():`` block, or a process-wide
default session whose cache is the PR-1 global instance.
"""

from .compiled import Compiled, Concrete, input_signature
from .options import ARENA_MODES, PIPELINES, VALIDATION_LEVELS, Options
from .registry import (
    FrameworkProfile,
    available_backends,
    backend,
    register_backend,
)
from .session import (
    PlanStats,
    Session,
    SessionStats,
    current_session,
    default_session,
)

__all__ = [
    "ARENA_MODES",
    "Compiled",
    "Concrete",
    "FrameworkProfile",
    "Options",
    "PIPELINES",
    "PlanStats",
    "Session",
    "SessionStats",
    "VALIDATION_LEVELS",
    "available_backends",
    "backend",
    "current_session",
    "default_session",
    "input_signature",
    "register_backend",
]
