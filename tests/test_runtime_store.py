"""Persistent plan store: content addressing, warm starts, corruption.

Contracts under test (the PR-8 perf tentpole):

* **Bit identity** — a plan rebuilt from a store artifact produces
  outputs, FLOP reports and fusion stats identical to a fresh compile,
  across all four fusion × arena option combinations, both at the
  runtime layer (``put_plan``/``load_plan``) and through a cold
  ``Session`` warm-starting from disk.
* **Accounting** — artifacts are content-addressed (re-put is a no-op),
  store hits/misses/writes and the plan cache's ``via_store`` channel
  keep ``misses`` meaning "cold compiles performed": a fully warm
  session shows ``misses == 0``.
* **mmap consts** — large const payloads leave the artifact body for
  ``.npy`` sidecars and come back as read-only memory maps, counted in
  ``bytes_mapped``.
* **Corruption robustness** — truncated artifacts, garbage bytes,
  missing sidecars, stale format versions and stale runtime
  fingerprints all degrade to a silent recompile (``corrupt_evicted``),
  never an exception out of a ``Session`` or a shard worker.
* **Warm-started shard workers** — ``ShardPool(store=...)`` workers
  rebuild their plan from the store (fork and spawn), report it via the
  ready handshake, and still run copy-free waves.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle

import numpy as np
import pytest

from repro import api
from repro.errors import GraphError
from repro.frameworks import tfsim
from repro.ir import trace
from repro.passes import default_pipeline
from repro.runtime import (
    PlanStore,
    ShardPool,
    compile_plan,
    graph_from_payload,
    graph_signature,
    graph_to_payload,
    runtime_fingerprint,
)
from repro.runtime.serialize import join_payload_consts, split_payload_consts
from repro.runtime.store import STORE_FORMAT_VERSION
from repro.tensor import random_general

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def _traced(loops: int = 3):
    """A pre-optimization traced graph (what ``Session._build`` keys
    aliases by) plus its feed arrays."""
    ops = [random_general(16, seed=s) for s in (1, 2, 3)]

    def fn(a, b, c):
        acc = a
        for _ in range(loops):
            acc = (acc @ b + c - a) @ a.T
        return acc + acc.T

    return trace(fn, ops), [t.data for t in ops]


def _big_const_graph():
    """An optimized graph holding a 16 KiB const — above the default
    4 KiB sidecar threshold."""
    ops = [random_general(64, seed=7)]
    weight = (np.arange(64 * 64, dtype=np.float32) / 4096.0).reshape(64, 64)

    def fn(a):
        return a @ tfsim.constant(weight) + a

    return default_pipeline().run(trace(fn, ops)), [t.data for t in ops]


@pytest.fixture(scope="module")
def traced():
    return _traced()


@pytest.fixture(scope="module")
def optimized(traced):
    graph, feeds = traced
    return default_pipeline().run(graph), feeds


def _corrupt(path: str, blob: bytes) -> None:
    with open(path, "wb") as fh:
        fh.write(blob)


# -- fingerprint ---------------------------------------------------------------


class TestRuntimeFingerprint:
    def test_stable_within_process(self):
        assert runtime_fingerprint() == runtime_fingerprint()

    def test_is_a_hex_digest(self):
        fp = runtime_fingerprint()
        assert len(fp) == 40 and int(fp, 16) >= 0


# -- payload const splitting ---------------------------------------------------


class TestConstSplit:
    def test_large_const_leaves_payload(self):
        graph, _ = _big_const_graph()
        payload = graph_to_payload(graph)
        stripped, arrays = split_payload_consts(payload, 4096)
        assert len(arrays) == 1 and arrays[0].nbytes >= 4096
        assert b"ndarray_ref" in pickle.dumps(stripped)

    def test_small_consts_stay_inline(self):
        graph, _ = _big_const_graph()
        payload = graph_to_payload(graph)
        _, arrays = split_payload_consts(payload, 1 << 20)
        assert arrays == []

    def test_join_round_trip_parity(self):
        graph, feeds = _big_const_graph()
        payload = graph_to_payload(graph)
        stripped, arrays = split_payload_consts(payload, 4096)
        rebuilt = graph_from_payload(join_payload_consts(stripped, arrays))
        assert graph_signature(rebuilt) == graph_signature(graph)
        out_a, _ = compile_plan(graph).execute(feeds)
        out_b, _ = compile_plan(rebuilt).execute(feeds)
        assert np.array_equal(out_a[0], out_b[0])

    def test_dangling_ref_fails_loudly(self):
        graph, _ = _big_const_graph()
        stripped, arrays = split_payload_consts(
            graph_to_payload(graph), 4096
        )
        with pytest.raises(GraphError):
            join_payload_consts(stripped, [])  # ref with no array
        with pytest.raises(GraphError):
            graph_from_payload(stripped)  # refs never joined


# -- artifact round trips ------------------------------------------------------


class TestArtifactRoundTrip:
    @pytest.mark.parametrize("fusion", [False, True])
    @pytest.mark.parametrize("arena", [None, "preallocated"])
    def test_load_plan_parity_all_combos(
        self, tmp_path, optimized, fusion, arena
    ):
        graph, feeds = optimized
        fresh = compile_plan(graph, fusion=fusion)
        store = PlanStore(tmp_path)
        key = store.put_plan(fresh, cold_seconds=0.01)
        assert key is not None and store.stats.writes == 1

        reader = PlanStore(tmp_path)  # a different process, in spirit
        warm = reader.load_plan(key)
        assert warm is not None
        assert reader.stats.hits == 1 and reader.stats.misses == 0
        assert warm.signature == fresh.signature

        def sites(p):
            return p.fusion_stats.sites if p.fusion_stats else None

        assert sites(warm) == sites(fresh)

        kw = {}
        if arena is not None:
            kw = {"arena_fresh": fresh.new_arena(),
                  "arena_warm": warm.new_arena()}
        out_a, rep_a = fresh.execute(
            feeds, **({"arena": kw["arena_fresh"]} if kw else {})
        )
        out_b, rep_b = warm.execute(
            feeds, **({"arena": kw["arena_warm"]} if kw else {})
        )
        for a, b in zip(out_a, out_b):
            assert np.array_equal(a, b)
        assert rep_a.total_flops == rep_b.total_flops
        assert rep_a.peak_bytes == rep_b.peak_bytes
        assert rep_a.calls == rep_b.calls

    def test_content_addressing_skips_existing(self, tmp_path, optimized):
        graph, _ = optimized
        plan = compile_plan(graph, fusion=True)
        store = PlanStore(tmp_path)
        key1 = store.put_plan(plan)
        key2 = store.put_plan(plan)
        assert key1 == key2
        assert store.stats.writes == 1
        plans, nbytes = store.disk_stats()
        assert plans == 1 and nbytes > 0

    def test_fold_and_fusion_key_separately(self, tmp_path, optimized):
        graph, _ = optimized
        store = PlanStore(tmp_path)
        k_plain = store.put_plan(compile_plan(graph))
        k_fused = store.put_plan(compile_plan(graph, fusion=True))
        assert k_plain != k_fused
        assert store.disk_stats()[0] == 2

    def test_alias_jump_returns_optimized_graph(
        self, tmp_path, traced, optimized
    ):
        raw, _ = traced
        graph, _ = optimized
        store = PlanStore(tmp_path)
        tkey = store.trace_key(
            raw, backend="tfsim", pipeline="default",
            fold_constants=False, fusion=True,
        )
        pkey = store.put_plan(compile_plan(graph, fusion=True))
        store.put_alias(tkey, pkey)

        reader = PlanStore(tmp_path)
        loaded = reader.load_graph(tkey)
        assert loaded is not None
        assert graph_signature(loaded) == graph_signature(graph)
        assert reader.stats.hits == 1

    def test_trace_key_varies_with_pipeline_identity(self, tmp_path, traced):
        raw, _ = traced
        store = PlanStore(tmp_path)
        base = dict(backend="tfsim", pipeline="default",
                    fold_constants=False, fusion=False)
        keys = {
            store.trace_key(raw, **base),
            store.trace_key(raw, **{**base, "pipeline": "aware"}),
            store.trace_key(raw, **{**base, "backend": "pytsim"}),
            store.trace_key(raw, **{**base, "fusion": True}),
        }
        assert len(keys) == 4

    def test_miss_on_unknown_trace_key(self, tmp_path):
        store = PlanStore(tmp_path)
        assert store.load_graph("no-such-alias") is None
        assert store.stats.misses == 1 and store.stats.hits == 0

    def test_load_graph_arg_validation(self, tmp_path):
        store = PlanStore(tmp_path)
        with pytest.raises(TypeError):
            store.load_graph()
        with pytest.raises(TypeError):
            store.load_graph("a", plan_key="b")

    def test_hand_built_plan_not_persisted(self, tmp_path, optimized):
        from repro.runtime.plan import Plan

        graph, _ = optimized
        plan = compile_plan(graph)
        bare = Plan(
            instructions=plan.instructions,
            inputs=plan.inputs,
            output_slots=plan.output_slots,
            num_slots=plan.num_slots,
            signature=plan.signature,
        )
        store = PlanStore(tmp_path)
        assert bare.source is None
        assert store.put_plan(bare) is None
        assert store.stats.writes == 0


# -- mmap const sidecars -------------------------------------------------------


class TestMmapConsts:
    def test_sidecar_written_and_mapped_back(self, tmp_path):
        graph, feeds = _big_const_graph()
        store = PlanStore(tmp_path)
        key = store.put_plan(compile_plan(graph))
        sidecars = [
            n for n in os.listdir(tmp_path / "objects")
            if n.startswith(f"{key}.c") and n.endswith(".npy")
        ]
        assert len(sidecars) == 1

        reader = PlanStore(tmp_path)
        loaded = reader.load_graph(plan_key=key)
        assert loaded is not None
        assert reader.stats.bytes_mapped >= 64 * 64 * 4
        mapped = [
            v
            for node in loaded
            for v in node.attrs.values()
            if isinstance(v, np.memmap)
        ]
        assert mapped and not mapped[0].flags.writeable

    def test_mapped_plan_executes_with_parity(self, tmp_path):
        graph, feeds = _big_const_graph()
        store = PlanStore(tmp_path)
        key = store.put_plan(compile_plan(graph, fusion=True))
        warm = PlanStore(tmp_path).load_plan(key)
        out_a, _ = compile_plan(graph, fusion=True).execute(feeds)
        out_b, _ = warm.execute(feeds)
        assert np.array_equal(out_a[0], out_b[0])

    def test_threshold_is_tunable(self, tmp_path):
        graph, _ = _big_const_graph()
        store = PlanStore(tmp_path, mmap_threshold=1 << 24)
        key = store.put_plan(compile_plan(graph))
        names = os.listdir(tmp_path / "objects")
        assert names == [f"{key}.plan"]  # nothing crossed the bar
        assert PlanStore(tmp_path).load_graph(plan_key=key) is not None


# -- corruption robustness -----------------------------------------------------


class TestCorruption:
    def _stored(self, tmp_path, fusion=True):
        graph, feeds = _big_const_graph()
        store = PlanStore(tmp_path)
        key = store.put_plan(compile_plan(graph, fusion=fusion))
        return key, str(tmp_path / "objects" / f"{key}.plan")

    def test_truncated_artifact_evicted(self, tmp_path):
        key, path = self._stored(tmp_path)
        with open(path, "rb") as fh:
            head = fh.read(10)
        _corrupt(path, head)
        reader = PlanStore(tmp_path)
        assert reader.load_plan(key) is None
        assert reader.stats.corrupt_evicted == 1
        assert reader.stats.hits == 0
        assert not os.path.exists(path)  # evicted, next write recreates

    def test_garbage_bytes_evicted(self, tmp_path):
        key, path = self._stored(tmp_path)
        _corrupt(path, b"\x00not a pickle at all")
        reader = PlanStore(tmp_path)
        assert reader.load_graph(plan_key=key) is None
        assert reader.stats.corrupt_evicted == 1

    def test_missing_sidecar_evicted(self, tmp_path):
        key, path = self._stored(tmp_path)
        os.unlink(tmp_path / "objects" / f"{key}.c0.npy")
        reader = PlanStore(tmp_path)
        assert reader.load_plan(key) is None
        assert reader.stats.corrupt_evicted == 1
        assert not os.path.exists(path)

    @pytest.mark.parametrize("field,value", [
        ("format", STORE_FORMAT_VERSION + 999),
        ("fingerprint", "f" * 40),
    ])
    def test_stale_header_evicted(self, tmp_path, field, value):
        key, path = self._stored(tmp_path)
        with open(path, "rb") as fh:
            artifact = pickle.loads(fh.read())
        artifact[field] = value
        _corrupt(path, pickle.dumps(artifact))
        reader = PlanStore(tmp_path)
        assert reader.load_plan(key) is None
        assert reader.stats.corrupt_evicted == 1
        assert reader.stats.misses == 1

    def test_garbage_alias_dropped(self, tmp_path, optimized):
        graph, _ = optimized
        store = PlanStore(tmp_path)
        alias_path = tmp_path / "aliases" / "deadbeef"
        _corrupt(str(alias_path), b"{not json")
        assert store.load_graph("deadbeef") is None
        assert store.stats.corrupt_evicted == 1
        assert not alias_path.exists()  # next build rewrites it

    def test_alias_to_missing_artifact_is_a_miss(self, tmp_path):
        store = PlanStore(tmp_path)
        store.put_alias("orphan", "no-such-artifact-00")
        assert store.load_graph("orphan") is None
        assert store.stats.misses == 1
        assert store.stats.corrupt_evicted == 0


# -- Session integration -------------------------------------------------------


def _model(a, b, c):
    return (a @ b + c) @ a.T


class TestSessionWarmStart:
    @pytest.fixture()
    def feeds(self):
        return [random_general(16, seed=s) for s in (4, 5, 6)]

    def test_cold_then_warm_zero_compiles(self, tmp_path, feeds):
        cold = api.Session(plan_store=str(tmp_path))
        ref = cold.compile(_model)(*feeds)
        st = cold.stats()
        assert st.misses == 1          # one cold compile...
        assert st.store_misses >= 1    # ...after the store came up empty
        assert st.store_writes == 1
        cold.close()

        warm = api.Session(plan_store=str(tmp_path))
        out = warm.compile(_model)(*feeds)
        st = warm.stats()
        assert st.misses == 0          # the acceptance criterion
        assert st.store_hits == 1
        assert st.store_writes == 0
        assert np.array_equal(out.data, ref.data)
        warm.close()

    @pytest.mark.parametrize("fusion", [False, True])
    @pytest.mark.parametrize("arena", ["per-call", "preallocated"])
    def test_warm_session_parity_all_combos(self, tmp_path, feeds,
                                            fusion, arena):
        root = tmp_path / f"{int(fusion)}-{arena}"
        opts = dict(fusion=fusion, arena=arena, plan_store=str(root))

        cold = api.Session(**opts)
        f = cold.compile(_model)
        ref = f(*feeds)
        ref_report = f.last_report
        ref_sites = cold.stats().fused_sites
        cold.close()

        warm = api.Session(**opts)
        g = warm.compile(_model)
        out = g(*feeds)
        st = warm.stats()
        assert st.misses == 0 and st.store_hits == 1
        assert np.array_equal(out.data, ref.data)
        assert g.last_report.total_flops == ref_report.total_flops
        assert g.last_report.peak_bytes == ref_report.peak_bytes
        assert g.last_report.calls == ref_report.calls
        assert st.fused_sites == ref_sites
        warm.close()

    def test_corrupt_store_never_crashes_session(self, tmp_path, feeds):
        cold = api.Session(plan_store=str(tmp_path))
        ref = cold.compile(_model)(*feeds)
        cold.close()
        for name in os.listdir(tmp_path / "objects"):
            _corrupt(str(tmp_path / "objects" / name), b"\xde\xad\xbe\xef")

        hurt = api.Session(plan_store=str(tmp_path))
        out = hurt.compile(_model)(*feeds)
        st = hurt.stats()
        assert np.array_equal(out.data, ref.data)
        assert st.misses == 1                   # silent recompile
        assert st.store_corrupt_evicted >= 1
        assert st.store_writes == 1             # artifact re-published
        hurt.close()

    def test_stats_render_has_plan_store_line(self, tmp_path, feeds):
        session = api.Session(plan_store=str(tmp_path))
        session.compile(_model)(*feeds)
        text = session.stats().render()
        assert "plan store:" in text and str(tmp_path) in text
        session.close()
        bare = api.Session()
        assert "plan store:" not in bare.stats().render()
        bare.close()


# -- shard-worker warm starts --------------------------------------------------


class TestShardWarmStart:
    @pytest.fixture(scope="class")
    def plan_and_feeds(self):
        graph, feeds = _traced()
        return (
            compile_plan(default_pipeline().run(graph), fusion=True), feeds
        )

    @pytest.mark.skipif(not HAVE_FORK, reason="fork unavailable")
    def test_fork_workers_warm_start(self, tmp_path, plan_and_feeds):
        plan, feeds = plan_and_feeds
        ref, _ = plan.execute(feeds, record=False)
        # First pool populates the store; artifacts exist, so the next
        # pool's workers load instead of unpickling+recompiling.
        store = PlanStore(tmp_path)
        store.put_plan(plan)
        with ShardPool(plan, shards=2, dtype=np.float32,
                       store=PlanStore(tmp_path),
                       start_method="fork") as pool:
            assert pool.workers_warm_started == 2
            pool.run([feeds] * 8)
            result = pool.run([feeds] * 8)
            assert pool.bytes_copied_last_run == 0
            assert all(
                np.array_equal(o[0], ref[0]) for o in result.outputs
            )

    def test_spawn_workers_warm_start(self, tmp_path, plan_and_feeds):
        plan, feeds = plan_and_feeds
        ref, _ = plan.execute(feeds, record=False)
        store = PlanStore(tmp_path)
        store.put_plan(plan)
        with ShardPool(plan, shards=1, dtype=np.float32,
                       store=PlanStore(tmp_path),
                       start_method="spawn") as pool:
            assert pool.workers_warm_started == 1
            pool.run([feeds] * 4)
            result = pool.run([feeds] * 4)
            assert pool.bytes_copied_last_run == 0
            assert np.array_equal(result.outputs[0][0], ref[0])

    @pytest.mark.skipif(not HAVE_FORK, reason="fork unavailable")
    def test_corrupt_artifact_falls_back_to_blob(
        self, tmp_path, plan_and_feeds
    ):
        plan, feeds = plan_and_feeds
        ref, _ = plan.execute(feeds, record=False)
        store = PlanStore(tmp_path)
        key = store.plan_key(
            plan.signature, fold_constants=False, fusion=True
        )
        # Content addressing makes the pool's own put_plan skip the
        # existing (garbage) file — every worker's load fails and the
        # pickle-blob path must carry the pool.
        _corrupt(str(tmp_path / "objects" / f"{key}.plan"), b"garbage")
        with ShardPool(plan, shards=2, dtype=np.float32,
                       store=store, start_method="fork") as pool:
            assert pool.workers_warm_started == 0
            result = pool.run([feeds] * 4)
            assert all(
                np.array_equal(o[0], ref[0]) for o in result.outputs
            )


# -- serve-layer aggregation ---------------------------------------------------


class TestServerAggregation:
    def test_fleet_plan_store_stats(self, tmp_path):
        import asyncio

        from repro import serve

        feeds = [random_general(16, seed=s) for s in (1, 2, 3)]

        async def main():
            opts = api.Options(plan_store=str(tmp_path))
            async with serve.Server(opts) as server:
                await server.submit(_model, feeds, tenant="alice")
                await server.submit(_model, feeds, tenant="bob")
                stats = server.stats()
            assert stats.plan_store is not None
            assert stats.plan_store["tenants"] == 2
            # alice compiled cold and wrote; bob warm-started from her
            # artifact through his own session's store handle.
            assert stats.plan_store["writes"] == 1
            assert stats.plan_store["hits"] == 1
            assert "plan store (fleet):" in stats.render()

        asyncio.run(main())

    def test_no_store_no_fleet_line(self):
        import asyncio

        from repro import serve

        feeds = [random_general(16, seed=s) for s in (1, 2, 3)]

        async def main():
            async with serve.Server() as server:
                await server.submit(_model, feeds)
                stats = server.stats()
            assert stats.plan_store is None
            assert "plan store (fleet):" not in stats.render()

        asyncio.run(main())


# -- garbage collection (PR 10) ------------------------------------------------


def _age(path: str, seconds: float = 3600.0) -> None:
    """Push a file's atime *and* mtime past the GC grace window."""
    import time

    past = time.time() - seconds
    os.utime(path, (past, past))


class TestGC:
    """``PlanStore.gc``: orphan sweep, dangling aliases, LRU size cap."""

    def _obj(self, store, name):
        return os.path.join(store.root, "objects", name)

    def _alias(self, store, name):
        return os.path.join(store.root, "aliases", name)

    def test_stale_tmp_and_orphan_sidecars_removed(self, tmp_path, optimized):
        graph, _ = optimized
        store = PlanStore(tmp_path)
        key = store.put_plan(compile_plan(graph))
        for name in ("dead.plan.123.0.tmp", "deadbeef.c0.npy"):
            with open(self._obj(store, name), "wb") as fh:
                fh.write(b"x" * 64)
            _age(self._obj(store, name))
        stats = store.gc()
        assert stats.orphans_removed == 2
        assert stats.bytes_freed == 128
        assert not os.path.exists(self._obj(store, "dead.plan.123.0.tmp"))
        assert os.path.exists(self._obj(store, f"{key}.plan"))

    def test_grace_window_protects_fresh_files(self, tmp_path):
        store = PlanStore(tmp_path)
        # Fresh garbage — possibly a publish in flight — must survive.
        with open(self._obj(store, "inflight.c0.npy"), "wb") as fh:
            fh.write(b"x")
        store.put_alias("mid-publish", "not-yet-there")
        stats = store.gc()
        assert stats.orphans_removed == 0
        assert stats.aliases_swept == 0
        assert os.path.exists(self._obj(store, "inflight.c0.npy"))

    def test_dangling_and_garbage_aliases_swept(self, tmp_path, optimized):
        graph, _ = optimized
        store = PlanStore(tmp_path)
        key = store.put_plan(compile_plan(graph))
        store.put_alias("live", key)
        store.put_alias("dangling", "no-such-artifact")
        with open(self._alias(store, "garbage"), "wb") as fh:
            fh.write(b"\x80not json")
        for name in ("live", "dangling", "garbage"):
            _age(self._alias(store, name))
        stats = store.gc()
        assert stats.aliases_swept == 2
        assert os.path.exists(self._alias(store, "live"))
        assert not os.path.exists(self._alias(store, "dangling"))
        assert not os.path.exists(self._alias(store, "garbage"))

    def test_size_cap_evicts_lru_by_atime(self, tmp_path, optimized):
        import time

        graph, _ = optimized
        store = PlanStore(tmp_path)
        keys = [
            store.put_plan(compile_plan(graph, fold_constants=fold,
                                        fusion=fusion))
            for fold, fusion in ((False, False), (False, True),
                                 (True, False))
        ]
        store.put_alias("hot-alias", keys[2])
        store.put_alias("cold-alias", keys[0])
        # Age everything past the grace window, with keys[2] the most
        # recently *accessed* (atime drives eviction order, not mtime).
        now = time.time()
        for i, key in enumerate(keys):
            path = self._obj(store, f"{key}.plan")
            os.utime(path, (now - 3600 + i, now - 3600))
        for name in ("hot-alias", "cold-alias"):
            _age(self._alias(store, name))
        keep = os.path.getsize(self._obj(store, f"{keys[2]}.plan"))
        stats = store.gc(max_bytes=keep)
        assert stats.artifacts_evicted == 2
        assert os.path.exists(self._obj(store, f"{keys[2]}.plan"))
        assert not os.path.exists(self._obj(store, f"{keys[0]}.plan"))
        assert not os.path.exists(self._obj(store, f"{keys[1]}.plan"))
        # Aliases of evicted artifacts went with them; the hot one stays.
        assert os.path.exists(self._alias(store, "hot-alias"))
        assert not os.path.exists(self._alias(store, "cold-alias"))
        assert stats.aliases_swept == 1
        assert stats.bytes_after <= stats.bytes_before

    def test_put_plan_auto_gcs_past_the_cap(self, tmp_path, optimized):
        graph, _ = optimized
        store = PlanStore(tmp_path, gc_grace_seconds=0.0)
        first = store.put_plan(compile_plan(graph))
        _age(self._obj(store, f"{first}.plan"))
        _, one_artifact = store.disk_stats()
        store.max_bytes = one_artifact
        second = store.put_plan(compile_plan(graph, fusion=True))
        plans, nbytes = store.disk_stats()
        assert plans == 1
        assert not os.path.exists(self._obj(store, f"{first}.plan"))
        assert os.path.exists(self._obj(store, f"{second}.plan"))

    def test_gc_stats_render(self, tmp_path):
        stats = PlanStore(tmp_path).gc()
        assert "store gc:" in stats.render()
        assert stats.artifacts_before == 0

    def test_sidecars_evicted_with_their_plan(self, tmp_path):
        graph, _ = _big_const_graph()
        store = PlanStore(tmp_path)
        key = store.put_plan(compile_plan(graph))
        sidecar = self._obj(store, f"{key}.c0.npy")
        assert os.path.exists(sidecar)
        for name in (f"{key}.plan", f"{key}.c0.npy"):
            _age(self._obj(store, name))
        stats = store.gc(max_bytes=0)
        assert stats.artifacts_evicted == 1
        assert not os.path.exists(sidecar)
        assert not os.path.exists(self._obj(store, f"{key}.plan"))


class TestAliasRecords:
    """Alias ``record`` payloads — the autotune promotion substrate."""

    def test_record_round_trip(self, tmp_path, traced, optimized):
        raw, _ = traced
        graph, _ = optimized
        store = PlanStore(tmp_path)
        tkey = store.trace_key(raw, backend="tfsim", pipeline="default",
                               fold_constants=False, fusion=True)
        pkey = store.put_plan(compile_plan(graph, fusion=True))
        record = {"winner": "derivation-0", "speedup_pct": 12.5}
        store.put_alias(tkey, pkey, record=record)
        loaded, rec = PlanStore(tmp_path).load_graph_with_record(tkey)
        assert loaded is not None
        assert rec == record

    def test_no_record_loads_as_none(self, tmp_path, traced, optimized):
        raw, _ = traced
        graph, _ = optimized
        store = PlanStore(tmp_path)
        tkey = store.trace_key(raw, backend="tfsim", pipeline="default",
                               fold_constants=False, fusion=False)
        store.put_alias(tkey, store.put_plan(compile_plan(graph)))
        _, rec = PlanStore(tmp_path).load_graph_with_record(tkey)
        assert rec is None

    def test_overwrite_repoints_default_keeps_first(
        self, tmp_path, traced, optimized
    ):
        raw, _ = traced
        graph, _ = optimized
        store = PlanStore(tmp_path)
        tkey = store.trace_key(raw, backend="tfsim", pipeline="default",
                               fold_constants=False, fusion=False)
        k_plain = store.put_plan(compile_plan(graph))
        k_fused = store.put_plan(compile_plan(graph, fusion=True))
        store.put_alias(tkey, k_plain)
        store.put_alias(tkey, k_fused)  # default: first write wins
        assert store._load_alias(tkey) == k_plain
        store.put_alias(tkey, k_fused, record={"winner": "fusion-on"},
                        overwrite=True)
        spec = store._load_alias_spec(tkey)
        assert spec["target"] == k_fused
        assert spec["record"] == {"winner": "fusion-on"}
