"""Convenience front end over the derivation graph."""

from __future__ import annotations

from .derivation import DerivationGraph, DerivationResult
from .expr import Expr
from .rules import DEFAULT_RULES, Rule


def variants(
    expr: Expr,
    *,
    rules: tuple[Rule, ...] = DEFAULT_RULES,
    max_nodes: int = 2000,
    limit: int | None = None,
    aware_cost: bool = False,
) -> list[tuple[Expr, int]]:
    """Enumerate equivalent variants of ``expr``, cheapest first.

    For the paper's Fig. 1 input ``Hᵀy + (I − HᵀH)x`` this discovers (among
    others) Variant 2 ``Hᵀy + x − HᵀHx`` and Variant 3 ``Hᵀ(y − Hx) + x``,
    with the FLOP ordering the paper reports (tested).
    """
    graph = DerivationGraph(
        expr, rules, max_nodes=max_nodes, aware_cost=aware_cost
    ).explore()
    out = graph.variants()
    return out[:limit] if limit is not None else out


def best_variant(
    expr: Expr,
    *,
    rules: tuple[Rule, ...] = DEFAULT_RULES,
    max_nodes: int = 2000,
    aware_cost: bool = False,
) -> DerivationResult:
    """The cheapest discovered variant with its derivation path."""
    return DerivationGraph(
        expr, rules, max_nodes=max_nodes, aware_cost=aware_cost
    ).result()
