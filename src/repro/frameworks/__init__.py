"""The two simulated ML frameworks under study.

``tfsim`` stands in for TensorFlow 2.7 and ``pytsim`` for PyTorch 1.10 —
the versions the paper benchmarks.  Both share the same tensor substrate,
IR, optimizer-pass library, and BLAS kernels; they differ exactly where the
real frameworks differ in ways the paper measures:

===========================  =======================  ========================
Aspect                        tfsim (TensorFlow)       pytsim (PyTorch)
===========================  =======================  ========================
Graph-mode entry              ``@tfsim.function``      ``@pytsim.jit.script``
First-call (trace) overhead   small (≈6e-4 s paper)    larger (≈2e-3 s paper)
Opt-in tridiagonal product    ``linalg.tridiagonal_    —
                              matmul``
Opt-in chain solver           —                        ``linalg.multi_dot``
===========================  =======================  ========================

Neither framework's default pipeline performs chain reordering, property
dispatch, distributivity, or partial-access rewrites — the paper's central
negative findings.  Both accept an ``aware=True`` escape hatch on their
graph-mode decorators to run the extended pipeline, powering the ablation
benchmarks.

Both graph-mode decorators are thin shims over :mod:`repro.api`: they
register their :class:`~repro.api.FrameworkProfile` s with the backend
registry and compile into the ambient :class:`~repro.api.Session` (the
innermost ``with Session():`` block, or the process-wide default).
"""

from . import tfsim
from . import pytsim
from .common import CompiledFunction, FrameworkProfile

__all__ = ["tfsim", "pytsim", "CompiledFunction", "FrameworkProfile"]
