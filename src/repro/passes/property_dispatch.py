"""Property-aware kernel dispatch (the fix for Experiment 3).

Runs property inference over the graph and, for every ``matmul``:

* if the node is a Gram pattern ``QᵀQ``/``QQᵀ`` with orthogonal ``Q``, the
  product is the identity — replaced by a constant, saving 2n³ FLOPs (the
  paper's closing example of Sec. III-C);
* if the node is a Gram pattern ``XᵀX``/``XXᵀ``, dispatch SYRK (half a
  GEMM);
* otherwise consult the kernel registry with the inferred operand
  properties and record the cheapest kernel as a hint (TRMM for
  triangular, row-scaling for diagonal, banded product for tridiagonal,
  SYMM for symmetric, zero/identity short-circuits).

The default pipelines never run this pass — matching the frameworks'
observed behaviour: "the frameworks do not offer provision to save the
unnecessary computations".
"""

from __future__ import annotations

import numpy as np

from ..ir import builder
from ..ir.graph import Graph
from ..ir.node import Node
from ..kernels.flops import flops_syrk
from ..kernels.registry import KernelRegistry, default_registry
from ..properties import inference
from ..properties import algebra
from ..tensor.properties import Property
from .base import GraphPass


class PropertyDispatch(GraphPass):
    """Annotate matmuls with structured-kernel hints from inferred properties."""

    name = "property_dispatch"

    def __init__(self, registry: KernelRegistry | None = None) -> None:
        super().__init__()
        self.registry = registry if registry is not None else default_registry

    def apply(self, graph: Graph) -> Graph:
        graph = self.transform_loop_bodies(graph)
        env = inference.infer(graph)

        def fn(node: Node, new_inputs: tuple[Node, ...]) -> Node | None:
            if node.op != "matmul" or node.attrs.get("kernel"):
                return None
            pa = env[id(node.inputs[0])]
            pb = env[id(node.inputs[1])]
            if node.attrs.get("trans_a"):
                pa = algebra.transpose_props(pa)
            if node.attrs.get("trans_b"):
                pb = algebra.transpose_props(pb)

            sa = (
                tuple(reversed(new_inputs[0].shape))
                if node.attrs.get("trans_a")
                else new_inputs[0].shape
            )
            sb = (
                tuple(reversed(new_inputs[1].shape))
                if node.attrs.get("trans_b")
                else new_inputs[1].shape
            )
            m, k, n = sa[0], sa[1], sb[1]

            gram = inference.is_gram_pattern(node)
            if gram and Property.ORTHOGONAL in env[id(node.inputs[0])]:
                self._count()
                return builder.const(
                    np.eye(m, dtype=node.dtype), name=f"orth_{node.name}"
                )

            choice = self.registry.select(pa, pb, m, k, n)
            choice_name, choice_flops = choice.name, choice.flops(m, k, n)
            if gram and flops_syrk(m, k) < choice_flops:
                choice_name, choice_flops = "syrk", flops_syrk(m, k)

            if choice_name == "gemm":
                return None

            self._count()
            attrs = dict(node.attrs)
            attrs["kernel"] = choice_name
            if choice_name == "trmm":
                attrs["kernel_opts"] = (("lower", Property.LOWER_TRIANGULAR in pa),)
            elif choice_name == "trmm_right":
                attrs["kernel_opts"] = (("lower", Property.LOWER_TRIANGULAR in pb),)
            return Node("matmul", new_inputs, attrs, name=node.name)

        return graph.rewrite(fn)
