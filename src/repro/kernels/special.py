"""Structured-matrix kernels that BLAS does not provide as single calls.

Experiment 3 of the paper shows that tridiagonal and diagonal products can
be decomposed into sequences of cheap kernels, and that TensorFlow ships an
opt-in ``linalg.tridiagonal_matmul`` that vectorizes the decomposition.
Experiment 4 uses block-diagonal structure.  This module provides all three,
in two flavours where relevant:

* a *vectorized band* implementation (what ``tf.linalg.tridiagonal_matmul``
  does — all row scalings happen simultaneously), and
* a *row-wise SCAL/AXPY loop* (the paper's hand-coded SciPy reference).
"""

from __future__ import annotations

import functools

import numpy as np

from ..errors import ShapeError
from . import blas3
from .validation import as_ndarray, require_matrix, require_same_dtype, require_square


@functools.lru_cache(maxsize=64)
def _band_indices(n: int) -> tuple[np.ndarray, np.ndarray]:
    """The ``(arange(n), arange(n-1))`` index pair band extraction uses.

    Building these per invocation was three ``np.arange`` slices per
    tridiagonal product; the triple depends only on ``n`` (static at
    kernel-selection time), so it is computed once and shared.
    """
    idx = np.arange(n)
    return idx, idx[:-1]


def tridiag_band_views(
    t: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """``(dl, d, du)`` as zero-copy strided views of a contiguous square ``t``.

    The three diagonals of a contiguous matrix are arithmetic stride
    patterns over its flat storage (stride ``n + 1``, starting at offsets
    ``n``/``0``/``1`` for C order; the off-diagonals swap for F order),
    so no gather and no allocation is needed.  Returns ``None`` when
    ``t`` is neither C- nor F-contiguous — callers fall back to the
    index-based gather.
    """
    n = t.shape[0]
    if t.flags.c_contiguous:
        swap = False
    elif t.flags.f_contiguous:
        t = t.T  # C-contiguous view; its sub/super diagonals are swapped
        swap = True
    else:
        return None
    flat = t.reshape(-1)
    d = flat[:: n + 1]
    dl = flat[n :: n + 1]
    du = flat[1 :: n + 1]
    return (du, d, dl) if swap else (dl, d, du)


def tridiag_from_bands(
    dl: np.ndarray, d: np.ndarray, du: np.ndarray
) -> np.ndarray:
    """Build a dense tridiagonal matrix from its three bands.

    ``dl`` is the sub-diagonal (length n-1), ``d`` the main diagonal
    (length n), ``du`` the super-diagonal (length n-1).
    """
    dl = as_ndarray(dl, "dl")
    d = as_ndarray(d, "d")
    du = as_ndarray(du, "du")
    n = d.shape[0]
    if dl.shape != (n - 1,) or du.shape != (n - 1,):
        raise ShapeError(
            f"band lengths disagree: dl {dl.shape}, d {d.shape}, du {du.shape}"
        )
    out = np.zeros((n, n), dtype=d.dtype)
    idx = np.arange(n)
    out[idx, idx] = d
    out[idx[1:], idx[:-1]] = dl
    out[idx[:-1], idx[1:]] = du
    return out


def bands_from_tridiag(
    t: np.ndarray,
    *,
    out: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extract ``(dl, d, du)`` bands from a dense tridiagonal matrix.

    Contiguous inputs extract through zero-copy strided views
    (:func:`tridiag_band_views`); other layouts gather through the cached
    index triple.  The result is always freshly owned — pass ``out``
    (a ``(dl, d, du)`` triple of preallocated vectors) to write the bands
    in place instead of allocating.
    """
    t = require_square(as_ndarray(t, "t"), "t")
    n = t.shape[0]
    bands = tridiag_band_views(t)
    if bands is None:
        idx, short = _band_indices(n)
        bands = (t[idx[1:], short], t[idx, idx], t[short, idx[1:]])
    if out is None:
        return tuple(np.array(b) for b in bands)
    for dst, src, name in zip(out, bands, ("dl", "d", "du")):
        if dst.shape != src.shape:
            raise ShapeError(
                f"bands_from_tridiag: out[{name}] has shape {dst.shape}, "
                f"band is {src.shape}"
            )
        np.copyto(dst, src)
    return out


def tridiagonal_matmul(
    t_or_bands: np.ndarray | tuple[np.ndarray, np.ndarray, np.ndarray],
    b: np.ndarray,
    *,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorized tridiagonal product ``T @ B`` in 6n·m FLOPs.

    Accepts either a dense tridiagonal ``T`` (the bands are extracted as
    zero-copy strided views when ``T`` is contiguous, O(n) gathers
    otherwise) or the ``(dl, d, du)`` band triple directly.  Row ``i`` of
    the result is ``dl[i-1]·B[i-1] + d[i]·B[i] + du[i]·B[i+1]``; all
    three scalings are evaluated as whole-array operations, which is
    exactly the parallelization the paper credits for TF's
    ``tridiagonal_matmul`` beating the sequential SciPy SCAL loop.

    ``out`` is the destination-aware mode: the result lands in the
    caller's buffer (which must not alias ``b`` — rows of ``b`` are
    re-read after the corresponding ``out`` rows are written).  The two
    off-diagonal row-scalings need one
    result-shaped workspace for their products; pass ``scratch`` (same
    shape/dtype as ``out``, disjoint from every operand) to make the call
    allocation-free — it is allocated internally otherwise.  Ufunc order
    is identical with and without ``out``, so results are bit-identical.
    """
    if isinstance(t_or_bands, tuple):
        dl, d, du = (as_ndarray(v, name) for v, name in zip(t_or_bands, "ldu"))
    else:
        t = require_square(as_ndarray(t_or_bands, "t"), "t")
        bands = tridiag_band_views(t)
        dl, d, du = bands if bands is not None else bands_from_tridiag(t)
    b = require_matrix(as_ndarray(b, "b"), "b")
    n = d.shape[0]
    if b.shape[0] != n:
        raise ShapeError(f"tridiagonal_matmul: T is {n}x{n}, B is {b.shape}")
    if out is None:
        out = d[:, None] * b
        out[1:] += dl[:, None] * b[:-1]
        out[:-1] += du[:, None] * b[1:]
        return out
    if out.shape != b.shape:
        raise ShapeError(
            f"tridiagonal_matmul: out has shape {out.shape}, result is {b.shape}"
        )
    np.multiply(d[:, None], b, out=out)
    if n > 1:
        if scratch is None:
            scratch = np.empty_like(out)
        band_rows = scratch[: n - 1]
        np.multiply(dl[:, None], b[:-1], out=band_rows)
        out[1:] += band_rows
        np.multiply(du[:, None], b[1:], out=band_rows)
        out[:-1] += band_rows
    return out


def tridiagonal_matmul_scal_loop(t: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise SCAL/AXPY decomposition of ``T @ B`` (the SciPy reference).

    Computes each output row as a short sequence of scaled-row additions,
    mirroring the hand-coded implementation of the paper's Experiment 3.
    Same 6n·m FLOPs as :func:`tridiagonal_matmul` but executed as n
    sequential row operations.
    """
    dl, d, du = bands_from_tridiag(t)
    b = require_matrix(as_ndarray(b, "b"), "b")
    n = d.shape[0]
    if b.shape[0] != n:
        raise ShapeError(f"tridiagonal_matmul: T is {n}x{n}, B is {b.shape}")
    out = np.empty_like(b)
    for i in range(n):
        row = d[i] * b[i]
        if i > 0:
            row += dl[i - 1] * b[i - 1]
        if i < n - 1:
            row += du[i] * b[i + 1]
        out[i] = row
    return out


def diag_matmul(
    d: np.ndarray, b: np.ndarray, *, out: np.ndarray | None = None
) -> np.ndarray:
    """Diagonal product ``D @ B`` in n·m FLOPs.

    ``d`` may be the diagonal vector or a dense diagonal matrix (the
    diagonal is read as a zero-copy strided view).  Each row of ``B`` is
    scaled by one diagonal entry — a broadcast multiply, no GEMM.  With
    ``out`` the product is written into the caller's buffer (one ufunc
    call, no allocation, bit-identical to the allocating path).
    """
    d = as_ndarray(d, "d")
    if d.ndim == 2:
        require_square(d, "d")
        d = np.diagonal(d)
    b = require_matrix(as_ndarray(b, "b"), "b")
    if b.shape[0] != d.shape[0]:
        raise ShapeError(f"diag_matmul: D is {d.shape[0]} long, B is {b.shape}")
    if out is None:
        return d[:, None] * b
    if out.shape != b.shape:
        raise ShapeError(
            f"diag_matmul: out has shape {out.shape}, result is {b.shape}"
        )
    return np.multiply(d[:, None], b, out=out)


def block_diag_matmul(
    blocks: list[np.ndarray] | tuple[np.ndarray, ...],
    b: np.ndarray,
) -> np.ndarray:
    """Block-diagonal product ``diag(A₁,…,A_k) @ B`` via per-block GEMMs.

    ``B`` is split row-wise to match the blocks; the result is the stacked
    per-block products (RHS of the paper's Equation 11).  For two n/2
    blocks this costs n³/2 + n³/2 = n³ FLOPs versus 2n³ for the dense GEMM.
    """
    if not blocks:
        raise ShapeError("block_diag_matmul: need at least one block")
    blocks = [require_square(as_ndarray(blk, f"blocks[{i}]"), f"blocks[{i}]")
              for i, blk in enumerate(blocks)]
    b = require_matrix(as_ndarray(b, "b"), "b")
    for blk in blocks:
        require_same_dtype((blocks[0], "blocks[0]"), (blk, "block"))
    total = sum(blk.shape[0] for blk in blocks)
    if b.shape[0] != total:
        raise ShapeError(
            f"block_diag_matmul: blocks cover {total} rows, B has {b.shape[0]}"
        )
    outs = []
    row = 0
    for blk in blocks:
        k = blk.shape[0]
        outs.append(blas3.gemm(blk, b[row : row + k]))
        row += k
    return np.vstack(outs)
