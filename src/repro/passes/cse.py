"""Common sub-expression elimination by bottom-up hash-consing.

This is the optimization the paper's Fig. 3 illustrates: two ``matmul``
nodes computing ``AᵀB`` over the same inputs collapse into one, saving 2n³
FLOPs.  The key subtlety — and the paper's Experiment 1 finding — is that
CSE only merges *structurally identical* nodes: ``(AᵀB)ᵀ(AᵀB)`` dedups, but
the non-parenthesized ``(AᵀB)ᵀAᵀB`` produces the left-to-right chain
``((AᵀB)ᵀ Aᵀ) B`` whose DAG (Fig. 4) contains no duplicates, so CSE finds
nothing.  The pass below reproduces both behaviours faithfully because it
works on exactly that structural level.
"""

from __future__ import annotations

from ..ir.graph import Graph
from ..ir.node import Node
from .base import GraphPass


class CommonSubexpressionElimination(GraphPass):
    """Merge structurally identical nodes (same op, attrs, and inputs)."""

    name = "cse"

    def apply(self, graph: Graph) -> Graph:
        graph = self.transform_loop_bodies(graph)
        table: dict[tuple, Node] = {}

        def fn(node: Node, new_inputs: tuple[Node, ...]) -> Node | None:
            if node.op == "input":
                # Inputs are never merged: two placeholders with the same
                # shape are different data.
                return None
            candidate = (
                node
                if all(a is b for a, b in zip(new_inputs, node.inputs))
                else self.rebuild(node, new_inputs)
            )
            key = candidate.signature()
            existing = table.get(key)
            if existing is not None:
                if existing is not node:
                    self._count()
                return existing
            table[key] = candidate
            return candidate

        return graph.rewrite(fn)
