"""Executable plans: the compile-once / execute-many artifact.

A :class:`Plan` is a flat list of :class:`Instruction` records over a slot
arena.  Everything the Interpreter derives per call — topological order,
liveness, kernel choice, FLOP model, result sizes — is frozen into the
instructions at compile time; executing the plan is a single sweep over
the list with no graph traversal, no ``getattr`` dispatch and no dict
rebuilds.

Parity contract: ``Plan.execute`` produces bit-identical outputs and an
:class:`~repro.ir.interpreter.ExecutionReport` equal (kernel call list,
FLOPs, peak bytes) to ``Interpreter.run`` on the same graph and feeds.
The executor replicates the Interpreter's accounting protocol exactly:
record kernel calls during the op, alloc the result, then free operands
whose last consumer this was (inputs and constants stay live).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Mapping, Sequence

import numpy as np

from ..errors import GraphError
from ..ir.interpreter import ExecutionReport, KernelCall, _normalize_feed

#: An op executor: ``fn(args, report, record) -> ndarray``.  Most ops
#: ignore ``report``/``record``; ``loop`` threads them into its sub-plan.
ExecFn = Callable[[list, ExecutionReport, bool], np.ndarray]


@dataclasses.dataclass(frozen=True)
class Instruction:
    """One scheduled op with everything pre-resolved."""

    #: Arena slot the result is written to.
    out_slot: int
    #: Arena slots of the operands, in positional order.
    arg_slots: tuple[int, ...]
    #: The compiled executor for this op (kernel already selected).
    fn: ExecFn
    #: Kernel-call records to append per execution (dims and FLOPs are
    #: static, so the records are built once and shared).
    calls: tuple[KernelCall, ...]
    #: Slots whose value dies here (last consumer): freed from the report
    #: and cleared from the arena so the slot can be reused.
    free_slots: tuple[int, ...]
    #: Source node's op and name — for introspection/debugging only.
    op: str
    label: str


@dataclasses.dataclass(frozen=True)
class PlanInput:
    """Feed-binding metadata for one graph input."""

    name: str
    shape: tuple[int, int]
    slot: int


class Plan:
    """A compiled graph: schedule + kernels + buffer table.

    Build via :func:`repro.runtime.compiler.compile_plan`, not directly.
    """

    __slots__ = (
        "instructions",
        "inputs",
        "output_slots",
        "num_slots",
        "signature",
        "compile_seconds",
        # Weakly referenceable so per-plan accounting (Session._plan_stats)
        # can key on plans without pinning evicted ones in memory.
        "__weakref__",
    )

    def __init__(
        self,
        instructions: tuple[Instruction, ...],
        inputs: tuple[PlanInput, ...],
        output_slots: tuple[int, ...],
        num_slots: int,
        signature: tuple,
        compile_seconds: float = 0.0,
    ) -> None:
        self.instructions = instructions
        self.inputs = inputs
        self.output_slots = output_slots
        self.num_slots = num_slots
        self.signature = signature
        self.compile_seconds = compile_seconds

    # -- feed binding ---------------------------------------------------------

    def _bind(
        self, feeds: Sequence[object] | Mapping[object, object], arena: list
    ) -> None:
        if isinstance(feeds, Mapping):
            by_name = {p.name: p for p in self.inputs}
            by_pos = {i: p for i, p in enumerate(self.inputs)}
            bound: set[int] = set()
            for key, value in feeds.items():
                if isinstance(key, str):
                    spec = by_name.get(key)
                elif isinstance(key, int):
                    spec = by_pos.get(key)
                else:
                    # Node keys: match by input name (plans outlive the
                    # node objects they were compiled from).
                    spec = by_name.get(getattr(key, "name", None))
                if spec is None:
                    raise GraphError(f"no plan input matches feed key {key!r}")
                arena[spec.slot] = _normalize_feed(value)
                bound.add(spec.slot)
            for spec in self.inputs:
                if spec.slot not in bound:
                    raise GraphError(f"missing feed for input {spec.name!r}")
        else:
            feeds = list(feeds)
            if len(feeds) != len(self.inputs):
                raise GraphError(
                    f"plan has {len(self.inputs)} inputs, got {len(feeds)} feeds"
                )
            for spec, value in zip(self.inputs, feeds):
                arena[spec.slot] = _normalize_feed(value)
        for spec in self.inputs:
            arr = arena[spec.slot]
            if tuple(arr.shape) != spec.shape:
                raise GraphError(
                    f"feed for {spec.name!r} has shape {arr.shape}, "
                    f"input declares {spec.shape}"
                )

    # -- execution ------------------------------------------------------------

    def execute(
        self,
        feeds: Sequence[object] | Mapping[object, object],
        *,
        report: ExecutionReport | None = None,
        record: bool = True,
    ) -> tuple[list[np.ndarray], ExecutionReport]:
        """Run the plan; returns ``(outputs, report)`` like Interpreter.run."""
        report = report if report is not None else ExecutionReport()
        arena: list = [None] * self.num_slots
        self._bind(feeds, arena)
        if record:
            calls = report.calls
            for inst in self.instructions:
                args = [arena[s] for s in inst.arg_slots]
                result = inst.fn(args, report, record)
                arena[inst.out_slot] = result
                if inst.calls:
                    calls.extend(inst.calls)
                report.alloc(result.nbytes)
                for s in inst.free_slots:
                    report.free(arena[s].nbytes)
                    arena[s] = None
        else:
            for inst in self.instructions:
                args = [arena[s] for s in inst.arg_slots]
                arena[inst.out_slot] = inst.fn(args, report, record)
                for s in inst.free_slots:
                    arena[s] = None
        return [arena[s] for s in self.output_slots], report

    __call__ = execute

    # -- introspection --------------------------------------------------------

    @property
    def flops(self) -> int:
        """Modelled FLOPs of one execution (loops excluded — their cost
        lives in the sub-plan and depends on the trip count)."""
        return sum(c.flops for inst in self.instructions for c in inst.calls)

    def describe(self) -> str:
        """One line per instruction: slot assignment and chosen kernels."""
        lines = [
            f"plan: {len(self.instructions)} instructions, "
            f"{len(self.inputs)} inputs, {self.num_slots} slots"
        ]
        for i, inst in enumerate(self.instructions):
            kernels = ",".join(c.kernel for c in inst.calls) or "-"
            frees = f" free{list(inst.free_slots)}" if inst.free_slots else ""
            lines.append(
                f"  [{i:>3}] s{inst.out_slot} <- {inst.op}"
                f"({', '.join(f's{s}' for s in inst.arg_slots)})"
                f" [{kernels}]{frees}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Plan {len(self.instructions)} instructions, "
            f"{self.num_slots} slots, {len(self.inputs)} inputs -> "
            f"{len(self.output_slots)} outputs>"
        )
