"""``pytsim.jit`` — the ``torch.jit`` analogue."""

from __future__ import annotations

from collections.abc import Callable

from ..common import PYT_PROFILE, CompiledFunction


def script(fn: Callable | None = None, *, aware: bool = False):
    """Wrap ``fn`` for graph-mode execution (``@torch.jit.script``).

    Same trace-once / run-many contract as ``tfsim.function``; the profile
    differs (the paper reports ≈2e-3 s decorator overhead for torch.jit
    versus ≈6e-4 s for tf.function — footnote 4).  ``aware=True`` opts into
    the linear-algebra-aware pipeline for ablation benchmarks.

    Like ``tfsim.function``, execution-engine knobs (kernel fusion,
    preallocated arena buffers) come from the ambient
    :class:`repro.api.Session` — ``Session(fusion=True,
    arena="preallocated")`` — not from the decorator.
    """
    if fn is None:
        return lambda f: CompiledFunction(f, PYT_PROFILE, aware=aware)
    return CompiledFunction(fn, PYT_PROFILE, aware=aware)
