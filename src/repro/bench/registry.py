"""Experiment registry: names → table-producing callables.

Each experiment module registers itself at import; the CLI and the
benchmark suite iterate the registry so "run every table and figure" is one
loop.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from ..errors import BenchmarkError
from .reporting import ExperimentTable

#: An experiment entry point: run(n, repetitions) -> ExperimentTable.
ExperimentFn = Callable[..., ExperimentTable]


@dataclasses.dataclass(frozen=True)
class ExperimentInfo:
    name: str
    paper_artifact: str  # e.g. "Table III", "Fig. 1"
    fn: ExperimentFn
    description: str


EXPERIMENTS: dict[str, ExperimentInfo] = {}


def register_experiment(
    name: str, paper_artifact: str, description: str
) -> Callable[[ExperimentFn], ExperimentFn]:
    """Decorator: register an experiment under ``name``."""

    def wrap(fn: ExperimentFn) -> ExperimentFn:
        if name in EXPERIMENTS:
            raise BenchmarkError(f"experiment {name!r} registered twice")
        EXPERIMENTS[name] = ExperimentInfo(name, paper_artifact, fn, description)
        return fn

    return wrap


def get_experiment(name: str) -> ExperimentInfo:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise BenchmarkError(
            f"unknown experiment {name!r}; known: {known}"
        ) from None
