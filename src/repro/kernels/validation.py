"""Operand validation shared by the kernel wrappers.

The raw f2py BLAS wrappers accept almost anything and fail with cryptic
messages (or silently up-cast); these helpers give the kernel layer the
strictness of a real library front end.
"""

from __future__ import annotations

import numpy as np

from ..errors import DTypeError, ShapeError

#: dtypes the kernel layer supports (the paper's experiments use float32).
SUPPORTED_DTYPES = (np.float32, np.float64)


def as_ndarray(x: object, name: str) -> np.ndarray:
    """Convert ``x`` to an ndarray of a supported floating dtype.

    Integer and bool inputs are promoted to the default float32 (mirroring
    the frameworks' default), float16 is promoted to float32, float64 is
    kept.  Complex input is rejected.
    """
    a = np.asarray(x)
    if a.dtype in SUPPORTED_DTYPES:
        return a
    if np.issubdtype(a.dtype, np.complexfloating):
        raise DTypeError(f"{name}: complex dtypes are not supported (got {a.dtype})")
    if a.dtype == np.float16:
        return a.astype(np.float32)
    if np.issubdtype(a.dtype, np.integer) or a.dtype == np.bool_:
        return a.astype(np.float32)
    if np.issubdtype(a.dtype, np.floating):
        return a.astype(np.float64)
    raise DTypeError(f"{name}: unsupported dtype {a.dtype}")


def require_matrix(a: np.ndarray, name: str) -> np.ndarray:
    """Require a 2-D array."""
    if a.ndim != 2:
        raise ShapeError(f"{name}: expected a matrix (2-D), got shape {a.shape}")
    return a


def require_vector(x: np.ndarray, name: str) -> np.ndarray:
    """Require a 1-D array."""
    if x.ndim != 1:
        raise ShapeError(f"{name}: expected a vector (1-D), got shape {x.shape}")
    return x


def require_square(a: np.ndarray, name: str) -> np.ndarray:
    """Require a square matrix."""
    require_matrix(a, name)
    if a.shape[0] != a.shape[1]:
        raise ShapeError(f"{name}: expected a square matrix, got shape {a.shape}")
    return a


def require_same_dtype(*pairs: tuple[np.ndarray, str]) -> np.dtype:
    """Require all operands share one dtype; return it.

    BLAS has no mixed-precision kernels: a float32/float64 mix is an error
    here rather than a silent promotion, because a silent promotion would
    silently double the FLOP cost being measured.
    """
    dtypes = {a.dtype for a, _ in pairs}
    if len(dtypes) != 1:
        desc = ", ".join(f"{name}:{a.dtype}" for a, name in pairs)
        raise DTypeError(f"mixed operand dtypes are not supported ({desc})")
    return pairs[0][0].dtype


def check_matmul_shapes(a: np.ndarray, b: np.ndarray) -> tuple[int, int, int]:
    """Validate ``a @ b`` shapes; return (m, k, n)."""
    require_matrix(a, "a")
    require_matrix(b, "b")
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ShapeError(
            f"matmul: inner dimensions disagree: a is {a.shape}, b is {b.shape}"
        )
    return m, k, n


def check_matvec_shapes(a: np.ndarray, x: np.ndarray) -> tuple[int, int]:
    """Validate ``a @ x`` shapes for a matrix-vector product; return (m, n)."""
    require_matrix(a, "a")
    require_vector(x, "x")
    m, n = a.shape
    if n != x.shape[0]:
        raise ShapeError(
            f"matvec: dimensions disagree: a is {a.shape}, x is {x.shape}"
        )
    return m, n


def check_same_length(x: np.ndarray, y: np.ndarray) -> int:
    """Validate two vectors share a length; return it."""
    require_vector(x, "x")
    require_vector(y, "y")
    if x.shape[0] != y.shape[0]:
        raise ShapeError(f"vector lengths disagree: {x.shape[0]} vs {y.shape[0]}")
    return x.shape[0]
