"""Local arithmetic simplifications (Grappler's "arithmetic optimizer").

The headline rewrite for the reproduction is ``X + X → 2·X``: after CSE
unifies the two ``AᵀB`` occurrences in Experiment 1's ``E1 = AᵀB + AᵀB``,
this pass turns the self-addition into an O(n²) scaling, which the paper
notes BLAS can even fold into the GEMM's alpha for free.

Also normalizes ``neg`` into ``scale(-1)`` and collapses scale chains so
that CSE sees through sign/scale noise.
"""

from __future__ import annotations

from ..ir.graph import Graph
from ..ir.node import Node
from ..ir import builder
from .base import GraphPass


class ArithmeticSimplification(GraphPass):
    """x+x → 2x; neg → scale(-1); scale(scale(x)) → scale(x); a·x + b·x → (a+b)·x."""

    name = "arithmetic"

    def apply(self, graph: Graph) -> Graph:
        graph = self.transform_loop_bodies(graph)

        def scale_of(node: Node) -> tuple[Node, float]:
            """Peel scale/neg wrappers: returns (base, multiplier)."""
            alpha = 1.0
            while True:
                if node.op == "scale":
                    alpha *= float(node.attrs["alpha"])
                    node = node.inputs[0]
                elif node.op == "neg":
                    alpha *= -1.0
                    node = node.inputs[0]
                else:
                    return node, alpha

        def fn(node: Node, new_inputs: tuple[Node, ...]) -> Node | None:
            if node.op == "neg":
                self._count()
                return builder.scale(new_inputs[0], -1.0)
            if node.op == "scale":
                base, alpha = scale_of(new_inputs[0])
                alpha *= float(node.attrs["alpha"])
                if base is not new_inputs[0]:
                    self._count()
                    return builder.scale(base, alpha)
                return None
            if node.op in ("add", "sub"):
                a, b = new_inputs
                base_a, alpha_a = scale_of(a)
                base_b, alpha_b = scale_of(b)
                if base_a is base_b:
                    sign = -1.0 if node.op == "sub" else 1.0
                    total = alpha_a + sign * alpha_b
                    self._count()
                    if total == 1.0:
                        return base_a
                    return builder.scale(base_a, total)
                return None
            return None

        return graph.rewrite(fn)
