"""Tests for the measurement harness: timing, bootstrap, reporting, registry."""

import json
import time

import numpy as np
import pytest

from repro.bench import (
    BootstrapResult,
    Cell,
    ExperimentTable,
    TimingSample,
    Verdict,
    bootstrap_compare,
    format_seconds,
    measure,
    measure_callable_pair,
)
from repro.bench.registry import get_experiment, register_experiment
from repro.errors import BenchmarkError


class TestTimingSample:
    def test_best_is_min(self):
        s = TimingSample("x", (0.5, 0.2, 0.9))
        assert s.best == 0.2

    def test_median_mean(self):
        s = TimingSample("x", (1.0, 2.0, 3.0))
        assert s.median == 2.0
        assert s.mean == pytest.approx(2.0)

    def test_quantile(self):
        s = TimingSample("x", tuple(float(i) for i in range(1, 11)))
        assert s.quantile(0.0) == 1.0
        assert s.quantile(1.0) == 10.0

    def test_empty_rejected(self):
        with pytest.raises(BenchmarkError):
            TimingSample("x", ())


class TestMeasure:
    def test_repetition_count(self, tiny_bench_config):
        calls = []
        measure(lambda: calls.append(1), repetitions=5, warmup=2)
        assert len(calls) == 7  # 2 warmup + 5 timed

    def test_times_positive(self, tiny_bench_config):
        s = measure(lambda: sum(range(1000)), repetitions=3, warmup=0)
        assert all(t > 0 for t in s.times)
        assert len(s.times) == 3

    def test_detects_slow_function(self, tiny_bench_config):
        fast = measure(lambda: None, repetitions=3, warmup=0)
        slow = measure(lambda: time.sleep(0.01), repetitions=3, warmup=0)
        assert slow.best > fast.best * 10

    def test_zero_repetitions_rejected(self):
        with pytest.raises(BenchmarkError):
            measure(lambda: None, repetitions=0)

    def test_interleaved_pair(self, tiny_bench_config):
        a, b = measure_callable_pair(
            lambda: None,
            lambda: time.sleep(0.005),
            labels=("fast", "slow"),
            repetitions=3,
            warmup=0,
        )
        assert a.label == "fast"
        assert b.best > a.best


class TestBootstrap:
    def _sample(self, center, spread, label, n=20, seed=0):
        rng = np.random.default_rng(seed)
        return TimingSample(label, tuple(center + spread * rng.random(n)))

    def test_clear_difference_detected(self):
        a = self._sample(0.10, 0.01, "a")
        b = self._sample(0.20, 0.01, "b", seed=1)
        res = bootstrap_compare(a, b)
        assert res.verdict is Verdict.A_FASTER
        assert res.significant
        assert res.p_a_faster > 0.99

    def test_reverse_direction(self):
        a = self._sample(0.30, 0.01, "a")
        b = self._sample(0.10, 0.01, "b", seed=1)
        res = bootstrap_compare(a, b)
        assert res.verdict is Verdict.B_FASTER

    def test_identical_indistinguishable(self):
        a = self._sample(0.10, 0.05, "a", seed=2)
        b = self._sample(0.10, 0.05, "b", seed=3)
        res = bootstrap_compare(a, b)
        assert res.verdict is Verdict.INDISTINGUISHABLE
        assert not res.significant

    def test_ratio_ci_brackets_truth(self):
        a = self._sample(0.10, 0.005, "a")
        b = self._sample(0.30, 0.005, "b", seed=1)
        res = bootstrap_compare(a, b)
        lo, hi = res.ratio_ci
        assert lo <= 3.0 <= hi * 1.2

    def test_describe(self):
        a = self._sample(0.1, 0.01, "alg_a")
        b = self._sample(0.2, 0.01, "alg_b", seed=1)
        text = bootstrap_compare(a, b).describe()
        assert "alg_a" in text and "faster" in text

    def test_deterministic_given_seed(self):
        a = self._sample(0.1, 0.02, "a")
        b = self._sample(0.12, 0.02, "b", seed=1)
        r1 = bootstrap_compare(a, b, seed=7)
        r2 = bootstrap_compare(a, b, seed=7)
        assert r1.p_a_faster == r2.p_a_faster

    def test_bad_quantile_rejected(self):
        a = self._sample(0.1, 0.01, "a")
        with pytest.raises(BenchmarkError):
            bootstrap_compare(a, a, quantile=1.5)


class TestReporting:
    def test_format_seconds(self):
        assert format_seconds(0.40) == "0.40"
        assert format_seconds(0.006) == "0.006"
        assert format_seconds(0.0006) == "6.0e-04"
        assert format_seconds(None) == "–"

    def _table(self):
        t = ExperimentTable(title="Demo", columns=["TF", "PyT"])
        t.add_row("expr1", TF=0.5, PyT=0.25)
        t.add_row("expr2", TF="n.a.", PyT=Cell(seconds=0.1))
        return t

    def test_cell_lookup(self):
        t = self._table()
        assert t.seconds("expr1", "TF") == 0.5
        assert t.cell("expr2", "TF").text == "n.a."

    def test_missing_lookup_raises(self):
        t = self._table()
        with pytest.raises(KeyError):
            t.seconds("nope", "TF")
        with pytest.raises(KeyError):
            t.seconds("expr2", "TF")  # text cell has no timing

    def test_unknown_column_rejected(self):
        t = ExperimentTable(title="T", columns=["A"])
        with pytest.raises(KeyError):
            t.add_row("r", B=1.0)

    def test_render_contains_everything(self):
        t = self._table()
        t.notes.append("a note")
        text = t.render()
        assert "Demo" in text and "expr1" in text and "0.50" in text
        assert "a note" in text

    def test_markdown(self):
        md = self._table().to_markdown()
        assert md.startswith("### Demo")
        assert "| expr1 |" in md

    def test_json_roundtrip(self):
        payload = json.loads(self._table().to_json())
        assert payload["title"] == "Demo"
        assert payload["rows"][0]["cells"]["TF"] == 0.5
        assert payload["rows"][1]["cells"]["TF"] == "n.a."

    def test_column_keyification(self):
        t = ExperimentTable(title="T", columns=["TF graph", "measured (s)"])
        t.add_row("r", TF_graph=0.1, measured__s_=0.2)
        assert t.seconds("r", "TF graph") == 0.1


class TestRegistry:
    def test_known_experiments_registered(self):
        import repro.experiments  # noqa: F401
        from repro.bench.registry import EXPERIMENTS

        for name in ("fig1", "table1", "exp1", "exp2", "exp3", "exp4",
                     "exp5", "fig6", "fig7", "ablation", "solve"):
            assert name in EXPERIMENTS

    def test_unknown_experiment(self):
        with pytest.raises(BenchmarkError):
            get_experiment("definitely_not_registered")

    def test_double_registration_rejected(self):
        register_experiment("test_dup_xyz", "none", "test")(lambda: None)
        with pytest.raises(BenchmarkError):
            register_experiment("test_dup_xyz", "none", "test")(lambda: None)
