"""The dense Tensor wrapper shared by both simulated frameworks.

Design notes
------------
* Everything is a matrix: 1-D input becomes a column (n×1), scalars become
  (1×1).  This matches how the paper's expressions treat ``x, y ∈ Rⁿ`` and
  keeps the IR a single-sorted algebra.
* ``Tensor`` is immutable by convention; operations return new tensors.
* Each tensor carries a closed :class:`PropertySet`.  Eager operations
  *propagate* properties (bookkeeping is O(set size)) but — matching the
  frameworks under study — the default execution path never *uses* them for
  kernel selection.  The property-aware dispatcher in
  :mod:`repro.passes.property_dispatch` is the opt-in "aware" path.
* ``__matmul__`` picks GEMM/GEMV/DOT by operand shape, exactly like the
  frameworks lower ``@`` onto MKL.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..errors import ShapeError
from ..kernels import blas1, blas2, blas3
from ..properties import algebra as prop_algebra
from .dtypes import normalize_dtype, result_dtype
from .properties import (
    Property,
    PropertySet,
    closure,
    detect_properties,
    verify_property,
)


def _as_matrix(data: object, dtype: np.dtype | None) -> np.ndarray:
    a = np.asarray(data)
    if dtype is not None:
        a = a.astype(dtype, copy=False)
    if a.ndim == 0:
        a = a.reshape(1, 1)
    elif a.ndim == 1:
        a = a.reshape(-1, 1)
    elif a.ndim != 2:
        raise ShapeError(f"Tensor only supports matrices; got shape {a.shape}")
    return a


def _shape_props(a: np.ndarray) -> set[Property]:
    props: set[Property] = {Property.GENERAL}
    if a.shape[0] == a.shape[1]:
        props.add(Property.SQUARE)
    if 1 in a.shape:
        props.add(Property.VECTOR)
    if a.shape == (1, 1):
        props.add(Property.SCALAR)
    return props


class Tensor:
    """A 2-D array plus a set of matrix properties.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts; normalized to 2-D.
    props:
        Extra property annotations (beyond the shape-derived ones).  Closed
        under implication on construction.
    dtype:
        Target dtype; defaults to the configured float32.
    verify:
        Numerically check each annotated property (slow; for tests and
        user-facing annotation APIs).
    detect:
        Run full O(n²) property detection instead of trusting annotations.
    """

    __slots__ = ("data", "props")

    def __init__(
        self,
        data: object,
        props: Iterable[Property] = (),
        *,
        dtype: object | None = None,
        verify: bool = False,
        detect: bool = False,
    ) -> None:
        if isinstance(data, Tensor):
            props = closure(set(data.props) | set(props))
            data = data.data
        arr = _as_matrix(data, normalize_dtype(dtype) if dtype is not None else None)
        if arr.dtype not in (np.float32, np.float64):
            arr = arr.astype(normalize_dtype(None))
        if detect:
            p = detect_properties(arr)
        else:
            p = closure(set(props) | _shape_props(arr))
            if verify:
                from ..errors import PropertyError

                for prop in p:
                    if not verify_property(arr, prop):
                        raise PropertyError(
                            f"matrix does not satisfy annotated property {prop}"
                        )
        self.data = arr
        self.props = p

    # -- basic protocol ----------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape  # type: ignore[return-value]

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the scalar value of a 1×1 tensor."""
        if self.shape != (1, 1):
            raise ShapeError(f"item() requires a 1x1 tensor, got {self.shape}")
        return float(self.data[0, 0])

    def has(self, prop: Property) -> bool:
        """Membership test in the closed property set."""
        return prop in self.props

    def with_props(self, *extra: Property, verify: bool = False) -> "Tensor":
        """Return a tensor sharing this data with additional annotations."""
        return Tensor(self.data, set(self.props) | set(extra), verify=verify)

    def astype(self, dtype: object) -> "Tensor":
        d = normalize_dtype(dtype)
        if d == self.dtype:
            return self
        return Tensor(self.data.astype(d), self.props)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ",".join(sorted(p.value for p in self.props if p is not Property.GENERAL))
        tag = f" [{names}]" if names else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{tag})"

    # -- linear algebra ----------------------------------------------------

    @property
    def T(self) -> "Tensor":
        """Transpose (a numpy view — zero copy, like ``tf.transpose`` is
        fused into the downstream kernel by MKL)."""
        return Tensor(self.data.T, prop_algebra.transpose_props(self.props))

    @staticmethod
    def _is_symbolic(other: object) -> bool:
        """True for SymbolicTensor operands — defer to their reflected op
        so eager constants fold into traces as const nodes."""
        from ..ir.tracing import SymbolicTensor

        return isinstance(other, SymbolicTensor)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        if self._is_symbolic(other):
            return NotImplemented
        other = other if isinstance(other, Tensor) else Tensor(other)
        m, k = self.shape
        k2, n = other.shape
        if k != k2:
            raise ShapeError(f"matmul: {self.shape} @ {other.shape}")
        result_dtype(self.dtype, other.dtype)
        square = m == n
        props = prop_algebra.matmul_props(
            self.props,
            other.props,
            b_is_a_transposed=other.data.base is not None
            and other.data.base is self.data.base
            and other.data.shape == self.data.T.shape
            and np.shares_memory(self.data, other.data),
            square_result=square,
        )
        if m == 1 and n == 1:
            out = np.array(
                [[blas1.dot(np.ascontiguousarray(self.data).ravel(),
                            np.ascontiguousarray(other.data).ravel())]],
                dtype=self.dtype,
            )
        elif n == 1:
            out = blas2.gemv(self.data, np.ascontiguousarray(other.data).ravel()).reshape(-1, 1)
        elif m == 1:
            out = blas2.gemv(
                other.data, np.ascontiguousarray(self.data).ravel(), trans=True
            ).reshape(1, -1)
        else:
            out = blas3.gemm(self.data, other.data)
        return Tensor(out, props)

    def __add__(self, other: "Tensor") -> "Tensor":
        if self._is_symbolic(other):
            return NotImplemented
        other = other if isinstance(other, Tensor) else Tensor(other)
        if self.shape != other.shape:
            raise ShapeError(f"add: {self.shape} + {other.shape}")
        result_dtype(self.dtype, other.dtype)
        props = prop_algebra.add_props(self.props, other.props)
        return Tensor(self.data + other.data, props)

    def __sub__(self, other: "Tensor") -> "Tensor":
        if self._is_symbolic(other):
            return NotImplemented
        other = other if isinstance(other, Tensor) else Tensor(other)
        if self.shape != other.shape:
            raise ShapeError(f"sub: {self.shape} - {other.shape}")
        result_dtype(self.dtype, other.dtype)
        props = prop_algebra.add_props(self.props, other.props, negate_b=True)
        return Tensor(self.data - other.data, props)

    def __neg__(self) -> "Tensor":
        return Tensor(-self.data, prop_algebra.negate_props(self.props))

    def __mul__(self, alpha: float) -> "Tensor":
        if isinstance(alpha, Tensor):
            raise TypeError(
                "`*` is scalar scaling; use `matmul`/`@` for matrix products "
                "or `hadamard` for element-wise products"
            )
        alpha = float(alpha)
        return Tensor(self.data * self.dtype.type(alpha),
                      prop_algebra.scale_props(self.props, alpha))

    __rmul__ = __mul__

    def hadamard(self, other: "Tensor") -> "Tensor":
        """Element-wise product."""
        other = other if isinstance(other, Tensor) else Tensor(other)
        if self.shape != other.shape:
            raise ShapeError(f"hadamard: {self.shape} * {other.shape}")
        return Tensor(self.data * other.data)

    def __getitem__(self, key: object) -> "Tensor":
        out = self.data[key]
        if np.isscalar(out) or (isinstance(out, np.ndarray) and out.ndim == 0):
            arr = np.asarray(out).reshape(1, 1)
        else:
            arr = np.asarray(out)
            if arr.ndim == 1:
                arr = arr.reshape(-1, 1)
        return Tensor(arr, prop_algebra.slice_props(self.props, *arr.shape)
                      if arr.ndim == 2 else ())

    # -- comparisons (value semantics for tests) ---------------------------

    def allclose(self, other: "Tensor | np.ndarray", *, rtol: float = 1e-4,
                 atol: float = 1e-5) -> bool:
        """Numeric comparison helper (float32-friendly default tolerances)."""
        other_arr = other.data if isinstance(other, Tensor) else np.asarray(other)
        return bool(np.allclose(self.data, other_arr.reshape(self.shape),
                                rtol=rtol, atol=atol))
