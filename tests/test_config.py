"""Tests for repro.config."""

import os

import pytest

from repro.config import Config, config, iter_thread_vars, limit_threads, override
from repro.errors import ConfigError


class TestLimitThreads:
    def test_sets_all_blas_vars(self):
        limit_threads(1)
        values = dict(iter_thread_vars())
        assert values["OMP_NUM_THREADS"] == "1"
        assert values["MKL_NUM_THREADS"] == "1"
        assert values["OPENBLAS_NUM_THREADS"] == "1"

    def test_multiple_calls_overwrite(self):
        limit_threads(2)
        assert os.environ["OMP_NUM_THREADS"] == "2"
        limit_threads(1)
        assert os.environ["OMP_NUM_THREADS"] == "1"

    def test_rejects_zero(self):
        with pytest.raises(ConfigError):
            limit_threads(0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            limit_threads(-3)


class TestConfigValidation:
    def test_default_is_valid(self):
        Config().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("default_dtype", "int8"),
            ("problem_size", 0),
            ("repetitions", 0),
            ("warmup", -1),
            ("bootstrap_samples", 0),
            ("alpha", 0.0),
            ("alpha", 1.0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        cfg = Config(**{field: value})
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_paper_defaults(self):
        cfg = Config()
        assert cfg.default_dtype == "float32"  # paper footnote 3
        assert cfg.repetitions == 20  # paper Sec. III


class TestOverride:
    def test_restores_on_exit(self):
        before = config.problem_size
        with override(problem_size=128):
            assert config.problem_size == 128
        assert config.problem_size == before

    def test_restores_on_exception(self):
        before = config.repetitions
        with pytest.raises(RuntimeError):
            with override(repetitions=5):
                raise RuntimeError("boom")
        assert config.repetitions == before

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError):
            override(not_a_field=1)

    def test_invalid_value_rejected_at_enter(self):
        with pytest.raises(ConfigError):
            with override(problem_size=-1):
                pass  # pragma: no cover

    def test_nested_overrides(self):
        base = config.problem_size
        with override(problem_size=100):
            with override(problem_size=200):
                assert config.problem_size == 200
            assert config.problem_size == 100
        assert config.problem_size == base
