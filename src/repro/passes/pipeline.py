"""Pass pipeline with optional post-pass validation."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..errors import GraphError
from ..ir.graph import Graph
from ..ir.validate import validate_graph
from .base import GraphPass, PassStats


class PassPipeline:
    """An ordered list of passes run to fixpoint-free single sweep.

    The real Grappler iterates some passes to a fixed point; here each
    pipeline entry runs once, and callers wanting iteration list a pass
    twice (as :func:`repro.passes.default_pipeline` does with CSE).  With
    ``validate=True`` (the default) the structural validator runs after
    every pass, so a semantics-breaking pass is caught at the pass
    boundary, attributed by name.

    ``history`` holds the :class:`PassStats` of the *latest* ``run()``
    only — it is reset at the start of every run, and a run that raises
    partway leaves the stats of the passes that completed (see
    :meth:`describe`).
    """

    def __init__(self, passes: Sequence[GraphPass], *, validate: bool = True) -> None:
        self.passes = list(passes)
        self.validate = validate
        self.history: list[PassStats] = []

    def run(self, graph: Graph) -> Graph:
        from .. import faults

        self.history = []
        if self.validate:
            validate_graph(graph)
        for p in self.passes:
            # Chaos site: a deterministic mid-compile failure.  An
            # "error" spec raises InjectedFault out of the optimize
            # stage — on the session build path that surfaces to the
            # caller; on the autotune candidate-generation path it must
            # be swallowed and the canonical plan kept.
            faults.fire("optimize.pass")
            try:
                graph = p.run(graph)
            except GraphError as exc:
                raise GraphError(f"pass {p.name!r} failed: {exc}") from exc
            if self.validate:
                try:
                    validate_graph(graph)
                except GraphError as exc:
                    raise GraphError(
                        f"pass {p.name!r} produced an invalid graph: {exc}"
                    ) from exc
            self.history.append(p.last_stats)
        return graph

    def extend(self, passes: Iterable[GraphPass]) -> "PassPipeline":
        """New pipeline with extra passes appended.

        The new pipeline starts with an empty ``history`` — run stats never
        carry over.  The pass *instances* are shared with this pipeline
        (they are stateless apart from ``last_stats``, which each
        ``run()`` snapshots into the running pipeline's ``history``), so
        extending is cheap and running either pipeline leaves the other's
        recorded history untouched.
        """
        return PassPipeline([*self.passes, *passes], validate=self.validate)

    def describe(self) -> str:
        """One line per pass with the last run's node deltas.

        ``history`` may be shorter than ``passes`` — before any run, or
        after a run that failed partway; passes without stats render as
        ``(not run)`` instead of being silently dropped.
        """
        lines = [
            f"{s.name:<28} {s.nodes_before:>4} -> {s.nodes_after:<4} nodes"
            f" ({s.rewrites} rewrites)"
            for s in self.history
        ]
        if not lines:
            return " -> ".join(p.name for p in self.passes)
        lines.extend(
            f"{p.name:<28}    (not run)"
            for p in self.passes[len(self.history):]
        )
        return "\n".join(lines)
