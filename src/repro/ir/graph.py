"""Graph container: outputs + reachable nodes, topological order, rebuilds.

A Graph is defined by its output nodes; everything reachable from them is
"the graph".  Nodes are immutable, so passes transform graphs by *rebuild*:
a post-order walk that maps every node to its replacement (see
:meth:`Graph.rewrite`), sharing unchanged sub-DAGs.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

from ..errors import GraphError
from .node import Node


class Graph:
    """An immutable-by-convention computational DAG.

    Parameters
    ----------
    outputs:
        The nodes whose values the graph computes (Fig. 3's ``ret`` nodes).
    inputs:
        Optional explicit input order.  When omitted, input nodes are
        collected in discovery (topological) order.  Explicit order matters
        for graphs used as loop bodies or traced functions, where positional
        binding is part of the contract.
    """

    __slots__ = ("outputs", "inputs", "_topo_cache")

    def __init__(self, outputs: Iterable[Node], inputs: Iterable[Node] | None = None):
        self.outputs: tuple[Node, ...] = tuple(outputs)
        if not self.outputs:
            raise GraphError("a graph needs at least one output")
        for out in self.outputs:
            if not isinstance(out, Node):
                raise GraphError(f"output is {type(out).__name__}, expected Node")
        self._topo_cache: tuple[Node, ...] | None = None
        discovered = [n for n in self.topological() if n.op == "input"]
        if inputs is None:
            self.inputs: tuple[Node, ...] = tuple(discovered)
        else:
            self.inputs = tuple(inputs)
            missing = set(map(id, discovered)) - set(map(id, self.inputs))
            if missing:
                names = [n.name for n in discovered if id(n) in missing]
                raise GraphError(f"graph reaches input nodes not listed: {names}")
            for node in self.inputs:
                if node.op != "input":
                    raise GraphError(f"{node.name} listed as input but op={node.op}")

    # -- traversal -----------------------------------------------------------

    def topological(self) -> tuple[Node, ...]:
        """All reachable nodes, producers before consumers (iterative DFS)."""
        if self._topo_cache is not None:
            return self._topo_cache
        seen: set[int] = set()
        order: list[Node] = []
        for root in self.outputs:
            stack: list[tuple[Node, bool]] = [(root, False)]
            while stack:
                node, expanded = stack.pop()
                if expanded:
                    order.append(node)
                    continue
                if id(node) in seen:
                    continue
                seen.add(id(node))
                stack.append((node, True))
                for inp in reversed(node.inputs):
                    if id(inp) not in seen:
                        stack.append((inp, False))
        self._topo_cache = tuple(order)
        return self._topo_cache

    def __iter__(self) -> Iterator[Node]:
        return iter(self.topological())

    def __len__(self) -> int:
        return len(self.topological())

    def nodes_by_op(self, op: str) -> list[Node]:
        """All reachable nodes with the given op name."""
        return [n for n in self.topological() if n.op == op]

    def op_counts(self) -> dict[str, int]:
        """Histogram of op names — the statistic the paper's Fig. 3 caption
        cares about (how many ``matmul`` nodes survive optimization)."""
        counts: dict[str, int] = {}
        for n in self.topological():
            counts[n.op] = counts.get(n.op, 0) + 1
        return counts

    def consumers(self) -> dict[int, list[Node]]:
        """Map of node id -> consuming nodes."""
        out: dict[int, list[Node]] = {id(n): [] for n in self.topological()}
        for node in self.topological():
            for inp in node.inputs:
                out[id(inp)].append(node)
        return out

    # -- transformation ------------------------------------------------------

    def rewrite(
        self,
        fn: Callable[[Node, tuple[Node, ...]], Node | None],
    ) -> "Graph":
        """Bottom-up rebuild.

        ``fn(node, new_inputs)`` is called for every reachable node in
        topological order, with its inputs already replaced.  It returns the
        replacement node, or ``None`` to mean "rebuild as-is" (a new node is
        only allocated when inputs actually changed).  The method returns a
        new Graph with remapped outputs; untouched sub-DAGs are shared.
        """
        mapping: dict[int, Node] = {}
        for node in self.topological():
            new_inputs = tuple(mapping[id(i)] for i in node.inputs)
            replacement = fn(node, new_inputs)
            if replacement is None:
                if all(a is b for a, b in zip(new_inputs, node.inputs)):
                    replacement = node
                else:
                    replacement = Node(
                        node.op, new_inputs, dict(node.attrs), name=node.name
                    )
            mapping[id(node)] = replacement
        # Declared inputs that earlier passes made unreachable are absent
        # from the mapping; keep them verbatim so positional feeding of the
        # original arguments keeps working.
        new_inputs_list = tuple(
            mapping.get(id(n), n)
            for n in self.inputs
            if mapping.get(id(n), n).op == "input"
        )
        return Graph((mapping[id(o)] for o in self.outputs), inputs=new_inputs_list)

    def with_outputs(self, outputs: Iterable[Node]) -> "Graph":
        """A graph over the same node universe with different outputs."""
        return Graph(outputs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        counts = ", ".join(f"{k}:{v}" for k, v in sorted(self.op_counts().items()))
        return f"<Graph {len(self)} nodes [{counts}] -> {len(self.outputs)} outputs>"
