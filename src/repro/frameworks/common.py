"""Machinery shared by the simulated frameworks.

Since the ``repro.api`` redesign this module is a thin back-compat shim
over the Session layer: the real trace-once/execute-many machinery lives
in :class:`repro.api.Compiled` and :meth:`repro.api.Session._build`.

* :data:`TF_PROFILE` / :data:`PYT_PROFILE` are the two built-in
  :class:`~repro.api.FrameworkProfile` s, registered with the
  :mod:`repro.api` backend registry at import time (so
  ``repro.api.backend("tfsim")`` resolves them by name);
* :class:`CompiledFunction` — what ``@tfsim.function`` and
  ``@pytsim.jit.script`` return — is an *ambient* ``Compiled``: it
  resolves the active :class:`~repro.api.Session` per call, so decorated
  functions compile into the innermost ``with Session():`` block, or the
  process-wide default session (whose plan cache is the PR-1 global
  instance) when none is entered.  Behaviour, outputs and reports are
  identical to PR 1 (``tests/test_api_backcompat.py``).
"""

from __future__ import annotations

from collections.abc import Callable

from ..api import Compiled, Concrete, FrameworkProfile, register_backend
from ..api.compiled import input_signature as _signature  # noqa: F401  (back-compat)
from ..passes import aware_pipeline, default_pipeline

#: Back-compat alias: PR 1 called the per-signature specialization
#: ``ConcreteFunction``; the api layer names it ``Concrete``.
ConcreteFunction = Concrete


TF_PROFILE = register_backend(
    FrameworkProfile(
        name="tfsim",
        paper_decorator_overhead_s=6e-4,
        pipeline_factory=default_pipeline,
        aware_pipeline_factory=aware_pipeline,
    )
)

PYT_PROFILE = register_backend(
    FrameworkProfile(
        name="pytsim",
        paper_decorator_overhead_s=2e-3,
        pipeline_factory=default_pipeline,
        aware_pipeline_factory=aware_pipeline,
    )
)


class CompiledFunction(Compiled):
    """Graph-mode wrapper around a Python callable (see module docstring).

    A session-*ambient* :class:`~repro.api.Compiled` with the PR-1
    constructor signature.  Prefer ``session.compile(fn, backend=...)``
    when you want explicit cache ownership.
    """

    def __init__(
        self,
        fn: Callable,
        profile: FrameworkProfile,
        *,
        aware: bool = False,
    ) -> None:
        super().__init__(
            fn, profile, session=None, pipeline="aware" if aware else "default"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "aware" if self.aware else "default"
        return (
            f"<CompiledFunction {self.__name__} [{self.profile.name}/{mode}] "
            f"traces={self.trace_count}>"
        )
