"""``tfsim.linalg`` — the linear-algebra namespace.

Carries the one structured-matrix entry point real TF offers and the paper
measures: ``tridiagonal_matmul`` (Table IV shows it beating even the
hand-coded SciPy SCAL sequence because the row scalings are vectorized).
"""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from ...ir import builder
from ...ir.tracing import SymbolicTensor
from ...kernels import special
from ...tensor.properties import Property
from ...tensor.tensor import Tensor
from .eager import matmul, transpose  # re-exported TF-style

__all__ = ["matmul", "matrix_transpose", "tridiagonal_matmul"]

matrix_transpose = transpose


def tridiagonal_matmul(t: "Tensor | SymbolicTensor", b: "Tensor | SymbolicTensor"):
    """``tf.linalg.tridiagonal_matmul``: banded product in 6n·m FLOPs.

    The user must *explicitly* choose this op — neither framework dispatches
    it automatically from a dense tridiagonal operand (Experiment 3's
    point).  Eager input executes the vectorized banded kernel immediately;
    symbolic input emits a ``tridiagonal_matmul`` node.
    """
    if isinstance(t, SymbolicTensor) or isinstance(b, SymbolicTensor):
        t_node = t.node if isinstance(t, SymbolicTensor) else builder.const(t.data)
        b_node = b.node if isinstance(b, SymbolicTensor) else builder.const(b.data)
        return SymbolicTensor(builder.tridiagonal_matmul(t_node, b_node))
    if not isinstance(t, Tensor):
        t = Tensor(t)
    if not isinstance(b, Tensor):
        b = Tensor(b)
    if t.shape[0] != t.shape[1]:
        raise ShapeError(f"tridiagonal_matmul: T must be square, got {t.shape}")
    out = special.tridiagonal_matmul(t.data, b.data)
    return Tensor(np.ascontiguousarray(out))


def diag_part(a: "Tensor") -> Tensor:
    """``tf.linalg.diag_part``: extract the main diagonal as a column."""
    if isinstance(a, SymbolicTensor):
        raise NotImplementedError("diag_part is eager-only in the simulator")
    return Tensor(np.diagonal(a.data).reshape(-1, 1).copy())


def diag(v: "Tensor") -> Tensor:
    """``tf.linalg.diag``: build a diagonal matrix from a vector."""
    if isinstance(v, SymbolicTensor):
        raise NotImplementedError("diag is eager-only in the simulator")
    return Tensor(np.diag(np.asarray(v.data).ravel()), {Property.DIAGONAL})
