"""Exception hierarchy for the LAAB reproduction.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can distinguish library failures from
programming mistakes (plain ``TypeError``/``ValueError`` coming out of numpy).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ShapeError(ReproError, ValueError):
    """Operand shapes are incompatible for the requested operation."""


class DTypeError(ReproError, TypeError):
    """Operand dtypes are unsupported or inconsistent."""


class PropertyError(ReproError, ValueError):
    """A matrix-property annotation is inconsistent with the data or operation."""


class KernelError(ReproError, RuntimeError):
    """A BLAS/LAPACK kernel failed or no kernel matches the request."""


class GraphError(ReproError, RuntimeError):
    """The expression IR / computational graph is malformed."""


class TracingError(GraphError):
    """A Python callable could not be traced into a computational graph."""


class RewriteError(ReproError, RuntimeError):
    """A rewrite rule was applied to an expression it does not match."""


class ChainError(ReproError, ValueError):
    """A matrix chain is empty or has incompatible dimensions."""


class BenchmarkError(ReproError, RuntimeError):
    """A measurement could not be carried out as requested."""


class ConfigError(ReproError, ValueError):
    """An invalid global configuration value was supplied."""
