"""Property-based tests on the core data structures and algorithms:
kernels vs numpy, chain DP optimality, rewrite-rule equivalence, and
property-inference soundness."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain import enumerate_parenthesizations, optimal_parenthesization
from repro.kernels import blas3, special
from repro.rewrite import Add, MatMul, Scale, Symbol, Transpose, expr_flops
from repro.rewrite.rules import DEFAULT_RULES, apply_everywhere
from repro.tensor.properties import (
    Property,
    closure,
    detect_properties,
    verify_property,
)

dims = st.integers(min_value=1, max_value=12)


# -- kernels -------------------------------------------------------------------


@given(m=dims, k=dims, n=dims, seed=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_gemm_matches_numpy(m, k, n, seed):
    rng = np.random.default_rng(seed)
    a = (rng.random((m, k)) - 0.5).astype(np.float32)
    b = (rng.random((k, n)) - 0.5).astype(np.float32)
    np.testing.assert_allclose(blas3.gemm(a, b), a @ b, rtol=1e-4, atol=1e-5)


@given(n=st.integers(2, 12), m=dims, seed=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_trmm_matches_numpy(n, m, seed):
    rng = np.random.default_rng(seed)
    l = np.tril((rng.random((n, n)) - 0.5).astype(np.float32))
    b = (rng.random((n, m)) - 0.5).astype(np.float32)
    np.testing.assert_allclose(blas3.trmm(l, b), l @ b, rtol=1e-4, atol=1e-5)


@given(n=st.integers(2, 12), k=dims, seed=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_syrk_matches_numpy(n, k, seed):
    rng = np.random.default_rng(seed)
    a = (rng.random((n, k)) - 0.5).astype(np.float32)
    np.testing.assert_allclose(blas3.syrk(a), a @ a.T, rtol=1e-4, atol=1e-5)


@given(n=st.integers(2, 16), m=dims, seed=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_tridiagonal_matmul_matches_numpy(n, m, seed):
    rng = np.random.default_rng(seed)
    t = special.tridiag_from_bands(
        (rng.random(n - 1) - 0.5).astype(np.float32),
        (rng.random(n) - 0.5).astype(np.float32),
        (rng.random(n - 1) - 0.5).astype(np.float32),
    )
    b = (rng.random((n, m)) - 0.5).astype(np.float32)
    np.testing.assert_allclose(
        special.tridiagonal_matmul(t, b), t @ b, rtol=1e-4, atol=1e-5
    )


# -- chain DP ----------------------------------------------------------------------


@given(
    dims_list=st.lists(st.integers(1, 40), min_size=3, max_size=7),
)
@settings(max_examples=60, deadline=None)
def test_dp_is_optimal(dims_list):
    shapes = [(dims_list[i], dims_list[i + 1]) for i in range(len(dims_list) - 1)]
    sol = optimal_parenthesization(shapes)
    brute_best = enumerate_parenthesizations(shapes)[0]
    assert sol.flops == brute_best.flops


@given(
    dims_list=st.lists(st.integers(1, 10), min_size=3, max_size=6),
    seed=st.integers(0, 100),
)
@settings(max_examples=30, deadline=None)
def test_all_parenthesizations_numerically_equal(dims_list, seed):
    from repro.chain import evaluate_chain

    rng = np.random.default_rng(seed)
    shapes = [(dims_list[i], dims_list[i + 1]) for i in range(len(dims_list) - 1)]
    mats = [(rng.random(s) - 0.5).astype(np.float64) for s in shapes]
    ref = evaluate_chain(mats, None)
    for p in enumerate_parenthesizations(shapes):
        np.testing.assert_allclose(evaluate_chain(mats, p.tree), ref, atol=1e-9)


# -- rewrite rules -------------------------------------------------------------------


@st.composite
def rewrite_exprs(draw):
    """Random expression over symbols A, B (n×n) and x (n×1)."""
    n = 8
    A = Symbol("A", n, n)
    B = Symbol("B", n, n)
    x = Symbol("x", n, 1)
    leaves = [A, B, Transpose(A), Transpose(B), MatMul(A, B)]
    depth = draw(st.integers(1, 3))

    def build(d):
        if d == 0:
            return draw(st.sampled_from(leaves))
        kind = draw(st.sampled_from(["mul", "add", "scale", "t"]))
        if kind == "mul":
            return MatMul(build(d - 1), build(d - 1))
        if kind == "add":
            return Add(build(d - 1), build(d - 1))
        if kind == "scale":
            return Scale(draw(st.sampled_from([2.0, -1.0, 0.5])), build(d - 1))
        return Transpose(build(d - 1))

    body = build(depth)
    return MatMul(body, x)  # end with a vector so costs vary interestingly


@given(expr=rewrite_exprs(), seed=st.integers(0, 50))
@settings(max_examples=40, deadline=None)
def test_rules_preserve_value(expr, seed):
    rng = np.random.default_rng(seed)
    env = {
        "A": rng.random((8, 8)) - 0.5,
        "B": rng.random((8, 8)) - 0.5,
        "x": rng.random((8, 1)) - 0.5,
    }
    ref = expr.evaluate(env)
    for rule in DEFAULT_RULES:
        for app in apply_everywhere(rule, expr):
            np.testing.assert_allclose(
                app.result.evaluate(env), ref, rtol=1e-8, atol=1e-9
            )


@given(expr=rewrite_exprs())
@settings(max_examples=40, deadline=None)
def test_canonical_key_stable(expr):
    """key() must be deterministic and equal across reconstruction."""
    assert expr.key() == expr.key()
    assert expr == expr
    assert expr_flops(expr) >= 0


# -- property machinery ------------------------------------------------------------------


@given(seed=st.integers(0, 500), n=st.integers(2, 12))
@settings(max_examples=40, deadline=None)
def test_detection_sound(seed, n):
    rng = np.random.default_rng(seed)
    kind = seed % 5
    if kind == 0:
        m = np.tril(rng.random((n, n))).astype(np.float32)
    elif kind == 1:
        m = np.diag(rng.random(n)).astype(np.float32)
    elif kind == 2:
        a = rng.random((n, n))
        m = ((a + a.T) / 2).astype(np.float32)
    elif kind == 3:
        m = np.zeros((n, n), dtype=np.float32)
    else:
        m = rng.random((n, n)).astype(np.float32) + 1
    for p in detect_properties(m):
        if p is Property.BLOCK_DIAGONAL:
            continue
        assert verify_property(m, p)


@given(props=st.sets(st.sampled_from(list(Property)), max_size=4))
@settings(max_examples=60, deadline=None)
def test_closure_properties(props):
    c = closure(props)
    assert props <= c
    assert closure(c) == c  # idempotent
