"""Serve bench: the async front-end under concurrent closed-loop load.

Runs :func:`repro.serve.bench.serve_bench` — the same dispatch-bound
workload as the runtime bench, driven through the full serving stack
(admission → coalescer → dispatch thread → engine) — and records the
``serve_*`` numbers into ``BENCH_runtime.json``.

Acceptance gates (the ISSUE's serving criteria):

* coalesced wave occupancy is > 1 under concurrent closed-loop load —
  independent requests really do share waves;
* sustained coalesced throughput is at least the one-request-at-a-time
  sequential baseline through the same serve path;
* p50/p99 latency percentiles are recorded (and gated against the
  committed baseline by ``check_bench_regression.py``).

The JSON write is a read-merge-write: ``test_runtime_bench.py`` owns
the file and overwrites it wholesale, so this module must run after it
(pytest's alphabetical collection order guarantees that when both run
in one invocation, and the CI steps order them explicitly).

Environment knobs:

``REPRO_SERVE_REQUESTS``     total requests per timed run (default 192)
``REPRO_SERVE_CONCURRENCY``  closed-loop clients (default 8)
``REPRO_BENCH_SHARDS``       worker processes for wave execution
                             (default 2; ``0`` keeps waves in-process)
``REPRO_BENCH_LOOPS``        chain length of the workload (default 12)
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.serve.bench import serve_bench

REQUESTS = int(os.environ.get("REPRO_SERVE_REQUESTS", "192"))
CONCURRENCY = int(os.environ.get("REPRO_SERVE_CONCURRENCY", "8"))
SHARDS = int(os.environ.get("REPRO_BENCH_SHARDS", "2"))
LOOPS = int(os.environ.get("REPRO_BENCH_LOOPS", "12"))
ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def result():
    return serve_bench(
        requests=REQUESTS,
        concurrency=CONCURRENCY,
        shards=SHARDS or None,
        loops=LOOPS,
    )


def test_serve_bench_records_json(result):
    """Merge the serve numbers into BENCH_runtime.json without touching
    the runtime keys already recorded there."""
    path = ROOT / "BENCH_runtime.json"
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload.update(result.numbers)
    path.write_text(json.dumps(payload, indent=2))
    n = result.numbers
    assert n["serve_requests"] == REQUESTS
    assert n["serve_shards"] == SHARDS


def test_all_requests_complete(result):
    for report in (result.sequential, result.coalesced):
        assert report.completed == REQUESTS
        assert report.rejected == 0
        assert report.failed == 0


def test_waves_coalesce_above_occupancy_one(result):
    """Under concurrent closed-loop load, independent submissions must
    share waves — the whole point of the coalescer."""
    n = result.numbers
    assert n["serve_wave_occupancy_mean"] > 1.0, (
        f"waves never coalesced: mean occupancy "
        f"{n['serve_wave_occupancy_mean']:.2f}"
    )
    assert n["serve_wave_occupancy_max"] <= n["serve_max_wave"]


def test_coalesced_throughput_at_least_sequential(result):
    """Coalesced serving must sustain at least the one-request-at-a-time
    baseline through the same serve path (in practice it is a multiple:
    the per-wave overhead amortizes across the wave)."""
    n = result.numbers
    assert n["serve_coalescing_speedup"] >= 1.0, (
        f"coalescing made serving slower: "
        f"{n['serve_sequential_rps']:.0f} -> "
        f"{n['serve_throughput_rps']:.0f} req/s"
    )


def test_latency_percentiles_recorded(result):
    n = result.numbers
    assert 0.0 < n["serve_p50_latency_seconds"] <= n[
        "serve_p99_latency_seconds"
    ] <= n["serve_p999_latency_seconds"]
    # Closed-loop depth is bounded by the client count.
    assert n["serve_queue_depth_high_water"] <= CONCURRENCY
