"""Pinned storage: PinnedBinding, Plan.pin_slot/arena.install, per-slot
layout orders, and the Session.pin / Options(pin=True) fast path.

Contracts under test:

* ``Plan.bind_pinned`` validates feed count/shape/layout once and the
  binding then executes bit-identically to ``plan.execute`` — with the
  bound arrays' *contents* re-read every call (rewrite in place, call
  again, get new results).
* ``Plan.pin_slot`` backs an arena slot with caller-owned storage;
  instructions write the slot's value straight into it, and a pinned
  slot refuses to be silently reallocated away.
* The compiler's per-slot memory orders: BLAS destinations stay "F",
  tridiagonal destinations/operands go "C", and donation checks feeds
  against the slot's declared order.
* ``Session.pin`` + ``Options(pin=True)``: repeated same-identity calls
  ride one cached binding; a new identity rebinds; results always match
  the unpinned session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.errors import ConfigError, GraphError
from repro.ir import Interpreter, trace
from repro.passes import aware_pipeline, default_pipeline
from repro.runtime import compile_plan
from repro.tensor import (
    random_general,
    random_lower_triangular,
    random_tridiagonal,
)


def _dispatch_workload():
    ops = [random_general(16, seed=s) for s in (1, 2, 3)]

    def fn(a, b, c):
        acc = a
        for _ in range(4):
            acc = (acc @ b + c - a) @ a.T
        return acc + acc.T

    graph = default_pipeline().run(trace(fn, ops))
    return graph, [t.data for t in ops]


def _structured_workload():
    l_mat = random_lower_triangular(24, seed=5)
    t = random_tridiagonal(24, seed=9)
    b = random_general(24, seed=2)
    graph = aware_pipeline().run(
        trace(lambda l, tt, p: l @ (tt @ p), [l_mat, t, b])
    )
    return graph, [l_mat.data, t.data, b.data]


def _ordered_feeds(plan, feeds):
    return [
        np.asfortranarray(f) if plan.slot_orders[spec.slot] == "F"
        else np.ascontiguousarray(f)
        for spec, f in zip(plan.inputs, feeds)
    ]


class TestPinnedBinding:
    def test_binding_matches_execute_bit_for_bit(self):
        graph, feeds = _dispatch_workload()
        plan = compile_plan(graph, fusion=True)
        ref, _ = plan.execute(feeds)
        binding = plan.bind_pinned(
            _ordered_feeds(plan, feeds), plan.new_arena()
        )
        for _ in range(3):  # warming pass + turbo passes
            outs = binding.execute()
            for a, b in zip(outs, ref):
                assert np.array_equal(a, b)

    def test_contents_reread_each_call(self):
        graph, feeds = _dispatch_workload()
        plan = compile_plan(graph, fusion=True)
        bound = _ordered_feeds(plan, feeds)
        binding = plan.bind_pinned(bound, plan.new_arena())
        binding.execute()
        new_feeds = [np.asfortranarray(f * 2.0) for f in feeds]
        for dst, src in zip(bound, new_feeds):
            np.copyto(dst, src)
        ref, _ = plan.execute(new_feeds)
        outs = binding.execute()
        assert np.array_equal(outs[0], ref[0])

    def test_structured_binding_parity(self):
        graph, feeds = _structured_workload()
        plan = compile_plan(graph, fusion=True)
        interp_out, _ = Interpreter(record=False).run(graph, feeds)
        binding = plan.bind_pinned(
            _ordered_feeds(plan, feeds), plan.new_arena()
        )
        binding.execute()
        assert np.array_equal(binding.execute()[0], interp_out[0])

    def test_validation(self):
        graph, feeds = _dispatch_workload()
        plan = compile_plan(graph, fusion=True)
        arena = plan.new_arena()
        with pytest.raises(GraphError, match="inputs"):
            plan.bind_pinned(feeds[:2], arena)
        bad_shape = [np.ones((3, 3), dtype=np.float32), *feeds[1:]]
        with pytest.raises(GraphError, match="shape"):
            plan.bind_pinned(bad_shape, arena)
        # Dispatch inputs are all F slots; C-only arrays fail the layout
        # check by name.
        c_ordered = [np.ascontiguousarray(f) for f in feeds]
        with pytest.raises(ValueError, match="contiguous"):
            plan.bind_pinned(c_ordered, arena)


class TestSlotOrdersAndPinning:
    def test_structured_plan_orders(self):
        graph, _ = _structured_workload()
        plan = compile_plan(graph, fusion=True)
        by_slot = dict(enumerate(plan.slot_orders))
        # TRMM's triangular operand stays F; the tridiagonal matrix and
        # RHS inputs ride C (their only consumer prefers C), and the
        # tridiagonal result + scratch are C-ordered destinations.
        l_slot, t_slot, b_slot = (spec.slot for spec in plan.inputs)
        assert by_slot[l_slot] == "F"
        assert by_slot[t_slot] == "C"
        assert by_slot[b_slot] == "C"
        tri = next(i for i in plan.instructions if "tridiag" in
                   i.calls[0].kernel)
        assert plan.slot_orders[tri.out_slot] == "C"
        assert plan.slot_orders[tri.scratch] == "C"

    def test_dispatch_plan_stays_fortran(self):
        graph, _ = _dispatch_workload()
        plan = compile_plan(graph, fusion=True)
        assert set(plan.slot_orders) == {"F"}

    def test_donation_respects_slot_order(self):
        graph, feeds = _structured_workload()
        plan = compile_plan(graph, fusion=True)
        arena = plan.new_arena()
        ordered = _ordered_feeds(plan, feeds)
        out_ref, _ = plan.execute(feeds, record=False)
        outs, _ = plan.execute(ordered, record=False, arena=arena,
                               donate=True)
        assert np.array_equal(outs[0], out_ref[0])
        before = arena.bytes_copied
        plan.execute(ordered, record=False, arena=arena, donate=True)
        assert arena.bytes_copied == before
        # The tridiagonal RHS slot is C-ordered: an F-only array fails
        # strict donation with the C hint.
        wrong = list(ordered)
        b_spec = plan.inputs[2]
        wrong[2] = np.asfortranarray(feeds[2])
        with pytest.raises(ValueError, match="C-contiguous"):
            plan.execute(wrong, record=False, arena=arena, donate=True)
        del b_spec

    def test_pin_slot_writes_through_external_buffer(self):
        graph, feeds = _dispatch_workload()
        plan = compile_plan(graph, fusion=True)
        arena = plan.new_arena()
        out_slot = plan.output_slots[0]
        external = np.empty(plan.slot_shape(out_slot), dtype=np.float32,
                            order="F")
        plan.pin_slot(arena, out_slot, external)
        outs, _ = plan.execute(feeds, record=False, arena=arena)
        assert outs[0] is external

    def test_pin_slot_validates(self):
        graph, _ = _dispatch_workload()
        plan = compile_plan(graph, fusion=True)
        arena = plan.new_arena()
        out_slot = plan.output_slots[0]
        with pytest.raises(ValueError, match="shape"):
            plan.pin_slot(arena, out_slot,
                          np.empty((2, 2), dtype=np.float32, order="F"))
        with pytest.raises(ValueError, match="contiguous"):
            plan.pin_slot(
                arena, out_slot,
                np.empty((32, 32), dtype=np.float32)[::2, ::2],
            )

    def test_pinned_slot_refuses_silent_reallocation(self):
        graph, feeds = _dispatch_workload()
        plan = compile_plan(graph, fusion=True)
        arena = plan.new_arena()
        out_slot = plan.output_slots[0]
        external = np.empty(plan.slot_shape(out_slot), dtype=np.float64,
                            order="F")
        plan.pin_slot(arena, out_slot, external)
        # float32 execution needs a float32 buffer; the pin makes the
        # mismatch loud instead of silently dropping the external buffer.
        with pytest.raises(ValueError, match="pinned"):
            plan.execute(feeds, record=False, arena=arena)

    def test_buffer_descriptors(self):
        graph, _ = _structured_workload()
        plan = compile_plan(graph, fusion=True)
        descs = plan.buffer_descriptors(np.float32)
        inputs = [d for d in descs if d.role == "input"]
        outputs = [d for d in descs if d.role == "output"]
        assert [d.name for d in inputs] == [p.name for p in plan.inputs]
        assert len(outputs) == len(plan.output_slots)
        for d in descs:
            assert d.order == plan.slot_orders[d.slot]
            assert d.nbytes == int(np.prod(d.shape)) * 4


class TestSessionPin:
    def test_options_validation(self):
        with pytest.raises(ConfigError, match="pin"):
            api.Options(pin=True).validate()
        api.Options(pin=True, arena="preallocated").validate()

    def test_pin_registry(self):
        with api.Session(arena="preallocated", pin=True) as s:
            t1 = s.pin("x", (8, 8))
            t2 = s.pin("x", (8, 8))
            assert t1 is t2
            assert t1.data.flags.f_contiguous
            assert not t1.data.any()
            with pytest.raises(ConfigError, match="already exists"):
                s.pin("x", (4, 4))

    def test_pinned_calls_match_unpinned_session(self):
        A, B, C = (random_general(16, seed=s) for s in (1, 2, 3))

        def fn(a, b, c):
            return (a @ b + c) @ a.T

        with api.Session(fusion=True, arena="preallocated") as plain:
            ref = plain.run(plain.compile(fn), A, B, C)

        with api.Session(fusion=True, arena="preallocated", pin=True) as s:
            f = s.compile(fn)
            a = s.pin("a", (16, 16))
            b = s.pin("b", (16, 16))
            c = s.pin("c", (16, 16))
            np.copyto(a.data, A.data)
            np.copyto(b.data, B.data)
            np.copyto(c.data, C.data)
            r1 = f(a, b, c)
            r2 = f(a, b, c)  # steady state: cached binding
            concrete = f.get_concrete(a, b, c)
            assert concrete.pinned_binding is not None
            binding = concrete.pinned_binding
            assert np.array_equal(r1.data, ref.data)
            assert np.array_equal(r2.data, ref.data)
            # In-place rewrite flows into the next call.
            np.copyto(a.data, C.data)
            with api.Session(fusion=True, arena="preallocated") as plain:
                ref2 = plain.run(plain.compile(fn), C, B, C)
            assert np.array_equal(f(a, b, c).data, ref2.data)
            assert concrete.pinned_binding is binding  # no rebind

    def test_identity_change_rebinds(self):
        A, B = random_general(8, seed=1), random_general(8, seed=2)

        def fn(a, b):
            return a @ b

        with api.Session(fusion=True, arena="preallocated", pin=True) as s:
            f = s.compile(fn)
            r1 = f(A, B)
            concrete = f.get_concrete(A, B)
            first = concrete.pinned_binding
            other = random_general(8, seed=3)
            r2 = f(other, B)
            assert concrete.pinned_binding is not first or \
                concrete.pinned_key != tuple(map(id, [A.data, B.data]))
            assert np.array_equal(r1.data, (A @ B).data)
            assert np.array_equal(r2.data, (other @ B).data)

    def test_strict_donation_surfaces_layout_error(self):
        A, B = random_general(8, seed=1), random_general(8, seed=2)

        with api.Session(fusion=True, arena="preallocated", pin=True,
                         donate_feeds=True) as s:
            f = s.compile(lambda a, b: a @ b + a)
            # Tensor data is C-ordered against F slots: under *strict*
            # donation the pinned path must raise, not silently copy.
            with pytest.raises(ValueError, match="contiguous"):
                f(A, B)

    def test_non_contiguous_feed_falls_back_correctly(self):
        A, B = random_general(8, seed=1), random_general(8, seed=2)

        def fn(a, b):
            return a @ b + a

        with api.Session(fusion=True, arena="preallocated", pin=True) as s:
            f = s.compile(fn)
            # Tensors wrap ascontiguousarray'd data, so feeds here are
            # C-ordered against F slots: the pinned path must fall back
            # to fallback-donation and stay correct.
            r = f(A, B)
            assert np.array_equal(r.data, (A @ B + A).data)
