"""Matrix properties: the vocabulary of linear-algebra awareness.

The paper's Experiment 3 hinges on properties (triangular, symmetric,
diagonal, tridiagonal) enabling cheaper kernels, and its Sec. III-C
discussion sketches how a framework could propagate annotations through the
computational graph (e.g. orthogonal ``Q`` ⇒ ``QᵀQ = I``).  This module
defines the property vocabulary, the implication lattice between
properties, numeric verification, and detection.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable

import numpy as np

from ..errors import PropertyError


class Property(enum.Enum):
    """Structural/algebraic properties a matrix may carry.

    ``Tensor.props`` holds a frozen set of these; :func:`closure` adds all
    implied properties so consumers can test membership directly.
    """

    GENERAL = "general"
    SQUARE = "square"
    VECTOR = "vector"  # column (n×1) or row (1×n)
    SCALAR = "scalar"  # 1×1
    LOWER_TRIANGULAR = "lower_triangular"
    UPPER_TRIANGULAR = "upper_triangular"
    SYMMETRIC = "symmetric"
    SPD = "spd"  # symmetric positive definite
    DIAGONAL = "diagonal"
    TRIDIAGONAL = "tridiagonal"
    ORTHOGONAL = "orthogonal"
    IDENTITY = "identity"
    ZERO = "zero"
    BLOCK_DIAGONAL = "block_diagonal"
    UNIT_DIAGONAL = "unit_diagonal"  # refines triangular

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Property.{self.name}"


#: A (frozen) set of properties.
PropertySet = frozenset

ALL_PROPERTIES: tuple[Property, ...] = tuple(Property)

#: Direct implications; :func:`closure` takes the transitive closure.
IMPLICATIONS: dict[Property, frozenset[Property]] = {
    Property.IDENTITY: frozenset(
        {Property.DIAGONAL, Property.ORTHOGONAL, Property.SPD, Property.UNIT_DIAGONAL}
    ),
    Property.ZERO: frozenset({Property.DIAGONAL}),
    Property.DIAGONAL: frozenset(
        {
            Property.LOWER_TRIANGULAR,
            Property.UPPER_TRIANGULAR,
            Property.SYMMETRIC,
            Property.TRIDIAGONAL,
            Property.BLOCK_DIAGONAL,
        }
    ),
    Property.SPD: frozenset({Property.SYMMETRIC}),
    Property.TRIDIAGONAL: frozenset({Property.SQUARE}),
    Property.SYMMETRIC: frozenset({Property.SQUARE}),
    Property.ORTHOGONAL: frozenset({Property.SQUARE}),
    Property.LOWER_TRIANGULAR: frozenset({Property.SQUARE}),
    Property.UPPER_TRIANGULAR: frozenset({Property.SQUARE}),
}


def closure(props: Iterable[Property]) -> PropertySet:
    """Transitive closure of ``props`` under :data:`IMPLICATIONS`.

    >>> Property.SYMMETRIC in closure({Property.IDENTITY})
    True
    """
    out: set[Property] = set(props)
    frontier = list(out)
    while frontier:
        p = frontier.pop()
        for implied in IMPLICATIONS.get(p, ()):  # type: ignore[arg-type]
            if implied not in out:
                out.add(implied)
                frontier.append(implied)
    return frozenset(out)


def _is_square(a: np.ndarray) -> bool:
    return a.ndim == 2 and a.shape[0] == a.shape[1]


def verify_property(a: np.ndarray, prop: Property, *, atol: float = 1e-5) -> bool:
    """Numerically check that matrix ``a`` actually has ``prop``.

    Used by the test suite to keep property annotations honest, and by
    :class:`~repro.tensor.tensor.Tensor` when constructed with
    ``verify=True``.
    """
    a = np.asarray(a)
    if prop is Property.GENERAL:
        return a.ndim == 2
    if prop is Property.SQUARE:
        return _is_square(a)
    if prop is Property.VECTOR:
        return a.ndim == 2 and 1 in a.shape
    if prop is Property.SCALAR:
        return a.ndim == 2 and a.shape == (1, 1)
    if prop is Property.LOWER_TRIANGULAR:
        return _is_square(a) and bool(np.allclose(a, np.tril(a), atol=atol))
    if prop is Property.UPPER_TRIANGULAR:
        return _is_square(a) and bool(np.allclose(a, np.triu(a), atol=atol))
    if prop is Property.SYMMETRIC:
        return _is_square(a) and bool(np.allclose(a, a.T, atol=atol))
    if prop is Property.SPD:
        if not (_is_square(a) and np.allclose(a, a.T, atol=atol)):
            return False
        try:
            np.linalg.cholesky(a.astype(np.float64))
        except np.linalg.LinAlgError:
            return False
        return True
    if prop is Property.DIAGONAL:
        return _is_square(a) and bool(np.allclose(a, np.diag(np.diagonal(a)), atol=atol))
    if prop is Property.TRIDIAGONAL:
        if not _is_square(a):
            return False
        band = np.tril(np.triu(a, -1), 1)
        return bool(np.allclose(a, band, atol=atol))
    if prop is Property.ORTHOGONAL:
        if not _is_square(a):
            return False
        n = a.shape[0]
        return bool(np.allclose(a.T @ a, np.eye(n, dtype=a.dtype), atol=max(atol, 1e-4)))
    if prop is Property.IDENTITY:
        return _is_square(a) and bool(
            np.allclose(a, np.eye(a.shape[0], dtype=a.dtype), atol=atol)
        )
    if prop is Property.ZERO:
        return bool(np.allclose(a, 0.0, atol=atol))
    if prop is Property.BLOCK_DIAGONAL:
        # Without block sizes this is unverifiable beyond "square"; the
        # annotation carries the block structure separately.
        return _is_square(a)
    if prop is Property.UNIT_DIAGONAL:
        return _is_square(a) and bool(
            np.allclose(np.diagonal(a), 1.0, atol=atol)
        )
    raise PropertyError(f"unknown property {prop!r}")  # pragma: no cover


def detect_properties(a: np.ndarray, *, atol: float = 1e-5) -> PropertySet:
    """Detect the full property set of a concrete matrix by inspection.

    O(n²) scans — a real framework would never do this per-op (which is the
    paper's point: properties must be *annotated* or *propagated*, not
    re-detected), but it is invaluable for tests and for seeding
    annotations.  SPD detection is skipped unless the matrix is symmetric,
    and orthogonality is only probed for modest sizes (the check itself is
    an O(n³) product).
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise PropertyError(f"detect_properties expects a matrix, got shape {a.shape}")
    found: set[Property] = {Property.GENERAL}
    if 1 in a.shape:
        found.add(Property.VECTOR)
        if a.shape == (1, 1):
            found.add(Property.SCALAR)
    if _is_square(a):
        found.add(Property.SQUARE)
        for prop in (
            Property.ZERO,
            Property.IDENTITY,
            Property.DIAGONAL,
            Property.TRIDIAGONAL,
            Property.LOWER_TRIANGULAR,
            Property.UPPER_TRIANGULAR,
            Property.SYMMETRIC,
            Property.UNIT_DIAGONAL,
        ):
            if verify_property(a, prop, atol=atol):
                found.add(prop)
        if Property.SYMMETRIC in found and a.shape[0] <= 512:
            if verify_property(a, Property.SPD, atol=atol):
                found.add(Property.SPD)
        if a.shape[0] <= 512 and verify_property(a, Property.ORTHOGONAL, atol=atol):
            found.add(Property.ORTHOGONAL)
    return closure(found)


def merge(props: PropertySet, extra: Iterable[Property]) -> PropertySet:
    """Union + closure."""
    return closure(set(props) | set(extra))
