"""``laab`` — command-line entry point for the benchmark suite.

Examples::

    laab list                       # show available experiments
    laab run all                    # every table and figure, default size
    laab run exp2 --n 2000          # one experiment at a custom size
    laab run all --paper-scale      # n = 3000 like the paper (slow)
    laab run exp3 --json out.json   # machine-readable results
    laab run all --cache-stats      # + plan-cache hit/miss/eviction report
    laab cache-stats exp1           # run one experiment, print cache stats
    laab cache-stats exp1 --store D # + persistent plan store (warm starts)
    laab graphs                     # print Fig. 3 / Fig. 4 DAGs
    laab serve-bench --shards 2     # async serving front-end under load
    laab chaos --shards 2           # scripted fault-injection drill
    laab run exp1 --autotune        # race candidate plans on hot signatures
    laab autotune --store DIR       # autotune demo: race, promote, persist
    laab store-gc DIR --max-bytes N # bound a plan store (LRU eviction)

Every ``run`` executes inside its own :class:`repro.api.Session`, so the
plan-cache counters and per-plan compile/exec timings printed by
``--cache-stats`` (and the ``cache-stats`` subcommand) are scoped to that
run — the ROADMAP's "cache observability" item.
"""

from __future__ import annotations

import argparse
import sys

from ..config import config, limit_threads


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="laab",
        description="Linear-Algebra-Awareness Benchmarks (IPDPSW'22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment or 'all'")
    run.add_argument("experiment", help="experiment name or 'all'")
    run.add_argument("--n", type=int, default=None, help="problem size")
    run.add_argument("--reps", type=int, default=None, help="timed repetitions")
    run.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's n = 3000 (overrides --n)",
    )
    run.add_argument("--threads", type=int, default=1,
                     help="BLAS threads (paper: 1)")
    run.add_argument("--json", default=None, help="also write results as JSON")
    run.add_argument("--markdown", default=None,
                     help="also write results as markdown")
    run.add_argument(
        "--cache-stats",
        action="store_true",
        help="print plan-cache hits/misses/evictions and per-plan timings "
             "after the run",
    )
    _add_mode_flags(run)

    cache = sub.add_parser(
        "cache-stats",
        help="run one experiment (default exp1) and print the session's "
             "plan-cache statistics",
    )
    cache.add_argument("experiment", nargs="?", default="exp1",
                       help="experiment name or 'all'")
    cache.add_argument("--n", type=int, default=256, help="problem size")
    cache.add_argument("--reps", type=int, default=3,
                       help="timed repetitions")
    cache.add_argument("--threads", type=int, default=1,
                       help="BLAS threads (paper: 1)")
    cache.add_argument(
        "--save",
        metavar="FILE",
        default=None,
        help="after the run, merge this session's plan signatures and "
             "compile times into FILE (JSON accumulator across runs) and "
             "print the cross-run dedup report",
    )
    cache.add_argument(
        "--load",
        metavar="FILE",
        default=None,
        help="print the cross-run dedup report accumulated in FILE "
             "without running anything",
    )
    _add_mode_flags(cache)

    serve = sub.add_parser(
        "serve-bench",
        help="drive the async serving front-end (repro.serve) with a "
             "closed-loop load and report coalescing speedup, wave "
             "occupancy and latency percentiles",
    )
    serve.add_argument("--requests", type=int, default=256,
                       help="total requests per timed run")
    serve.add_argument("--concurrency", type=int, default=8,
                       help="closed-loop clients in the coalesced run "
                            "(the baseline always uses 1)")
    serve.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="dispatch waves through N worker processes (0 or omitted: "
             "in-process execution)",
    )
    serve.add_argument("--max-wave", type=int, default=8,
                       help="coalescer occupancy flush threshold")
    serve.add_argument("--max-delay", type=float, default=0.002,
                       help="coalescer deadline flush, seconds")
    serve.add_argument("--loops", type=int, default=12,
                       help="chain length of the dispatch-bound workload")
    serve.add_argument("--threads", type=int, default=1,
                       help="BLAS threads (paper: 1)")
    serve.add_argument(
        "--json", default=None, metavar="FILE",
        help="merge the serve_* numbers into FILE (read-modify-write, so "
             "BENCH_runtime.json keeps its runtime keys)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run the scripted fault-injection drill (repro.chaos): "
             "crash/hang/corrupt/store/serve scenarios, asserting "
             "bit-correct answers or typed errors and zero leaks",
    )
    chaos.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="worker processes per drill pool",
    )
    chaos.add_argument("--feeds", type=int, default=8,
                       help="feed sets per round (must divide by --shards)")
    chaos.add_argument("--wave-deadline", type=float, default=1.0,
                       help="hung-worker detection deadline, seconds")
    chaos.add_argument(
        "--start-method", default=None,
        choices=("fork", "spawn", "forkserver"),
        help="multiprocessing start method (default: fork if available)",
    )
    chaos.add_argument("--threads", type=int, default=1,
                       help="BLAS threads (paper: 1)")

    autotune = sub.add_parser(
        "autotune",
        help="online-autotuning demo: drive a structured matrix chain "
             "until it crosses the hotness threshold, race rewrite "
             "derivations against the canonical plan on the real feeds, "
             "and report the promotion (persisted when --store is given)",
    )
    autotune.add_argument("--n", type=int, default=256,
                          help="matrix dimension of the chain workload")
    autotune.add_argument("--calls", type=int, default=12,
                          help="executions to drive (>= hotness threshold)")
    autotune.add_argument("--hot-threshold", type=int, default=8,
                          help="executions before the signature tunes")
    autotune.add_argument("--budget", type=float, default=0.25,
                          help="racing budget, seconds "
                               "(REPRO_AUTOTUNE_BUDGET overrides)")
    autotune.add_argument("--mode", choices=("inline", "worker"),
                          default="inline",
                          help="race in the triggering call, or in a "
                               "dedicated worker process off the hot path")
    autotune.add_argument("--seed", type=int, default=0,
                          help="feed-content seed (integer-valued feeds "
                               "keep chain reassociation bit-exact)")
    autotune.add_argument(
        "--store", metavar="DIR", default=None,
        help="persistent plan store: the promoted winner (plus its "
             "derivation record) survives restarts — re-run with the "
             "same DIR to see promotions_restored with zero tuning",
    )
    autotune.add_argument("--threads", type=int, default=1,
                          help="BLAS threads (paper: 1)")

    store_gc = sub.add_parser(
        "store-gc",
        help="garbage-collect a persistent plan store: remove orphan "
             "tmp/sidecar files, sweep dangling aliases, and (with "
             "--max-bytes) evict least-recently-accessed artifacts "
             "until the store fits",
    )
    store_gc.add_argument("dir", help="plan store directory")
    store_gc.add_argument("--max-bytes", type=int, default=None,
                          help="evict LRU artifacts until objects/ fits")
    store_gc.add_argument(
        "--grace", type=float, default=None, metavar="SECONDS",
        help="protect files younger than this (default 60s) — the "
             "window that keeps mid-publish artifacts safe",
    )

    sub.add_parser("list", help="list experiments")
    graphs = sub.add_parser("graphs",
                            help="print the Fig. 3 / Fig. 4 computational graphs")
    graphs.add_argument("--n", type=int, default=128)
    return parser


def _add_mode_flags(parser: argparse.ArgumentParser) -> None:
    """Execution-mode knobs shared by ``run`` and ``cache-stats``."""
    parser.add_argument(
        "--fusion",
        action="store_true",
        help="compile plans with the kernel-fusion stage (elementwise "
             "chains collapse, trailing scales fold into GEMM alpha)",
    )
    # Choices mirror repro.api.ARENA_MODES; kept literal here because the
    # parser is built before limit_threads() runs, and importing the api
    # layer would pull in numpy/BLAS first (Session construction asserts
    # the value anyway, so drift fails loudly).
    parser.add_argument(
        "--arena",
        choices=("per-call", "preallocated"),
        default="per-call",
        help="execution buffers: 'preallocated' reuses per-slot arena "
             "storage (allocation-free after warmup)",
    )
    parser.add_argument(
        "--donate-feeds",
        action="store_true",
        help="alias Fortran-ordered feeds straight into arena input slots "
             "instead of copying (zero-copy binding; feeds another layout "
             "check rejects are copied).  Requires --arena preallocated.",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="route batched execution through N worker processes with "
             "shared-memory feed rings (the GIL-free dispatch path); the "
             "session caches one ShardPool per plan",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="persistent plan store directory: warm-start plans from "
             "content-addressed on-disk artifacts (skipping the "
             "optimization passes and the cold compile), write misses "
             "back, and report store size, hit/miss/write counts and "
             "the build seconds warm starts saved",
    )
    parser.add_argument(
        "--autotune",
        action="store_true",
        help="online plan autotuning: hot signatures race rewrite "
             "derivations and compile-knob variants on real feeds and "
             "promote bit-identical winners into the plan cache (and "
             "the --store, when given)",
    )


def _cmd_list() -> int:
    from ..bench.registry import EXPERIMENTS

    width = max(len(k) for k in EXPERIMENTS)
    for name, info in sorted(EXPERIMENTS.items()):
        print(f"{name.ljust(width)}  {info.paper_artifact:<10}  {info.description}")
    return 0


def _cmd_graphs(n: int) -> int:
    from ..frameworks import tfsim
    from ..ir.pretty import render_graph
    from ..tensor import random_general

    a = random_general(n, seed=1)
    b = random_general(n, seed=2)

    @tfsim.function
    def parenthesized(p, q):
        return tfsim.transpose(tfsim.transpose(p) @ q) @ (tfsim.transpose(p) @ q)

    @tfsim.function
    def unparenthesized(p, q):
        return tfsim.transpose(tfsim.transpose(p) @ q) @ tfsim.transpose(p) @ q

    print(render_graph(parenthesized.initial_graph(a, b),
                       title="Fig. 3 initial: (AᵀB)ᵀ(AᵀB)"))
    print()
    print(render_graph(parenthesized.optimized_graph(a, b),
                       title="Fig. 3 optimized: (AᵀB)ᵀ(AᵀB)"))
    print()
    print(render_graph(unparenthesized.optimized_graph(a, b),
                       title="Fig. 4: (AᵀB)ᵀAᵀB (no duplicates -> no CSE)"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    limit_threads(args.threads)
    # Experiments import numpy transitively; registration happens here so
    # limit_threads above is set before any BLAS pool spins up.
    from .. import experiments  # noqa: F401
    from ..api import Session
    from ..bench.registry import EXPERIMENTS, get_experiment

    n = 3000 if args.paper_scale else args.n
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    tables = []
    # One session per run: the experiments' graph-mode functions compile
    # into it (they resolve the ambient session), giving scoped, reportable
    # plan-cache statistics.
    quiet = getattr(args, "quiet_tables", False)
    # Session-level knobs reach every decorated function without touching
    # a single experiment: the decorators compile into the ambient session.
    if getattr(args, "donate_feeds", False) and \
            getattr(args, "arena", "per-call") != "preallocated":
        print("error: --donate-feeds requires --arena preallocated",
              file=sys.stderr)
        return 2
    with Session(
        fusion=getattr(args, "fusion", False),
        arena=getattr(args, "arena", "per-call"),
        # The CLI's experiment tensors are whatever the generators built
        # (usually C-ordered), so the flag maps to best-effort donation:
        # alias what qualifies, copy the rest — never crash a run.
        donate_feeds="fallback" if getattr(args, "donate_feeds", False)
        else False,
        shards=getattr(args, "shards", None),
        plan_store=getattr(args, "store", None),
        autotune=getattr(args, "autotune", False) or None,
    ) as session:
        for name in names:
            info = get_experiment(name)
            if quiet:
                print(f">>> {info.name}: warming plan cache "
                      f"(n = {n}, reps = {args.reps})")
            else:
                print(f"\n>>> {info.name} ({info.paper_artifact}): "
                      f"{info.description}")
            table = info.fn(n=n, repetitions=args.reps)
            tables.append(table)
            if not quiet:
                print(table.render())
        if getattr(args, "cache_stats", False):
            print("\n== plan-cache statistics ==")
            print(session.stats().render())
        if session.plan_store is not None:
            print("\n== persistent plan store ==")
            print(session.plan_store.render())
        save_path = getattr(args, "save_stats_path", None)
        if save_path:
            from ..runtime.persist import render_stats, save_stats

            merged = save_stats(save_path, session.plan_cache.snapshot())
            print(f"\n== cross-run plan-cache persistence ({save_path}) ==")
            print(render_stats(merged))
    if args.json:
        import json

        payload = [json.loads(t.to_json()) for t in tables]
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {args.json}")
    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write("\n\n".join(t.to_markdown() for t in tables))
        print(f"wrote {args.markdown}")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    limit_threads(args.threads)
    from ..serve.bench import serve_bench

    result = serve_bench(
        requests=args.requests,
        concurrency=args.concurrency,
        shards=args.shards,
        max_wave=args.max_wave,
        max_delay=args.max_delay,
        loops=args.loops,
    )
    print(result.render())
    if args.json:
        import json
        import os

        existing = {}
        if os.path.exists(args.json):
            with open(args.json) as fh:
                existing = json.load(fh)
        existing.update(result.numbers)
        with open(args.json, "w") as fh:
            json.dump(existing, fh, indent=2)
        print(f"\nmerged serve_* keys into {args.json}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    limit_threads(args.threads)
    from ..chaos import chaos_run

    report = chaos_run(
        shards=args.shards,
        feeds=args.feeds,
        wave_deadline=args.wave_deadline,
        start_method=args.start_method,
    )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_autotune(args: argparse.Namespace) -> int:
    limit_threads(args.threads)
    import time

    import numpy as np

    from ..api import Options, Session
    from ..tensor.tensor import Tensor

    n = args.n
    # Integer-valued feeds: chain reassociation stays bit-exact (float32
    # sums of small integers are exact), so derivation candidates can
    # pass the bit-identity gate and the demo shows a real promotion.
    rng = np.random.default_rng(args.seed)
    a = Tensor(rng.integers(0, 4, (n, n)).astype(np.float32))
    b = Tensor(rng.integers(0, 4, (n, n)).astype(np.float32))
    x = Tensor(rng.integers(0, 4, (n, 1)).astype(np.float32))
    want = (a.data @ b.data) @ x.data
    calls = max(args.calls, args.hot_threshold + 1)
    print(f">>> autotune demo: (A @ B) @ x chain, n = {n}, "
          f"{calls} calls, threshold {args.hot_threshold}, "
          f"budget {args.budget:g}s, mode {args.mode}")
    with Session(Options(
        autotune={
            "hot_threshold": args.hot_threshold,
            "budget_seconds": args.budget,
            "mode": args.mode,
        },
        plan_store=args.store,
    )) as session:
        chain = session.compile(lambda p, q, v: (p @ q) @ v)
        out = None
        for _ in range(calls):
            out = chain(a, b, x)
        if args.mode == "worker":
            # The race runs off the hot path; give it a moment to land.
            deadline = time.time() + max(args.budget * 4 + 30.0, 5.0)
            while time.time() < deadline:
                if session.stats().autotune.signatures_tuned >= 1:
                    break
                time.sleep(0.05)
        ok = out is not None and np.array_equal(out.data, want)
        print("answers bit-correct:", "yes" if ok else "NO")
        print()
        print(session.stats().render())
        if session.plan_store is not None:
            print()
            print(session.plan_store.render())
        tuned = session.stats().autotune
    if not ok:
        return 1
    return 0 if tuned.signatures_tuned or tuned.promotions_restored else 1


def _cmd_store_gc(args: argparse.Namespace) -> int:
    import os

    from ..runtime.store import PlanStore

    if not os.path.isdir(args.dir):
        print(f"error: {args.dir!r} is not a directory", file=sys.stderr)
        return 2
    store = PlanStore(args.dir)
    stats = store.gc(max_bytes=args.max_bytes, grace_seconds=args.grace)
    print(stats.render())
    print(store.render())
    return 0


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    """``laab cache-stats`` ≡ ``laab run --cache-stats`` with result
    tables suppressed — one code path, no drift between the two."""
    if args.load:
        # Pure report over the accumulated file: no run, no numpy spin-up.
        from ..runtime.persist import load_stats, render_stats

        print(render_stats(load_stats(args.load)))
        return 0
    return _cmd_run(argparse.Namespace(
        experiment=args.experiment,
        n=args.n,
        reps=args.reps,
        paper_scale=False,
        threads=args.threads,
        json=None,
        markdown=None,
        cache_stats=True,
        quiet_tables=True,
        fusion=args.fusion,
        arena=args.arena,
        donate_feeds=args.donate_feeds,
        shards=args.shards,
        store=args.store,
        autotune=args.autotune,
        save_stats_path=args.save,
    ))


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        from .. import experiments  # noqa: F401

        return _cmd_list()
    if args.command == "graphs":
        return _cmd_graphs(args.n)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "cache-stats":
        return _cmd_cache_stats(args)
    if args.command == "serve-bench":
        return _cmd_serve_bench(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "autotune":
        return _cmd_autotune(args)
    if args.command == "store-gc":
        return _cmd_store_gc(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
