"""The deterministic fault-injection registry (:mod:`repro.faults`).

Contracts under test:

* The spec grammar round-trips: ``FaultPlan.parse(plan.render())``
  rebuilds an equal plan, and malformed specs raise
  :class:`ConfigError` naming the problem.
* Trigger windows are exact: a spec fires on site hits
  ``[after, after + count)`` of the per-process counter and nowhere
  else; ``wN`` restricts it to one worker index.
* ``chance`` specs are seeded — the same plan fires on the same hit
  numbers every run.
* Activation: explicit :func:`install` (which outranks the env), the
  lazy ``REPRO_FAULTS`` read, :func:`clear`, and the
  ``Options(faults=...)`` validation gate.
"""

from __future__ import annotations

import pytest

from repro import api, faults
from repro.errors import ConfigError


@pytest.fixture(autouse=True)
def clean_registry(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.clear()
    yield
    faults.clear()


class TestGrammar:
    @pytest.mark.parametrize("text", [
        "worker.exec:crash@3",
        "worker.exec:hang(60)@3w0",
        "pipe.send:corrupt@2x4",
        "store.load:delay(0.1)@1x5",
        "serve.dispatch:error@p0.25",
        "seed=7;worker.exec:crash@p0.5w1;pipe.recv:error@2",
    ])
    def test_round_trip(self, text):
        plan = faults.FaultPlan.parse(text)
        assert faults.FaultPlan.parse(plan.render()) == plan

    def test_render_is_canonical(self):
        plan = faults.FaultPlan.parse(
            " worker.exec:hang(60)@3w0 ; seed=9 ; pipe.send:corrupt@2 "
        )
        assert plan.render() == \
            "seed=9;worker.exec:hang(60)@3w0;pipe.send:corrupt@2"

    @pytest.mark.parametrize("bad", [
        "worker.exec",                  # no action
        "worker.exec:explode@1",        # unknown action
        "worker.exec:crash",            # no trigger
        "worker.exec:crash@0",          # after < 1
        "worker.exec:crash@p1.5",       # chance out of range
        "worker.exec:crash@1x0",        # count < 1
        "seed=nope",                    # bad seed
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ConfigError):
            faults.FaultPlan.parse(bad)

    def test_spec_needs_exactly_one_trigger(self):
        with pytest.raises(ConfigError, match="exactly one trigger"):
            faults.FaultSpec("s", "error", after=1, chance=0.5)
        with pytest.raises(ConfigError, match="exactly one trigger"):
            faults.FaultSpec("s", "error", after=None, chance=None)


class TestTriggerWindows:
    def test_window_is_exact(self):
        inj = faults.FaultInjector(faults.FaultPlan.parse("s:corrupt@3x2"))
        fired = [inj.fire("s") is not None for _ in range(6)]
        assert fired == [False, False, True, True, False, False]
        assert inj.fired[("s", "corrupt")] == 2
        assert inj.hits("s") == 6

    def test_sites_count_independently(self):
        inj = faults.FaultInjector(
            faults.FaultPlan.parse("a:corrupt@2;b:corrupt@1")
        )
        assert inj.fire("a") is None          # a hit 1
        assert inj.fire("b") is not None      # b hit 1
        assert inj.fire("a") is not None      # a hit 2
        assert inj.fire("unwired") is None    # unknown sites are free

    def test_worker_scoping(self):
        inj = faults.FaultInjector(faults.FaultPlan.parse("s:corrupt@1w1"))
        # Worker 0 consumes hit 1 without firing; the spec never
        # matches again (the window moved past), worker 1 or not.
        assert inj.fire("s", worker=0) is None
        assert inj.fire("s", worker=1) is None
        inj2 = faults.FaultInjector(faults.FaultPlan.parse("s:corrupt@1w1"))
        assert inj2.fire("s", worker=1) is not None

    def test_chance_is_seed_deterministic(self):
        plan = faults.FaultPlan.parse("seed=42;s:corrupt@p0.3")
        a = faults.FaultInjector(plan)
        b = faults.FaultInjector(plan)
        pattern_a = [a.fire("s") is not None for _ in range(64)]
        pattern_b = [b.fire("s") is not None for _ in range(64)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)

    def test_chance_varies_with_seed(self):
        p1 = [
            faults.FaultInjector(
                faults.FaultPlan.parse(f"seed={s};s:corrupt@p0.5")
            ).fire("s") is not None
            for s in range(32)
        ]
        assert any(p1) and not all(p1)


class TestActions:
    def test_error_raises_injected_fault(self):
        inj = faults.FaultInjector(faults.FaultPlan.parse("s:error@1"))
        with pytest.raises(faults.InjectedFault, match="site 's'"):
            inj.fire("s")

    def test_injected_fault_is_a_repro_error(self):
        from repro.errors import ReproError

        assert issubclass(faults.InjectedFault, ReproError)
        assert issubclass(faults.InjectedFault, RuntimeError)

    def test_delay_sleeps_then_continues(self):
        import time

        inj = faults.FaultInjector(faults.FaultPlan.parse("s:delay(0.05)@1"))
        start = time.perf_counter()
        assert inj.fire("s") is None
        assert time.perf_counter() - start >= 0.04

    def test_corrupt_returns_the_spec(self):
        inj = faults.FaultInjector(faults.FaultPlan.parse("s:corrupt@1"))
        spec = inj.fire("s")
        assert spec.action == "corrupt" and spec.site == "s"


class TestActivation:
    def test_fire_is_noop_when_inactive(self):
        assert faults.active() is None
        assert faults.fire("worker.exec") is None

    def test_install_and_clear(self):
        inj = faults.install("s:error@1")
        assert faults.active() is inj
        with pytest.raises(faults.InjectedFault):
            faults.fire("s")
        faults.clear()
        assert faults.active() is None

    def test_env_activation_is_lazy(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "s:corrupt@1")
        faults.clear()  # forget the earlier env check
        assert faults.fire("s") is not None
        assert faults.active_render() == "s:corrupt@1"

    def test_bad_env_plan_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "not a spec")
        faults.clear()
        with pytest.raises(ConfigError):
            faults.active()

    def test_install_outranks_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "env.site:error@1")
        faults.clear()
        faults.install("s:corrupt@1")
        assert faults.fire("env.site") is None
        assert faults.fire("s") is not None

    def test_active_render_round_trips(self):
        faults.install("seed=3;s:hang(60)@2w1")
        assert faults.active_render() == "seed=3;s:hang(60)@2w1"


class TestOptionsIntegration:
    def test_string_plans_validate(self):
        api.Options(faults="worker.exec:crash@3w0").validate()
        with pytest.raises(ConfigError, match="bad fault spec"):
            api.Options(faults="worker.exec:explode@!").validate()

    def test_plan_and_spec_objects_accepted(self):
        plan = faults.FaultPlan.parse("s:error@1")
        api.Options(faults=plan).validate()
        api.Options(faults=plan.specs[0]).validate()

    def test_wrong_type_rejected(self):
        with pytest.raises(ConfigError, match="faults must be"):
            api.Options(faults=42).validate()

    def test_session_installs_plan_process_wide(self):
        with api.Session(faults="s:corrupt@1"):
            assert faults.active() is not None
            assert faults.fire("s") is not None
