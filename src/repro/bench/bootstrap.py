"""Bootstrap significance testing, after Sankaran & Bientinesi [11].

The paper checks "whether the performance differences are statistically
significant (or not) using the boot-strapping approach from [11]": given
two timing samples, repeatedly resample each with replacement, compute a
robust statistic (a low quantile — fast machines' timing noise is
one-sided), and count how often implementation A beats B.  The verdict is
three-way: A faster, B faster, or statistically indistinguishable at the
configured significance level.
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

from ..config import config
from ..errors import BenchmarkError
from .timing import TimingSample


class Verdict(enum.Enum):
    A_FASTER = "a_faster"
    B_FASTER = "b_faster"
    INDISTINGUISHABLE = "indistinguishable"


@dataclasses.dataclass(frozen=True)
class BootstrapResult:
    """Outcome of comparing two timing distributions."""

    label_a: str
    label_b: str
    p_a_faster: float  # bootstrap probability that A's statistic < B's
    ratio_ci: tuple[float, float]  # CI of stat_b / stat_a (speedup of A)
    verdict: Verdict
    alpha: float

    @property
    def significant(self) -> bool:
        return self.verdict is not Verdict.INDISTINGUISHABLE

    def describe(self) -> str:
        word = {
            Verdict.A_FASTER: f"{self.label_a} faster",
            Verdict.B_FASTER: f"{self.label_b} faster",
            Verdict.INDISTINGUISHABLE: "indistinguishable",
        }[self.verdict]
        lo, hi = self.ratio_ci
        return (
            f"{word} (P[{self.label_a} < {self.label_b}] = {self.p_a_faster:.3f}, "
            f"speedup CI [{lo:.2f}x, {hi:.2f}x], alpha={self.alpha})"
        )


def bootstrap_compare(
    a: TimingSample,
    b: TimingSample,
    *,
    quantile: float = 0.1,
    n_boot: int | None = None,
    alpha: float | None = None,
    seed: int = 0,
) -> BootstrapResult:
    """Compare two samples; see module docstring.

    ``quantile`` picks the statistic (0.1 ≈ near-best performance, robust
    to a single outlier-fast rep; 0.0 would be the raw min).
    """
    if not 0.0 <= quantile <= 1.0:
        raise BenchmarkError(f"quantile must be in [0, 1], got {quantile}")
    n_boot = config.bootstrap_samples if n_boot is None else n_boot
    alpha = config.alpha if alpha is None else alpha
    rng = np.random.default_rng(seed)
    xa = a.as_array()
    xb = b.as_array()
    idx_a = rng.integers(0, len(xa), size=(n_boot, len(xa)))
    idx_b = rng.integers(0, len(xb), size=(n_boot, len(xb)))
    stat_a = np.quantile(xa[idx_a], quantile, axis=1)
    stat_b = np.quantile(xb[idx_b], quantile, axis=1)
    p_a = float(np.mean(stat_a < stat_b))
    ratios = stat_b / np.maximum(stat_a, 1e-12)
    ci = (
        float(np.quantile(ratios, alpha / 2)),
        float(np.quantile(ratios, 1 - alpha / 2)),
    )
    if p_a >= 1 - alpha:
        verdict = Verdict.A_FASTER
    elif p_a <= alpha:
        verdict = Verdict.B_FASTER
    else:
        verdict = Verdict.INDISTINGUISHABLE
    return BootstrapResult(
        label_a=a.label,
        label_b=b.label,
        p_a_faster=p_a,
        ratio_ci=ci,
        verdict=verdict,
        alpha=alpha,
    )
