"""Rendering graphs as text and DOT — regenerates the paper's Fig. 3 and 4.

The paper draws I/O as circles and math ops as rounded rectangles; the DOT
export follows the same convention (``shape=ellipse`` vs ``shape=box,
style=rounded``).
"""

from __future__ import annotations

from .graph import Graph
from .node import Node

_IO_OPS = frozenset({"input", "const"})


def _label(node: Node) -> str:
    if node.op == "input":
        return node.name.split("_t")[0] if "_t" in node.name else node.name
    if node.op == "matmul":
        flags = []
        if node.attrs.get("trans_a"):
            flags.append("Tᵃ")
        if node.attrs.get("trans_b"):
            flags.append("Tᵇ")
        if node.attrs.get("kernel"):
            flags.append(str(node.attrs["kernel"]))
        return "matmul" + (f" [{','.join(flags)}]" if flags else "")
    if node.op == "scale":
        return f"scale ×{node.attrs['alpha']:g}"
    if node.op == "slice":
        return f"slice [{node.attrs.get('rows')},{node.attrs.get('cols')}]"
    if node.op == "loop":
        return f"loop ×{node.attrs['trip_count']}"
    return node.op


def render_graph(graph: Graph, *, title: str | None = None) -> str:
    """Multi-line text rendering in topological order.

    >>> from repro.ir import builder
    >>> a = builder.input_node((2, 2), name="A")
    >>> print(render_graph(Graph([builder.transpose(a)])))  # doctest: +SKIP
    """
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    index = {id(n): i for i, n in enumerate(graph.topological())}
    out_ids = {id(o) for o in graph.outputs}
    for node in graph.topological():
        ins = ", ".join(f"%{index[id(i)]}" for i in node.inputs)
        marker = "  ->ret" if id(node) in out_ids else ""
        lines.append(
            f"%{index[id(node)]:<3} = {_label(node)}({ins})"
            f"  : {node.shape[0]}x{node.shape[1]} {node.dtype}{marker}"
        )
    counts = graph.op_counts()
    summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    lines.append(f"-- {len(graph)} nodes ({summary})")
    return "\n".join(lines)


def summarize_graph(graph: Graph) -> dict[str, int]:
    """Op histogram plus totals — the numbers the Fig. 3 comparison uses."""
    out = dict(graph.op_counts())
    out["__nodes__"] = len(graph)
    out["__outputs__"] = len(graph.outputs)
    return out


def graph_to_dot(graph: Graph, *, name: str = "G") -> str:
    """Graphviz DOT source (circles for I/O, rounded boxes for math ops)."""
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    index = {id(n): i for i, n in enumerate(graph.topological())}
    for node in graph.topological():
        nid = f"n{index[id(node)]}"
        label = _label(node).replace('"', "'")
        if node.op in _IO_OPS:
            lines.append(f'  {nid} [label="{label}", shape=ellipse];')
        else:
            lines.append(f'  {nid} [label="{label}", shape=box, style=rounded];')
    for node in graph.topological():
        for inp in node.inputs:
            lines.append(f"  n{index[id(inp)]} -> n{index[id(node)]};")
    for i, out in enumerate(graph.outputs):
        rid = f"ret{i}"
        lines.append(f'  {rid} [label="ret", shape=ellipse];')
        lines.append(f"  n{index[id(out)]} -> {rid};")
    lines.append("}")
    return "\n".join(lines)
