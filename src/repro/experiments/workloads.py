"""Operand generators for the experiments — one seeded bundle per run.

Every experiment draws its operands from a :class:`Workloads` instance so
that (a) regeneration is bit-reproducible, and (b) all implementations of
one test expression see the *same* data (paper methodology: only the
implementation varies).
"""

from __future__ import annotations

import numpy as np

from ..config import config
from ..tensor import (
    Tensor,
    random_diagonal,
    random_general,
    random_lower_triangular,
    random_orthogonal,
    random_spd,
    random_tridiagonal,
    random_vector,
)


class Workloads:
    """Seeded operand factory for one experiment run at size ``n``."""

    def __init__(self, n: int, *, seed: int | None = None) -> None:
        self.n = n
        self.seed = config.seed if seed is None else seed

    def _s(self, offset: int) -> int:
        return self.seed + offset

    # -- dense operands ---------------------------------------------------------

    def general(self, tag: int = 0) -> Tensor:
        """A dense n×n matrix (distinct ``tag`` → distinct data)."""
        return random_general(self.n, seed=self._s(100 + tag))

    def general_rect(self, rows: int, cols: int, tag: int = 0) -> Tensor:
        return random_general(rows, cols, seed=self._s(200 + tag))

    def vector(self, tag: int = 0) -> Tensor:
        """A dense n×1 column vector."""
        return random_vector(self.n, seed=self._s(300 + tag))

    # -- structured operands ------------------------------------------------------

    def lower_triangular(self) -> Tensor:
        return random_lower_triangular(self.n, seed=self._s(400))

    def tridiagonal(self) -> Tensor:
        return random_tridiagonal(self.n, seed=self._s(500))

    def diagonal(self) -> Tensor:
        return random_diagonal(self.n, seed=self._s(600))

    def orthogonal(self) -> Tensor:
        return random_orthogonal(self.n, seed=self._s(700))

    def spd(self) -> Tensor:
        return random_spd(self.n, seed=self._s(800))

    # -- blocked operands (Experiment 4) ----------------------------------------------

    def blocks(self) -> tuple[Tensor, Tensor, Tensor, Tensor]:
        """(A1, A2, B1, B2) with A_i ∈ R^{n/2×n/2}, B_i ∈ R^{n/2×n}."""
        half = self.n // 2
        a1 = random_general(half, seed=self._s(900))
        a2 = random_general(half, seed=self._s(901))
        b1 = random_general(half, self.n, seed=self._s(902))
        b2 = random_general(half, self.n, seed=self._s(903))
        return a1, a2, b1, b2

    # -- raw fortran-ordered arrays for the BLAS reference column ------------------------

    @staticmethod
    def fortran(t: Tensor) -> np.ndarray:
        """Fortran-ordered copy (what a hand-written MKL-C harness passes,
        avoiding the f2py row-major copy inside the timed region)."""
        return np.asfortranarray(t.data)
