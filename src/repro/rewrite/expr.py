"""Symbolic matrix-expression algebra with a cost-neutral canonical form.

Design decisions (following Linnea's modelling):

* **Products and sums are n-ary.**  Association is *not* part of expression
  identity — the cost model picks the best parenthesization with the chain
  DP.  Two expressions that differ only in parenthesization are the same
  derivation-graph node.
* **Transposes live on leaves.**  ``(XY)ᵀ`` canonicalizes to ``YᵀXᵀ`` (same
  FLOPs), ``(X+Y)ᵀ`` to ``Xᵀ+Yᵀ``, ``(Xᵀ)ᵀ`` to ``X``; a transpose of a
  symmetric symbol disappears.  All cost-neutral.
* **Scales are hoisted and merged** but never distributed over sums
  (``a(X+Y)`` vs ``aX+aY`` genuinely differ in FLOPs, so they are distinct
  nodes connected by rewrite rules).
* **Structural zeros/identities collapse**: ``I·X → X``, ``0·X → 0``,
  ``X+0 → X``, and sums of identical terms merge coefficients
  (``X+X → 2X``).

Expressions are immutable; construction via the class constructors always
returns the canonical form.
"""

from __future__ import annotations

import numpy as np

from ..errors import RewriteError, ShapeError
from ..tensor.properties import Property, PropertySet, closure


class Expr:
    """Base class.  Subclasses define ``rows``/``cols``/``key()``."""

    rows: int
    cols: int

    # -- convenience constructors ------------------------------------------------

    def __matmul__(self, other: "Expr") -> "Expr":
        return MatMul(self, other)

    def __add__(self, other: "Expr") -> "Expr":
        return Add(self, other)

    def __sub__(self, other: "Expr") -> "Expr":
        return Add(self, Scale(-1.0, other))

    def __mul__(self, alpha: float) -> "Expr":
        return Scale(float(alpha), self)

    __rmul__ = __mul__

    def __neg__(self) -> "Expr":
        return Scale(-1.0, self)

    @property
    def T(self) -> "Expr":
        return Transpose(self)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    # -- identity -----------------------------------------------------------------

    def key(self) -> tuple:  # pragma: no cover - abstract
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expr) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def children(self) -> tuple["Expr", ...]:
        return ()

    # -- evaluation -----------------------------------------------------------------

    def evaluate(self, env: dict[str, np.ndarray]) -> np.ndarray:
        """Numeric value given symbol bindings (products left-to-right;
        evaluation order does not change the value, only FLOPs)."""
        raise NotImplementedError  # pragma: no cover

    def __repr__(self) -> str:
        return self.pretty()

    def pretty(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


class Symbol(Expr):
    """A named matrix (or vector) leaf with optional property annotations."""

    def __init__(
        self,
        name: str,
        rows: int,
        cols: int,
        props: PropertySet | set[Property] = frozenset(),
    ) -> None:
        if rows < 1 or cols < 1:
            raise ShapeError(f"symbol {name}: invalid shape ({rows}, {cols})")
        self.name = name
        self.rows = rows
        self.cols = cols
        self.props = closure(set(props) | {Property.GENERAL})

    def key(self) -> tuple:
        return ("sym", self.name, self.rows, self.cols)

    def evaluate(self, env: dict[str, np.ndarray]) -> np.ndarray:
        try:
            value = np.asarray(env[self.name])
        except KeyError:
            raise RewriteError(f"no binding for symbol {self.name!r}") from None
        if value.ndim == 1:
            value = value.reshape(-1, 1)
        if value.shape != (self.rows, self.cols):
            raise ShapeError(
                f"binding for {self.name!r} has shape {value.shape}, "
                f"declared ({self.rows}, {self.cols})"
            )
        return value

    def pretty(self) -> str:
        return self.name

    def is_symmetric(self) -> bool:
        return Property.SYMMETRIC in self.props

    def is_orthogonal(self) -> bool:
        return Property.ORTHOGONAL in self.props


class Identity(Expr):
    """The n×n identity."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ShapeError(f"identity: invalid size {n}")
        self.rows = n
        self.cols = n

    def key(self) -> tuple:
        return ("eye", self.rows)

    def evaluate(self, env: dict[str, np.ndarray]) -> np.ndarray:
        return np.eye(self.rows)

    def pretty(self) -> str:
        return f"I_{self.rows}"


class Zero(Expr):
    """The m×n zero matrix."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ShapeError(f"zero: invalid shape ({rows}, {cols})")
        self.rows = rows
        self.cols = cols

    def key(self) -> tuple:
        return ("zero", self.rows, self.cols)

    def evaluate(self, env: dict[str, np.ndarray]) -> np.ndarray:
        return np.zeros((self.rows, self.cols))

    def pretty(self) -> str:
        return "0"


class Transpose(Expr):
    """Transpose of a *leaf* symbol — anything else is pushed down.

    ``Transpose(x)`` as a constructor canonicalizes: it may return ``x``
    itself (symmetric symbol, double transpose), an :class:`Identity`, a
    :class:`Zero`, or a reversed product / distributed sum.
    """

    def __new__(cls, child: Expr):
        if isinstance(child, Transpose):
            return child.child
        if isinstance(child, Identity):
            return child
        if isinstance(child, Zero):
            return Zero(child.cols, child.rows)
        if isinstance(child, Symbol):
            if child.is_symmetric():
                return child
            self = object.__new__(cls)
            self.child = child
            self.rows = child.cols
            self.cols = child.rows
            return self
        if isinstance(child, Scale):
            return Scale(child.alpha, Transpose(child.child))
        if isinstance(child, MatMul):
            return MatMul(*[Transpose(f) for f in reversed(child.factors)])
        if isinstance(child, Add):
            return Add(*[Transpose(t) for t in child.terms])
        raise RewriteError(f"cannot transpose {type(child).__name__}")

    def key(self) -> tuple:
        return ("t", self.child.key())

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def evaluate(self, env: dict[str, np.ndarray]) -> np.ndarray:
        return self.child.evaluate(env).T

    def pretty(self) -> str:
        return f"{self.child.pretty()}^T"


class Scale(Expr):
    """``alpha · X`` with ``alpha ≠ 0, 1`` (those collapse on construction)."""

    def __new__(cls, alpha: float, child: Expr):
        alpha = float(alpha)
        if isinstance(child, Scale):
            return Scale(alpha * child.alpha, child.child)
        if alpha == 1.0:
            return child
        if alpha == 0.0 or isinstance(child, Zero):
            return Zero(child.rows, child.cols)
        self = object.__new__(cls)
        self.alpha = alpha
        self.child = child
        self.rows = child.rows
        self.cols = child.cols
        return self

    def key(self) -> tuple:
        return ("scale", self.alpha, self.child.key())

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def evaluate(self, env: dict[str, np.ndarray]) -> np.ndarray:
        return self.alpha * self.child.evaluate(env)

    def pretty(self) -> str:
        alpha = f"{self.alpha:g}"
        inner = self.child.pretty()
        if isinstance(self.child, (MatMul, Add)):
            inner = f"({inner})"
        return f"{alpha}·{inner}"


class MatMul(Expr):
    """N-ary product.  Flattens, drops identities, absorbs zeros and scales."""

    def __new__(cls, *factors: Expr):
        flat: list[Expr] = []
        alpha = 1.0
        for f in factors:
            if isinstance(f, MatMul):
                flat.extend(f.factors)
            elif isinstance(f, Scale):
                alpha *= f.alpha
                if isinstance(f.child, MatMul):
                    flat.extend(f.child.factors)
                else:
                    flat.append(f.child)
            else:
                flat.append(f)
        if not flat:
            raise RewriteError("empty product")
        # shape check
        for left, right in zip(flat, flat[1:]):
            if left.cols != right.rows:
                raise ShapeError(
                    f"product shape mismatch: {left.pretty()} is "
                    f"{left.shape}, {right.pretty()} is {right.shape}"
                )
        rows, cols = flat[0].rows, flat[-1].cols
        if any(isinstance(f, Zero) for f in flat):
            return Zero(rows, cols)
        flat = [f for f in flat if not isinstance(f, Identity)] or [flat[0]]
        if len(flat) == 1:
            return Scale(alpha, flat[0])
        self = object.__new__(cls)
        self.factors = tuple(flat)
        self.rows = rows
        self.cols = cols
        return Scale(alpha, self) if alpha != 1.0 else self

    def key(self) -> tuple:
        return ("mul",) + tuple(f.key() for f in self.factors)

    def children(self) -> tuple[Expr, ...]:
        return self.factors

    def evaluate(self, env: dict[str, np.ndarray]) -> np.ndarray:
        out = self.factors[0].evaluate(env)
        for f in self.factors[1:]:
            out = out @ f.evaluate(env)
        return out

    def pretty(self) -> str:
        parts = []
        for f in self.factors:
            s = f.pretty()
            if isinstance(f, (Add, Scale)):
                s = f"({s})"
            parts.append(s)
        return " ".join(parts)


class Add(Expr):
    """N-ary sum.  Flattens, drops zeros, merges identical terms' coefficients,
    and sorts terms canonically."""

    def __new__(cls, *terms: Expr):
        coeffs: dict[tuple, tuple[Expr, float]] = {}

        def accumulate(term: Expr, factor: float) -> None:
            if isinstance(term, Add):
                for t in term.terms:
                    accumulate(t, factor)
                return
            if isinstance(term, Scale):
                accumulate(term.child, factor * term.alpha)
                return
            if isinstance(term, Zero):
                return
            k = term.key()
            base, c = coeffs.get(k, (term, 0.0))
            coeffs[k] = (base, c + factor)

        for t in terms:
            accumulate(t, 1.0)
        if not terms:
            raise RewriteError("empty sum")
        rows, cols = terms[0].rows, terms[0].cols
        for t in terms:
            if (t.rows, t.cols) != (rows, cols):
                raise ShapeError(
                    f"sum shape mismatch: {t.pretty()} is {t.shape}, "
                    f"expected ({rows}, {cols})"
                )
        kept = [
            Scale(c, base)
            for _, (base, c) in sorted(coeffs.items())
            if c != 0.0
        ]
        if not kept:
            return Zero(rows, cols)
        if len(kept) == 1:
            return kept[0]
        self = object.__new__(cls)
        self.terms = tuple(kept)
        self.rows = rows
        self.cols = cols
        return self

    def key(self) -> tuple:
        return ("add",) + tuple(t.key() for t in self.terms)

    def children(self) -> tuple[Expr, ...]:
        return self.terms

    def evaluate(self, env: dict[str, np.ndarray]) -> np.ndarray:
        out = self.terms[0].evaluate(env)
        for t in self.terms[1:]:
            out = out + t.evaluate(env)
        return out

    def pretty(self) -> str:
        return " + ".join(t.pretty() for t in self.terms)
