"""BLAS/LAPACK kernel substrate — the reproduction's stand-in for Intel MKL.

The paper's frameworks link to MKL; here every mathematical operation in the
simulated frameworks bottoms out in this package, which dispatches to the
*compiled* BLAS shipped inside scipy (``scipy.linalg.blas`` /
``scipy.linalg.lapack``).  The package also carries the FLOP cost model used
by the chain optimizer, the property-aware dispatcher, and the derivation
graph.

Sub-modules
-----------
``blas1`` / ``blas2`` / ``blas3``
    Level-1/2/3 BLAS wrappers (SCAL, AXPY, DOT, GEMV, GER, GEMM, TRMM, SYRK,
    SYMM, TRSM, ...), dtype-dispatching between float32 and float64.
``lapack``
    The few LAPACK factorizations used by the linear-system extension
    (POTRF, GETRF, POTRS/GETRS-based solves).
``special``
    Structured-matrix kernels that BLAS does not provide as single calls:
    tridiagonal and diagonal matrix products (the paper's Experiment 3) and
    block-diagonal GEMM (Experiment 4).
``flops``
    Closed-form FLOP counts per kernel.
``registry``
    A kernel registry mapping (operation, operand properties) to the cheapest
    applicable kernel — the machinery a "linear-algebra-aware" framework
    would need (Sec. III-C discussion).
"""

from .blas1 import asum, axpy, copy as copy_vector, dot, nrm2, scal
from .blas2 import gemv, ger, symv, trmv, trsv
from .blas3 import gemm, symm, syrk, trmm, trsm
from .lapack import cholesky_solve, getrf, lu_solve, potrf
from .special import (
    block_diag_matmul,
    diag_matmul,
    tridiag_from_bands,
    tridiagonal_matmul,
)
from .flops import (
    FLOP_FORMULAS,
    flops_gemm,
    flops_gemv,
    flops_syrk,
    flops_trmm,
    kernel_flops,
)
from .registry import KernelInfo, KernelRegistry, default_registry, select_matmul_kernel

__all__ = [
    "asum",
    "axpy",
    "copy_vector",
    "dot",
    "nrm2",
    "scal",
    "gemv",
    "ger",
    "symv",
    "trmv",
    "trsv",
    "gemm",
    "symm",
    "syrk",
    "trmm",
    "trsm",
    "potrf",
    "getrf",
    "cholesky_solve",
    "lu_solve",
    "tridiagonal_matmul",
    "tridiag_from_bands",
    "diag_matmul",
    "block_diag_matmul",
    "FLOP_FORMULAS",
    "kernel_flops",
    "flops_gemm",
    "flops_gemv",
    "flops_trmm",
    "flops_syrk",
    "KernelInfo",
    "KernelRegistry",
    "default_registry",
    "select_matmul_kernel",
]
