"""Loop-invariant code motion for explicit ``loop`` nodes.

Python ``for`` loops unroll at trace time, where CSE already deduplicates
the invariant ``A@B`` of the paper's Fig. 8 — that is how the real
frameworks pass Experiment 5's first test.  Framework loop *constructs*
(``tfsim.fori_loop``) stay rolled as ``loop`` nodes, and this pass provides
the classical LICM for them: any body sub-DAG that depends only on captured
(loop-invariant) values is computed once outside and passed in as an extra
captured input.
"""

from __future__ import annotations

from ..ir.graph import Graph
from ..ir.node import Node
from .base import GraphPass


class LoopInvariantCodeMotion(GraphPass):
    """Hoist invariant sub-DAGs out of ``loop`` bodies."""

    name = "licm"

    def apply(self, graph: Graph) -> Graph:
        def fn(node: Node, new_inputs: tuple[Node, ...]) -> Node | None:
            if node.op != "loop":
                return None
            return self._hoist(node, new_inputs)

        return graph.rewrite(fn)

    def _hoist(self, loop_node: Node, new_inputs: tuple[Node, ...]) -> Node | None:
        body: Graph = loop_node.attrs["body"]
        body = self.apply(body)  # handle nested loops first

        idx_in, carried_in, *cap_ins = body.inputs
        init_outer, *cap_outers = new_inputs

        # 1. Classify body nodes: variant = (transitively) depends on the
        #    iteration index or the carried value.
        variant: set[int] = {id(idx_in), id(carried_in)}
        for node in body.topological():
            if any(id(i) in variant for i in node.inputs):
                variant.add(id(node))

        # 2. Hoist roots: invariant computation nodes feeding something
        #    variant (or escaping as the body output).
        consumers = body.consumers()
        out_ids = {id(o) for o in body.outputs}
        roots: list[Node] = []
        for node in body.topological():
            if id(node) in variant or node.op in ("input", "const"):
                continue
            feeds_variant = any(id(c) in variant for c in consumers[id(node)])
            if feeds_variant or id(node) in out_ids:
                roots.append(node)
        if not roots:
            attrs = dict(loop_node.attrs)
            attrs["body"] = body
            return Node("loop", new_inputs, attrs, name=loop_node.name)

        # 3. Clone each root's invariant sub-DAG into the outer graph,
        #    substituting captured body inputs with the loop's outer operands.
        outer_map: dict[int, Node] = {
            id(cap_in): cap_out for cap_in, cap_out in zip(cap_ins, cap_outers)
        }

        def clone_out(node: Node) -> Node:
            if id(node) in outer_map:
                return outer_map[id(node)]
            cloned = self.rebuild(node, tuple(clone_out(i) for i in node.inputs))
            outer_map[id(node)] = cloned
            return cloned

        hoisted_outer = [clone_out(r) for r in roots]
        self.last_stats.rewrites += len(roots)

        # 4. Rebuild the body: each hoisted root becomes a fresh captured
        #    input placeholder.
        from ..ir import builder

        replacements: dict[int, Node] = {}
        new_cap_inputs: list[Node] = []
        for i, root in enumerate(roots):
            ph = builder.input_node(
                root.shape, root.dtype, name=f"{loop_node.name}_hoist{i}"
            )
            replacements[id(root)] = ph
            new_cap_inputs.append(ph)

        # Manual rebuild of the body (Graph.rewrite cannot introduce fresh
        # input placeholders): hoisted roots map to their placeholder,
        # everything else is rebuilt over the mapped inputs.
        mapping: dict[int, Node] = {}
        for bnode in body.topological():
            if id(bnode) in replacements:
                mapping[id(bnode)] = replacements[id(bnode)]
                continue
            mapped = tuple(mapping[id(i)] for i in bnode.inputs)
            if all(a is b for a, b in zip(mapped, bnode.inputs)):
                mapping[id(bnode)] = bnode
            else:
                mapping[id(bnode)] = self.rebuild(bnode, mapped)

        ordered_inputs: list[Node] = [idx_in, carried_in, *cap_ins, *new_cap_inputs]
        new_body = Graph(
            [mapping[id(o)] for o in body.outputs], inputs=ordered_inputs
        )
        attrs = dict(loop_node.attrs)
        attrs["body"] = new_body
        return Node(
            "loop",
            (init_outer, *cap_outers, *hoisted_outer),
            attrs,
            name=loop_node.name,
        )
