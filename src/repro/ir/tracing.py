"""Tracing: turning Python callables into computational graphs.

This is the mechanism behind ``@tfsim.function`` and
``@pytsim.jit.script``: the wrapped Python function is executed once with
:class:`SymbolicTensor` arguments; every operation the Python code performs
records a node, and the result is a :class:`~repro.ir.graph.Graph` (the
paper's Fig. 3 "Initial Graph").

Python ``for`` loops over ``range`` unroll during tracing, exactly like
TF's autograph treats static loops — which is what makes loop-invariant
code motion reduce to duplicate-node elimination in the DAG (Experiment 5).
Framework-specific loop *constructs* (``tfsim.fori_loop``) instead produce
an explicit ``loop`` node whose body is a sub-graph, which the dedicated
LICM pass optimizes.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Sequence

import numpy as np

from ..errors import TracingError
from ..properties import algebra as prop_algebra
from ..tensor.properties import Property, PropertySet, closure
from ..tensor.tensor import Tensor
from . import builder
from .graph import Graph
from .node import Node

_trace_ids = itertools.count()


class SymbolicTensor:
    """A tensor-shaped placeholder that records operations as IR nodes.

    Mirrors the :class:`~repro.tensor.tensor.Tensor` operator surface so
    that the same user code runs eagerly or under tracing.  Carries a
    property set for trace-time bookkeeping; the properties are *recorded*
    on input nodes but not consulted by the default pipelines (matching the
    frameworks under study).
    """

    __slots__ = ("node", "props")

    def __init__(self, node: Node, props: PropertySet | None = None) -> None:
        self.node = node
        self.props = props if props is not None else frozenset({Property.GENERAL})

    # -- metadata ------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return self.node.shape

    @property
    def dtype(self) -> np.dtype:
        return self.node.dtype

    def has(self, prop: Property) -> bool:
        return prop in self.props

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SymbolicTensor({self.node!r})"

    # -- operator surface ------------------------------------------------------

    @property
    def T(self) -> "SymbolicTensor":
        return SymbolicTensor(
            builder.transpose(self.node), prop_algebra.transpose_props(self.props)
        )

    def __matmul__(self, other: "SymbolicTensor") -> "SymbolicTensor":
        other = _as_symbolic(other, like=self)
        props = prop_algebra.matmul_props(
            self.props,
            other.props,
            square_result=self.shape[0] == other.shape[1],
        )
        return SymbolicTensor(builder.matmul(self.node, other.node), props)

    def __add__(self, other: "SymbolicTensor") -> "SymbolicTensor":
        other = _as_symbolic(other, like=self)
        return SymbolicTensor(
            builder.add(self.node, other.node),
            prop_algebra.add_props(self.props, other.props),
        )

    def __sub__(self, other: "SymbolicTensor") -> "SymbolicTensor":
        other = _as_symbolic(other, like=self)
        return SymbolicTensor(
            builder.sub(self.node, other.node),
            prop_algebra.add_props(self.props, other.props, negate_b=True),
        )

    # Reflected ops: an eager Tensor (or ndarray) on the left of a traced
    # operand folds into the graph as a constant node.
    def __rmatmul__(self, other: object) -> "SymbolicTensor":
        return _as_symbolic(other, like=self).__matmul__(self)

    def __radd__(self, other: object) -> "SymbolicTensor":
        return _as_symbolic(other, like=self).__add__(self)

    def __rsub__(self, other: object) -> "SymbolicTensor":
        return _as_symbolic(other, like=self).__sub__(self)

    def __neg__(self) -> "SymbolicTensor":
        return SymbolicTensor(
            builder.neg(self.node), prop_algebra.negate_props(self.props)
        )

    def __mul__(self, alpha: float) -> "SymbolicTensor":
        if isinstance(alpha, SymbolicTensor):
            raise TracingError(
                "`*` is scalar scaling; use `@` for matrix products"
            )
        return SymbolicTensor(
            builder.scale(self.node, float(alpha)),
            prop_algebra.scale_props(self.props, float(alpha)),
        )

    __rmul__ = __mul__

    def __getitem__(self, key: object) -> "SymbolicTensor":
        rows, cols = _split_key(key)
        node = builder.slice_(self.node, rows, cols)
        return SymbolicTensor(
            node, prop_algebra.slice_props(self.props, *node.shape)
        )


def _split_key(key: object) -> tuple[object, object]:
    if isinstance(key, tuple):
        if len(key) != 2:
            raise TracingError(f"expected 2-D index, got {key!r}")
        return key[0], key[1]
    return key, None


def _as_symbolic(value: object, *, like: SymbolicTensor) -> SymbolicTensor:
    if isinstance(value, SymbolicTensor):
        return value
    if isinstance(value, Tensor):
        return SymbolicTensor(builder.const(value.data), value.props)
    if isinstance(value, np.ndarray):
        return SymbolicTensor(builder.const(value))
    raise TracingError(
        f"cannot mix {type(value).__name__} into a traced expression"
    )


def _make_input(value: object, index: int, trace_id: int) -> SymbolicTensor:
    if isinstance(value, Tensor):
        node = builder.input_node(
            value.shape,
            value.dtype,
            name=f"arg{index}_t{trace_id}",
            index=index,
            props=value.props,
        )
        return SymbolicTensor(node, value.props)
    if isinstance(value, np.ndarray):
        arr = value.reshape(-1, 1) if value.ndim == 1 else value
        node = builder.input_node(
            arr.shape, arr.dtype, name=f"arg{index}_t{trace_id}", index=index
        )
        return SymbolicTensor(node)
    if isinstance(value, SymbolicTensor):
        # Re-tracing with an existing placeholder (nested traces).
        return value
    raise TracingError(
        f"trace arguments must be Tensor/ndarray, got {type(value).__name__}"
    )


def trace(fn: Callable, example_args: Sequence[object]) -> Graph:
    """Trace ``fn`` with placeholders shaped like ``example_args``.

    Returns a Graph whose inputs follow the positional argument order.
    ``fn`` may return a SymbolicTensor or a tuple/list of them.
    """
    trace_id = next(_trace_ids)
    sym_args = [_make_input(a, i, trace_id) for i, a in enumerate(example_args)]
    result = fn(*sym_args)
    if isinstance(result, SymbolicTensor):
        outputs = [result.node]
    elif isinstance(result, (tuple, list)) and result and all(
        isinstance(r, SymbolicTensor) for r in result
    ):
        outputs = [r.node for r in result]
    else:
        raise TracingError(
            "traced function must return SymbolicTensor(s); got "
            f"{type(result).__name__}. (Did the function return a plain "
            "number or numpy array, escaping the trace?)"
        )
    return Graph(outputs, inputs=[s.node for s in sym_args])


def trace_loop(
    body: Callable,
    init: SymbolicTensor,
    captured: Sequence[SymbolicTensor] = (),
    *,
    trip_count: int,
) -> SymbolicTensor:
    """Build an explicit ``loop`` node by tracing ``body`` into a sub-graph.

    ``body(idx, carried, *captured)`` must return the next carried value.
    ``idx`` is a 1×1 tensor holding the iteration number.  This models the
    framework-specific loop constructs the paper mentions (``tf.while_loop``
    etc.); Python ``for`` loops simply unroll instead.
    """
    trace_id = next(_trace_ids)
    idx = SymbolicTensor(
        builder.input_node((1, 1), init.dtype, name=f"loop_idx_t{trace_id}")
    )
    carried_in = SymbolicTensor(
        builder.input_node(init.shape, init.dtype, name=f"loop_carried_t{trace_id}"),
        init.props,
    )
    captured_in = [
        SymbolicTensor(
            builder.input_node(
                c.shape, c.dtype, name=f"loop_cap{i}_t{trace_id}", props=c.props
            ),
            c.props,
        )
        for i, c in enumerate(captured)
    ]
    result = body(idx, carried_in, *captured_in)
    if not isinstance(result, SymbolicTensor):
        raise TracingError("loop body must return a SymbolicTensor")
    body_graph = Graph(
        [result.node],
        inputs=[idx.node, carried_in.node, *(c.node for c in captured_in)],
    )
    node = builder.loop(
        body_graph, init.node, [c.node for c in captured], trip_count=trip_count
    )
    return SymbolicTensor(node, init.props)
