"""Cross-run persistence of plan-cache signatures and compile times.

The in-process :class:`~repro.runtime.cache.PlanCache` already proves
*within-run* trace deduplication (hits vs misses).  The ROADMAP's open
observability question is the **cross-run** rate: when the experiment
suite runs day after day, how many of its traces land on signatures that
were already compiled yesterday — i.e. how much compile time would a
persistent/compiled-artifact cache actually save?

This module answers it with a plain JSON accumulator:

* :func:`save_stats` merges one run's :meth:`PlanCache.snapshot` rows
  into a stats file — per signature digest it accumulates hits,
  compiles, compile seconds and the number of distinct *runs* that saw
  the signature;
* :func:`load_stats` reads the file back;
* :func:`render_stats` prints the dedup report: recurring signatures,
  their recurrence rate, and the recompile seconds a cross-run cache
  would have avoided (every compile of an already-seen signature).

Wired into the CLI as ``laab cache-stats --save FILE`` (run, then merge
and report) and ``laab cache-stats --load FILE`` (report the accumulated
file without running anything).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any

#: Stats-file schema version.
FORMAT_VERSION = 1


def _canonical(value: Any) -> Any:
    """Process-independent form of one signature component.

    Signatures are nested tuples of primitives — except the property-
    annotation *frozensets*, whose iteration (and hence ``repr``) order
    follows per-process hash randomization.  Sorting their elements by
    canonical repr makes the digest identical across runs, which is the
    whole point of persisting it.
    """
    if isinstance(value, tuple):
        return tuple(_canonical(v) for v in value)
    if isinstance(value, frozenset):
        return ("frozenset",) + tuple(
            sorted(repr(_canonical(v)) for v in value)
        )
    return value


def signature_digest(signature: tuple) -> str:
    """Stable hex digest of a structural plan signature.

    ndarray payloads are already reduced to content digests inside the
    signature (see :mod:`repro.runtime.signature`) and set-valued attrs
    are canonicalized here, so equal signatures digest equally in every
    process and across runs.
    """
    return hashlib.sha1(repr(_canonical(signature)).encode()).hexdigest()


def _empty() -> dict:
    return {"version": FORMAT_VERSION, "runs": 0, "plans": {}}


def load_stats(path: str) -> dict:
    """The accumulated stats file at ``path`` (empty structure if absent)."""
    if not os.path.exists(path):
        return _empty()
    with open(path) as fh:
        data = json.load(fh)
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"cache-stats file {path!r} has format version {version!r}; "
            f"this runtime writes {FORMAT_VERSION} — delete or migrate it"
        )
    return data


def save_stats(path: str, rows: list[dict[str, Any]]) -> dict:
    """Merge one run's snapshot ``rows`` into ``path``; returns the merged
    structure.  Each row is keyed by ``(signature, fold_constants,
    fusion)`` — the same triple the in-memory cache keys on — and
    accumulates across runs; ``runs_seen`` counts distinct runs, which is
    what the dedup rate is measured against.
    """
    data = load_stats(path)
    data["runs"] += 1
    plans = data["plans"]
    for row in rows:
        key = (
            f"{row['signature']}:"
            f"{int(bool(row['fold_constants']))}{int(bool(row['fusion']))}"
        )
        rec = plans.setdefault(key, {
            "signature": row["signature"],
            "fold_constants": bool(row["fold_constants"]),
            "fusion": bool(row["fusion"]),
            "hits": 0,
            "compiles": 0,
            "compile_seconds": 0.0,
            "runs_seen": 0,
        })
        rec["hits"] += int(row["hits"])
        rec["compiles"] += int(row["compiles"])
        rec["compile_seconds"] += float(row["compile_seconds"])
        # Warm starts from the persistent plan store (PR 8); absent in
        # rows/files from older runtimes — accumulate additively so old
        # and new stats files merge without a format bump.
        rec["store_loads"] = rec.get("store_loads", 0) + int(
            row.get("store_loads", 0)
        )
        rec["runs_seen"] += 1
    tmp = f"{path}.tmp"
    with open(tmp, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
    os.replace(tmp, path)
    return data


def render_stats(data: dict) -> str:
    """Human-readable cross-run dedup report for a stats structure."""
    plans = list(data["plans"].values())
    runs = data["runs"]
    if not plans:
        return f"cache persistence: {runs} runs recorded, no plans yet"
    recurring = [p for p in plans if p["runs_seen"] > 1]
    # A cross-run cache would compile each signature once; every further
    # compile of a known signature is the saving this report quantifies.
    redundant = sum(max(0, p["compiles"] - 1) for p in plans)
    redundant_secs = sum(
        p["compile_seconds"] * max(0, p["compiles"] - 1) / p["compiles"]
        for p in plans
        if p["compiles"] > 0
    )
    store_loads = sum(int(p.get("store_loads", 0)) for p in plans)
    lines = [
        f"cache persistence: {runs} runs, {len(plans)} distinct plan "
        f"signatures ({len(recurring)} recur across runs)",
        f"  cross-run dedup rate: {len(recurring) / len(plans):.1%} of "
        f"signatures, {redundant} redundant compiles "
        f"(~{redundant_secs:.4f}s recompile time a persistent cache "
        "would save)",
        f"  {'signature':<12} fold fuse  runs  hits  compiles  compile(s)",
    ]
    if store_loads:
        lines.insert(2, (
            f"  plan store (repro.runtime.store): {store_loads} warm "
            "start(s) already served from disk across these runs"
        ))
    ordered = sorted(
        plans, key=lambda p: (-p["runs_seen"], -p["compiles"], p["signature"])
    )
    for p in ordered[:20]:
        lines.append(
            f"  {p['signature'][:12]} {str(p['fold_constants'])[:1]:>4} "
            f"{str(p['fusion'])[:1]:>4}  {p['runs_seen']:>4}  "
            f"{p['hits']:>4}  {p['compiles']:>8}  "
            f"{p['compile_seconds']:>10.4f}"
        )
    if len(ordered) > 20:
        lines.append(f"  ... {len(ordered) - 20} more signatures")
    return "\n".join(lines)
