"""Tests for the property vocabulary: closure, verification, detection."""

import numpy as np
import pytest

from repro.errors import PropertyError
from repro.tensor import creation, random_orthogonal
from repro.tensor.properties import (
    Property,
    closure,
    detect_properties,
    verify_property,
)


class TestClosure:
    def test_identity_implies_many(self):
        c = closure({Property.IDENTITY})
        for p in (Property.DIAGONAL, Property.ORTHOGONAL, Property.SPD,
                  Property.SYMMETRIC, Property.LOWER_TRIANGULAR,
                  Property.UPPER_TRIANGULAR, Property.TRIDIAGONAL,
                  Property.SQUARE):
            assert p in c

    def test_diagonal_implies_triangular_both(self):
        c = closure({Property.DIAGONAL})
        assert Property.LOWER_TRIANGULAR in c
        assert Property.UPPER_TRIANGULAR in c
        assert Property.TRIDIAGONAL in c

    def test_spd_implies_symmetric(self):
        assert Property.SYMMETRIC in closure({Property.SPD})

    def test_closure_idempotent(self):
        once = closure({Property.IDENTITY})
        assert closure(once) == once

    def test_closure_monotone(self):
        small = closure({Property.SPD})
        big = closure({Property.SPD, Property.DIAGONAL})
        assert small <= big

    def test_empty_closure(self):
        assert closure(set()) == frozenset()


class TestVerify:
    def test_lower_triangular(self, rng):
        l = np.tril(rng.random((8, 8))).astype(np.float32)
        assert verify_property(l, Property.LOWER_TRIANGULAR)
        assert not verify_property(l + 1.0, Property.LOWER_TRIANGULAR)

    def test_symmetric(self, rng):
        a = rng.random((8, 8))
        assert verify_property(a + a.T, Property.SYMMETRIC)
        assert not verify_property(a + np.eye(8) @ np.diag(np.arange(8.0)) @ a,
                                   Property.SYMMETRIC)

    def test_spd(self, rng):
        a = rng.random((6, 6))
        spd = a @ a.T + 6 * np.eye(6)
        assert verify_property(spd, Property.SPD)
        assert not verify_property(-spd, Property.SPD)

    def test_diagonal(self, rng):
        assert verify_property(np.diag(rng.random(5)), Property.DIAGONAL)
        assert not verify_property(rng.random((5, 5)) + 1, Property.DIAGONAL)

    def test_tridiagonal(self, rng):
        t = np.diag(rng.random(6)) + np.diag(rng.random(5), 1) + np.diag(
            rng.random(5), -1)
        assert verify_property(t, Property.TRIDIAGONAL)
        t[0, 5] = 1.0
        assert not verify_property(t, Property.TRIDIAGONAL)

    def test_orthogonal(self):
        q = random_orthogonal(16, seed=3).numpy()
        assert verify_property(q, Property.ORTHOGONAL)
        assert not verify_property(2 * q, Property.ORTHOGONAL)

    def test_identity_and_zero(self):
        assert verify_property(np.eye(4), Property.IDENTITY)
        assert verify_property(np.zeros((3, 7)), Property.ZERO)
        assert not verify_property(np.ones((3, 3)), Property.ZERO)

    def test_vector_scalar(self):
        assert verify_property(np.zeros((5, 1)), Property.VECTOR)
        assert verify_property(np.zeros((1, 1)), Property.SCALAR)
        assert not verify_property(np.zeros((5, 2)), Property.VECTOR)

    def test_square_rejects_rectangular(self):
        assert not verify_property(np.zeros((3, 4)), Property.SQUARE)

    def test_unit_diagonal(self):
        m = np.tril(np.full((4, 4), 2.0))
        np.fill_diagonal(m, 1.0)
        assert verify_property(m, Property.UNIT_DIAGONAL)


class TestDetect:
    def test_detect_identity_closure(self):
        props = detect_properties(np.eye(6, dtype=np.float32))
        assert Property.IDENTITY in props
        assert Property.ORTHOGONAL in props  # via closure

    def test_detect_general_dense(self, rng):
        props = detect_properties(rng.random((6, 6)).astype(np.float32) + 1)
        assert Property.DIAGONAL not in props
        assert Property.SYMMETRIC not in props
        assert Property.SQUARE in props

    def test_detect_rectangular(self, rng):
        props = detect_properties(rng.random((4, 7)))
        assert Property.SQUARE not in props

    def test_detect_orthogonal_small(self):
        q = random_orthogonal(32, seed=5).numpy()
        assert Property.ORTHOGONAL in detect_properties(q)

    def test_detect_rejects_non_matrix(self):
        with pytest.raises(PropertyError):
            detect_properties(np.zeros(5))

    def test_detect_consistency_with_verify(self, rng):
        """Everything detected must verify (soundness of detection)."""
        mats = [
            np.tril(rng.random((10, 10))).astype(np.float32),
            np.diag(rng.random(10)).astype(np.float32),
            np.zeros((10, 10), dtype=np.float32),
            np.eye(10, dtype=np.float32),
        ]
        for m in mats:
            for p in detect_properties(m):
                if p is Property.BLOCK_DIAGONAL:
                    continue
                assert verify_property(m, p), (m[:2, :2], p)


class TestCreationProps:
    def test_eye(self):
        assert Property.IDENTITY in creation.eye(4).props

    def test_zeros(self):
        assert Property.ZERO in creation.zeros(4, 6).props

    def test_diag(self):
        t = creation.diag([1.0, 2.0, 3.0])
        assert Property.DIAGONAL in t.props
        assert np.allclose(t.numpy(), np.diag([1, 2, 3]))

    def test_tridiag(self):
        t = creation.tridiag([1.0, 1.0], [2.0, 2.0, 2.0], [3.0, 3.0])
        assert Property.TRIDIAGONAL in t.props
        assert t.numpy()[0, 1] == pytest.approx(3.0)
        assert t.numpy()[1, 0] == pytest.approx(1.0)

    def test_block_diag(self, rng):
        a = rng.random((3, 3)).astype(np.float32)
        b = rng.random((2, 2)).astype(np.float32)
        t = creation.block_diag(a, b)
        assert t.shape == (5, 5)
        assert Property.BLOCK_DIAGONAL in t.props
        assert np.allclose(t.numpy()[:3, :3], a)
        assert np.allclose(t.numpy()[3:, 3:], b)
        assert np.allclose(t.numpy()[:3, 3:], 0)

    def test_concat(self, rng):
        a = creation.from_numpy(rng.random((2, 3)).astype(np.float32))
        b = creation.from_numpy(rng.random((2, 3)).astype(np.float32))
        rows = creation.concat([a, b], axis=0)
        cols = creation.concat([a, b], axis=1)
        assert rows.shape == (4, 3)
        assert cols.shape == (2, 6)


class TestRandomGenerators:
    def test_reproducible(self):
        from repro.tensor import random_general

        a = random_general(8, seed=42)
        b = random_general(8, seed=42)
        assert np.array_equal(a.numpy(), b.numpy())

    def test_different_seeds_differ(self):
        from repro.tensor import random_general

        a = random_general(8, seed=1)
        b = random_general(8, seed=2)
        assert not np.array_equal(a.numpy(), b.numpy())

    def test_annotations_hold(self, operands):
        from repro.tensor.properties import verify_property

        checks = [
            ("L", Property.LOWER_TRIANGULAR),
            ("S", Property.SYMMETRIC),
            ("P", Property.SPD),
            ("Q", Property.ORTHOGONAL),
            ("T", Property.TRIDIAGONAL),
            ("D", Property.DIAGONAL),
        ]
        for key, prop in checks:
            assert verify_property(operands[key].numpy(), prop,
                                   atol=1e-3), key
